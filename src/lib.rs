//! # adaptive-mpc-connectivity
//!
//! Umbrella crate for the reproduction of *"Adaptive Massively Parallel
//! Connectivity in Optimal Space"* (Latypov, Łącki, Maus, Uitto — SPAA 2023).
//!
//! Re-exports the three layers of the workspace:
//!
//! * [`ampc`] — the AMPC model runtime simulator (DHT, machines, rounds,
//!   space/query metering);
//! * [`graph`] — the graph substrate (CSR storage, generators, Euler tours,
//!   contraction, ground-truth connectivity);
//! * [`cc`] — the paper's algorithms (Algorithm 1 forest pipeline,
//!   Algorithm 2 general-graph recursion) plus cited subroutines and
//!   baselines;
//! * [`query`] — the read path: immutable component index, batch query
//!   engine, and deterministic workload driver over finished runs;
//! * [`serve`] — the serving layer: `PipelineSpec`-driven
//!   `ConnectivityService` with lock-free epoch-swapped index snapshots,
//!   background rebuilds under live traffic, and the multi-threaded
//!   workload driver;
//! * [`net`] — the network front-end: a hand-rolled TCP server speaking a
//!   length-prefixed binary protocol over the service's lock-free
//!   snapshots, with bounded admission backpressure and a closed-loop
//!   multi-connection client harness.
//!
//! See `examples/quickstart.rs` for a five-minute tour and `DESIGN.md` for
//! the full system inventory.

pub use ampc;
pub use ampc_cc as cc;
pub use ampc_graph as graph;
pub use ampc_net as net;
pub use ampc_query as query;
pub use ampc_serve as serve;
