//! `ampc-cc` — command-line connected components over edge-list files.
//!
//! ```text
//! ampc-cc <file> [--forest|--general|--auto] [--k K] [--seed S]
//!                [--machines M] [--backend B] [--labels] [--trace]
//!                [--metrics] [--json] [--persist PATH] [--fail SPEC]
//! ampc-cc query [<file>] [pipeline options as above]
//!                [--mix uniform|zipf[:EXP]|cross] [--queries N] [--batch B]
//!                [--threads T] [--query-file F] [--top K] [--json]
//!                [--stream N] [--stream-batch E] [--from-snapshot PATH]
//!                [--fail SPEC] [--chaos SEED]
//!                [--connect ADDR [--shutdown]]
//! ampc-cc serve <file> [pipeline options as above]
//!                [--listen ADDR] [--workers W] [--queue D]
//!                [--port-file PATH] [--from-snapshot PATH] [--fail SPEC]
//!
//!   <file>       edge list ("u v" per line, optional "# nodes: N" header);
//!                use "-" for stdin
//!   --auto       pick Algorithm 1 for forests, Algorithm 2 otherwise (default)
//!   --k K        space parameter (Theorems 1.1/1.2), default 2
//!   --backend B  DHT storage backend: "flat" (default), "sharded" or
//!                "sharded:N" for N hash shards, "dense" or "dense:CAP" for
//!                direct-indexed slabs of CAP ids per keyspace (unhinted
//!                "dense" sizes slabs from the input). Results are identical
//!                across backends; sharded/dense merge round output in
//!                parallel and dense reads skip hashing entirely
//!   --labels     print "vertex component" lines to stdout
//!   --trace      print the per-round cost ledger; in query mode an
//!                optional integer operand (`--trace N`) additionally dumps
//!                the last N structured trace events (epoch publishes,
//!                journal builds, compactions, incidents, snapshot
//!                persists/boots, rounds) from the process trace ring
//!   --metrics    print structural metrics of the input first, and the
//!                process metrics table (counters, gauges, latency
//!                quantiles) at the end
//!   --json       emit one machine-readable JSON object on stdout (labels +
//!                RunStats for runs; the throughput report for queries)
//!
//! Both subcommands drive one `PipelineSpec` (algorithm, backend, limits,
//! seed, machines): the run subcommand executes it directly, the query
//! subcommand hands it to a `ConnectivityService`, whose lock-free
//! epoch-swapped snapshots the multi-threaded driver reads. The service
//! cross-checks every answer against the union-find reference before any
//! throughput is reported:
//!   --mix         synthetic workload shape (default uniform)
//!   --queries N   synthetic workload size (default 100000)
//!   --batch B     batch size for the batched pass (default 1024)
//!   --threads T   reader threads (default 1); the query stream is striped
//!                 deterministically per thread, so the reported checksum
//!                 is identical at every thread count
//!   --query-file  answer queries from a file instead of a synthetic mix
//!                 (lines: "connected U V" | "component V" | "size V" |
//!                 "topk K"; '#' comments)
//!   --top K       print the K largest components
//!   --stream N    after the throughput passes, apply N random edge-insertion
//!                 batches through the incremental journal-epoch path,
//!                 validating the published answers against a from-scratch
//!                 union-find oracle after every batch
//!   --stream-batch E  edges per insertion batch (default 64)
//!   --persist PATH    (run) after verification, write the frozen index +
//!                 labeling as a snapshot (atomic rename) — the file a
//!                 serving replica boots from in milliseconds
//!   --from-snapshot PATH  (query) boot the service from a snapshot
//!                 instead of running the pipeline: one bulk read, header +
//!                 checksum validation, index sections reinterpreted in
//!                 place. The graph file becomes optional; give it anyway
//!                 to cross-validate every answer against union-find (and
//!                 it is required for --stream, which needs the edge list)
//!   --fail SITE[:K][:panic]  arm a deterministic failpoint: the Kth
//!                 traversal (default 1st) of the named site errors (or
//!                 panics). Sites: rebuild.pipeline, compact.publish,
//!                 journal.build, persist.pre-tmp, persist.pre-rename,
//!                 persist.pre-dirsync, snapshot.load, net.accept,
//!                 net.read, net.write. Repeatable. Injected faults
//!                 surface as typed errors and a nonzero exit — never as
//!                 corruption
//!   --chaos SEED  (query, with --stream) drive a seeded random failure
//!                 schedule through the streaming phase: one-shot faults
//!                 are armed on the insert/compaction path, rejected
//!                 batches roll back, the oracle check runs every round,
//!                 and the run converges back to healthy (reported in the
//!                 summary and under "chaos" in --json)
//!   --connect ADDR  (query) answer the workload over the wire against a
//!                 running `ampc-cc serve` instead of in process. The
//!                 graph file builds a local union-find oracle; the
//!                 closed-loop harness (--threads connections, --batch
//!                 queries per frame) must reproduce the oracle checksum
//!                 byte-for-byte or the run exits nonzero. Reports wire
//!                 latency (client round-trip) separately from the
//!                 server's service latency (recovered from the metrics
//!                 opcode), plus wire health — under "network" in --json
//!   --shutdown    (query, with --connect) ask the server to exit once
//!                 the workload completes
//!   --listen ADDR (serve) bind address (default 127.0.0.1:0 — an
//!                 ephemeral port, printed to stderr and --port-file)
//!   --workers W   (serve) worker threads answering admitted connections
//!                 (default 4)
//!   --queue D     (serve) admission-queue high-water mark: connections
//!                 past it are shed with a typed Overloaded reply
//!                 (default 64)
//!   --port-file PATH  (serve) write the bound address to PATH once
//!                 listening — the handshake file a harness polls
//! ```
//!
//! Example:
//! ```text
//! cargo run --release --bin ampc-cc -- graph.txt --metrics --trace
//! cargo run --release --bin ampc-cc -- query graph.txt --mix zipf --threads 4
//! ```

use std::fmt::Write as _;
use std::io::Read;
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use adaptive_mpc_connectivity::ampc::rng::{derive_seed, SplitMix64};
use adaptive_mpc_connectivity::ampc::{DhtBackend, RunStats};
use adaptive_mpc_connectivity::cc::pipeline::{Algorithm, Pipeline as _, PipelineSpec};
use adaptive_mpc_connectivity::graph::{
    io as graph_io, metrics, reference_components, Graph, Labeling, VertexId,
};
use adaptive_mpc_connectivity::net;
use adaptive_mpc_connectivity::query::{snapshot, workload, ComponentIndex, Query, QueryEngine};
use adaptive_mpc_connectivity::serve::{
    driver, fault, FaultAction, HealthState, ServeError, ServiceBuilder,
};

struct RunArgs {
    file: String,
    spec: PipelineSpec,
    labels: bool,
    trace: bool,
    metrics: bool,
    json: bool,
    persist: Option<String>,
    fail: Vec<String>,
}

struct QueryArgs {
    run: RunArgs,
    mix: workload::Mix,
    queries: usize,
    batch: usize,
    threads: usize,
    query_file: Option<String>,
    top: usize,
    stream: usize,
    stream_batch: usize,
    from_snapshot: Option<String>,
    chaos: Option<u64>,
    trace_events: Option<usize>,
    connect: Option<String>,
    shutdown: bool,
}

struct ServeArgs {
    run: RunArgs,
    listen: String,
    workers: usize,
    queue: usize,
    port_file: Option<String>,
    from_snapshot: Option<String>,
}

enum Cmd {
    Run(RunArgs),
    Query(QueryArgs),
    Serve(ServeArgs),
}

fn parse_args() -> Result<Cmd, String> {
    let mut run = RunArgs {
        file: String::new(),
        spec: PipelineSpec::default(),
        labels: false,
        trace: false,
        metrics: false,
        json: false,
        persist: None,
        fail: Vec::new(),
    };
    let mut argv = std::env::args().skip(1).peekable();
    let is_query = argv.peek().map(|a| a == "query").unwrap_or(false);
    let is_serve = argv.peek().map(|a| a == "serve").unwrap_or(false);
    if is_query || is_serve {
        argv.next();
    }
    let mut mix = workload::Mix::Uniform;
    let mut queries = 100_000usize;
    let mut batch = 1024usize;
    let mut threads = 1usize;
    let mut query_file: Option<String> = None;
    let mut top = 0usize;
    let mut stream = 0usize;
    let mut stream_batch = 64usize;
    let mut from_snapshot: Option<String> = None;
    let mut chaos: Option<u64> = None;
    let mut trace_events: Option<usize> = None;
    let mut connect: Option<String> = None;
    let mut shutdown = false;
    let mut listen = "127.0.0.1:0".to_string();
    let mut workers = 4usize;
    let mut queue = 64usize;
    let mut port_file: Option<String> = None;

    let mut it = argv;
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--forest" => run.spec.algorithm = Algorithm::Forest,
            "--general" => run.spec.algorithm = Algorithm::General,
            "--auto" => run.spec.algorithm = Algorithm::Auto,
            "--labels" => run.labels = true,
            "--trace" => {
                run.trace = true;
                // Query mode takes an optional integer operand: `--trace N`
                // also dumps the last N structured trace events. A
                // following flag (or nothing) keeps the bare behavior.
                if is_query {
                    if let Some(k) = it.peek().and_then(|next| next.parse::<usize>().ok()) {
                        trace_events = Some(k);
                        it.next();
                    }
                }
            }
            "--metrics" => run.metrics = true,
            "--json" => run.json = true,
            "--k" => run.spec.k = value("--k")?.parse().map_err(|e| format!("bad --k: {e}"))?,
            "--seed" => {
                run.spec.seed = value("--seed")?.parse().map_err(|e| format!("bad --seed: {e}"))?
            }
            "--machines" => {
                run.spec.machines =
                    value("--machines")?.parse().map_err(|e| format!("bad --machines: {e}"))?
            }
            "--backend" => {
                run.spec.backend = DhtBackend::parse(&value("--backend")?)
                    .map_err(|e| format!("--backend: {e}"))?
            }
            "--mix" if is_query => mix = workload::Mix::parse(&value("--mix")?)?,
            "--queries" if is_query => {
                queries = value("--queries")?.parse().map_err(|e| format!("bad --queries: {e}"))?
            }
            "--batch" if is_query => {
                batch = value("--batch")?.parse().map_err(|e| format!("bad --batch: {e}"))?;
                if batch == 0 {
                    return Err("--batch must be positive".into());
                }
            }
            "--threads" if is_query => {
                threads = value("--threads")?.parse().map_err(|e| format!("bad --threads: {e}"))?;
                if threads == 0 {
                    return Err("--threads must be positive".into());
                }
            }
            "--persist" if !is_query => run.persist = Some(value("--persist")?),
            "--fail" => run.fail.push(value("--fail")?),
            "--chaos" if is_query => {
                chaos = Some(value("--chaos")?.parse().map_err(|e| format!("bad --chaos: {e}"))?)
            }
            "--from-snapshot" if is_query || is_serve => {
                from_snapshot = Some(value("--from-snapshot")?)
            }
            "--connect" if is_query => connect = Some(value("--connect")?),
            "--shutdown" if is_query => shutdown = true,
            "--listen" if is_serve => listen = value("--listen")?,
            "--workers" if is_serve => {
                workers = value("--workers")?.parse().map_err(|e| format!("bad --workers: {e}"))?;
                if workers == 0 {
                    return Err("--workers must be positive".into());
                }
            }
            "--queue" if is_serve => {
                queue = value("--queue")?.parse().map_err(|e| format!("bad --queue: {e}"))?;
                if queue == 0 {
                    return Err("--queue must be positive".into());
                }
            }
            "--port-file" if is_serve => port_file = Some(value("--port-file")?),
            "--query-file" if is_query => query_file = Some(value("--query-file")?),
            "--top" if is_query => {
                top = value("--top")?.parse().map_err(|e| format!("bad --top: {e}"))?
            }
            "--stream" if is_query => {
                stream = value("--stream")?.parse().map_err(|e| format!("bad --stream: {e}"))?
            }
            "--stream-batch" if is_query => {
                stream_batch = value("--stream-batch")?
                    .parse()
                    .map_err(|e| format!("bad --stream-batch: {e}"))?;
                if stream_batch == 0 {
                    return Err("--stream-batch must be positive".into());
                }
            }
            "--help" | "-h" => return Err("usage".into()),
            other if run.file.is_empty() => run.file = other.to_string(),
            other => return Err(format!("unexpected argument: {other}")),
        }
    }
    if run.file.is_empty() && from_snapshot.is_none() {
        return Err("missing input file".into());
    }
    if chaos.is_some() && stream == 0 {
        return Err("--chaos needs --stream (it injects faults into the streaming phase)".into());
    }
    if connect.is_some() {
        if stream > 0 || chaos.is_some() || top > 0 {
            return Err("--connect answers over the wire: --stream/--chaos/--top are in-process \
                        modes and cannot be combined with it"
                .into());
        }
        if from_snapshot.is_some() || query_file.is_some() {
            return Err("--connect builds its oracle from the graph file; --from-snapshot and \
                        --query-file cannot be combined with it"
                .into());
        }
        if run.file.is_empty() {
            return Err("--connect needs the graph file (it is the local oracle)".into());
        }
    }
    if shutdown && connect.is_none() {
        return Err("--shutdown needs --connect (it asks the remote server to exit)".into());
    }
    if is_serve {
        Ok(Cmd::Serve(ServeArgs { run, listen, workers, queue, port_file, from_snapshot }))
    } else if is_query {
        Ok(Cmd::Query(QueryArgs {
            run,
            mix,
            queries,
            batch,
            threads,
            query_file,
            top,
            stream,
            stream_batch,
            from_snapshot,
            chaos,
            trace_events,
            connect,
            shutdown,
        }))
    } else {
        Ok(Cmd::Run(run))
    }
}

fn load(file: &str) -> std::io::Result<Graph> {
    if file == "-" {
        let mut buf = Vec::new();
        std::io::stdin().read_to_end(&mut buf)?;
        graph_io::read_edge_list(&buf[..])
    } else {
        graph_io::load(file)
    }
}

fn print_metrics(g: &Graph) {
    let m = metrics::metrics(g);
    eprintln!(
        "metrics: components = {}, largest = {}, isolated = {}, max deg = {}, \
         mean deg = {:.2}, diameter ≥ {}",
        m.components,
        m.largest_component,
        m.isolated,
        m.max_degree,
        m.mean_degree,
        m.diameter_lower_bound
    );
}

/// Announces which concrete pipeline the spec resolved to for `g` — the
/// lines every mode prints before running anything.
fn announce(spec: &PipelineSpec, g: &Graph) -> u8 {
    let resolved = spec.resolve(g);
    eprintln!("dht backend: {}", spec.backend.name());
    eprintln!("algorithm: {}", resolved.describe());
    resolved.algorithm().number()
}

/// Minimal JSON string escape (round names are static literals, but the
/// output must stay well-formed whatever they contain).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a run (labels + RunStats) as one JSON object.
fn run_json(g: &Graph, args: &RunArgs, labeling: &Labeling, stats: &RunStats, alg: u8) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"n\": {},", g.n());
    let _ = writeln!(s, "  \"m\": {},", g.m());
    let _ = writeln!(s, "  \"algorithm\": {alg},");
    let _ = writeln!(s, "  \"backend\": \"{}\",", json_escape(args.spec.backend.name()));
    let _ = writeln!(s, "  \"seed\": {},", args.spec.seed);
    let _ = writeln!(s, "  \"components\": {},", labeling.num_components());
    let _ = writeln!(s, "  \"rounds\": {},", stats.rounds());
    let _ = writeln!(s, "  \"queries\": {},", stats.total_queries());
    let _ = writeln!(s, "  \"peak_space_words\": {},", stats.peak_total_space());
    let _ = writeln!(s, "  \"bytes_shuffled\": {},", stats.total_bytes_shuffled());
    s.push_str("  \"per_round\": [\n");
    let per_round = stats.per_round();
    for (i, r) in per_round.iter().enumerate() {
        let _ = write!(
            s,
            "    {{ \"index\": {}, \"name\": \"{}\", \"reads\": {}, \"read_words\": {}, \
             \"writes\": {}, \"write_words\": {}, \"snapshot_words\": {}, \
             \"total_space_words\": {}, \"bytes_shuffled\": {} }}",
            r.index,
            json_escape(&r.name),
            r.reads,
            r.read_words,
            r.writes,
            r.write_words,
            r.snapshot_words,
            r.total_space_words,
            r.bytes_shuffled
        );
        s.push_str(if i + 1 < per_round.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str(&metrics_json_object());
    s.push_str("  \"labels\": [");
    for (v, l) in labeling.canonical().iter().enumerate() {
        if v > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{l}");
    }
    s.push_str("]\n}\n");
    s
}

/// Renders the process-wide metrics registry as one `"metrics": {…},`
/// JSON member (trailing comma included) for splicing into either
/// subcommand's `--json` object. Every catalog entry appears, zero or
/// not, so the schema is stable across runs.
fn metrics_json_object() -> String {
    use ampc_obs::{counter, gauge, hist, summary, CounterId, GaugeId, HistId};
    let mut s = String::new();
    s.push_str("  \"metrics\": {\n    \"counters\": { ");
    for (i, id) in CounterId::ALL.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "\"{}\": {}", id.name(), counter(*id).get());
    }
    s.push_str(" },\n    \"gauges\": { ");
    for (i, id) in GaugeId::ALL.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "\"{}\": {}", id.name(), gauge(*id).get());
    }
    s.push_str(" },\n    \"histograms\": {\n");
    for (i, id) in HistId::ALL.iter().enumerate() {
        let snap = hist(*id).snapshot();
        let _ = write!(s, "      \"{}\": {{ ", id.name());
        for (j, (k, v)) in summary(&snap).iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{k}\": {v}");
        }
        s.push_str(" }");
        s.push_str(if i + 1 < HistId::ALL.len() { ",\n" } else { "\n" });
    }
    s.push_str("    }\n  },\n");
    s
}

/// Dumps the last `n` events from the process trace ring to stderr,
/// oldest first — the `--trace N` flight-recorder view.
fn dump_trace(n: usize) {
    let events = ampc_obs::trace_last(n);
    eprintln!("trace: last {} of {} events recorded", events.len(), ampc_obs::trace_recorded());
    for e in &events {
        eprintln!(
            "  seq={:<6} t={:>12} ns  {:<20} a={} b={}",
            e.seq,
            e.at_ns,
            e.kind.name(),
            e.a,
            e.b
        );
    }
}

/// Arms every `--fail SITE[:K][:panic]` spec before any work runs. The
/// failpoints are compiled in always, so arming is just a registry write;
/// an unknown site name lists the valid ones.
fn arm_failpoints(specs: &[String]) -> Result<(), String> {
    for spec in specs {
        let site = fault::arm_spec(spec).map_err(|e| format!("--fail {spec}: {e}"))?;
        eprintln!("failpoint armed: {}", site.name());
    }
    Ok(())
}

fn cmd_run(args: RunArgs) -> Result<(), String> {
    arm_failpoints(&args.fail)?;
    let g = load(&args.file).map_err(|e| format!("error reading {}: {e}", args.file))?;
    eprintln!("loaded: n = {}, m = {}", g.n(), g.m());

    if args.metrics {
        print_metrics(&g);
    }

    let alg = announce(&args.spec, &g);
    let run = args.spec.run(&g).map_err(|e| e.to_string())?;

    // Safety net for a user-facing tool: verify before reporting.
    if !run.labeling.same_partition(&reference_components(&g)) {
        return Err("internal error: labeling failed verification".into());
    }

    eprintln!(
        "components = {} | AMPC rounds = {} | queries = {} | peak space = {} words | \
         shuffle = {} bytes",
        run.labeling.num_components(),
        run.stats.rounds(),
        run.stats.total_queries(),
        run.stats.peak_total_space(),
        run.stats.total_bytes_shuffled()
    );
    if args.trace {
        eprintln!("\n{}", run.stats.round_table());
    }
    if let Some(path) = &args.persist {
        let t0 = Instant::now();
        let index = ComponentIndex::build(&run.labeling);
        let index_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let bytes = snapshot::persist(
            Path::new(path),
            &index,
            &run.labeling,
            g.n() as u64,
            g.m() as u64,
            alg,
        )
        .map_err(|e| format!("persist to {path} failed: {e}"))?;
        eprintln!(
            "persisted: {bytes} bytes to {path} | index build {index_ms:.2} ms | \
             write {:.2} ms",
            t1.elapsed().as_secs_f64() * 1e3
        );
    }
    if args.metrics && !args.json {
        eprintln!("\nprocess metrics:\n{}", ampc_obs::render_table());
    }
    if args.json {
        print!("{}", run_json(&g, &args, &run.labeling, &run.stats, alg));
    } else if args.labels {
        print_labels(&run.labeling);
    }
    Ok(())
}

/// Prints canonical "vertex component" lines to stdout (the `--labels`
/// output of both subcommands).
fn print_labels(labeling: &Labeling) {
    let canonical = labeling.canonical();
    let mut out = String::with_capacity(canonical.len() * 8);
    for (v, l) in canonical.iter().enumerate() {
        let _ = writeln!(out, "{v} {l}");
    }
    print!("{out}");
}

/// Builds the service (pipeline run or snapshot boot) and serves it over
/// TCP until a client's Shutdown frame or a signal kills the process.
fn cmd_serve(args: ServeArgs) -> Result<(), String> {
    arm_failpoints(&args.run.fail)?;
    let service = match &args.from_snapshot {
        Some(path) => ServiceBuilder::from_snapshot(path)
            .map_err(|e| format!("snapshot boot from {path} failed: {e}"))?,
        None => {
            let g = load(&args.run.file)
                .map_err(|e| format!("error reading {}: {e}", args.run.file))?;
            eprintln!("loaded: n = {}, m = {}", g.n(), g.m());
            announce(&args.run.spec, &g);
            ServiceBuilder::new(g)
                .spec(args.run.spec.clone())
                .build()
                .map_err(|e| format!("service build failed: {e}"))?
        }
    };
    let snap = service.snapshot();
    eprintln!(
        "serving: {} components over {} vertices | epoch {}",
        snap.num_components(),
        snap.index().num_vertices(),
        snap.epoch()
    );
    let listener = std::net::TcpListener::bind(&args.listen)
        .map_err(|e| format!("bind {} failed: {e}", args.listen))?;
    let config = net::ServerConfig {
        workers: args.workers,
        queue_depth: args.queue,
        max_payload: net::protocol::DEFAULT_MAX_PAYLOAD,
    };
    let mut handle =
        net::serve(service, listener, config).map_err(|e| format!("server start failed: {e}"))?;
    let addr = handle.local_addr();
    eprintln!("listening on {addr} ({} workers, queue depth {})", args.workers, args.queue);
    if let Some(path) = &args.port_file {
        // The handshake file a harness polls: written only once the
        // listener is live, so its existence means "connectable".
        std::fs::write(path, format!("{addr}\n"))
            .map_err(|e| format!("writing --port-file {path} failed: {e}"))?;
    }
    handle.wait();
    let served = handle.connections_served();
    let lat = handle.service_latency();
    eprintln!(
        "server stopped: {served} connections served | service latency p50 = {} ns, \
         p99 = {} ns ({} queries)",
        lat.quantile(0.5),
        lat.quantile(0.99),
        lat.count
    );
    Ok(())
}

/// The `query --connect` mode: replay the workload over the wire against
/// a running server and hold its answers to the local oracle's checksum.
fn cmd_query_connect(args: &QueryArgs, addr_spec: &str) -> Result<(), String> {
    use std::net::ToSocketAddrs;
    let addr = addr_spec
        .to_socket_addrs()
        .map_err(|e| format!("bad --connect address {addr_spec}: {e}"))?
        .next()
        .ok_or_else(|| format!("--connect address {addr_spec} resolved to nothing"))?;

    // The local oracle: same graph file, same reference union-find, same
    // seeded workload generation as the in-process path — identical index
    // ⇒ identical workload ⇒ the wire checksum must match exactly.
    let g = load(&args.run.file).map_err(|e| format!("error reading {}: {e}", args.run.file))?;
    eprintln!("loaded: n = {}, m = {}", g.n(), g.m());
    if args.run.metrics {
        print_metrics(&g);
    }
    let (n, m) = (g.n(), g.m());
    let oracle = ComponentIndex::build(&reference_components(&g));
    let queries = workload::generate(&oracle, args.mix, args.queries, args.run.spec.seed);
    let engine = QueryEngine::new(&oracle);
    let expected: u64 = queries.iter().fold(0u64, |acc, &q| acc.wrapping_add(engine.answer(q)));
    eprintln!(
        "workload: {} ({} queries, batch = {}, connections = {}) → {addr}",
        args.mix.name(),
        queries.len(),
        args.batch,
        args.threads
    );

    let report = net::run_harness(
        addr,
        &queries,
        net::HarnessConfig { connections: args.threads, batch: args.batch, retries: 0 },
    )
    .map_err(|e| format!("network harness failed: {e}"))?;
    let checksum_ok = report.checksum == expected;
    if !checksum_ok {
        return Err(format!(
            "wire checksum {} diverged from the oracle's {expected}: the server answered wrong",
            report.checksum
        ));
    }
    eprintln!(
        "network: {:.0} q/s over {} connections | checksum {} matches the oracle",
        report.qps, args.threads, report.checksum
    );
    eprintln!(
        "wire latency: p50 = {} ns | p99 = {} ns | p999 = {} ns | max = {} ns \
         ({} round-trips)",
        report.wire.quantile(0.5),
        report.wire.quantile(0.99),
        report.wire.quantile(0.999),
        report.wire.max,
        report.wire.count
    );

    // One control connection fetches health and the metrics exposition;
    // the server-side service histogram is recovered from the Prometheus
    // text, so wire and service latency are reported side by side with no
    // side channel.
    let mut conn = net::Connection::connect(addr)
        .map_err(|e| format!("control connection to {addr} failed: {e}"))?;
    let health = conn.health().map_err(|e| format!("health opcode failed: {e}"))?;
    let metrics_text = conn.metrics().map_err(|e| format!("metrics opcode failed: {e}"))?;
    let service_lat = net::prom_histogram_quantiles(&metrics_text, "net_request_service_ns");
    match &service_lat {
        Some((count, qs)) => eprintln!(
            "service latency (server-side): p50 = {} ns | p99 = {} ns | p999 = {} ns \
             ({count} queries)",
            qs[0].1, qs[1].1, qs[2].1
        ),
        None => eprintln!("service latency: not yet present in the server's exposition"),
    }
    eprintln!(
        "server health: {} | epoch {} | {} components",
        health.state_name(),
        health.epoch,
        health.components
    );
    if args.shutdown {
        conn.shutdown_server().map_err(|e| format!("shutdown request failed: {e}"))?;
        eprintln!("server acknowledged shutdown");
    }

    if args.run.json {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"n\": {n},");
        let _ = writeln!(s, "  \"m\": {m},");
        let _ = writeln!(s, "  \"connect\": \"{}\",", json_escape(addr_spec));
        s.push_str("  \"network\": {\n");
        let _ = writeln!(s, "    \"workload\": \"{}\",", json_escape(args.mix.name()));
        let _ = writeln!(s, "    \"queries\": {},", queries.len());
        let _ = writeln!(s, "    \"batch\": {},", args.batch);
        let _ = writeln!(s, "    \"connections\": {},", args.threads);
        let _ = writeln!(s, "    \"queries_per_sec\": {:.0},", report.qps);
        let _ = writeln!(s, "    \"checksum\": {},", report.checksum);
        let _ = writeln!(s, "    \"checksum_matches_oracle\": {checksum_ok},");
        let _ = writeln!(s, "    \"retries\": {},", report.retries_used);
        let _ = writeln!(
            s,
            "    \"wire\": {{ \"round_trips\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \
             \"p999_ns\": {}, \"max_ns\": {}, \"mean_ns\": {:.1} }},",
            report.wire.count,
            report.wire.quantile(0.5),
            report.wire.quantile(0.99),
            report.wire.quantile(0.999),
            report.wire.max,
            report.wire.mean()
        );
        match &service_lat {
            Some((count, qs)) => {
                let _ = writeln!(
                    s,
                    "    \"service\": {{ \"queries\": {count}, \"p50_ns\": {}, \
                     \"p99_ns\": {}, \"p999_ns\": {} }},",
                    qs[0].1, qs[1].1, qs[2].1
                );
            }
            None => {
                let _ = writeln!(s, "    \"service\": null,");
            }
        }
        let _ = writeln!(
            s,
            "    \"health\": {{ \"state\": \"{}\", \"consecutive_failures\": {}, \
             \"total_incidents\": {}, \"epoch\": {}, \"components\": {} }}",
            health.state_name(),
            health.consecutive_failures,
            health.total_incidents,
            health.epoch,
            health.components
        );
        s.push_str("  },\n");
        s.push_str(&metrics_json_object());
        let _ = writeln!(s, "  \"shutdown_sent\": {}", args.shutdown);
        s.push_str("}\n");
        print!("{s}");
    }
    Ok(())
}

fn cmd_query(args: QueryArgs) -> Result<(), String> {
    arm_failpoints(&args.run.fail)?;
    if let Some(addr) = args.connect.clone() {
        return cmd_query_connect(&args, &addr);
    }
    let has_file = !args.run.file.is_empty();
    if args.stream > 0 && !has_file {
        return Err("--stream needs the graph file (a snapshot carries no edge list)".into());
    }
    let mut loaded: Option<Graph> = if has_file {
        let g =
            load(&args.run.file).map_err(|e| format!("error reading {}: {e}", args.run.file))?;
        eprintln!("loaded: n = {}, m = {}", g.n(), g.m());
        if args.run.metrics {
            print_metrics(&g);
        }
        Some(g)
    } else {
        None
    };

    // The union-find truth is computed up front so the graph can be moved
    // into the service (no second copy of a large input). The streaming
    // phase re-derives merged graphs, so it keeps the edge list around.
    let truth: Option<Labeling> = loaded.as_ref().map(reference_components);
    let base_edges: Vec<(VertexId, VertexId)> = match (&loaded, args.stream > 0) {
        (Some(g), true) => g.edges().collect(),
        _ => Vec::new(),
    };
    if args.from_snapshot.is_none() {
        if let Some(g) = &loaded {
            announce(&args.run.spec, g);
        }
    }

    // Live build: the service owns the run→validate→index→serve lifecycle —
    // it executes the spec, refuses a labeling that fails validation
    // against the graph, and publishes the frozen index as epoch 0.
    // Snapshot boot: one bulk read + validation, epoch 0 reinterpreted in
    // place over the snapshot buffer, no pipeline run at all.
    let t0 = Instant::now();
    let service = match &args.from_snapshot {
        Some(path) => ServiceBuilder::from_snapshot(path)
            .map_err(|e| format!("snapshot boot from {path} failed: {e}"))?,
        None => {
            let g = loaded.take().expect("file is required when not booting from a snapshot");
            ServiceBuilder::new(g)
                .spec(args.run.spec.clone())
                .build()
                .map_err(|e| format!("service build failed: {e}"))?
        }
    };
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let snap = service.snapshot();
    let alg = snap.algorithm().number();
    let (n, m) = snap.graph_size();
    if let (Some(_), Some(g)) = (&args.from_snapshot, &loaded) {
        if g.n() != n {
            return Err(format!(
                "snapshot covers {n} vertices but {} has {}",
                args.run.file,
                g.n()
            ));
        }
    }
    match &args.from_snapshot {
        Some(path) => eprintln!("booted from snapshot {path} in {build_ms:.2} ms"),
        None => {
            eprintln!(
                "pipeline: components = {} | AMPC rounds = {} | queries = {}",
                snap.labeling().num_components(),
                snap.stats().rounds(),
                snap.stats().total_queries()
            );
            if args.run.trace {
                eprintln!("\n{}", snap.stats().round_table());
            }
        }
    }
    eprintln!(
        "index: {} components over {} vertices, {} bytes | epoch {} published in {build_ms:.2} ms",
        snap.index().num_components(),
        snap.index().num_vertices(),
        snap.index().heap_bytes(),
        snap.epoch()
    );

    // One union-find pass serves both checks: the service's index must be
    // byte-identical to one built from the reference labels (dense ids are
    // a pure function of the partition), and every answer must match the
    // reference engine's. Without a graph file there is no truth to check
    // against — the snapshot's checksums stand in for it.
    let reference: Option<ComponentIndex> = truth.as_ref().map(ComponentIndex::build);
    if let Some(reference) = &reference {
        if snap.index() != reference {
            return Err("internal error: index diverges from the union-find reference".into());
        }
    }

    let queries = match &args.query_file {
        Some(path) => {
            let file = std::fs::File::open(path)
                .map_err(|e| format!("error opening query file {path}: {e}"))?;
            workload::parse_query_file(file, n)
                .map_err(|e| format!("error parsing query file {path}: {e}"))?
        }
        None => workload::generate(snap.index(), args.mix, args.queries, args.run.spec.seed),
    };
    let source = match &args.query_file {
        Some(path) => format!("file:{path}"),
        None => args.mix.name().to_string(),
    };
    eprintln!(
        "workload: {} ({} queries, batch = {}, threads = {})",
        source,
        queries.len(),
        args.batch,
        args.threads
    );

    // Per-query validation against the reference engine, answer by answer
    // (the index equality above already implies this; this loop pins it
    // observably and yields the expected checksum the driver must hit).
    // Without a reference the single pass still fixes the checksum every
    // timed pass must reproduce.
    let engine = snap.engine();
    let mut expected_checksum = 0u64;
    if let Some(reference) = &reference {
        let ref_engine = QueryEngine::new(reference);
        for &q in &queries {
            let (got, want) = (engine.answer(q), ref_engine.answer(q));
            if got != want {
                return Err(format!("query {q:?}: index answered {got}, reference {want}"));
            }
            expected_checksum = expected_checksum.wrapping_add(got);
        }
        eprintln!(
            "validated: {}/{} answers match the union-find reference",
            queries.len(),
            queries.len()
        );
    } else {
        for &q in &queries {
            expected_checksum = expected_checksum.wrapping_add(engine.answer(q));
        }
        eprintln!("validation: skipped (no graph file; snapshot checksums verified at load)");
    }

    // Warm pass, then two timed passes folded with per-path maxima (each
    // path's best pass, independently — the bench reports the same way);
    // every pass must reproduce the validated checksum (the stream
    // striping is deterministic, so the total is thread-count-invariant).
    let mut report = driver::run(&service, &queries, args.threads, args.batch);
    for _ in 0..2 {
        let timed = driver::run(&service, &queries, args.threads, args.batch);
        if timed.checksum != report.checksum {
            return Err("internal error: driver checksum drifted between passes".into());
        }
        report.aggregate_single_qps = report.aggregate_single_qps.max(timed.aggregate_single_qps);
        report.aggregate_batch_qps = report.aggregate_batch_qps.max(timed.aggregate_batch_qps);
        for (best, t) in report.per_thread.iter_mut().zip(&timed.per_thread) {
            best.single_qps = best.single_qps.max(t.single_qps);
            best.batch_qps = best.batch_qps.max(t.batch_qps);
        }
    }
    if report.checksum != expected_checksum {
        return Err("internal error: driver checksum diverged from the validated answers".into());
    }

    if args.threads > 1 {
        for t in &report.per_thread {
            eprintln!(
                "  thread {:<3} {} queries | single {:>12.0} q/s | batch {:>12.0} q/s | epoch {}",
                t.thread, t.queries, t.single_qps, t.batch_qps, t.epoch
            );
        }
    }
    eprintln!(
        "throughput: single = {:.0} q/s | batch = {:.0} q/s | checksum = {} | threads = {}",
        report.aggregate_single_qps, report.aggregate_batch_qps, report.checksum, report.threads
    );

    // Per-query latency distribution, measured by a separate instrumented
    // pass so the clock reads never depress the throughput numbers above.
    let latency = driver::run_latency(&service, &queries, args.threads);
    if latency.checksum != expected_checksum {
        return Err(
            "internal error: latency pass checksum diverged from the validated answers".into()
        );
    }
    eprintln!(
        "latency: p50 = {} ns | p90 = {} ns | p99 = {} ns | p999 = {} ns | max = {} ns | \
         mean = {:.0} ns ({} timed)",
        latency.p50_ns,
        latency.p90_ns,
        latency.p99_ns,
        latency.p999_ns,
        latency.max_ns,
        latency.mean_ns,
        latency.queries
    );

    if args.top > 0 {
        eprintln!("top {} components by size:", args.top);
        for (rank, &c) in snap.index().top_k(args.top).iter().enumerate() {
            eprintln!("  #{:<3} component {:<10} size {}", rank + 1, c, snap.index().size_of(c));
        }
    }

    // Streaming phase: apply deterministic random edge batches through the
    // incremental journal-epoch path, validating each published epoch
    // against a from-scratch union-find oracle before timing counts.
    struct ChaosSummary {
        seed: u64,
        injected: u64,
        rejected: usize,
        recoveries: usize,
        total_incidents: u64,
    }
    struct StreamSummary {
        batches: usize,
        edges_per_batch: usize,
        avg_publish_ms: f64,
        max_publish_ms: f64,
        final_epoch: u64,
        final_components: usize,
        journal_merges: usize,
        chaos: Option<ChaosSummary>,
    }
    let streaming: Option<StreamSummary> = if args.stream > 0 {
        let mut all_edges = base_edges;
        let mut rng = SplitMix64::new(derive_seed(&[0x57_AE, args.run.spec.seed]));
        let mut publish_ms: Vec<f64> = Vec::with_capacity(args.stream);
        let mut last_merges = 0usize;
        // Chaos mode: a seeded schedule arms one-shot faults on the
        // insert/compaction path while the stream runs. Injected failures
        // must surface as typed, rolled-back errors, never as corruption —
        // the oracle check below holds whether or not a batch landed.
        const CHAOS_SITES: [fault::Site; 3] =
            [fault::Site::JournalBuild, fault::Site::CompactPublish, fault::Site::RebuildPipeline];
        let mut chaos_rng = args.chaos.map(|seed| SplitMix64::new(derive_seed(&[0xC4A05, seed])));
        if chaos_rng.is_some() {
            fault::reset_counters();
        }
        let mut rejected = 0usize;
        let mut recoveries = 0usize;
        for b in 0..args.stream {
            if let Some(crng) = &mut chaos_rng {
                if crng.next_below(2) == 0 {
                    let site = CHAOS_SITES[crng.next_below(CHAOS_SITES.len() as u64) as usize];
                    fault::arm(site, FaultAction::Error, 0, 1);
                }
            }
            let batch: Vec<(VertexId, VertexId)> = (0..args.stream_batch)
                .map(|_| {
                    (rng.next_below(n as u64) as VertexId, rng.next_below(n as u64) as VertexId)
                })
                .collect();
            let t0 = Instant::now();
            match service.insert_edges(&batch) {
                Ok(report) => {
                    publish_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                    last_merges = report.journal_merges;
                    all_edges.extend_from_slice(&batch);
                }
                Err(ServeError::ReadOnly) if args.chaos.is_some() => {
                    // Too many consecutive failures: writes are refused
                    // until an explicit rebuild succeeds. Play the operator.
                    fault::disarm_all();
                    service
                        .rebuild_blocking(Graph::from_edges(n, &all_edges))
                        .map_err(|e| format!("chaos: recovery rebuild failed: {e}"))?;
                    recoveries += 1;
                    rejected += 1;
                    eprintln!("chaos: batch {b} refused (read-only); rebuilt to healthy");
                }
                Err(e) if args.chaos.is_some() => {
                    rejected += 1;
                    eprintln!(
                        "chaos: batch {b} rejected ({e}); service {}",
                        service.health().state.name()
                    );
                }
                Err(e) => return Err(format!("insert batch {b} failed: {e}")),
            }
            // Oracle check: the journal-epoch must answer exactly like a
            // fresh build over every edge accepted so far.
            let oracle =
                ComponentIndex::build(&reference_components(&Graph::from_edges(n, &all_edges)));
            let live = service.snapshot();
            let engine = live.engine();
            if live.num_components() != oracle.num_components() {
                return Err(format!(
                    "stream batch {b}: {} components served, oracle has {}",
                    live.num_components(),
                    oracle.num_components()
                ));
            }
            let mut probe = SplitMix64::new(derive_seed(&[0x0_5AC1E, b as u64]));
            for _ in 0..2048.min(n) {
                let v = probe.next_below(n as u64) as VertexId;
                let want = oracle.component_of(v) as u64;
                let got = engine.answer(Query::ComponentOf(v));
                if got != want {
                    return Err(format!(
                        "stream batch {b}: ComponentOf({v}) answered {got}, oracle {want}"
                    ));
                }
            }
        }
        let chaos_summary = if let Some(seed) = args.chaos {
            // Converge back to Healthy: an explicit successful rebuild is
            // the operator's recovery lever from any degraded state. A
            // background compaction may still be racing its own injected
            // failure past the first rebuild, so retry a bounded number of
            // times with the faults disarmed.
            fault::disarm_all();
            let mut tries = 0;
            while service.health().state != HealthState::Healthy {
                if tries >= 5 {
                    return Err(format!(
                        "chaos: service stuck {} after {tries} recovery rebuilds",
                        service.health().state.name()
                    ));
                }
                service
                    .rebuild_blocking(Graph::from_edges(n, &all_edges))
                    .map_err(|e| format!("chaos: final recovery rebuild failed: {e}"))?;
                recoveries += 1;
                tries += 1;
            }
            let h = service.health();
            let injected: u64 = CHAOS_SITES.iter().map(|&s| fault::fired(s)).sum();
            eprintln!(
                "chaos: seed {seed} | {injected} faults injected | {rejected} batches \
                 rejected | {recoveries} rebuild recoveries | {} incidents | final health {}",
                h.total_incidents,
                h.state.name()
            );
            Some(ChaosSummary {
                seed,
                injected,
                rejected,
                recoveries,
                total_incidents: h.total_incidents,
            })
        } else {
            None
        };
        let avg = if publish_ms.is_empty() {
            0.0
        } else {
            publish_ms.iter().sum::<f64>() / publish_ms.len() as f64
        };
        let max = publish_ms.iter().fold(0.0f64, |a, &b| a.max(b));
        let live = service.snapshot();
        let summary = StreamSummary {
            batches: args.stream,
            edges_per_batch: args.stream_batch,
            avg_publish_ms: avg,
            max_publish_ms: max,
            final_epoch: live.epoch(),
            final_components: live.num_components(),
            journal_merges: last_merges,
            chaos: chaos_summary,
        };
        eprintln!(
            "streaming: {} batches × {} edges | journal publish avg {:.3} ms (max {:.3}) | \
             epoch {} | {} components | {} journal merges | all answers match the oracle",
            summary.batches,
            summary.edges_per_batch,
            summary.avg_publish_ms,
            summary.max_publish_ms,
            summary.final_epoch,
            summary.final_components,
            summary.journal_merges
        );
        Some(summary)
    } else {
        None
    };

    if args.run.json {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"n\": {n},");
        let _ = writeln!(s, "  \"m\": {m},");
        let _ = writeln!(s, "  \"algorithm\": {alg},");
        let _ = writeln!(s, "  \"backend\": \"{}\",", json_escape(args.run.spec.backend.name()));
        let _ = writeln!(s, "  \"components\": {},", snap.index().num_components());
        let _ = writeln!(s, "  \"index_bytes\": {},", snap.index().heap_bytes());
        let _ = writeln!(s, "  \"epoch\": {},", snap.epoch());
        let _ = writeln!(s, "  \"service_build_ms\": {build_ms:.3},");
        let _ = writeln!(s, "  \"pipeline_ms\": {:.3},", snap.pipeline_ms());
        let _ = writeln!(s, "  \"index_build_ms\": {:.3},", snap.index_build_ms());
        let _ = writeln!(s, "  \"from_snapshot\": {},", args.from_snapshot.is_some());
        let health = service.health();
        s.push_str("  \"health\": {\n");
        let _ = writeln!(s, "    \"state\": \"{}\",", health.state.name());
        let _ = writeln!(s, "    \"consecutive_failures\": {},", health.consecutive_failures);
        let _ = writeln!(s, "    \"total_incidents\": {},", health.total_incidents);
        s.push_str("    \"incidents\": [");
        for (i, inc) in health.incidents.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(
                s,
                "{{ \"seq\": {}, \"at_ms\": {}, \"op\": \"{}\", \"error\": \"{}\" }}",
                inc.seq,
                inc.at_ms,
                inc.op.name(),
                json_escape(&inc.error.to_string())
            );
        }
        s.push_str("]\n  },\n");
        let _ = writeln!(s, "  \"workload\": \"{}\",", json_escape(&source));
        let _ = writeln!(s, "  \"queries\": {},", queries.len());
        let _ = writeln!(s, "  \"batch\": {},", args.batch);
        let _ = writeln!(s, "  \"threads\": {},", report.threads);
        s.push_str("  \"per_thread\": [\n");
        for (i, t) in report.per_thread.iter().enumerate() {
            let _ = write!(
                s,
                "    {{ \"thread\": {}, \"queries\": {}, \"epoch\": {}, \
                 \"single_queries_per_sec\": {:.0}, \"batch_queries_per_sec\": {:.0} }}",
                t.thread, t.queries, t.epoch, t.single_qps, t.batch_qps
            );
            s.push_str(if i + 1 < report.per_thread.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ],\n");
        let _ = writeln!(s, "  \"single_queries_per_sec\": {:.0},", report.aggregate_single_qps);
        let _ = writeln!(s, "  \"batch_queries_per_sec\": {:.0},", report.aggregate_batch_qps);
        let _ = writeln!(s, "  \"checksum\": {},", report.checksum);
        let _ = writeln!(
            s,
            "  \"latency\": {{ \"queries\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \
             \"p99_ns\": {}, \"p999_ns\": {}, \"max_ns\": {}, \"mean_ns\": {:.1} }},",
            latency.queries,
            latency.p50_ns,
            latency.p90_ns,
            latency.p99_ns,
            latency.p999_ns,
            latency.max_ns,
            latency.mean_ns
        );
        s.push_str(&metrics_json_object());
        if let Some(k) = args.trace_events {
            s.push_str("  \"trace\": [\n");
            let events = ampc_obs::trace_last(k);
            for (i, e) in events.iter().enumerate() {
                let _ = write!(
                    s,
                    "    {{ \"seq\": {}, \"at_ns\": {}, \"kind\": \"{}\", \"a\": {}, \"b\": {} }}",
                    e.seq,
                    e.at_ns,
                    e.kind.name(),
                    e.a,
                    e.b
                );
                s.push_str(if i + 1 < events.len() { ",\n" } else { "\n" });
            }
            s.push_str("  ],\n");
        }
        let validated = if reference.is_some() { queries.len() } else { 0 };
        if let Some(st) = &streaming {
            let _ = writeln!(s, "  \"validated\": {validated},");
            let _ = write!(
                s,
                "  \"streaming\": {{ \"batches\": {}, \"edges_per_batch\": {}, \
                 \"avg_journal_publish_ms\": {:.3}, \"max_journal_publish_ms\": {:.3}, \
                 \"final_epoch\": {}, \"final_components\": {}, \"journal_merges\": {}",
                st.batches,
                st.edges_per_batch,
                st.avg_publish_ms,
                st.max_publish_ms,
                st.final_epoch,
                st.final_components,
                st.journal_merges
            );
            if let Some(c) = &st.chaos {
                let _ = write!(
                    s,
                    ", \"chaos\": {{ \"seed\": {}, \"injected_faults\": {}, \
                     \"rejected_batches\": {}, \"recovery_rebuilds\": {}, \
                     \"total_incidents\": {} }}",
                    c.seed, c.injected, c.rejected, c.recoveries, c.total_incidents
                );
            }
            s.push_str(" }\n");
        } else {
            let _ = writeln!(s, "  \"validated\": {validated}");
        }
        s.push_str("}\n");
        print!("{s}");
    } else {
        if let Some(k) = args.trace_events {
            dump_trace(k);
        }
        if args.run.metrics {
            eprintln!("\nprocess metrics:\n{}", ampc_obs::render_table());
        }
        if args.run.labels {
            print_labels(snap.labeling());
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let cmd = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            if e != "usage" {
                eprintln!("error: {e}\n");
            }
            eprintln!(
                "usage: ampc-cc <file> [--forest|--general|--auto] [--k K] [--seed S]\n\
                 \x20                 [--machines M] [--backend flat|sharded[:N]|dense[:CAP]]\n\
                 \x20                 [--labels] [--trace] [--metrics] [--json] [--persist PATH]\n\
                 \x20                 [--fail SITE[:K][:panic]]\n\
                 \x20      ampc-cc query [<file>] [pipeline options]\n\
                 \x20                 [--mix uniform|zipf[:EXP]|cross] [--queries N]\n\
                 \x20                 [--batch B] [--threads T] [--query-file F] [--top K]\n\
                 \x20                 [--stream N] [--stream-batch E] [--json]\n\
                 \x20                 [--from-snapshot PATH] [--fail SITE[:K][:panic]]\n\
                 \x20                 [--chaos SEED] [--trace [N]]\n\
                 \x20                 [--connect ADDR [--shutdown]]\n\
                 \x20      ampc-cc serve <file> [pipeline options] [--listen ADDR]\n\
                 \x20                 [--workers W] [--queue D] [--port-file PATH]\n\
                 \x20                 [--from-snapshot PATH] [--fail SITE[:K][:panic]]"
            );
            return ExitCode::from(2);
        }
    };
    let result = match cmd {
        Cmd::Run(args) => cmd_run(args),
        Cmd::Query(args) => cmd_query(args),
        Cmd::Serve(args) => cmd_serve(args),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
