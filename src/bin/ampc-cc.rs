//! `ampc-cc` — command-line connected components over edge-list files.
//!
//! ```text
//! ampc-cc <file> [--forest|--general|--auto] [--k K] [--seed S]
//!                [--machines M] [--backend B] [--labels] [--trace] [--metrics]
//!
//!   <file>       edge list ("u v" per line, optional "# nodes: N" header);
//!                use "-" for stdin
//!   --auto       pick Algorithm 1 for forests, Algorithm 2 otherwise (default)
//!   --k K        space parameter (Theorems 1.1/1.2), default 2
//!   --backend B  DHT storage backend: "flat" (default), "sharded" or
//!                "sharded:N" for N hash shards, "dense" or "dense:CAP" for
//!                direct-indexed slabs of CAP ids per keyspace (unhinted
//!                "dense" sizes slabs from the input). Results are identical
//!                across backends; sharded/dense merge round output in
//!                parallel and dense reads skip hashing entirely
//!   --labels     print "vertex component" lines to stdout
//!   --trace      print the per-round cost ledger
//!   --metrics    print structural metrics of the input first
//! ```
//!
//! Example:
//! ```text
//! cargo run --release --bin ampc-cc -- graph.txt --metrics --trace
//! ```

use std::io::Read;
use std::process::ExitCode;

use adaptive_mpc_connectivity::ampc::DhtBackend;
use adaptive_mpc_connectivity::cc::forest::pipeline::{
    connected_components_forest, ForestCcConfig,
};
use adaptive_mpc_connectivity::cc::general::algorithm2::{
    connected_components_general, GeneralCcConfig,
};
use adaptive_mpc_connectivity::graph::{io as graph_io, metrics, reference_components, Graph};

struct Args {
    file: String,
    mode: Mode,
    k: u32,
    seed: u64,
    machines: usize,
    backend: DhtBackend,
    labels: bool,
    trace: bool,
    metrics: bool,
}

fn parse_backend(s: &str) -> Result<DhtBackend, String> {
    match s {
        "flat" => Ok(DhtBackend::Flat),
        "sharded" => Ok(DhtBackend::sharded()),
        "dense" => Ok(DhtBackend::dense()),
        other => {
            if let Some(n) = other.strip_prefix("sharded:") {
                let shards: usize =
                    n.parse().map_err(|e| format!("bad shard count in --backend: {e}"))?;
                Ok(DhtBackend::Sharded { shards })
            } else if let Some(n) = other.strip_prefix("dense:") {
                let cap: usize =
                    n.parse().map_err(|e| format!("bad slab capacity in --backend: {e}"))?;
                if cap == 0 {
                    return Err("dense slab capacity must be positive (omit :CAP to let the \
                                pipeline size the slab from its input)"
                        .into());
                }
                Ok(DhtBackend::Dense { cap })
            } else {
                Err(format!("unknown backend {other:?} (expected flat|sharded[:N]|dense[:CAP])"))
            }
        }
    }
}

#[derive(PartialEq)]
enum Mode {
    Auto,
    Forest,
    General,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        file: String::new(),
        mode: Mode::Auto,
        k: 2,
        seed: 0xCC,
        machines: 8,
        backend: DhtBackend::Flat,
        labels: false,
        trace: false,
        metrics: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--forest" => args.mode = Mode::Forest,
            "--general" => args.mode = Mode::General,
            "--auto" => args.mode = Mode::Auto,
            "--labels" => args.labels = true,
            "--trace" => args.trace = true,
            "--metrics" => args.metrics = true,
            "--k" => {
                args.k = it
                    .next()
                    .ok_or("--k needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --k: {e}"))?;
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--machines" => {
                args.machines = it
                    .next()
                    .ok_or("--machines needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --machines: {e}"))?;
            }
            "--backend" => {
                args.backend = parse_backend(&it.next().ok_or("--backend needs a value")?)?;
            }
            "--help" | "-h" => return Err("usage".into()),
            other if args.file.is_empty() => args.file = other.to_string(),
            other => return Err(format!("unexpected argument: {other}")),
        }
    }
    if args.file.is_empty() {
        return Err("missing input file".into());
    }
    Ok(args)
}

fn load(file: &str) -> std::io::Result<Graph> {
    if file == "-" {
        let mut buf = Vec::new();
        std::io::stdin().read_to_end(&mut buf)?;
        graph_io::read_edge_list(&buf[..])
    } else {
        graph_io::load(file)
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if e != "usage" {
                eprintln!("error: {e}\n");
            }
            eprintln!(
                "usage: ampc-cc <file> [--forest|--general|--auto] [--k K] [--seed S]\n\
                 \x20                 [--machines M] [--backend flat|sharded[:N]|dense[:CAP]]\n\
                 \x20                 [--labels] [--trace] [--metrics]"
            );
            return ExitCode::from(2);
        }
    };

    let g = match load(&args.file) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error reading {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    eprintln!("loaded: n = {}, m = {}", g.n(), g.m());

    if args.metrics {
        let m = metrics::metrics(&g);
        eprintln!(
            "metrics: components = {}, largest = {}, isolated = {}, max deg = {}, \
             mean deg = {:.2}, diameter ≥ {}",
            m.components,
            m.largest_component,
            m.isolated,
            m.max_degree,
            m.mean_degree,
            m.diameter_lower_bound
        );
    }

    let use_forest = match args.mode {
        Mode::Forest => true,
        Mode::General => false,
        Mode::Auto => g.is_forest(),
    };

    eprintln!("dht backend: {}", args.backend.name());
    let (labeling, stats) = if use_forest {
        eprintln!("algorithm: 1 (forest, Theorem 1.1)");
        let mut cfg = ForestCcConfig::default().with_seed(args.seed).with_backend(args.backend);
        cfg.machines = args.machines;
        match connected_components_forest(&g, &cfg) {
            Ok(r) => (r.labeling, r.stats),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        eprintln!("algorithm: 2 (general, Theorem 1.2, k = {})", args.k);
        let mut cfg = GeneralCcConfig::default()
            .with_seed(args.seed)
            .with_k(args.k)
            .with_backend(args.backend);
        cfg.machines = args.machines;
        match connected_components_general(&g, &cfg) {
            Ok(r) => (r.labeling, r.stats),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    // Safety net for a user-facing tool: verify before reporting.
    if !labeling.same_partition(&reference_components(&g)) {
        eprintln!("internal error: labeling failed verification");
        return ExitCode::FAILURE;
    }

    eprintln!(
        "components = {} | AMPC rounds = {} | queries = {} | peak space = {} words",
        labeling.num_components(),
        stats.rounds(),
        stats.total_queries(),
        stats.peak_total_space()
    );
    if args.trace {
        eprintln!("\n{}", stats.round_table());
    }
    if args.labels {
        let canonical = labeling.canonical();
        let mut out = String::with_capacity(canonical.len() * 8);
        for (v, l) in canonical.iter().enumerate() {
            out.push_str(&format!("{v} {l}\n"));
        }
        print!("{out}");
    }
    ExitCode::SUCCESS
}
