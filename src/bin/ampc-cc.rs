//! `ampc-cc` — command-line connected components over edge-list files.
//!
//! ```text
//! ampc-cc <file> [--forest|--general|--auto] [--k K] [--seed S]
//!                [--machines M] [--backend B] [--labels] [--trace]
//!                [--metrics] [--json]
//! ampc-cc query <file> [pipeline options as above]
//!                [--mix uniform|zipf[:EXP]|cross] [--queries N] [--batch B]
//!                [--query-file F] [--top K] [--json]
//!
//!   <file>       edge list ("u v" per line, optional "# nodes: N" header);
//!                use "-" for stdin
//!   --auto       pick Algorithm 1 for forests, Algorithm 2 otherwise (default)
//!   --k K        space parameter (Theorems 1.1/1.2), default 2
//!   --backend B  DHT storage backend: "flat" (default), "sharded" or
//!                "sharded:N" for N hash shards, "dense" or "dense:CAP" for
//!                direct-indexed slabs of CAP ids per keyspace (unhinted
//!                "dense" sizes slabs from the input). Results are identical
//!                across backends; sharded/dense merge round output in
//!                parallel and dense reads skip hashing entirely
//!   --labels     print "vertex component" lines to stdout
//!   --trace      print the per-round cost ledger
//!   --metrics    print structural metrics of the input first
//!   --json       emit one machine-readable JSON object on stdout (labels +
//!                RunStats for runs; the throughput report for queries)
//!
//! query mode runs the pipeline, freezes the labeling into an immutable
//! component index, cross-checks every answer against the union-find
//! reference, and reports single-query and batch throughput:
//!   --mix         synthetic workload shape (default uniform)
//!   --queries N   synthetic workload size (default 100000)
//!   --batch B     batch size for the batched pass (default 1024)
//!   --query-file  answer queries from a file instead of a synthetic mix
//!                 (lines: "connected U V" | "component V" | "size V" |
//!                 "topk K"; '#' comments)
//!   --top K       print the K largest components
//! ```
//!
//! Example:
//! ```text
//! cargo run --release --bin ampc-cc -- graph.txt --metrics --trace
//! cargo run --release --bin ampc-cc -- query graph.txt --mix zipf --queries 1000000
//! ```

use std::fmt::Write as _;
use std::io::Read;
use std::process::ExitCode;
use std::time::Instant;

use adaptive_mpc_connectivity::ampc::{DhtBackend, RunStats};
use adaptive_mpc_connectivity::cc::forest::pipeline::{
    connected_components_forest, ForestCcConfig,
};
use adaptive_mpc_connectivity::cc::general::algorithm2::{
    connected_components_general, GeneralCcConfig,
};
use adaptive_mpc_connectivity::graph::{
    io as graph_io, metrics, reference_components, Graph, Labeling,
};
use adaptive_mpc_connectivity::query::{throughput, workload, ComponentIndex, QueryEngine};

struct RunArgs {
    file: String,
    mode: Mode,
    k: u32,
    seed: u64,
    machines: usize,
    backend: DhtBackend,
    labels: bool,
    trace: bool,
    metrics: bool,
    json: bool,
}

struct QueryArgs {
    run: RunArgs,
    mix: workload::Mix,
    queries: usize,
    batch: usize,
    query_file: Option<String>,
    top: usize,
}

enum Cmd {
    Run(RunArgs),
    Query(QueryArgs),
}

fn parse_backend(s: &str) -> Result<DhtBackend, String> {
    match s {
        "flat" => Ok(DhtBackend::Flat),
        "sharded" => Ok(DhtBackend::sharded()),
        "dense" => Ok(DhtBackend::dense()),
        other => {
            if let Some(n) = other.strip_prefix("sharded:") {
                let shards: usize =
                    n.parse().map_err(|e| format!("bad shard count in --backend: {e}"))?;
                Ok(DhtBackend::Sharded { shards })
            } else if let Some(n) = other.strip_prefix("dense:") {
                let cap: usize =
                    n.parse().map_err(|e| format!("bad slab capacity in --backend: {e}"))?;
                if cap == 0 {
                    return Err("dense slab capacity must be positive (omit :CAP to let the \
                                pipeline size the slab from its input)"
                        .into());
                }
                Ok(DhtBackend::Dense { cap })
            } else {
                Err(format!("unknown backend {other:?} (expected flat|sharded[:N]|dense[:CAP])"))
            }
        }
    }
}

#[derive(PartialEq)]
enum Mode {
    Auto,
    Forest,
    General,
}

fn parse_args() -> Result<Cmd, String> {
    let mut run = RunArgs {
        file: String::new(),
        mode: Mode::Auto,
        k: 2,
        seed: 0xCC,
        machines: 8,
        backend: DhtBackend::Flat,
        labels: false,
        trace: false,
        metrics: false,
        json: false,
    };
    let mut argv = std::env::args().skip(1).peekable();
    let is_query = argv.peek().map(|a| a == "query").unwrap_or(false);
    if is_query {
        argv.next();
    }
    let mut mix = workload::Mix::Uniform;
    let mut queries = 100_000usize;
    let mut batch = 1024usize;
    let mut query_file: Option<String> = None;
    let mut top = 0usize;

    let mut it = argv;
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--forest" => run.mode = Mode::Forest,
            "--general" => run.mode = Mode::General,
            "--auto" => run.mode = Mode::Auto,
            "--labels" => run.labels = true,
            "--trace" => run.trace = true,
            "--metrics" => run.metrics = true,
            "--json" => run.json = true,
            "--k" => run.k = value("--k")?.parse().map_err(|e| format!("bad --k: {e}"))?,
            "--seed" => {
                run.seed = value("--seed")?.parse().map_err(|e| format!("bad --seed: {e}"))?
            }
            "--machines" => {
                run.machines =
                    value("--machines")?.parse().map_err(|e| format!("bad --machines: {e}"))?
            }
            "--backend" => run.backend = parse_backend(&value("--backend")?)?,
            "--mix" if is_query => mix = workload::Mix::parse(&value("--mix")?)?,
            "--queries" if is_query => {
                queries = value("--queries")?.parse().map_err(|e| format!("bad --queries: {e}"))?
            }
            "--batch" if is_query => {
                batch = value("--batch")?.parse().map_err(|e| format!("bad --batch: {e}"))?;
                if batch == 0 {
                    return Err("--batch must be positive".into());
                }
            }
            "--query-file" if is_query => query_file = Some(value("--query-file")?),
            "--top" if is_query => {
                top = value("--top")?.parse().map_err(|e| format!("bad --top: {e}"))?
            }
            "--help" | "-h" => return Err("usage".into()),
            other if run.file.is_empty() => run.file = other.to_string(),
            other => return Err(format!("unexpected argument: {other}")),
        }
    }
    if run.file.is_empty() {
        return Err("missing input file".into());
    }
    if is_query {
        Ok(Cmd::Query(QueryArgs { run, mix, queries, batch, query_file, top }))
    } else {
        Ok(Cmd::Run(run))
    }
}

fn load(file: &str) -> std::io::Result<Graph> {
    if file == "-" {
        let mut buf = Vec::new();
        std::io::stdin().read_to_end(&mut buf)?;
        graph_io::read_edge_list(&buf[..])
    } else {
        graph_io::load(file)
    }
}

/// Runs the configured pipeline on `g`. Returns the labeling, the run's
/// stats, and the algorithm number used (1 = forest, 2 = general).
fn run_pipeline(g: &Graph, args: &RunArgs) -> Result<(Labeling, RunStats, u8), String> {
    let use_forest = match args.mode {
        Mode::Forest => true,
        Mode::General => false,
        Mode::Auto => g.is_forest(),
    };
    eprintln!("dht backend: {}", args.backend.name());
    if use_forest {
        eprintln!("algorithm: 1 (forest, Theorem 1.1)");
        let mut cfg = ForestCcConfig::default().with_seed(args.seed).with_backend(args.backend);
        cfg.machines = args.machines;
        let r = connected_components_forest(g, &cfg).map_err(|e| e.to_string())?;
        Ok((r.labeling, r.stats, 1))
    } else {
        eprintln!("algorithm: 2 (general, Theorem 1.2, k = {})", args.k);
        let mut cfg = GeneralCcConfig::default()
            .with_seed(args.seed)
            .with_k(args.k)
            .with_backend(args.backend);
        cfg.machines = args.machines;
        let r = connected_components_general(g, &cfg).map_err(|e| e.to_string())?;
        Ok((r.labeling, r.stats, 2))
    }
}

/// Minimal JSON string escape (round names are static literals, but the
/// output must stay well-formed whatever they contain).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a run (labels + RunStats) as one JSON object.
fn run_json(g: &Graph, args: &RunArgs, labeling: &Labeling, stats: &RunStats, alg: u8) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"n\": {},", g.n());
    let _ = writeln!(s, "  \"m\": {},", g.m());
    let _ = writeln!(s, "  \"algorithm\": {alg},");
    let _ = writeln!(s, "  \"backend\": \"{}\",", json_escape(args.backend.name()));
    let _ = writeln!(s, "  \"seed\": {},", args.seed);
    let _ = writeln!(s, "  \"components\": {},", labeling.num_components());
    let _ = writeln!(s, "  \"rounds\": {},", stats.rounds());
    let _ = writeln!(s, "  \"queries\": {},", stats.total_queries());
    let _ = writeln!(s, "  \"peak_space_words\": {},", stats.peak_total_space());
    s.push_str("  \"per_round\": [\n");
    let per_round = stats.per_round();
    for (i, r) in per_round.iter().enumerate() {
        let _ = write!(
            s,
            "    {{ \"index\": {}, \"name\": \"{}\", \"reads\": {}, \"read_words\": {}, \
             \"writes\": {}, \"write_words\": {}, \"snapshot_words\": {}, \
             \"total_space_words\": {} }}",
            r.index,
            json_escape(&r.name),
            r.reads,
            r.read_words,
            r.writes,
            r.write_words,
            r.snapshot_words,
            r.total_space_words
        );
        s.push_str(if i + 1 < per_round.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"labels\": [");
    for (v, l) in labeling.canonical().iter().enumerate() {
        if v > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{l}");
    }
    s.push_str("]\n}\n");
    s
}

fn cmd_run(args: RunArgs) -> Result<(), String> {
    let g = load(&args.file).map_err(|e| format!("error reading {}: {e}", args.file))?;
    eprintln!("loaded: n = {}, m = {}", g.n(), g.m());

    if args.metrics {
        let m = metrics::metrics(&g);
        eprintln!(
            "metrics: components = {}, largest = {}, isolated = {}, max deg = {}, \
             mean deg = {:.2}, diameter ≥ {}",
            m.components,
            m.largest_component,
            m.isolated,
            m.max_degree,
            m.mean_degree,
            m.diameter_lower_bound
        );
    }

    let (labeling, stats, alg) = run_pipeline(&g, &args)?;

    // Safety net for a user-facing tool: verify before reporting.
    if !labeling.same_partition(&reference_components(&g)) {
        return Err("internal error: labeling failed verification".into());
    }

    eprintln!(
        "components = {} | AMPC rounds = {} | queries = {} | peak space = {} words",
        labeling.num_components(),
        stats.rounds(),
        stats.total_queries(),
        stats.peak_total_space()
    );
    if args.trace {
        eprintln!("\n{}", stats.round_table());
    }
    if args.json {
        print!("{}", run_json(&g, &args, &labeling, &stats, alg));
    } else if args.labels {
        print_labels(&labeling);
    }
    Ok(())
}

/// Prints canonical "vertex component" lines to stdout (the `--labels`
/// output of both subcommands).
fn print_labels(labeling: &Labeling) {
    let canonical = labeling.canonical();
    let mut out = String::with_capacity(canonical.len() * 8);
    for (v, l) in canonical.iter().enumerate() {
        let _ = writeln!(out, "{v} {l}");
    }
    print!("{out}");
}

fn cmd_query(args: QueryArgs) -> Result<(), String> {
    let g = load(&args.run.file).map_err(|e| format!("error reading {}: {e}", args.run.file))?;
    eprintln!("loaded: n = {}, m = {}", g.n(), g.m());

    if args.run.metrics {
        let m = metrics::metrics(&g);
        eprintln!(
            "metrics: components = {}, largest = {}, isolated = {}, max deg = {}, \
             mean deg = {:.2}, diameter ≥ {}",
            m.components,
            m.largest_component,
            m.isolated,
            m.max_degree,
            m.mean_degree,
            m.diameter_lower_bound
        );
    }

    let (labeling, stats, alg) = run_pipeline(&g, &args.run)?;
    eprintln!(
        "pipeline: components = {} | AMPC rounds = {} | queries = {}",
        labeling.num_components(),
        stats.rounds(),
        stats.total_queries()
    );
    if args.run.trace {
        eprintln!("\n{}", stats.round_table());
    }

    // One union-find pass serves both checks: the pipeline labeling must
    // induce the reference partition, and the index built from it must be
    // byte-identical to one built from the reference labels (dense ids are
    // a pure function of the partition) — which makes every possible query
    // answer identical as well.
    let truth = reference_components(&g);
    if !labeling.same_partition(&truth) {
        return Err("internal error: labeling failed verification".into());
    }
    let t0 = Instant::now();
    let index = ComponentIndex::build(&labeling);
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "index: {} components over {} vertices, {} bytes, built in {build_ms:.2} ms",
        index.num_components(),
        index.num_vertices(),
        index.heap_bytes()
    );
    let reference = ComponentIndex::build(&truth);
    if index != reference {
        return Err("internal error: index diverges from the union-find reference".into());
    }

    let queries = match &args.query_file {
        Some(path) => {
            let file = std::fs::File::open(path)
                .map_err(|e| format!("error opening query file {path}: {e}"))?;
            workload::parse_query_file(file, g.n())
                .map_err(|e| format!("error parsing query file {path}: {e}"))?
        }
        None => workload::generate(&index, args.mix, args.queries, args.run.seed),
    };
    let source = match &args.query_file {
        Some(path) => format!("file:{path}"),
        None => args.mix.name().to_string(),
    };
    eprintln!("workload: {} ({} queries, batch = {})", source, queries.len(), args.batch);

    let engine = QueryEngine::new(&index);
    // Per-query validation against the reference engine, answer by answer
    // (the index equality above already implies this; this loop pins it
    // observably and catches any engine-level divergence).
    let ref_engine = QueryEngine::new(&reference);
    for &q in &queries {
        let (got, want) = (engine.answer(q), ref_engine.answer(q));
        if got != want {
            return Err(format!("query {q:?}: index answered {got}, reference {want}"));
        }
    }
    eprintln!(
        "validated: {}/{} answers match the union-find reference",
        queries.len(),
        queries.len()
    );

    let mut buf = Vec::new();
    // Warm pass, then best of two timed passes per path.
    let (_, checksum) = throughput::single_pass(&engine, &queries);
    let single_qps =
        (0..2).map(|_| throughput::single_pass(&engine, &queries).0).fold(0.0f64, f64::max);
    let (_, batch_checksum) = throughput::batched_pass(&engine, &queries, args.batch, &mut buf);
    let batch_qps = (0..2)
        .map(|_| throughput::batched_pass(&engine, &queries, args.batch, &mut buf).0)
        .fold(0.0f64, f64::max);
    if checksum != batch_checksum {
        return Err("internal error: batch checksum diverged from single-query path".into());
    }

    eprintln!(
        "throughput: single = {:.0} q/s | batch = {:.0} q/s | checksum = {checksum}",
        single_qps, batch_qps
    );

    if args.top > 0 {
        eprintln!("top {} components by size:", args.top);
        for (rank, &c) in index.top_k(args.top).iter().enumerate() {
            eprintln!("  #{:<3} component {:<10} size {}", rank + 1, c, index.size_of(c));
        }
    }

    if args.run.json {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"n\": {},", g.n());
        let _ = writeln!(s, "  \"m\": {},", g.m());
        let _ = writeln!(s, "  \"algorithm\": {alg},");
        let _ = writeln!(s, "  \"backend\": \"{}\",", json_escape(args.run.backend.name()));
        let _ = writeln!(s, "  \"components\": {},", index.num_components());
        let _ = writeln!(s, "  \"index_bytes\": {},", index.heap_bytes());
        let _ = writeln!(s, "  \"index_build_ms\": {build_ms:.3},");
        let _ = writeln!(s, "  \"workload\": \"{}\",", json_escape(&source));
        let _ = writeln!(s, "  \"queries\": {},", queries.len());
        let _ = writeln!(s, "  \"batch\": {},", args.batch);
        let _ = writeln!(s, "  \"single_queries_per_sec\": {single_qps:.0},");
        let _ = writeln!(s, "  \"batch_queries_per_sec\": {batch_qps:.0},");
        let _ = writeln!(s, "  \"checksum\": {checksum},");
        let _ = writeln!(s, "  \"validated\": {}", queries.len());
        s.push_str("}\n");
        print!("{s}");
    } else if args.run.labels {
        print_labels(&labeling);
    }
    Ok(())
}

fn main() -> ExitCode {
    let cmd = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            if e != "usage" {
                eprintln!("error: {e}\n");
            }
            eprintln!(
                "usage: ampc-cc <file> [--forest|--general|--auto] [--k K] [--seed S]\n\
                 \x20                 [--machines M] [--backend flat|sharded[:N]|dense[:CAP]]\n\
                 \x20                 [--labels] [--trace] [--metrics] [--json]\n\
                 \x20      ampc-cc query <file> [pipeline options]\n\
                 \x20                 [--mix uniform|zipf[:EXP]|cross] [--queries N]\n\
                 \x20                 [--batch B] [--query-file F] [--top K] [--json]"
            );
            return ExitCode::from(2);
        }
    };
    let result = match cmd {
        Cmd::Run(args) => cmd_run(args),
        Cmd::Query(args) => cmd_query(args),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
