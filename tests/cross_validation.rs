//! Cross-validation harness: the scenario matrix.
//!
//! Runs Algorithm 1 (forests) and Algorithm 2 (general graphs) over every
//! generator family × machine count × seed, and checks each run three ways:
//!
//! 1. **Ground truth** — the labeling must induce exactly the partition a
//!    sequential union-find computes.
//! 2. **Determinism** — replaying with the same seed must reproduce the
//!    labeling *and* the per-round `RunStats` byte-for-byte; changing the
//!    seed must still be correct (and machine count must never change the
//!    result, per the AMPC model's machine-obliviousness).
//! 3. **Counting claims** — measured rounds stay within the paper's
//!    `O(log* n)` shape (Theorem 1.1) and the `k` trade-off moves space and
//!    rounds in opposite directions (Theorem 1.1, general `k`).

use adaptive_mpc_connectivity::cc::forest::pipeline::{
    connected_components_forest, ForestCcConfig,
};
use adaptive_mpc_connectivity::cc::general::algorithm2::{
    connected_components_general, GeneralCcConfig,
};
use adaptive_mpc_connectivity::cc::log_star;
use adaptive_mpc_connectivity::graph::generators::{
    disjoint_union, erdos_renyi_gnm, random_forest, ForestFamily, GraphFamily,
};
use adaptive_mpc_connectivity::graph::{reference_components, Graph, Labeling};

use adaptive_mpc_connectivity::ampc::{DhtBackend, RunStats};
use adaptive_mpc_connectivity::query::{workload, ComponentIndex, Query, QueryEngine};

/// Machine counts every scenario runs under.
const MACHINE_COUNTS: [usize; 2] = [3, 16];

/// Seeds every scenario runs under.
const SEEDS: [u64; 2] = [11, 0xFEED];

/// Canonical fingerprint of a run: the labeling plus every per-round
/// counter, rendered to a string so replays can be compared byte-for-byte.
fn fingerprint(labeling: &Labeling, stats: &RunStats) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    writeln!(s, "labels={:?}", labeling.canonical()).unwrap();
    for r in stats.per_round() {
        writeln!(
            s,
            "round {} {}: reads={} read_words={} writes={} write_words={} snap={} total={}",
            r.index,
            r.name,
            r.reads,
            r.read_words,
            r.writes,
            r.write_words,
            r.snapshot_words,
            r.total_space_words
        )
        .unwrap();
    }
    s
}

fn run_forest(g: &Graph, machines: usize, seed: u64) -> (Labeling, String, usize) {
    let cfg = ForestCcConfig::default().with_seed(seed).with_machines(machines);
    let res = connected_components_forest(g, &cfg).expect("forest run");
    let fp = fingerprint(&res.labeling, &res.stats);
    let rounds = res.rounds();
    (res.labeling, fp, rounds)
}

fn run_forest_backend(g: &Graph, machines: usize, seed: u64, backend: DhtBackend) -> String {
    let cfg =
        ForestCcConfig::default().with_seed(seed).with_machines(machines).with_backend(backend);
    let res = connected_components_forest(g, &cfg).expect("forest run");
    fingerprint(&res.labeling, &res.stats)
}

fn run_general(g: &Graph, machines: usize, seed: u64) -> (Labeling, String) {
    let mut cfg = GeneralCcConfig::default().with_seed(seed);
    cfg.machines = machines;
    let res = connected_components_general(g, &cfg).expect("general run");
    let fp = fingerprint(&res.labeling, &res.stats);
    (res.labeling, fp)
}

fn run_general_backend(g: &Graph, machines: usize, seed: u64, backend: DhtBackend) -> String {
    let mut cfg = GeneralCcConfig::default().with_seed(seed).with_backend(backend);
    cfg.machines = machines;
    let res = connected_components_general(g, &cfg).expect("general run");
    fingerprint(&res.labeling, &res.stats)
}

/// Algorithm 1 over the full forest matrix: every family × machine count ×
/// seed, each run validated against union-find and replayed for
/// byte-identical determinism.
#[test]
fn forest_matrix_ground_truth_and_determinism() {
    let n = 600;
    for fam in ForestFamily::ALL {
        for machines in MACHINE_COUNTS {
            for seed in SEEDS {
                let g = fam.generate(n, seed ^ 0xF0F0);
                let truth = reference_components(&g);
                let (labeling, fp, _) = run_forest(&g, machines, seed);
                assert!(
                    labeling.same_partition(&truth),
                    "family {} machines {machines} seed {seed}: wrong partition",
                    fam.name()
                );
                // Seed replay: identical labeling and identical RunStats.
                let (_, fp2, _) = run_forest(&g, machines, seed);
                assert_eq!(
                    fp,
                    fp2,
                    "family {} machines {machines} seed {seed}: replay diverged",
                    fam.name()
                );
            }
        }
    }
}

/// Machine count is an execution detail of the simulator: it must never
/// change the computed labeling or the metered round structure.
#[test]
fn forest_machine_count_oblivious() {
    for fam in [ForestFamily::RandomTree, ForestFamily::TinyTrees, ForestFamily::Path] {
        let g = fam.generate(900, 5);
        let (_, fp_a, _) = run_forest(&g, MACHINE_COUNTS[0], 77);
        let (_, fp_b, _) = run_forest(&g, MACHINE_COUNTS[1], 77);
        assert_eq!(fp_a, fp_b, "family {}: machine count changed the run", fam.name());
    }
}

/// Algorithm 2 over the full general-graph matrix, including a
/// multi-component disjoint union, with ground truth + replay checks.
#[test]
fn general_matrix_ground_truth_and_determinism() {
    let n = 400;
    for fam in GraphFamily::ALL {
        for machines in MACHINE_COUNTS {
            for seed in SEEDS {
                let g = fam.generate(n, seed ^ 0x0D0D);
                let truth = reference_components(&g);
                let (labeling, fp) = run_general(&g, machines, seed);
                assert!(
                    labeling.same_partition(&truth),
                    "family {} machines {machines} seed {seed}: wrong partition",
                    fam.name()
                );
                let (_, fp2) = run_general(&g, machines, seed);
                assert_eq!(
                    fp,
                    fp2,
                    "family {} machines {machines} seed {seed}: replay diverged",
                    fam.name()
                );
            }
        }
    }
}

/// Storage backends are an execution detail of the simulator: `FlatDht`,
/// `ShardedDht`, and `DenseDht` must produce byte-identical labelings and
/// per-round `RunStats` over the full family × machine count × seed matrix
/// of Algorithm 1. (The labeling is a projection of the final snapshot and
/// the fingerprint covers every per-round counter, so divergence anywhere
/// in snapshot contents or metering fails the comparison; `ampc`'s own
/// backend-equivalence tests additionally compare raw sorted snapshots.)
#[test]
fn forest_backend_equivalence_matrix() {
    let n = 500;
    for fam in ForestFamily::ALL {
        for machines in MACHINE_COUNTS {
            for seed in SEEDS {
                let g = fam.generate(n, seed ^ 0xBAC0);
                let flat = run_forest_backend(&g, machines, seed, DhtBackend::Flat);
                let sharded = run_forest_backend(&g, machines, seed, DhtBackend::sharded());
                assert_eq!(
                    flat,
                    sharded,
                    "family {} machines {machines} seed {seed}: backends diverged",
                    fam.name()
                );
                // A fixed non-auto shard count must agree as well.
                let sharded4 =
                    run_forest_backend(&g, machines, seed, DhtBackend::Sharded { shards: 4 });
                assert_eq!(
                    flat,
                    sharded4,
                    "family {} machines {machines} seed {seed}: shard count changed the run",
                    fam.name()
                );
                // Dense with the pipeline-provided slab hint…
                let dense = run_forest_backend(&g, machines, seed, DhtBackend::dense());
                assert_eq!(
                    flat,
                    dense,
                    "family {} machines {machines} seed {seed}: dense backend diverged",
                    fam.name()
                );
                // …and with a deliberately tiny slab, so most ids take the
                // overflow path and straddle the boundary.
                let dense_tiny =
                    run_forest_backend(&g, machines, seed, DhtBackend::Dense { cap: 32 });
                assert_eq!(
                    flat,
                    dense_tiny,
                    "family {} machines {machines} seed {seed}: dense overflow diverged",
                    fam.name()
                );
            }
        }
    }
}

/// The same backend-obliviousness requirement for Algorithm 2's recursion
/// (which constructs many systems internally, one per `ShrinkGeneral` and
/// base-case invocation — all must dispatch consistently).
#[test]
fn general_backend_equivalence_matrix() {
    let n = 300;
    for fam in GraphFamily::ALL {
        for machines in MACHINE_COUNTS {
            for seed in SEEDS {
                let g = fam.generate(n, seed ^ 0xBAC1);
                let flat = run_general_backend(&g, machines, seed, DhtBackend::Flat);
                let sharded = run_general_backend(&g, machines, seed, DhtBackend::sharded());
                assert_eq!(
                    flat,
                    sharded,
                    "family {} machines {machines} seed {seed}: backends diverged",
                    fam.name()
                );
                let dense = run_general_backend(&g, machines, seed, DhtBackend::dense());
                assert_eq!(
                    flat,
                    dense,
                    "family {} machines {machines} seed {seed}: dense backend diverged",
                    fam.name()
                );
                let dense_tiny =
                    run_general_backend(&g, machines, seed, DhtBackend::Dense { cap: 32 });
                assert_eq!(
                    flat,
                    dense_tiny,
                    "family {} machines {machines} seed {seed}: dense overflow diverged",
                    fam.name()
                );
            }
        }
    }
}

/// Multi-component general graphs: a disjoint union of one sparse and one
/// dense ER graph plus a forest must keep its components separate.
#[test]
fn general_multi_component_union() {
    for seed in SEEDS {
        let a = erdos_renyi_gnm(150, 300, seed);
        let b = erdos_renyi_gnm(120, 600, seed + 1);
        let c = random_forest(200, 6, seed + 2);
        let g = disjoint_union(&[a, b, c]);
        let truth = reference_components(&g);
        for machines in MACHINE_COUNTS {
            let (labeling, _) = run_general(&g, machines, seed);
            assert!(
                labeling.same_partition(&truth),
                "machines {machines} seed {seed}: union components merged or split"
            );
            assert_eq!(labeling.num_components(), truth.num_components());
        }
    }
}

/// Answers every query of every standard workload mix against an
/// independent union-find oracle (labels, partition comparison, size
/// census, and a from-scratch dense-id remap — none of it routed through
/// `ComponentIndex`), plus the batch path against the single path.
fn assert_queries_match_reference(g: &Graph, labeling: &Labeling, seed: u64, ctx: &str) {
    let index = ComponentIndex::from_run(g, labeling)
        .unwrap_or_else(|e| panic!("{ctx}: index build rejected pipeline labeling: {e}"));
    let truth = reference_components(g);

    // The index must be byte-identical to one built straight from the
    // union-find labeling (dense ids are a function of the partition).
    assert_eq!(index, ComponentIndex::build(&truth), "{ctx}: index diverges from reference");

    // Independent oracles from the union-find side.
    let canonical = truth.canonical(); // v → min member of v's component
    let sizes = truth.component_sizes();
    let mut mins: Vec<u64> = canonical.clone();
    mins.sort_unstable();
    mins.dedup();
    let dense_of = |v: u32| mins.binary_search(&canonical[v as usize]).unwrap() as u64;
    let mut sizes_desc: Vec<usize> = sizes.values().copied().collect();
    sizes_desc.sort_unstable_by(|a, b| b.cmp(a));

    let engine = QueryEngine::new(&index);
    for mix in workload::Mix::STANDARD {
        let queries = workload::generate(&index, mix, 300, seed);
        let mut batch = vec![0u64; queries.len()];
        engine.answer_batch(&queries, &mut batch).expect("batch sized to the query count");
        for (&q, &batched) in queries.iter().zip(&batch) {
            let got = engine.answer(q);
            assert_eq!(got, batched, "{ctx}: batch diverged on {q:?}");
            let want = match q {
                Query::Connected(u, v) => (truth.get(u) == truth.get(v)) as u64,
                Query::ComponentOf(v) => dense_of(v),
                Query::ComponentSize(v) => sizes[&truth.get(v)] as u64,
                Query::TopKSize(k) => sizes_desc.get(k as usize - 1).copied().unwrap_or(0) as u64,
            };
            assert_eq!(got, want, "{ctx} mix {}: wrong answer for {q:?}", mix.name());
        }
    }
}

/// The serving layer over the full matrix: every family × machine count ×
/// seed of both algorithms, index built from the pipeline labeling, every
/// workload-mix answer checked against the union-find oracle.
#[test]
fn query_service_matches_union_find_across_matrix() {
    let n = 400;
    for fam in ForestFamily::ALL {
        for machines in MACHINE_COUNTS {
            for seed in SEEDS {
                let g = fam.generate(n, seed ^ 0x9E11);
                let (labeling, _, _) = run_forest(&g, machines, seed);
                let ctx = format!("forest family {} machines {machines} seed {seed}", fam.name());
                assert_queries_match_reference(&g, &labeling, seed, &ctx);
            }
        }
    }
    let n = 250;
    for fam in GraphFamily::ALL {
        for machines in MACHINE_COUNTS {
            for seed in SEEDS {
                let g = fam.generate(n, seed ^ 0x9E12);
                let (labeling, _) = run_general(&g, machines, seed);
                let ctx = format!("general family {} machines {machines} seed {seed}", fam.name());
                assert_queries_match_reference(&g, &labeling, seed, &ctx);
            }
        }
    }
}

/// Theorem 1.1 counting claim: measured AMPC rounds grow like `log* n`,
/// i.e. stay under `c·log* n + d` for fixed small constants across three
/// decades of input size. (Probe constants; see the printed table when run
/// with `--nocapture`.)
#[test]
fn forest_rounds_bounded_by_log_star() {
    for (fam, seed) in
        [(ForestFamily::RandomTree, 3u64), (ForestFamily::ManyTrees, 4), (ForestFamily::Path, 5)]
    {
        for exp in [8u32, 12, 16] {
            let n = 1usize << exp;
            let g = fam.generate(n, seed);
            let (labeling, _, rounds) = run_forest(&g, 8, seed);
            assert!(labeling.same_partition(&reference_components(&g)));
            let bound = 12 * log_star(n as f64) as usize + 40;
            println!(
                "forest rounds: family={} n={n} log*={} rounds={rounds} bound={bound}",
                fam.name(),
                log_star(n as f64)
            );
            assert!(
                rounds <= bound,
                "family {} n {n}: {rounds} rounds exceeds c·log* n + O(1) bound {bound}",
                fam.name()
            );
        }
    }
}

/// Theorem 1.1 trade-off claim: the space/round dial `k` selects the
/// starting rank width `B0 = 2↑↑(log* n − k)`, so a smaller `k` buys its
/// fewer shrink iterations with a wider rank census. Measured on a single
/// long path (the workload that isolates the B-schedule), the trade-off
/// must be monotone: as `k` grows, `B0`, peak total space, and total
/// queries are all non-increasing, while every run stays correct. Once
/// `B0` saturates at its floor the remaining runs must be identical.
#[test]
fn tradeoff_space_monotone_in_k() {
    let n = 1 << 12;
    let g = ForestFamily::Path.generate(n, 0);
    let truth = reference_components(&g);
    let mut prev: Option<(u16, usize, usize)> = None;
    for k in 1..=4u32 {
        let mut cfg = ForestCcConfig::default().with_seed(0x7A).with_tradeoff_k(n, k);
        cfg.skip_shrink_large = true;
        let res = connected_components_forest(&g, &cfg).expect("tradeoff run");
        assert!(res.labeling.same_partition(&truth), "k={k}");
        let cur = (cfg.b0, res.peak_space(), res.queries());
        println!("tradeoff: k={k} b0={} peak={} queries={}", cur.0, cur.1, cur.2);
        if let Some(prev) = prev {
            assert!(cur.0 <= prev.0, "k={k}: B0 grew ({} > {})", cur.0, prev.0);
            if cur.0 == prev.0 {
                // Saturated schedule: identical budget must replay identically.
                assert_eq!((cur.1, cur.2), (prev.1, prev.2), "k={k}: same B0, different run");
            } else {
                assert!(cur.1 <= prev.1, "k={k}: peak space grew ({} > {})", cur.1, prev.1);
                assert!(cur.2 <= prev.2, "k={k}: queries grew ({} > {})", cur.2, prev.2);
            }
        }
        prev = Some(cur);
    }
}
