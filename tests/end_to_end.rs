//! End-to-end integration: every algorithm, every workload family, checked
//! against sequential ground truth and against each other.

use adaptive_mpc_connectivity::ampc::AmpcConfig;
use adaptive_mpc_connectivity::cc::baselines::mpc_label_prop::{
    exponentiated_propagation, min_label_propagation,
};
use adaptive_mpc_connectivity::cc::forest::pipeline::{
    connected_components_forest, ForestCcConfig,
};
use adaptive_mpc_connectivity::cc::general::algorithm2::{
    connected_components_general, GeneralCcConfig,
};
use adaptive_mpc_connectivity::cc::general::bdeplus::theorem41;
use adaptive_mpc_connectivity::graph::generators::{ForestFamily, GraphFamily};
use adaptive_mpc_connectivity::graph::{reference_components, Graph};

#[test]
fn forest_pipeline_on_every_family_and_size() {
    for fam in ForestFamily::ALL {
        for n in [64usize, 500, 4000] {
            let g = fam.generate(n, fam as u64 * 31 + n as u64);
            let res =
                connected_components_forest(&g, &ForestCcConfig::default().with_seed(n as u64))
                    .unwrap();
            assert!(
                res.labeling.same_partition(&reference_components(&g)),
                "family {} n {n}",
                fam.name()
            );
        }
    }
}

#[test]
fn general_pipeline_on_every_family_and_size() {
    for fam in GraphFamily::ALL {
        for n in [64usize, 500, 2500] {
            let g = fam.generate(n, fam as u64 * 17 + n as u64);
            let res =
                connected_components_general(&g, &GeneralCcConfig::default().with_seed(n as u64))
                    .unwrap();
            assert!(
                res.labeling.same_partition(&reference_components(&g)),
                "family {} n {n}",
                fam.name()
            );
        }
    }
}

#[test]
fn all_five_algorithms_agree_on_forests() {
    // A forest is also a general graph: Algorithm 1, Algorithm 2, the
    // Theorem 4.1 solver, and both MPC baselines must induce the same
    // partition.
    let g = ForestFamily::ManyTrees.generate(2000, 7);
    let truth = reference_components(&g);

    let a1 = connected_components_forest(&g, &ForestCcConfig::default()).unwrap();
    assert!(a1.labeling.same_partition(&truth), "Algorithm 1");

    let a2 = connected_components_general(&g, &GeneralCcConfig::default()).unwrap();
    assert!(a2.labeling.same_partition(&truth), "Algorithm 2");

    let b41 = theorem41(&g, 16 * (g.n() + g.m()), 1 << 10, &AmpcConfig::default()).unwrap();
    assert!(b41.labeling.same_partition(&truth), "Theorem 4.1");

    assert!(min_label_propagation(&g).labeling.same_partition(&truth), "MPC min-label");
    assert!(exponentiated_propagation(&g).labeling.same_partition(&truth), "MPC doubling");
}

#[test]
fn forest_of_single_edges() {
    // n/2 disjoint edges: every Euler cycle is the minimal 2-cycle.
    let n = 2000;
    let edges: Vec<(u32, u32)> = (0..n / 2).map(|i| (2 * i, 2 * i + 1)).collect();
    let g = Graph::from_edges(n as usize, &edges);
    let res = connected_components_forest(&g, &ForestCcConfig::default()).unwrap();
    assert!(res.labeling.same_partition(&reference_components(&g)));
    assert_eq!(res.labeling.num_components(), n as usize / 2);
}

#[test]
fn star_forest_extreme_degree_skew() {
    // Stars stress the Euler tour (center degree ≈ tree size).
    let mut edges = Vec::new();
    let mut base = 0u32;
    for size in [3u32, 50, 500, 1000] {
        for leaf in 1..size {
            edges.push((base, base + leaf));
        }
        base += size;
    }
    let g = Graph::from_edges(base as usize, &edges);
    let res = connected_components_forest(&g, &ForestCcConfig::default()).unwrap();
    assert!(res.labeling.same_partition(&reference_components(&g)));
    assert_eq!(res.labeling.num_components(), 4);
}

#[test]
fn general_graph_that_is_one_huge_clique_plus_dust() {
    let mut edges = Vec::new();
    for u in 0..60u32 {
        for v in (u + 1)..60 {
            edges.push((u, v));
        }
    }
    // Dust: 500 isolated vertices.
    let g = Graph::from_edges(560, &edges);
    let res = connected_components_general(&g, &GeneralCcConfig::default()).unwrap();
    assert!(res.labeling.same_partition(&reference_components(&g)));
    assert_eq!(res.labeling.num_components(), 501);
}

#[test]
fn rounds_grow_sublogarithmically_on_forests() {
    // Theorem 1.1's shape across two decades of n: the round count must be
    // essentially flat (log* is ≤ 5 for anything representable).
    let r_small = connected_components_forest(
        &ForestFamily::RandomTree.generate(1 << 10, 3),
        &ForestCcConfig::default(),
    )
    .unwrap()
    .rounds();
    let r_large = connected_components_forest(
        &ForestFamily::RandomTree.generate(1 << 17, 3),
        &ForestCcConfig::default(),
    )
    .unwrap()
    .rounds();
    assert!(
        r_large <= r_small + 24,
        "rounds {r_small} → {r_large}: grew more than a log*-like amount"
    );
}

#[test]
fn mpc_baseline_pays_diameter_where_ampc_does_not() {
    // The motivating separation: on a path, MPC min-label needs Θ(n)
    // rounds; Algorithm 1 stays in the tens.
    let g = adaptive_mpc_connectivity::graph::generators::path(3000);
    let ampc = connected_components_forest(&g, &ForestCcConfig::default()).unwrap();
    let mpc = min_label_propagation(&g);
    assert!(ampc.rounds() < 64);
    assert!(mpc.rounds >= 2999);
    assert!(ampc.labeling.same_partition(&mpc.labeling));
}
