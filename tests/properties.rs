//! Property-based tests: correctness of the full pipelines and the
//! CC-shrinking contract on arbitrary random inputs.

use adaptive_mpc_connectivity::ampc::AmpcConfig;
use adaptive_mpc_connectivity::cc::forest::pipeline::{
    connected_components_forest, ForestCcConfig,
};
use adaptive_mpc_connectivity::cc::general::algorithm2::{
    connected_components_general, GeneralCcConfig,
};
use adaptive_mpc_connectivity::cc::general::sampling::{crossing_edges, sample_edges};
use adaptive_mpc_connectivity::cc::general::shrink_general::shrink_general;
use adaptive_mpc_connectivity::graph::contract::{compose_labels, contract};
use adaptive_mpc_connectivity::graph::euler::forest_to_cycles;
use adaptive_mpc_connectivity::graph::{reference_components, Graph, Labeling, UnionFind};
use proptest::prelude::*;

/// Arbitrary forest on up to `max_n` vertices: each vertex beyond the first
/// may attach to any earlier vertex or stay detached.
fn arb_forest(max_n: usize) -> impl Strategy<Value = Graph> {
    prop::collection::vec(prop::option::of(0u64..u64::MAX), 1..max_n).prop_map(|parents| {
        let n = parents.len() + 1;
        let edges: Vec<(u32, u32)> = parents
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|p| ((p % (i as u64 + 1)) as u32, i as u32 + 1)))
            .collect();
        Graph::from_edges(n, &edges)
    })
}

/// Arbitrary graph on up to `max_n` vertices with arbitrary edges.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..max_n).prop_flat_map(|n| {
        prop::collection::vec((0..n as u32, 0..n as u32), 0..4 * n)
            .prop_map(move |edges| Graph::from_edges(n, &edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn forest_pipeline_matches_union_find(g in arb_forest(400), seed in 0u64..1000) {
        let cfg = ForestCcConfig::default().with_seed(seed);
        let res = connected_components_forest(&g, &cfg).unwrap();
        prop_assert!(res.labeling.same_partition(&reference_components(&g)));
    }

    #[test]
    fn general_pipeline_matches_union_find(g in arb_graph(200), seed in 0u64..1000) {
        let cfg = GeneralCcConfig::default().with_seed(seed);
        let res = connected_components_general(&g, &cfg).unwrap();
        prop_assert!(res.labeling.same_partition(&reference_components(&g)));
    }

    #[test]
    fn euler_tour_is_cc_shrinking(g in arb_forest(300)) {
        // Observation 3.1: cycles partition per tree; labeling the cycles by
        // any CC-labeling and projecting through origins recovers the forest
        // components.
        let d = forest_to_cycles(&g);
        prop_assert!(d.is_permutation());
        // Label cycles by orbit.
        let mut cycle_label = vec![u64::MAX; d.len()];
        let mut next = 0u64;
        for s in 0..d.len() {
            if cycle_label[s] != u64::MAX { continue; }
            let mut cur = s;
            while cycle_label[cur] == u64::MAX {
                cycle_label[cur] = next;
                cur = d.succ[cur] as usize;
            }
            next += 1;
        }
        let mut labels = vec![u64::MAX; g.n()];
        for (a, &orig) in d.origin.iter().enumerate() {
            labels[orig as usize] = cycle_label[a] ;
        }
        for &v in &d.isolated {
            labels[v as usize] = next + v as u64;
        }
        prop_assert!(Labeling(labels).same_partition(&reference_components(&g)));
    }

    #[test]
    fn euler_cycle_lengths_are_2k_minus_2(g in arb_forest(300)) {
        // Each tree of k > 1 vertices yields one cycle of exactly 2k−2.
        let d = forest_to_cycles(&g);
        let mut lens = d.cycle_lengths();
        lens.sort_unstable();
        // Tree sizes from ground truth.
        let refl = reference_components(&g);
        let mut sizes = std::collections::HashMap::new();
        for v in 0..g.n() as u32 {
            *sizes.entry(refl.get(v)).or_insert(0usize) += 1;
        }
        let mut expected: Vec<usize> =
            sizes.values().filter(|&&k| k > 1).map(|&k| 2 * k - 2).collect();
        expected.sort_unstable();
        prop_assert_eq!(lens, expected);
    }

    #[test]
    fn contract_compose_roundtrip(g in arb_graph(150), classes in 1u64..40) {
        // Contracting by any vertex partition and composing a correct
        // labeling of the quotient yields a correct labeling of the input —
        // Definition 2.1 for Contract, for arbitrary (even cross-component)
        // mappings that refine nothing.
        let mapping: Vec<u64> = (0..g.n() as u64).map(|v| v % classes).collect();
        let c = contract(&g, &mapping);
        prop_assert!(c.new_n <= classes as usize);
        let h_labels = reference_components(&c.graph);
        let composed = Labeling(compose_labels(&c, &h_labels.0));
        // Composition must be a *coarsening* consistent with merging the
        // classes: check against union-find seeded with the class merges.
        let mut uf = UnionFind::new(g.n());
        for (u, v) in g.edges() { uf.union(u, v); }
        for v in 1..g.n() as u32 {
            let u = (0..v).find(|&u| mapping[u as usize] == mapping[v as usize]);
            if let Some(u) = u { uf.union(u, v); }
        }
        prop_assert!(composed.same_partition(&Labeling(uf.labels())));
    }

    #[test]
    fn shrink_general_is_cc_shrinking(g in arb_graph(120), t in 1usize..40, seed in 0u64..100) {
        let out = shrink_general(&g, t, 1 << 14, AmpcConfig::default().with_seed(seed)).unwrap();
        let h_labels = reference_components(&out.h);
        let composed = Labeling(out.to_h.iter().map(|&c| h_labels.get(c)).collect());
        prop_assert!(composed.same_partition(&reference_components(&g)));
    }

    #[test]
    fn sampled_subgraph_components_refine_originals(g in arb_graph(150), p in 0.0f64..1.0, seed in 0u64..100) {
        // H ⊆ G: every component of H lies inside one component of G, and
        // crossing edges + H's merges account for all of G's connectivity.
        let h = sample_edges(&g, p, seed);
        prop_assert_eq!(h.n(), g.n());
        prop_assert!(h.m() <= g.m());
        let gl = reference_components(&g);
        let hl = reference_components(&h);
        for (u, v) in h.edges() {
            prop_assert_eq!(gl.get(u), gl.get(v));
        }
        // Refinement: equal H-labels ⇒ equal G-labels.
        for v in 0..g.n() as u32 {
            for w in 0..v {
                if hl.get(v) == hl.get(w) {
                    prop_assert_eq!(gl.get(v), gl.get(w));
                }
            }
        }
        // Contracting H's components and adding crossing edges restores G's
        // component count.
        let crossing = crossing_edges(&g, &h);
        prop_assert!(crossing <= g.m());
    }

    #[test]
    fn labeling_canonicalization_is_idempotent(labels in prop::collection::vec(0u64..20, 1..100)) {
        let l = Labeling(labels);
        let c1 = Labeling(l.canonical());
        let c2 = Labeling(c1.canonical());
        prop_assert_eq!(&c1.0, &c2.0);
        prop_assert!(l.same_partition(&c1));
    }
}
