//! Property-based tests: correctness of the full pipelines and the
//! CC-shrinking contract on arbitrary random inputs.
//!
//! The build environment has no registry access, so instead of `proptest`
//! these properties run over a deterministic hand-rolled case loop: every
//! case derives from `ampc::rng` streams seeded by `(property tag, case
//! index)`, so failures reproduce exactly and `cargo test` never flakes.

use adaptive_mpc_connectivity::ampc::rng::SplitMix64;
use adaptive_mpc_connectivity::ampc::AmpcConfig;
use adaptive_mpc_connectivity::cc::forest::pipeline::{
    connected_components_forest, ForestCcConfig,
};
use adaptive_mpc_connectivity::cc::general::algorithm2::{
    connected_components_general, GeneralCcConfig,
};
use adaptive_mpc_connectivity::cc::general::sampling::{crossing_edges, sample_edges};
use adaptive_mpc_connectivity::cc::general::shrink_general::shrink_general;
use adaptive_mpc_connectivity::graph::contract::{compose_labels, contract};
use adaptive_mpc_connectivity::graph::euler::forest_to_cycles;
use adaptive_mpc_connectivity::graph::{reference_components, Graph, Labeling, UnionFind};

/// Cases per property — mirrors the original `ProptestConfig::with_cases(24)`.
const CASES: u64 = 24;

/// Deterministic per-case RNG: `tag` identifies the property, `case` the
/// iteration, so streams never collide across properties.
fn case_rng(tag: u64, case: u64) -> SplitMix64 {
    adaptive_mpc_connectivity::ampc::rng::stream(0x5EED_CA5E, tag, case, 0)
}

/// Random forest on 1..=max_n vertices: each vertex beyond the first may
/// attach to a uniformly random earlier vertex or stay detached.
fn arb_forest(rng: &mut SplitMix64, max_n: usize) -> Graph {
    let n = 1 + rng.next_below(max_n as u64) as usize;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for i in 1..n as u32 {
        if rng.bernoulli(0.8) {
            let parent = rng.next_below(i as u64) as u32;
            edges.push((parent, i));
        }
    }
    Graph::from_edges(n, &edges)
}

/// Random graph on 2..max_n vertices with up to `4n` arbitrary edges
/// (self-loops and duplicates included, as in the proptest original).
fn arb_graph(rng: &mut SplitMix64, max_n: usize) -> Graph {
    let n = 2 + rng.next_below(max_n as u64 - 2) as usize;
    let m = rng.next_below(4 * n as u64) as usize;
    let edges: Vec<(u32, u32)> = (0..m)
        .map(|_| (rng.next_below(n as u64) as u32, rng.next_below(n as u64) as u32))
        .collect();
    Graph::from_edges(n, &edges)
}

#[test]
fn forest_pipeline_matches_union_find() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let g = arb_forest(&mut rng, 400);
        let seed = rng.next_below(1000);
        let cfg = ForestCcConfig::default().with_seed(seed);
        let res = connected_components_forest(&g, &cfg).unwrap();
        assert!(
            res.labeling.same_partition(&reference_components(&g)),
            "case {case}: forest pipeline mismatch (n={}, seed={seed})",
            g.n()
        );
    }
}

#[test]
fn general_pipeline_matches_union_find() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let g = arb_graph(&mut rng, 200);
        let seed = rng.next_below(1000);
        let cfg = GeneralCcConfig::default().with_seed(seed);
        let res = connected_components_general(&g, &cfg).unwrap();
        assert!(
            res.labeling.same_partition(&reference_components(&g)),
            "case {case}: general pipeline mismatch (n={}, m={}, seed={seed})",
            g.n(),
            g.m()
        );
    }
}

#[test]
fn euler_tour_is_cc_shrinking() {
    // Observation 3.1: cycles partition per tree; labeling the cycles by
    // any CC-labeling and projecting through origins recovers the forest
    // components.
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let g = arb_forest(&mut rng, 300);
        let d = forest_to_cycles(&g);
        assert!(d.is_permutation(), "case {case}");
        // Label cycles by orbit.
        let mut cycle_label = vec![u64::MAX; d.len()];
        let mut next = 0u64;
        for s in 0..d.len() {
            if cycle_label[s] != u64::MAX {
                continue;
            }
            let mut cur = s;
            while cycle_label[cur] == u64::MAX {
                cycle_label[cur] = next;
                cur = d.succ[cur] as usize;
            }
            next += 1;
        }
        let mut labels = vec![u64::MAX; g.n()];
        for (a, &orig) in d.origin.iter().enumerate() {
            labels[orig as usize] = cycle_label[a];
        }
        for &v in &d.isolated {
            labels[v as usize] = next + v as u64;
        }
        assert!(
            Labeling(labels).same_partition(&reference_components(&g)),
            "case {case}: projected cycle labels are not a CC labeling"
        );
    }
}

#[test]
fn euler_cycle_lengths_are_2k_minus_2() {
    // Each tree of k > 1 vertices yields one cycle of exactly 2k−2.
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let g = arb_forest(&mut rng, 300);
        let d = forest_to_cycles(&g);
        let mut lens = d.cycle_lengths();
        lens.sort_unstable();
        // Tree sizes from ground truth.
        let refl = reference_components(&g);
        let mut sizes = std::collections::HashMap::new();
        for v in 0..g.n() as u32 {
            *sizes.entry(refl.get(v)).or_insert(0usize) += 1;
        }
        let mut expected: Vec<usize> =
            sizes.values().filter(|&&k| k > 1).map(|&k| 2 * k - 2).collect();
        expected.sort_unstable();
        assert_eq!(lens, expected, "case {case}");
    }
}

#[test]
fn contract_compose_roundtrip() {
    // Contracting by any vertex partition and composing a correct labeling
    // of the quotient yields a correct labeling of the input — Definition
    // 2.1 for Contract, for arbitrary (even cross-component) mappings.
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let g = arb_graph(&mut rng, 150);
        let classes = 1 + rng.next_below(39);
        let mapping: Vec<u64> = (0..g.n() as u64).map(|v| v % classes).collect();
        let c = contract(&g, &mapping);
        assert!(c.new_n <= classes as usize, "case {case}");
        let h_labels = reference_components(&c.graph);
        let composed = Labeling(compose_labels(&c, &h_labels.0));
        // Composition must be a *coarsening* consistent with merging the
        // classes: check against union-find seeded with the class merges.
        let mut uf = UnionFind::new(g.n());
        for (u, v) in g.edges() {
            uf.union(u, v);
        }
        for v in 1..g.n() as u32 {
            let u = (0..v).find(|&u| mapping[u as usize] == mapping[v as usize]);
            if let Some(u) = u {
                uf.union(u, v);
            }
        }
        assert!(composed.same_partition(&Labeling(uf.labels())), "case {case}");
    }
}

#[test]
fn shrink_general_is_cc_shrinking() {
    for case in 0..CASES {
        let mut rng = case_rng(6, case);
        let g = arb_graph(&mut rng, 120);
        let t = 1 + rng.next_below(39) as usize;
        let seed = rng.next_below(100);
        let out = shrink_general(&g, t, 1 << 14, AmpcConfig::default().with_seed(seed)).unwrap();
        let h_labels = reference_components(&out.h);
        let composed = Labeling(out.to_h.iter().map(|&c| h_labels.get(c)).collect());
        assert!(
            composed.same_partition(&reference_components(&g)),
            "case {case}: shrink_general broke components (t={t}, seed={seed})"
        );
    }
}

#[test]
fn sampled_subgraph_components_refine_originals() {
    // H ⊆ G: every component of H lies inside one component of G, and
    // crossing edges + H's merges account for all of G's connectivity.
    for case in 0..CASES {
        let mut rng = case_rng(7, case);
        let g = arb_graph(&mut rng, 150);
        let p = rng.next_f64();
        let seed = rng.next_below(100);
        let h = sample_edges(&g, p, seed);
        assert_eq!(h.n(), g.n(), "case {case}");
        assert!(h.m() <= g.m(), "case {case}");
        let gl = reference_components(&g);
        let hl = reference_components(&h);
        for (u, v) in h.edges() {
            assert_eq!(gl.get(u), gl.get(v), "case {case}: sampled edge leaves its component");
        }
        // Refinement: equal H-labels ⇒ equal G-labels.
        for v in 0..g.n() as u32 {
            for w in 0..v {
                if hl.get(v) == hl.get(w) {
                    assert_eq!(gl.get(v), gl.get(w), "case {case}: refinement violated");
                }
            }
        }
        // Contracting H's components and adding crossing edges restores G's
        // component count.
        let crossing = crossing_edges(&g, &h);
        assert!(crossing <= g.m(), "case {case}");
    }
}

#[test]
fn labeling_canonicalization_is_idempotent() {
    for case in 0..CASES {
        let mut rng = case_rng(8, case);
        let len = 1 + rng.next_below(99) as usize;
        let labels: Vec<u64> = (0..len).map(|_| rng.next_below(20)).collect();
        let l = Labeling(labels);
        let c1 = Labeling(l.canonical());
        let c2 = Labeling(c1.canonical());
        assert_eq!(&c1.0, &c2.0, "case {case}");
        assert!(l.same_partition(&c1), "case {case}");
    }
}
