//! Cost-accounting integration tests: the meters the experiments rely on
//! must themselves obey the paper's bookkeeping identities.

use adaptive_mpc_connectivity::cc::forest::pipeline::{
    connected_components_forest, ForestCcConfig,
};
use adaptive_mpc_connectivity::cc::general::algorithm2::{
    connected_components_general, GeneralCcConfig,
};
use adaptive_mpc_connectivity::graph::generators::{erdos_renyi_gnm, random_forest};

#[test]
fn forest_round_stats_are_internally_consistent() {
    let g = random_forest(8000, 20, 1);
    let res = connected_components_forest(&g, &ForestCcConfig::default()).unwrap();
    let stats = &res.stats;

    // Executed + charged = total.
    assert_eq!(stats.rounds(), stats.executed_rounds() + stats.charged_rounds());
    // Per-round indices are sequential.
    for (i, r) in stats.per_round().iter().enumerate() {
        assert_eq!(r.index, i);
        // Communication decomposition holds per round.
        assert_eq!(r.total_space_words, r.snapshot_words + r.read_words + r.write_words);
        // Per-machine maxima cannot exceed totals.
        assert!(r.max_machine_read_words <= r.read_words);
        assert!(r.max_machine_write_words <= r.write_words);
        // Reads transfer at least one word each.
        assert!(r.read_words >= r.reads);
        // The shuffle-cost model: 8 bytes of packed key per write plus
        // 8 bytes per value word moved at the round barrier.
        assert_eq!(r.bytes_shuffled, 8 * (r.writes + r.write_words));
    }
    // Total queries ≥ executed-round reads.
    let executed_reads: usize = stats.per_round().iter().map(|r| r.reads).sum();
    assert!(stats.total_queries() >= executed_reads);
    // Peak space dominates every round.
    for r in stats.per_round() {
        assert!(stats.peak_total_space() >= r.total_space_words);
    }
}

#[test]
fn forest_total_space_is_linear_in_n() {
    // Theorem 1.1's headline: optimal total space. With default (constant)
    // B0, every round's space is ≤ c·n for a modest c (B-dependent rounds
    // charge O(n·B) = O(n) communication).
    for n in [1 << 12, 1 << 14, 1 << 16] {
        let g = random_forest(n, 16, 2);
        let res = connected_components_forest(&g, &ForestCcConfig::default()).unwrap();
        let per_vertex = res.peak_space() as f64 / n as f64;
        assert!(per_vertex < 160.0, "n={n}: peak {per_vertex:.1} words/vertex — superlinear space");
    }
}

#[test]
fn forest_query_total_is_linear_in_n() {
    // Lemma 3.7 summed over the doubling schedule: Σ n_i·B_i = O(n).
    for n in [1 << 12, 1 << 15] {
        let g = random_forest(n, 16, 3);
        let res = connected_components_forest(&g, &ForestCcConfig::default()).unwrap();
        let per_vertex = res.queries() as f64 / n as f64;
        assert!(
            per_vertex < 220.0,
            "n={n}: {per_vertex:.1} queries/vertex — superlinear total queries"
        );
    }
}

#[test]
fn general_space_tracks_budget_shape() {
    // Theorem 1.2: per-round space O(m + n log^(k) n). Larger k must not
    // increase the configured budget, and measured peaks must stay within a
    // constant multiple of it.
    let g = erdos_renyi_gnm(4000, 16_000, 4);
    let mut budgets = Vec::new();
    for k in 1..=4 {
        let cfg = GeneralCcConfig::default().with_k(k).with_seed(5);
        let res = connected_components_general(&g, &cfg).unwrap();
        budgets.push(res.total_space);
        assert!(
            res.stats.peak_total_space() < 64 * res.total_space,
            "k={k}: peak {} way above budget {}",
            res.stats.peak_total_space(),
            res.total_space
        );
    }
    for w in budgets.windows(2) {
        assert!(w[1] <= w[0], "budget must be non-increasing in k: {budgets:?}");
    }
}

#[test]
fn per_iteration_outcomes_sum_to_total_removals() {
    let g = random_forest(6000, 6000 / 40, 6);
    let cfg = ForestCcConfig { skip_shrink_large: true, ..ForestCcConfig::default() };
    let res = connected_components_forest(&g, &cfg).unwrap();
    for it in &res.iterations {
        assert_eq!(
            it.alive_before - it.alive_after,
            it.loop_contracted + it.segment_contracted + it.step2_contracted + it.finished_cycles, // finished leaders also leave `alive`
            "iteration removal ledger out of balance: {it:?}"
        );
        assert!(it.alive_after <= it.alive_before);
    }
    // Iterations chain: alive_after of one = alive_before of the next.
    for w in res.iterations.windows(2) {
        assert_eq!(w[0].alive_after, w[1].alive_before);
    }
}

#[test]
fn audit_budget_scales_with_delta() {
    // Larger delta → larger S → same workload further under budget.
    let n = 1 << 14;
    let g = random_forest(n, 8, 7);
    let violations = |delta: f64| {
        let cfg = ForestCcConfig {
            delta,
            audit_limits: true,
            machines: n / 4,
            ..ForestCcConfig::default()
        };
        let res = connected_components_forest(&g, &cfg).unwrap();
        res.stats.violations().count()
    };
    assert_eq!(violations(0.9), 0, "roomy budget must hold");
}
