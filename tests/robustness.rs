//! Robustness and failure-injection tests: degenerate configurations,
//! starved walk budgets, extreme machine counts, and determinism.
//!
//! The cap-abstention analysis in `shrink_small.rs` claims the algorithms
//! stay *correct* (if slower) when adaptive walks are truncated early;
//! these tests inject exactly those conditions.

use adaptive_mpc_connectivity::ampc::AmpcConfig;
use adaptive_mpc_connectivity::cc::cycles::CycleState;
use adaptive_mpc_connectivity::cc::forest::pipeline::{
    connected_components_forest, ForestCcConfig,
};
use adaptive_mpc_connectivity::cc::forest::shrink_small::shrink_small_cycles;
use adaptive_mpc_connectivity::cc::general::algorithm2::{
    connected_components_general, GeneralCcConfig,
};
use adaptive_mpc_connectivity::graph::generators::{erdos_renyi_gnm, random_forest};
use adaptive_mpc_connectivity::graph::reference_components;

/// Drives rank-contraction iterations under a starved walk cap and checks
/// that labels remain exactly right.
#[test]
fn starved_walk_cap_preserves_correctness() {
    // One 500-cycle and one 37-cycle, with walks capped at 8 hops — far
    // below the cycle lengths, so probes constantly abstain.
    let mut succ: Vec<u64> = (0..500u64).map(|i| (i + 1) % 500).collect();
    succ.extend((0..37u64).map(|i| 500 + (i + 1) % 37));
    let mut st: CycleState =
        CycleState::from_successors(&succ, AmpcConfig::default().with_machines(4).with_seed(3));
    let mut guard = 0;
    while !st.alive.is_empty() {
        shrink_small_cycles(&mut st, 3, 8, true).unwrap();
        guard += 1;
        assert!(guard < 400, "starved run failed to converge");
    }
    let labels = st.compose_labels(3 * guard + 8).unwrap();
    // All of cycle 1 shares a label; all of cycle 2 shares a different one.
    assert!(labels[..500].iter().all(|&l| l == labels[0]));
    assert!(labels[500..].iter().all(|&l| l == labels[500]));
    assert_ne!(labels[0], labels[500]);
}

#[test]
fn cap_stalls_are_bounded_not_fatal() {
    // Even with cap = 2 (walks see a single neighbor), Step 2's whole-cycle
    // case never fires, but segment contraction between adjacent leaders
    // still makes progress. Tiny cycles keep everything finite.
    let succ: Vec<u64> = (0..60u64).map(|i| if i % 3 == 2 { i - 2 } else { i + 1 }).collect();
    let mut st: CycleState =
        CycleState::from_successors(&succ, AmpcConfig::default().with_machines(2).with_seed(9));
    let mut guard = 0;
    while !st.alive.is_empty() && guard < 300 {
        shrink_small_cycles(&mut st, 2, 2, true).unwrap();
        guard += 1;
    }
    assert!(st.alive.is_empty(), "3-cycles must finish even at cap 2");
}

#[test]
fn single_machine_deployment() {
    let g = random_forest(3000, 20, 5);
    let cfg = ForestCcConfig { machines: 1, ..ForestCcConfig::default() };
    let res = connected_components_forest(&g, &cfg).unwrap();
    assert!(res.labeling.same_partition(&reference_components(&g)));
}

#[test]
fn more_machines_than_items() {
    let g = random_forest(100, 5, 5);
    let cfg = ForestCcConfig { machines: 4096, ..ForestCcConfig::default() };
    let res = connected_components_forest(&g, &cfg).unwrap();
    assert!(res.labeling.same_partition(&reference_components(&g)));
}

#[test]
fn machine_count_does_not_change_results() {
    let g = random_forest(4000, 13, 11);
    let run = |machines: usize| {
        let mut cfg = ForestCcConfig::default().with_seed(21);
        cfg.machines = machines;
        connected_components_forest(&g, &cfg).unwrap()
    };
    let a = run(1);
    let b = run(7);
    let c = run(64);
    assert_eq!(a.labeling.0, b.labeling.0);
    assert_eq!(b.labeling.0, c.labeling.0);
    assert_eq!(a.rounds(), c.rounds());
    assert_eq!(a.queries(), c.queries());
}

#[test]
fn machine_count_does_not_change_general_results() {
    let g = erdos_renyi_gnm(1500, 4500, 13);
    let run = |machines: usize| {
        let mut cfg = GeneralCcConfig::default().with_seed(22);
        cfg.machines = machines;
        connected_components_general(&g, &cfg).unwrap()
    };
    let a = run(1);
    let b = run(32);
    assert_eq!(a.labeling.0, b.labeling.0);
    assert_eq!(a.stats.rounds(), b.stats.rounds());
}

#[test]
fn minimal_rank_width_b1() {
    // B = 1: all ranks identical — Step 1 contracts nothing except via
    // adjacent-leader ownership; Step 2 carries the whole load (Lemma 3.8).
    let g = random_forest(1500, 10, 17);
    let cfg = ForestCcConfig { b0: 1, double_b: false, ..ForestCcConfig::default() };
    let res = connected_components_forest(&g, &cfg).unwrap();
    assert!(res.labeling.same_partition(&reference_components(&g)));
}

#[test]
fn both_ablations_disabled_simultaneously() {
    let g = random_forest(1200, 30, 19);
    let cfg = ForestCcConfig { enable_step2: false, double_b: false, ..ForestCcConfig::default() };
    let res = connected_components_forest(&g, &cfg).unwrap();
    assert!(res.labeling.same_partition(&reference_components(&g)));
}

#[test]
fn zero_collect_threshold_finishes_distributed() {
    // Never collect locally: the rank machinery must drive every cycle to a
    // singleton on its own.
    let g = random_forest(2000, 8, 23);
    let cfg = ForestCcConfig { collect_threshold: 0, ..ForestCcConfig::default() };
    let res = connected_components_forest(&g, &cfg).unwrap();
    assert!(res.labeling.same_partition(&reference_components(&g)));
    assert!(!res.finisher.collected_locally);
}

#[test]
fn huge_collect_threshold_solves_locally() {
    let g = random_forest(2000, 8, 29);
    // Skip the main loop entirely (`max_iterations: 0`).
    let cfg = ForestCcConfig {
        collect_threshold: usize::MAX,
        max_iterations: 0,
        ..ForestCcConfig::default()
    };
    let res = connected_components_forest(&g, &cfg).unwrap();
    assert!(res.labeling.same_partition(&reference_components(&g)));
    assert!(res.finisher.collected_locally);
}

#[test]
fn dense_graph_under_tight_space_parameters() {
    let g = erdos_renyi_gnm(400, 12_000, 31);
    // Tiny machines (`delta`), tight total space (`k`).
    let cfg = GeneralCcConfig { delta: 0.4, k: 5, space_const: 1.0, ..GeneralCcConfig::default() };
    let res = connected_components_general(&g, &cfg).unwrap();
    assert!(res.labeling.same_partition(&reference_components(&g)));
}

#[test]
fn adversarial_vertex_id_orderings() {
    // Step 2 breaks ties by vertex id; descending / interleaved id layouts
    // exercise the compressor-selection logic differently.
    for perm in 0..3u64 {
        let n = 900u32;
        let edges: Vec<(u32, u32)> = (0..n - 1)
            .map(|i| {
                let map = |x: u32| match perm {
                    0 => x,
                    1 => n - 1 - x,
                    _ => (x * 7919) % n,
                };
                (map(i), map(i + 1))
            })
            .collect();
        let g = adaptive_mpc_connectivity::graph::Graph::from_edges(n as usize, &edges);
        let res = connected_components_forest(&g, &ForestCcConfig::default()).unwrap();
        assert!(res.labeling.same_partition(&reference_components(&g)), "id permutation {perm}");
    }
}

#[test]
fn hard_enforcement_surfaces_as_error() {
    // With enforce-mode budgets far below what any round needs, the
    // pipeline must fail loudly with the AMPC error, not silently degrade.
    use adaptive_mpc_connectivity::ampc::{AmpcError, SpaceLimits};
    use adaptive_mpc_connectivity::cc::cycles::CycleState;
    use adaptive_mpc_connectivity::cc::forest::shrink_small::shrink_small_cycles;

    let succ: Vec<u64> = (0..512u64).map(|i| (i + 1) % 512).collect();
    let mut st: CycleState = CycleState::from_successors(
        &succ,
        AmpcConfig::default().with_machines(2).with_limits(SpaceLimits::enforce(4)),
    );
    let err = shrink_small_cycles(&mut st, 4, 1 << 16, true).unwrap_err();
    let AmpcError::LimitExceeded(v) = err;
    assert_eq!(v.budget, 4);
    assert!(!v.round_name.is_empty());
}

#[test]
fn enforcement_with_adequate_budget_succeeds() {
    use adaptive_mpc_connectivity::ampc::SpaceLimits;
    use adaptive_mpc_connectivity::cc::cycles::CycleState;
    use adaptive_mpc_connectivity::cc::forest::shrink_small::shrink_small_cycles;

    let succ: Vec<u64> = (0..512u64).map(|i| (i + 1) % 512).collect();
    let mut st: CycleState = CycleState::from_successors(
        &succ,
        AmpcConfig::default()
            .with_machines(512) // one vertex per machine
            .with_seed(3)
            .with_limits(SpaceLimits::enforce(1 << 12)),
    );
    shrink_small_cycles(&mut st, 3, 1 << 16, true).expect("budget is ample");
}
