//! Smoke test of the `ampc-cc` binary: run it on a tiny bundled edge list
//! in every mode and assert a clean exit plus the correct component count.

use std::path::Path;
use std::process::Command;

fn run(args: &[&str]) -> std::process::Output {
    let exe = env!("CARGO_BIN_EXE_ampc-cc");
    let data = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data/smoke.txt");
    Command::new(exe).arg(data).args(args).output().expect("failed to spawn ampc-cc")
}

/// The bundled graph: path 0-1-2-3, triangle 4-5-6, isolated 7.
const EXPECTED_COMPONENTS: usize = 3;

#[test]
fn cli_modes_exit_cleanly_with_correct_count() {
    // The triangle makes the graph non-forest, so --forest is exercised on
    // the forest subset via --auto dispatch; run it only on the two modes
    // that accept a cyclic input, plus --auto.
    for mode in ["--general", "--auto"] {
        let out = run(&[mode, "--seed", "7"]);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(out.status.success(), "{mode}: exit {:?}\n{stderr}", out.status.code());
        assert!(
            stderr.contains(&format!("components = {EXPECTED_COMPONENTS}")),
            "{mode}: wrong component count\n{stderr}"
        );
    }
}

#[test]
fn cli_forest_mode_on_forest_input() {
    // --forest requires acyclic input, so this uses the bundled
    // forest-only fixture rather than the triangle-bearing smoke graph.
    let exe = env!("CARGO_BIN_EXE_ampc-cc");
    let data = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data/smoke_forest.txt");
    let out = Command::new(exe)
        .arg(&data)
        .args(["--forest", "--seed", "7"])
        .output()
        .expect("failed to spawn ampc-cc");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "--forest: exit {:?}\n{stderr}", out.status.code());
    assert!(stderr.contains("components = 3"), "--forest: wrong count\n{stderr}");
    assert!(stderr.contains("algorithm: 1"), "--forest must use Algorithm 1\n{stderr}");
}

#[test]
fn cli_auto_dispatches_by_input_shape() {
    let out = run(&["--auto"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    // The smoke graph has a triangle → not a forest → Algorithm 2.
    assert!(stderr.contains("algorithm: 2"), "auto on cyclic input\n{stderr}");

    let exe = env!("CARGO_BIN_EXE_ampc-cc");
    let data = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data/smoke_forest.txt");
    let out = Command::new(exe).arg(&data).arg("--auto").output().expect("spawn");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("algorithm: 1"), "auto on forest input\n{stderr}");
}

#[test]
fn cli_labels_output_is_a_valid_labeling() {
    let out = run(&["--general", "--labels"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let labels: Vec<(usize, u64)> = stdout
        .lines()
        .map(|l| {
            let mut it = l.split_whitespace();
            (it.next().unwrap().parse().unwrap(), it.next().unwrap().parse().unwrap())
        })
        .collect();
    assert_eq!(labels.len(), 8);
    // Path component together, triangle together, isolated vertex alone.
    assert_eq!(labels[0].1, labels[3].1);
    assert_eq!(labels[4].1, labels[6].1);
    assert_ne!(labels[0].1, labels[4].1);
    assert_ne!(labels[7].1, labels[0].1);
    assert_ne!(labels[7].1, labels[4].1);
}

#[test]
fn cli_rejects_bad_usage() {
    let exe = env!("CARGO_BIN_EXE_ampc-cc");
    let out = Command::new(exe).output().expect("spawn");
    assert_eq!(out.status.code(), Some(2), "missing file must exit 2");
    let out = Command::new(exe).args(["x.txt", "--bogus"]).output().expect("spawn");
    assert_eq!(out.status.code(), Some(2), "unknown flag must exit 2");
}

#[test]
fn cli_backend_grammar() {
    // Every backend spelling must run cleanly and report the same
    // component count (backends never change results); dense:4 forces the
    // overflow path even on the tiny smoke graph.
    for backend in ["flat", "sharded", "sharded:4", "dense", "dense:4"] {
        let out = run(&["--general", "--seed", "7", "--backend", backend]);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(out.status.success(), "--backend {backend}: exit {:?}\n{stderr}", out.status);
        let short = backend.split(':').next().unwrap();
        assert!(
            stderr.contains(&format!("dht backend: {short}")),
            "--backend {backend}: wrong backend reported\n{stderr}"
        );
        assert!(
            stderr.contains(&format!("components = {EXPECTED_COMPONENTS}")),
            "--backend {backend}: wrong component count\n{stderr}"
        );
    }
    // Malformed specs are usage errors.
    for backend in ["dense:0", "dense:x", "sharded:x", "bogus"] {
        let out = run(&["--backend", backend]);
        assert_eq!(out.status.code(), Some(2), "--backend {backend} must exit 2");
    }
}

fn run_query(args: &[&str]) -> std::process::Output {
    let exe = env!("CARGO_BIN_EXE_ampc-cc");
    let data = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data/smoke.txt");
    Command::new(exe).arg("query").arg(data).args(args).output().expect("failed to spawn ampc-cc")
}

#[test]
fn cli_query_mix_grammar_and_validation() {
    // Every mix spelling runs the serving path end to end: pipeline →
    // index → workload → per-answer union-find validation → throughput.
    for mix in ["uniform", "zipf", "zipf:0.9", "cross"] {
        let out = run_query(&["--seed", "7", "--queries", "2000", "--mix", mix, "--top", "2"]);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(out.status.success(), "--mix {mix}: exit {:?}\n{stderr}", out.status.code());
        assert!(
            stderr.contains("validated: 2000/2000 answers match the union-find reference"),
            "--mix {mix}: missing validation line\n{stderr}"
        );
        assert!(stderr.contains("throughput:"), "--mix {mix}: missing throughput\n{stderr}");
        assert!(stderr.contains("top 2 components"), "--mix {mix}: missing top-k\n{stderr}");
    }
    // Malformed query flags are usage errors.
    for bad in
        [&["--mix", "bogus"][..], &["--mix", "zipf:x"], &["--batch", "0"], &["--queries", "x"]]
    {
        let out = run_query(bad);
        assert_eq!(out.status.code(), Some(2), "query {bad:?} must exit 2");
    }
    // Query flags are rejected outside the query subcommand.
    let out = run(&["--mix", "uniform"]);
    assert_eq!(out.status.code(), Some(2), "--mix without the query subcommand must exit 2");
}

#[test]
fn cli_query_honors_pipeline_flags() {
    // --trace/--metrics/--labels are pipeline options and must work under
    // the query subcommand too.
    let out = run_query(&["--seed", "7", "--queries", "100", "--trace", "--metrics", "--labels"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "query with pipeline flags failed\n{stderr}");
    assert!(stderr.contains("metrics: components = 3"), "missing metrics line\n{stderr}");
    assert!(stderr.contains("round"), "missing trace ledger\n{stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.lines().count(), 8, "expected one label line per vertex\n{stdout}");
}

#[test]
fn cli_query_threads_reports_per_thread_and_reproducible_totals() {
    // The multi-threaded driver stripes the stream deterministically, so
    // the checksum must be identical at every thread count — and the text
    // report must carry one row per thread plus the aggregate.
    let base = run_query(&["--seed", "7", "--queries", "4000", "--threads", "3"]);
    let stderr = String::from_utf8_lossy(&base.stderr);
    assert!(base.status.success(), "--threads 3: exit {:?}\n{stderr}", base.status.code());
    assert!(stderr.contains("threads = 3"), "missing thread count\n{stderr}");
    for t in 0..3 {
        assert!(stderr.contains(&format!("thread {t}")), "missing per-thread row {t}\n{stderr}");
    }

    let checksum_of = |out: &std::process::Output| -> String {
        let stdout = String::from_utf8_lossy(&out.stdout);
        let line = stdout
            .lines()
            .find(|l| l.contains("\"checksum\""))
            .unwrap_or_else(|| panic!("no checksum in JSON\n{stdout}"))
            .to_string();
        line
    };
    let one = run_query(&["--seed", "7", "--queries", "4000", "--threads", "1", "--json"]);
    assert!(one.status.success());
    let four = run_query(&["--seed", "7", "--queries", "4000", "--threads", "4", "--json"]);
    assert!(four.status.success());
    assert_eq!(checksum_of(&one), checksum_of(&four), "checksum must not depend on --threads");
    let stdout = String::from_utf8_lossy(&four.stdout);
    assert!(stdout.contains("\"threads\": 4"), "missing threads field\n{stdout}");
    assert!(stdout.contains("\"thread\": 3"), "missing per-thread JSON rows\n{stdout}");

    // Zero or malformed thread counts are usage errors; --threads is
    // query-only like the other workload flags.
    for bad in [&["--threads", "0"][..], &["--threads", "x"]] {
        let out = run_query(bad);
        assert_eq!(out.status.code(), Some(2), "query {bad:?} must exit 2");
    }
    let out = run(&["--threads", "2"]);
    assert_eq!(out.status.code(), Some(2), "--threads without the query subcommand must exit 2");
}

#[test]
fn cli_query_file_answers_are_reported() {
    let dir = std::env::temp_dir().join("ampc_cli_query_test");
    std::fs::create_dir_all(&dir).unwrap();
    let qfile = dir.join("queries.txt");
    std::fs::write(&qfile, "# smoke queries\nconnected 0 3\nconnected 0 4\nsize 4\ntopk 1\n")
        .unwrap();
    let out = run_query(&["--query-file", qfile.to_str().unwrap(), "--json"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "query file run failed\n{stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"queries\": 4"), "wrong query count\n{stdout}");
    // connected(0,3)=1 + connected(0,4)=0 + size(4)=3 + topk(1)=4 ⇒ checksum 8.
    assert!(stdout.contains("\"checksum\": 8"), "wrong checksum\n{stdout}");
    let out = run_query(&["--query-file", "/definitely/missing.txt"]);
    assert_eq!(out.status.code(), Some(1), "missing query file must fail");
    std::fs::remove_file(&qfile).ok();
}

#[test]
fn cli_query_stream_validates_journal_epochs() {
    // --stream drives the incremental journal-epoch path: insertion batches
    // published without a rebuild, each validated against a from-scratch
    // union-find oracle.
    let out = run_query(&[
        "--seed",
        "7",
        "--queries",
        "500",
        "--stream",
        "3",
        "--stream-batch",
        "8",
        "--json",
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "--stream: exit {:?}\n{stderr}", out.status.code());
    assert!(
        stderr.contains("streaming: 3 batches × 8 edges"),
        "missing streaming summary\n{stderr}"
    );
    assert!(stderr.contains("all answers match the oracle"), "missing oracle validation\n{stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"streaming\": {"), "missing streaming JSON\n{stdout}");
    assert!(stdout.contains("\"final_epoch\": 3"), "3 batches must publish 3 epochs\n{stdout}");

    // Grammar: malformed or misplaced stream flags are usage errors.
    for bad in [&["--stream", "x"][..], &["--stream-batch", "0"], &["--stream-batch", "y"]] {
        let out = run_query(bad);
        assert_eq!(out.status.code(), Some(2), "query {bad:?} must exit 2");
    }
    let out = run(&["--stream", "2"]);
    assert_eq!(out.status.code(), Some(2), "--stream without the query subcommand must exit 2");
}

#[test]
fn cli_persist_then_boot_from_snapshot() {
    let exe = env!("CARGO_BIN_EXE_ampc-cc");
    let data = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data/smoke.txt");
    let snap = std::env::temp_dir().join(format!("ampc_cli_smoke_{}.snap", std::process::id()));
    let snap_str = snap.to_str().unwrap();

    // run --persist writes the snapshot after verification.
    let out = run(&["--general", "--seed", "7", "--persist", snap_str]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "--persist: exit {:?}\n{stderr}", out.status.code());
    assert!(stderr.contains("persisted:"), "missing persist line\n{stderr}");
    assert!(snap.exists(), "snapshot file must exist");

    // A live query run fixes the reference checksum for this seed.
    let live = run_query(&["--seed", "7", "--queries", "500", "--json"]);
    assert!(live.status.success());
    let checksum_line = |out: &std::process::Output| {
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .find(|l| l.contains("\"checksum\""))
            .expect("checksum line")
            .to_string()
    };
    let live_checksum = checksum_line(&live);

    // Boot without the graph file: no pipeline, checksum-validated only,
    // but byte-identical answers.
    let out = Command::new(exe)
        .args(["query", "--from-snapshot", snap_str, "--seed", "7", "--queries", "500", "--json"])
        .output()
        .expect("spawn");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "boot: exit {:?}\n{stderr}", out.status.code());
    assert!(stderr.contains("booted from snapshot"), "missing boot line\n{stderr}");
    assert!(stderr.contains("validation: skipped"), "missing skip notice\n{stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"from_snapshot\": true"), "missing snapshot marker\n{stdout}");
    assert_eq!(checksum_line(&out), live_checksum, "booted answers must equal live answers");

    // Boot *with* the graph file: full per-answer union-find validation.
    let out = Command::new(exe)
        .args(["query"])
        .arg(&data)
        .args(["--from-snapshot", snap_str, "--seed", "7", "--queries", "500", "--json"])
        .output()
        .expect("spawn");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "boot+file: exit {:?}\n{stderr}", out.status.code());
    assert!(
        stderr.contains("validated: 500/500 answers match the union-find reference"),
        "boot+file must fully validate\n{stderr}"
    );
    assert_eq!(checksum_line(&out), live_checksum, "boot+file answers must equal live answers");

    // A corrupted snapshot is a typed load error (exit 1, not a panic),
    // and --stream needs the edge list a snapshot does not carry.
    let mut bytes = std::fs::read(&snap).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x80;
    std::fs::write(&snap, &bytes).unwrap();
    let out = Command::new(exe)
        .args(["query", "--from-snapshot", snap_str, "--queries", "10"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1), "corrupt snapshot must exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("checksum"), "must blame a checksum\n{stderr}");
    let out = Command::new(exe)
        .args(["query", "--from-snapshot", snap_str, "--stream", "2"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1), "--stream without a graph file must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--stream needs the graph file"), "wrong diagnosis\n{stderr}");
    std::fs::remove_file(&snap).ok();

    // Grammar: the flags are mode-specific.
    let out = run(&["--from-snapshot", "x.snap"]);
    assert_eq!(out.status.code(), Some(2), "--from-snapshot outside query must exit 2");
    let out = run_query(&["--persist", "x.snap"]);
    assert_eq!(out.status.code(), Some(2), "--persist under query must exit 2");
    let out = Command::new(exe)
        .args(["query", "--from-snapshot", "/definitely/missing.snap"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1), "missing snapshot must exit 1");
}

#[test]
fn cli_query_metrics_json_and_trace_grammar() {
    // The --json metrics object has a stable schema: every catalog entry
    // appears (counters, gauges, histogram summaries), and the pipeline +
    // serving counters are live after a real run.
    let out = run_query(&["--seed", "7", "--queries", "1000", "--json"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "query --json: exit {:?}\n{stderr}", out.status.code());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for field in [
        "\"metrics\": {",
        "\"counters\": {",
        "\"gauges\": {",
        "\"histograms\": {",
        "\"ampc_rounds_total\":",
        "\"serve_epochs_published_total\":",
        "\"query_latency_ns\": { \"count\": 1000,",
        "\"latency\": { \"queries\": 1000,",
        "\"p999_ns\":",
    ] {
        assert!(stdout.contains(field), "missing {field}\n{stdout}");
    }
    assert!(!stdout.contains("\"trace\": ["), "trace array needs --trace N\n{stdout}");
    assert!(stderr.contains("latency: p50 = "), "missing latency line\n{stderr}");

    // --trace N dumps the last N trace events (JSON array / stderr text);
    // bare --trace keeps the round-ledger behavior.
    let out = run_query(&["--seed", "7", "--queries", "100", "--trace", "4", "--json"]);
    assert!(out.status.success(), "--trace 4 --json failed");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"trace\": ["), "missing trace array\n{stdout}");
    assert!(stdout.contains("\"kind\": \"epoch_published\""), "missing publish event\n{stdout}");
    let out = run_query(&["--seed", "7", "--queries", "100", "--trace", "3", "--metrics"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "--trace 3: exit {:?}\n{stderr}", out.status.code());
    assert!(stderr.contains("trace: last "), "missing trace dump\n{stderr}");
    assert!(stderr.contains("epoch_published"), "missing publish event\n{stderr}");
    assert!(stderr.contains("process metrics:"), "missing metrics table\n{stderr}");
    assert!(stderr.contains("query_latency_ns"), "missing latency row\n{stderr}");
}

#[test]
fn cli_json_run_output_is_machine_readable() {
    let out = run(&["--general", "--seed", "7", "--json"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // One object carrying the labeling and the RunStats headline numbers.
    for field in [
        "\"n\": 8",
        "\"m\": 6",
        "\"algorithm\": 2",
        "\"components\": 3",
        "\"rounds\":",
        "\"bytes_shuffled\":",
        "\"metrics\": {",
        "\"ampc_bytes_shuffled_total\":",
        "\"labels\": [",
    ] {
        assert!(stdout.contains(field), "missing {field}\n{stdout}");
    }
    // The canonical labels of the smoke graph: path 0-1-2-3, triangle
    // 4-5-6, isolated 7.
    assert!(stdout.contains("[0, 0, 0, 0, 4, 4, 4, 7]"), "wrong labels\n{stdout}");
}
