//! Quickstart: connected components of a forest and of a general graph.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use adaptive_mpc_connectivity::cc::forest::pipeline::{
    connected_components_forest, ForestCcConfig,
};
use adaptive_mpc_connectivity::cc::general::algorithm2::{
    connected_components_general, GeneralCcConfig,
};
use adaptive_mpc_connectivity::graph::generators::{erdos_renyi_gnm, random_forest};
use adaptive_mpc_connectivity::graph::reference_components;

fn main() {
    // ----- Theorem 1.1: forests in O(log* n) rounds, optimal space -----
    let forest = random_forest(100_000, 50, 42);
    let cfg = ForestCcConfig::default().with_seed(7);
    let result = connected_components_forest(&forest, &cfg).expect("forest run");
    assert!(result.labeling.same_partition(&reference_components(&forest)));
    println!("forest: n = {}, components = {}", forest.n(), result.labeling.num_components());
    println!(
        "  AMPC rounds = {}  (log* n = {})",
        result.rounds(),
        adaptive_mpc_connectivity::cc::log_star(forest.n() as f64)
    );
    println!(
        "  total queries = {} ({:.1} per vertex)",
        result.queries(),
        result.queries() as f64 / forest.n() as f64
    );
    println!(
        "  peak round space = {} words ({:.1} per vertex — linear, as Theorem 1.1 promises)",
        result.peak_space(),
        result.peak_space() as f64 / forest.n() as f64
    );

    // ----- Theorem 1.2: general graphs in 2^O(k) rounds -----
    let graph = erdos_renyi_gnm(20_000, 80_000, 43);
    let cfg = GeneralCcConfig::default().with_seed(7).with_k(2);
    let result = connected_components_general(&graph, &cfg).expect("general run");
    assert!(result.labeling.same_partition(&reference_components(&graph)));
    println!(
        "\ngeneral: n = {}, m = {}, components = {}",
        graph.n(),
        graph.m(),
        result.labeling.num_components()
    );
    println!(
        "  recursive ConnectedComponents calls = {} (Lemma 4.6: 2^O(k), k = 2)",
        result.cc_calls
    );
    println!("  AMPC rounds = {}", result.stats.rounds());
    println!("  space budget T = {} words", result.total_space);
}
