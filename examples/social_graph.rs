//! Community detection preprocessing on a social-network-shaped graph.
//!
//! The paper's motivation: connected components is a core primitive of
//! massive-graph pipelines (deduplication, community pre-clustering,
//! reachability). This example runs Algorithm 2 on a heavy-tailed
//! preferential-attachment graph sprinkled with isolated "ghost" accounts
//! and small cliques (bot rings), then cross-checks the result against the
//! BDE+21 Theorem 4.1 solver and sequential ground truth.
//!
//! ```text
//! cargo run --release --example social_graph
//! ```

use adaptive_mpc_connectivity::ampc::AmpcConfig;
use adaptive_mpc_connectivity::cc::general::algorithm2::{
    connected_components_general, GeneralCcConfig,
};
use adaptive_mpc_connectivity::cc::general::bdeplus::theorem41;
use adaptive_mpc_connectivity::graph::generators::{
    disjoint_cliques, disjoint_union, preferential_attachment,
};
use adaptive_mpc_connectivity::graph::{reference_components, Graph};

fn main() {
    // 50k-user core network + 200 bot rings of 8 accounts + 1k ghosts.
    let core = preferential_attachment(50_000, 4, 1);
    let bots = disjoint_cliques(200, 8);
    let ghosts = Graph::empty(1_000);
    let g = disjoint_union(&[core, bots, ghosts]);
    println!("social graph: n = {}, m = {}, max degree = {}", g.n(), g.m(), g.max_degree());

    let truth = reference_components(&g);
    println!("ground truth components = {}", truth.num_components());

    // Algorithm 2 (this paper).
    let cfg = GeneralCcConfig::default().with_seed(99).with_k(2);
    let ours = connected_components_general(&g, &cfg).expect("algorithm 2");
    assert!(ours.labeling.same_partition(&truth));
    println!("\nAlgorithm 2 (Theorem 1.2, k = 2):");
    println!("  components        = {}", ours.labeling.num_components());
    println!("  cc calls          = {}", ours.cc_calls);
    println!("  AMPC rounds       = {}", ours.stats.rounds());
    println!("  total queries     = {}", ours.stats.total_queries());
    println!("  peak round space  = {} words", ours.stats.peak_total_space());
    println!("  space budget T    = {} words", ours.total_space);

    // Baseline: BDE+21 Theorem 4.1 with 8× linear space.
    let t_total = 8 * (g.n() + g.m());
    let s_local = ((g.n() + g.m()) as f64).powf(0.6) as usize;
    let base =
        theorem41(&g, t_total, s_local, &AmpcConfig::default().with_seed(99)).expect("theorem 4.1");
    assert!(base.labeling.same_partition(&truth));
    println!("\nBDE+21 Theorem 4.1 baseline (T = 8N):");
    println!("  ShrinkGeneral levels = {} (budgets {:?})", base.levels, base.budgets);
    println!("  AMPC rounds          = {}", base.stats.rounds());
    println!("  peak round space     = {} words", base.stats.peak_total_space());

    // The paper's point: both are round-efficient, but Algorithm 2 achieves
    // it under a near-linear space budget while the baseline needed 8N.
    let ratio = base.stats.peak_total_space() as f64 / ours.stats.peak_total_space() as f64;
    println!("\npeak-space ratio baseline/ours = {ratio:.2}");
}
