//! Watershed census: labeling river networks (forests) at scale.
//!
//! Hydrological networks are forests: streams merge but never split, so a
//! continent's river system is a set of trees rooted at ocean outlets.
//! Assigning every stream segment its watershed id is exactly forest
//! connectivity. This example runs Algorithm 1 on such a forest and prints
//! the per-iteration shrink telemetry — the observable form of the paper's
//! `n_i ≤ n / (2↑↑i)` double-exponential progress (Section 3.3).
//!
//! ```text
//! cargo run --release --example forest_census
//! ```

use adaptive_mpc_connectivity::cc::forest::pipeline::{
    connected_components_forest, ForestCcConfig,
};
use adaptive_mpc_connectivity::graph::generators::random_forest;
use adaptive_mpc_connectivity::graph::reference_components;

fn main() {
    // 300k stream segments across ~1200 watersheds of ~256 segments each.
    let n = 300_000;
    let g = random_forest(n, n / 256, 2024);
    println!("river network: {} segments, {} watersheds", g.n(), n / 256);

    // Skip the length-capping preprocessing so the doubling-B loop is
    // visible end to end (watershed trees are mid-sized; their Euler cycles
    // fit the walk budget).
    let mut cfg = ForestCcConfig::default().with_seed(5);
    cfg.skip_shrink_large = true;
    cfg.b0 = 2;
    let res = connected_components_forest(&g, &cfg).expect("forest run");
    assert!(res.labeling.same_partition(&reference_components(&g)));

    println!("\nper-iteration telemetry (ShrinkSmallCycles):");
    println!(
        "{:>4} {:>4} {:>12} {:>12} {:>8} {:>10} {:>10} {:>10}",
        "it", "B", "alive", "after", "drop", "loop-rm", "seg-rm", "step2-rm"
    );
    for (i, it) in res.iterations.iter().enumerate() {
        println!(
            "{:>4} {:>4} {:>12} {:>12} {:>7.1}x {:>10} {:>10} {:>10}",
            i + 1,
            it.b,
            it.alive_before,
            it.alive_after,
            it.alive_before as f64 / it.alive_after.max(1) as f64,
            it.loop_contracted,
            it.segment_contracted,
            it.step2_contracted,
        );
    }
    println!(
        "\nfinisher: {} high-budget iterations (B = {}), collected locally: {}",
        res.finisher.iterations, res.finisher.b, res.finisher.collected_locally
    );
    println!(
        "total: {} AMPC rounds, {:.1} queries/segment, {:.1} peak words/segment",
        res.rounds(),
        res.queries() as f64 / g.n() as f64,
        res.peak_space() as f64 / g.n() as f64
    );
    println!("watersheds labeled: {}", res.labeling.num_components());
}
