//! The Theorem 1.1 dial: trading rounds for total space.
//!
//! `O(k)` rounds cost `O(n · log^(k) n)` total space — a tunable knob for
//! operators who can spare memory to cut synchronization barriers. This
//! example sweeps `k` on one forest and prints both sides of the trade.
//!
//! ```text
//! cargo run --release --example space_round_tradeoff
//! ```

use adaptive_mpc_connectivity::cc::forest::pipeline::{
    connected_components_forest, ForestCcConfig,
};
use adaptive_mpc_connectivity::cc::{log_iter, log_star};
use adaptive_mpc_connectivity::graph::generators::random_forest;
use adaptive_mpc_connectivity::graph::reference_components;

fn main() {
    let n = 1 << 18;
    let g = random_forest(n, n / 512, 77);
    let truth = reference_components(&g);
    println!("forest: n = {} ({} trees), log* n = {}\n", n, n / 512, log_star(n as f64));
    println!(
        "{:>3} {:>5} {:>12} {:>8} {:>16} {:>18}",
        "k", "B0", "iterations", "rounds", "peak words/n", "paper log^(k) n"
    );
    for k in 1..=5u32 {
        let mut cfg = ForestCcConfig::default().with_seed(3).with_tradeoff_k(n, k);
        cfg.skip_shrink_large = true;
        let res = connected_components_forest(&g, &cfg).expect("forest run");
        assert!(res.labeling.same_partition(&truth));
        println!(
            "{:>3} {:>5} {:>12} {:>8} {:>16.1} {:>18.2}",
            k,
            cfg.b0,
            res.iterations.len(),
            res.rounds(),
            res.peak_space() as f64 / n as f64,
            log_iter(n as f64, k),
        );
    }
    println!("\nSmaller k → bigger first-iteration budget B0 → fewer, heavier iterations.");
    println!("At k = log* n the budget is constant and space is optimal (linear).");
}
