//! Writing your own AMPC algorithm against the `ampc` runtime.
//!
//! The runtime is not specific to connectivity: this example implements
//! *list ranking* (distance of every element to the tail of a linked list)
//! as a fresh AMPC algorithm, using the same adaptive-read DHT interface
//! the paper's algorithms are built on — sampled splitters, adaptive
//! traversal, and per-round metering.
//!
//! It also demonstrates picking a DHT storage backend: the system below
//! runs on the sharded store (`ShardedDht`), whose round-finish merge is
//! shard-parallel. Results are byte-identical to the flat reference
//! backend — swap the type parameter and `with_backend` call to compare.
//!
//! ```text
//! cargo run --release --example custom_ampc_algorithm
//! ```

use adaptive_mpc_connectivity::ampc::{
    AmpcConfig, AmpcSystem, DhtBackend, DhtStorage as _, Key, ShardedDht, Space,
};

const NEXT: Space = 0; // successor pointers (u64::MAX = tail)
const DIST: Space = 1; // resolved distance to the tail

fn main() {
    // A linked list of n elements, scrambled in memory.
    let n: u64 = 20_000;
    let order: Vec<u64> = {
        // Deterministic shuffle via a Feistel-ish mix.
        let mut v: Vec<u64> = (0..n).collect();
        for i in (1..v.len()).rev() {
            let j = (adaptive_mpc_connectivity::ampc::rng::mix(i as u64) % (i as u64 + 1)) as usize;
            v.swap(i, j);
        }
        v
    };
    let tail = *order.last().unwrap();

    let mut sys: AmpcSystem<u64, ShardedDht<u64>> = AmpcSystem::new(
        AmpcConfig::default().with_machines(16).with_seed(11).with_backend(DhtBackend::sharded()),
        order.windows(2).map(|w| (Key::new(NEXT, w[0]), w[1])),
    );

    // Round 1: sample splitters at rate 1/√n; splitters and the tail anchor
    // the list into segments no longer than ~√n·ln n w.h.p. The splitter
    // predicate must be a pure function of the element (NOT ctx.rng, which
    // salts by round index) because round 2 re-evaluates it during walks.
    let items: Vec<u64> = (0..n).collect();
    let rate = 1.0 / (n as f64).sqrt();
    let is_splitter = move |v: u64| -> bool {
        v == tail || adaptive_mpc_connectivity::ampc::rng::stream(11, 0, 0, v).bernoulli(rate)
    };
    let splitters: Vec<u64> = sys
        .round("sample-splitters", &items, |_ctx, &v| is_splitter(v).then_some(v))
        .expect("round")
        .results;
    println!("sampled {} splitters for n = {n}", splitters.len());

    // Round 2: every splitter walks to the next splitter, recording its
    // segment length (adaptive reads — the walk IS the AMPC superpower).
    let cap = 64 * (n as f64).sqrt() as usize;
    let seg: Vec<(u64, u64, u64)> = sys
        .round("measure-segments", &splitters, |ctx, &s| {
            if s == tail {
                return None;
            }
            let mut cur = s;
            let mut len = 0u64;
            for _ in 0..cap {
                match ctx.read(Key::new(NEXT, cur)) {
                    Some(&nxt) => {
                        len += 1;
                        cur = nxt;
                        if is_splitter(cur) {
                            return Some((s, cur, len));
                        }
                    }
                    None => return Some((s, cur, len)), // hit the tail
                }
            }
            panic!("segment exceeded cap — resample");
        })
        .expect("round")
        .results;

    // Host: chain the splitter segments into absolute tail distances
    // (orchestration over O(√n) items — fits one machine).
    use std::collections::HashMap;
    let next_splitter: HashMap<u64, (u64, u64)> =
        seg.iter().map(|&(s, t, l)| (s, (t, l))).collect();
    let mut dist: HashMap<u64, u64> = HashMap::from([(tail, 0)]);
    // Resolve by repeated relaxation (≤ #splitters passes; ~2 in practice).
    let mut remaining: Vec<u64> = splitters.iter().copied().filter(|&s| s != tail).collect();
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|&s| {
            let (t, l) = next_splitter[&s];
            if let Some(&dt) = dist.get(&t) {
                dist.insert(s, dt + l);
                false
            } else {
                true
            }
        });
        assert!(remaining.len() < before, "splitter chain cycle");
    }
    sys.stats_mut().charge_external(1, splitters.len() * 2, splitters.len() * 2);

    // Round 3: every element walks to its next splitter and writes its
    // final rank.
    let dist_vec: Vec<(u64, u64)> = dist.iter().map(|(&k, &v)| (k, v)).collect();
    sys.host_update(|dht| {
        for &(s, d) in &dist_vec {
            dht.insert(Key::new(DIST, s), d);
        }
    });
    sys.stats_mut().charge_external(1, dist_vec.len(), dist_vec.len());

    let ranks: Vec<(u64, u64)> = sys
        .round("rank-elements", &items, |ctx, &v| {
            if let Some(&d) = ctx.read(Key::new(DIST, v)) {
                return Some((v, d));
            }
            let mut cur = v;
            let mut hops = 0u64;
            loop {
                let nxt = *ctx.read(Key::new(NEXT, cur)).expect("chain");
                hops += 1;
                if let Some(&d) = ctx.read(Key::new(DIST, nxt)) {
                    return Some((v, d + hops));
                }
                cur = nxt;
            }
        })
        .expect("round")
        .results;

    // Verify against the generation order.
    let mut expected = vec![0u64; n as usize];
    for (i, &v) in order.iter().enumerate() {
        expected[v as usize] = n - 1 - i as u64;
    }
    for &(v, d) in &ranks {
        assert_eq!(d, expected[v as usize], "element {v} misranked");
    }
    println!("list ranking verified for all {n} elements");
    println!(
        "AMPC rounds = {}, queries = {}, peak round space = {} words",
        sys.stats().rounds(),
        sys.stats().total_queries(),
        sys.stats().peak_total_space()
    );
}
