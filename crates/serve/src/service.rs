//! `ConnectivityService` — the run→validate→index→serve lifecycle as a
//! first-class API, now with an incremental delta path.
//!
//! [`ServiceBuilder`] runs a [`PipelineSpec`] over a graph, validates the
//! labeling against the graph (the same check the CLI always performed),
//! freezes it into a [`ComponentIndex`], and publishes it as epoch 0 of an
//! [`EpochCell`]. The resulting [`ServiceHandle`] is clone-able and
//! thread-safe: any number of reader threads call
//! [`ServiceHandle::snapshot`] — a lock-free pin — and answer queries
//! against their pinned epoch, while [`ServiceHandle::rebuild`] runs the
//! pipeline on a *background thread* and publishes the new index
//! atomically. Readers holding old snapshots are never blocked and never
//! observe a half-built index; a retired epoch's memory is reclaimed once
//! the last snapshot pinning it is dropped.
//!
//! **Journal-epochs** ([`ServiceHandle::insert_edges`]): a streaming edge
//! insertion can only *merge* components, so instead of re-running the
//! pipeline the service unions the endpoints' dense component ids in a
//! union-find over the current base index and publishes the result as a
//! [`JournalView`] riding on the unchanged base — an `O(components)`
//! publish instead of an `O(n + m)` rebuild. Snapshots of a journal-epoch
//! answer through a merge-aware engine (one extra array read per id) and
//! are byte-identical to a from-scratch build over the merged graph (see
//! `ampc_query::journal` for the argument). Once the journal outgrows its
//! [`JournalBudget`], the service *compacts*: a background pipeline rebuild
//! over the merged graph, with insertions accepted throughout and replayed
//! onto the new base when it lands.
//!
//! **Rebuild ordering**: rebuild requests take a ticket at request time and
//! publish strictly in ticket order, so a slow earlier-requested rebuild
//! can never overwrite a newer epoch (publish order used to be completion
//! order — a race). Journal publishes and rebuild publishes are serialized
//! through the stream lock, so the epoch sequence is a single total order.
//!
//! Per-epoch determinism: a published base index is a pure function of the
//! (spec, graph) pair — the pipelines are seed-deterministic and the index
//! remaps labels by partition — and a journal-epoch is a pure function of
//! (base, inserted edges), so every snapshot of one epoch answers
//! byte-identically on every thread, machine, and backend.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Weak};
use std::thread::JoinHandle;
use std::time::Instant;

use ampc::{AmpcError, RunStats};
use ampc_cc::pipeline::{Algorithm, Pipeline as _, PipelineSpec, ResolvedAlgorithm};
use ampc_graph::{Graph, Labeling, UnionFind, VertexId};
use ampc_obs::{CounterId, GaugeId, HistId, TraceKind};
use ampc_query::{snapshot, ComponentIndex, JournalView, QueryEngine, SnapshotError};

use crate::epoch::{EpochCell, EpochGuard};
use crate::fault::{self, InjectedFault, Site};

/// Errors surfaced by the serving layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The underlying pipeline run failed.
    Pipeline(AmpcError),
    /// The pipeline produced a labeling that does not validate against the
    /// graph (index construction refused it).
    InvalidLabeling(String),
    /// A background rebuild thread panicked.
    RebuildPanicked,
    /// An inserted edge names a vertex the current graph does not have.
    /// The whole batch is rejected: nothing was applied or published.
    VertexOutOfRange {
        /// The offending endpoint.
        vertex: VertexId,
        /// Vertex count of the current graph.
        n: usize,
    },
    /// Freezing the insert batch's merges into a journal failed. The
    /// batch was rolled back: nothing was applied or published (this used
    /// to be a reachable `expect` on the caller's thread).
    JournalBuild(String),
    /// The service is in the [`HealthState::ReadOnly`] state after
    /// repeated failures: inserts are refused, reads keep serving the
    /// last published epoch, and a successful explicit
    /// [`ServiceHandle::rebuild`] restores service.
    ReadOnly,
    /// A failpoint fired ([`crate::fault`]): the deterministic
    /// fault-injection harness, never seen in production.
    Injected {
        /// Name of the failpoint site that fired.
        site: &'static str,
    },
    /// Booting from a snapshot failed (the typed reason, stringified for
    /// the incident log) — [`ServiceBuilder::from_snapshot_or_rebuild`]
    /// records this before falling back to a pipeline build.
    SnapshotBoot(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Pipeline(e) => write!(f, "pipeline run failed: {e}"),
            ServeError::InvalidLabeling(msg) => write!(f, "labeling rejected: {msg}"),
            ServeError::RebuildPanicked => write!(f, "background rebuild thread panicked"),
            ServeError::VertexOutOfRange { vertex, n } => {
                write!(f, "inserted edge names vertex {vertex} but the graph has {n} vertices")
            }
            ServeError::JournalBuild(msg) => write!(f, "journal build failed: {msg}"),
            ServeError::ReadOnly => {
                write!(
                    f,
                    "service is read-only after repeated failures \
                     (reads keep serving; a successful rebuild restores inserts)"
                )
            }
            ServeError::Injected { site } => write!(f, "injected fault at failpoint `{site}`"),
            ServeError::SnapshotBoot(msg) => write!(f, "snapshot boot failed: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<AmpcError> for ServeError {
    fn from(e: AmpcError) -> Self {
        ServeError::Pipeline(e)
    }
}

impl From<InjectedFault> for ServeError {
    fn from(f: InjectedFault) -> Self {
        ServeError::Injected { site: f.site.name() }
    }
}

/// The degradation state machine every [`ServiceHandle`] carries.
///
/// ```text
///            failure                    failure (Nth consecutive)
/// Healthy ───────────▶ Degraded ─────────────────────▶ ReadOnly
///    ▲                    │  ▲                             │
///    │   compaction /     │  │ failed retry                │
///    │   rebuild success  │  │ (backoff doubles)           │
///    └────────────────────┘  └─────────────────────────────┘
///    ▲                                                     │
///    └──────────── explicit rebuild succeeds ──────────────┘
/// ```
///
/// * **Healthy** — the happy path of PRs 5–7.
/// * **Degraded** — a rebuild/compaction/journal build failed. Reads are
///   untouched; inserts keep landing as journal-epochs; the journal
///   budget is suspended in favor of a bounded retry-with-backoff
///   compaction schedule (deterministic under an injectable [`Clock`]).
/// * **ReadOnly** — [`RetryPolicy::max_consecutive_failures`] failures in
///   a row. Inserts return [`ServeError::ReadOnly`]; reads keep serving
///   the last published epoch; only a successful explicit
///   [`ServiceHandle::rebuild`] (new ground truth) restores `Healthy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Serving normally.
    Healthy,
    /// A failure was recorded; retrying compaction with backoff.
    Degraded,
    /// Too many consecutive failures; inserts refused until an explicit
    /// rebuild succeeds.
    ReadOnly,
}

impl HealthState {
    /// Stable lowercase name (CLI/JSON).
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::ReadOnly => "read-only",
        }
    }
}

/// Which operation an [`Incident`] was recorded against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncidentOp {
    /// An explicit [`ServiceHandle::rebuild`].
    Rebuild,
    /// A budget-triggered or retry compaction.
    Compaction,
    /// A journal-epoch freeze on the insert path.
    JournalBuild,
    /// A snapshot boot that fell back to a pipeline build.
    Boot,
}

impl IncidentOp {
    /// Stable lowercase name (CLI/JSON).
    pub fn name(self) -> &'static str {
        match self {
            IncidentOp::Rebuild => "rebuild",
            IncidentOp::Compaction => "compaction",
            IncidentOp::JournalBuild => "journal-build",
            IncidentOp::Boot => "boot",
        }
    }
}

/// One recorded failure. The log is bounded
/// ([`RetryPolicy::max_incidents`]): `seq` keeps a global count even
/// after old entries are evicted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Incident {
    /// 1-based global sequence number (total incidents ever recorded).
    pub seq: u64,
    /// [`Clock::now_ms`] when the incident was recorded.
    pub at_ms: u64,
    /// The operation that failed.
    pub op: IncidentOp,
    /// The typed failure.
    pub error: ServeError,
}

/// Bounded retry-with-backoff policy for the degradation state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Consecutive failures before the service enters
    /// [`HealthState::ReadOnly`].
    pub max_consecutive_failures: u32,
    /// Backoff before the first compaction retry.
    pub base_backoff_ms: u64,
    /// Backoff ceiling (the doubling stops here).
    pub max_backoff_ms: u64,
    /// Incident-log bound (oldest entries are evicted first).
    pub max_incidents: usize,
}

impl RetryPolicy {
    /// `min(base << (failures − 1), max)` — deterministic, no jitter: the
    /// service is single-writer per lineage, so thundering herds are not
    /// a concern and reproducibility (chaos schedules, incident replay)
    /// is.
    pub fn backoff_ms(&self, consecutive_failures: u32) -> u64 {
        let doublings = consecutive_failures.saturating_sub(1).min(32);
        self.base_backoff_ms.saturating_mul(1u64 << doublings).min(self.max_backoff_ms)
    }
}

impl Default for RetryPolicy {
    /// 5 strikes, 100 ms → 10 s backoff, 64 incidents retained.
    fn default() -> Self {
        RetryPolicy {
            max_consecutive_failures: 5,
            base_backoff_ms: 100,
            max_backoff_ms: 10_000,
            max_incidents: 64,
        }
    }
}

/// The time source the retry/backoff policy reads. Injectable so chaos
/// tests (and incident replays) advance time deterministically instead of
/// sleeping.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Milliseconds since an arbitrary fixed origin; must be monotone.
    fn now_ms(&self) -> u64;
}

/// The production clock: monotone milliseconds since service creation.
#[derive(Debug)]
pub struct MonotonicClock(Instant);

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock(Instant::now())
    }
}

impl Clock for MonotonicClock {
    fn now_ms(&self) -> u64 {
        self.0.elapsed().as_millis() as u64
    }
}

/// A hand-advanced test clock. Clones share the same time.
#[derive(Debug, Clone, Default)]
pub struct ManualClock(Arc<AtomicU64>);

impl ManualClock {
    /// A clock starting at 0 ms.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `ms`.
    pub fn advance_ms(&self, ms: u64) {
        self.0.fetch_add(ms, SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ms(&self) -> u64 {
        self.0.load(SeqCst)
    }
}

/// A point-in-time copy of the service's health, via
/// [`ServiceHandle::health`].
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Current state of the degradation state machine.
    pub state: HealthState,
    /// Failures since the last successful rebuild/compaction.
    pub consecutive_failures: u32,
    /// Total incidents ever recorded (≥ `incidents.len()`).
    pub total_incidents: u64,
    /// The retained incident log, oldest first.
    pub incidents: Vec<Incident>,
    /// When [`HealthState::Degraded`]: milliseconds until the next
    /// compaction retry is allowed (0 = due now).
    pub retry_in_ms: Option<u64>,
}

/// Mutable half of the state machine, guarded by the stream lock (every
/// transition happens on a path that already holds it).
#[derive(Debug)]
struct HealthInner {
    state: HealthState,
    consecutive_failures: u32,
    /// Earliest [`Clock::now_ms`] at which a Degraded service retries
    /// compaction.
    retry_at_ms: u64,
    incidents: VecDeque<Incident>,
    total_incidents: u64,
}

impl HealthInner {
    fn new() -> Self {
        HealthInner {
            state: HealthState::Healthy,
            consecutive_failures: 0,
            retry_at_ms: 0,
            incidents: VecDeque::new(),
            total_incidents: 0,
        }
    }
}

/// The frozen product of one full pipeline run: index, labeling, stats.
/// Base epochs own one of these; journal-epochs share their base's via
/// `Arc` — that sharing is what makes a journal publish cheap.
#[derive(Debug)]
struct BaseIndex {
    index: ComponentIndex,
    labeling: Labeling,
    stats: RunStats,
    algorithm: ResolvedAlgorithm,
    graph_n: usize,
    graph_m: usize,
    /// Wall time of the pipeline run (+ validation) that produced the
    /// labeling; 0 for a snapshot boot — nothing ran.
    pipeline_ms: f64,
    /// Wall time of freezing the labeling into the index; 0 for a
    /// snapshot boot. Split out so boot-vs-build speedups have a clean
    /// denominator.
    index_ms: f64,
}

/// One published epoch: a shared base index plus, for journal-epochs, the
/// frozen merge journal accumulated since that base. Everything here is
/// immutable at publish time; readers share it via `Arc`.
#[derive(Debug)]
pub struct PublishedIndex {
    epoch: u64,
    base: Arc<BaseIndex>,
    journal: Option<JournalView>,
    inserted_edges: usize,
}

impl PublishedIndex {
    /// The epoch this index was published as.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The immutable base component index. Journal-epochs answer through
    /// [`PublishedIndex::journal`] on top of this — use
    /// [`IndexSnapshot::engine`] to get the merge-aware view.
    pub fn index(&self) -> &ComponentIndex {
        &self.base.index
    }

    /// The raw labeling the base pipeline run produced (e.g. for
    /// `--labels` output). Journal merges are not reflected here.
    pub fn labeling(&self) -> &Labeling {
        &self.base.labeling
    }

    /// The producing run's cost accounting.
    pub fn stats(&self) -> &RunStats {
        &self.base.stats
    }

    /// Which algorithm produced this epoch's base index.
    pub fn algorithm(&self) -> ResolvedAlgorithm {
        self.base.algorithm
    }

    /// `(n, m)` of the graph this epoch answers for: the base graph plus
    /// any edges accepted by the journal (counted as inserted, before
    /// dedup against existing edges).
    pub fn graph_size(&self) -> (usize, usize) {
        (self.base.graph_n, self.base.graph_m + self.inserted_edges)
    }

    /// Wall-clock milliseconds the base epoch's pipeline run (plus
    /// validation) took; 0 when the base was booted from a snapshot.
    pub fn pipeline_ms(&self) -> f64 {
        self.base.pipeline_ms
    }

    /// Wall-clock milliseconds freezing the base labeling into the index
    /// took; 0 when the base was booted from a snapshot.
    pub fn index_build_ms(&self) -> f64 {
        self.base.index_ms
    }

    /// The merge journal riding on the base index, if this is a
    /// journal-epoch.
    pub fn journal(&self) -> Option<&JournalView> {
        self.journal.as_ref()
    }

    /// True iff this epoch carries journal merges on top of its base.
    pub fn is_journal(&self) -> bool {
        self.journal.is_some()
    }

    /// Number of connected components this epoch answers with (journal
    /// merges included).
    pub fn num_components(&self) -> usize {
        match &self.journal {
            Some(j) => j.num_components(),
            None => self.base.index.num_components(),
        }
    }
}

/// A pinned, immutable view of one published epoch. Cheap to clone (an
/// `Arc` bump); holding it keeps that epoch's index alive, dropping it
/// releases the pin. Obtainable only via [`ServiceHandle::snapshot`] —
/// lock-free.
#[derive(Clone)]
pub struct IndexSnapshot {
    guard: EpochGuard<PublishedIndex>,
}

impl IndexSnapshot {
    /// The epoch this snapshot pinned.
    pub fn epoch(&self) -> u64 {
        self.guard.epoch()
    }

    /// A borrow-only query engine over this snapshot's index — merge-aware
    /// when the snapshot pinned a journal-epoch. Engines are `Copy`; make
    /// one per thread or per batch, they cost nothing.
    pub fn engine(&self) -> QueryEngine<'_> {
        match self.guard.journal() {
            Some(j) => QueryEngine::with_journal(self.guard.index(), j),
            None => QueryEngine::new(self.guard.index()),
        }
    }

    /// Downgrades to a weak reference to the epoch payload — the hook the
    /// lifecycle tests use to observe that retired epochs are freed once
    /// every snapshot is dropped.
    pub fn downgrade(&self) -> Weak<PublishedIndex> {
        Arc::downgrade(self.guard.value())
    }
}

impl std::ops::Deref for IndexSnapshot {
    type Target = PublishedIndex;

    fn deref(&self) -> &PublishedIndex {
        &self.guard
    }
}

/// When a journal grows past this budget, the service falls back to a full
/// background rebuild (compaction) over the merged graph. Until the
/// compaction lands, insertions keep being accepted and published as
/// journal-epochs — the budget bounds staleness cost, not availability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalBudget {
    /// Compact once this many inserted edges have accumulated on one base.
    pub max_edges: usize,
    /// Compact once the journal carries this many component merges.
    pub max_merges: usize,
}

impl JournalBudget {
    /// A budget with explicit limits.
    pub fn new(max_edges: usize, max_merges: usize) -> Self {
        JournalBudget { max_edges, max_merges }
    }

    /// Never compact automatically (tests and benchmarks that want to
    /// observe pure journal behavior).
    pub fn unbounded() -> Self {
        JournalBudget { max_edges: usize::MAX, max_merges: usize::MAX }
    }

    fn exceeded_by(&self, journal_edges: usize, journal_merges: usize) -> bool {
        journal_edges > self.max_edges || journal_merges > self.max_merges
    }
}

impl Default for JournalBudget {
    /// 64 Ki inserted edges or 4 Ki merges — a journal publish is
    /// `O(components)`, so the default keeps the incremental path far
    /// cheaper than the `O(n + m)` rebuild it defers.
    fn default() -> Self {
        JournalBudget { max_edges: 1 << 16, max_merges: 1 << 12 }
    }
}

/// What one [`ServiceHandle::insert_edges`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertReport {
    /// The journal-epoch this batch was published as.
    pub epoch: u64,
    /// Edges accepted from this batch (the whole batch, once validated).
    pub applied: usize,
    /// Component merges this batch caused.
    pub new_merges: usize,
    /// Total inserted edges accumulated on the current base.
    pub journal_edges: usize,
    /// Total merges the published journal carries.
    pub journal_merges: usize,
    /// Connected components after this batch.
    pub components: usize,
    /// True iff this batch pushed the journal over budget and kicked off a
    /// background compaction rebuild.
    pub compaction_started: bool,
}

/// Mutable write-side state: the current base graph, the edges inserted on
/// top of it, and the union-find over base component ids that summarizes
/// their merges. Guarded by one mutex; the read path never touches it.
#[derive(Debug)]
struct StreamState {
    /// The graph the current base index was built from.
    graph: Graph,
    /// Edges accepted since the current base was published.
    pending: Vec<(VertexId, VertexId)>,
    /// Union-find over the base index's dense component ids.
    uf: UnionFind,
    /// Merges `uf` currently carries (`c - uf.num_components()`).
    merges: usize,
    /// The base every journal-epoch publishes against.
    base: Arc<BaseIndex>,
    /// False when the service was booted from a snapshot: `graph` is then
    /// a vertex-only placeholder (a snapshot does not carry edges), so
    /// budget-triggered compaction — which re-reads the base edges — must
    /// not run until an explicit rebuild installs a real graph.
    has_base_graph: bool,
    /// A compaction rebuild is in flight (don't start another).
    compacting: bool,
    /// Bumped by every full rebuild that lands; a compaction that started
    /// against an older generation abandons instead of clobbering.
    generation: u64,
    /// Degradation state machine + bounded incident log. Guarded by the
    /// stream lock like everything else here: every transition happens on
    /// a path that already holds it.
    health: HealthInner,
}

/// Ticket dispenser that forces rebuild publishes into request order:
/// `take` at request time, `wait_for` before publishing, `advance` after —
/// unconditionally, including on failure, so a dead rebuild never wedges
/// the queue.
#[derive(Debug)]
struct RebuildTickets {
    next: AtomicU64,
    turn: Mutex<u64>,
    done: Condvar,
}

impl RebuildTickets {
    fn new() -> Self {
        RebuildTickets { next: AtomicU64::new(0), turn: Mutex::new(0), done: Condvar::new() }
    }

    fn take(&self) -> u64 {
        ampc_obs::gauge(GaugeId::RebuildQueueDepth).add(1);
        self.next.fetch_add(1, SeqCst)
    }

    fn wait_for(&self, ticket: u64) {
        let mut turn = self.turn.lock().unwrap_or_else(|p| p.into_inner());
        while *turn != ticket {
            turn = self.done.wait(turn).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn advance(&self) {
        ampc_obs::gauge(GaugeId::RebuildQueueDepth).sub(1);
        let mut turn = self.turn.lock().unwrap_or_else(|p| p.into_inner());
        *turn += 1;
        self.done.notify_all();
    }
}

/// The shared state behind every [`ServiceHandle`] clone.
#[derive(Debug)]
struct ConnectivityService {
    cell: EpochCell<PublishedIndex>,
    spec: PipelineSpec,
    budget: JournalBudget,
    policy: RetryPolicy,
    clock: Arc<dyn Clock>,
    stream: Mutex<StreamState>,
    tickets: RebuildTickets,
}

/// Appends a typed failure to the bounded incident log without touching
/// the state machine (boot-fallback incidents land in a Healthy service).
fn record_incident(
    service: &ConnectivityService,
    st: &mut StreamState,
    op: IncidentOp,
    error: ServeError,
) {
    let h = &mut st.health;
    h.total_incidents += 1;
    h.incidents.push_back(Incident {
        seq: h.total_incidents,
        at_ms: service.clock.now_ms(),
        op,
        error,
    });
    while h.incidents.len() > service.policy.max_incidents {
        h.incidents.pop_front();
    }
    ampc_obs::counter(CounterId::Incidents).inc();
    ampc_obs::trace(TraceKind::IncidentRecorded, h.total_incidents, op as u64);
}

/// Records a failure and advances the state machine: `Degraded` with a
/// doubled backoff until [`RetryPolicy::max_consecutive_failures`], then
/// `ReadOnly`.
fn record_failure(
    service: &ConnectivityService,
    st: &mut StreamState,
    op: IncidentOp,
    error: ServeError,
) {
    record_incident(service, st, op, error);
    let prior = st.health.state;
    let failures = st.health.consecutive_failures.saturating_add(1);
    st.health.consecutive_failures = failures;
    if failures >= service.policy.max_consecutive_failures {
        if prior != HealthState::ReadOnly {
            ampc_obs::counter(CounterId::ReadOnlyTransitions).inc();
        }
        st.health.state = HealthState::ReadOnly;
        st.health.retry_at_ms = u64::MAX;
    } else {
        if prior != HealthState::Degraded {
            ampc_obs::counter(CounterId::DegradedTransitions).inc();
        }
        st.health.state = HealthState::Degraded;
        st.health.retry_at_ms =
            service.clock.now_ms().saturating_add(service.policy.backoff_ms(failures));
    }
}

/// A compaction or rebuild landed: back to `Healthy`, failure streak
/// cleared. The incident log is retained — it is history, not state.
fn mark_recovered(h: &mut HealthInner) {
    if h.state != HealthState::Healthy {
        ampc_obs::counter(CounterId::Recoveries).inc();
    }
    h.state = HealthState::Healthy;
    h.consecutive_failures = 0;
    h.retry_at_ms = 0;
}

/// Locks the stream state, recovering from poison: the guarded state is
/// only ever mutated to a consistent snapshot before any point that can
/// panic (publishing is a pointer swap, `Vec`/`UnionFind` updates finish
/// before the publish), so a poisoned lock means an aborted writer, not
/// torn state.
fn lock_stream(stream: &Mutex<StreamState>) -> MutexGuard<'_, StreamState> {
    stream.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs the spec on `g` and freezes the result. Validation is part of the
/// lifecycle: a labeling that does not validate against `g` is never
/// published.
fn build_base(spec: &PipelineSpec, g: &Graph) -> Result<BaseIndex, ServeError> {
    let t0 = Instant::now();
    let run = spec.resolve(g).execute(g)?;
    let pipeline_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let index = ComponentIndex::from_run(g, &run.labeling).map_err(ServeError::InvalidLabeling)?;
    let index_ms = t1.elapsed().as_secs_f64() * 1e3;
    Ok(BaseIndex {
        index,
        labeling: run.labeling,
        stats: run.stats,
        algorithm: run.algorithm,
        graph_n: g.n(),
        graph_m: g.m(),
        pipeline_ms,
        index_ms,
    })
}

/// Freezes a union-find over `base`'s component ids into a journal.
/// `Ok(None)` when there are no merges (the journal would be an identity
/// map — publish the base view instead and skip the remap read on every
/// query).
///
/// This used to `expect` — a reachable panic on the **caller's** insert
/// thread. Union-find roots are base component ids, so the labeling is in
/// range and the right length by construction, but "by construction"
/// arguments belong in tests, not in a panic on the serving path: a
/// violated invariant now surfaces as [`ServeError::JournalBuild`] and
/// rolls the batch back. The [`Site::JournalBuild`] failpoint fires here.
fn build_journal(
    uf: &mut UnionFind,
    merges: usize,
    base: &BaseIndex,
) -> Result<Option<JournalView>, ServeError> {
    if merges == 0 {
        return Ok(None);
    }
    fault::check(Site::JournalBuild)?;
    let c = base.index.num_components();
    let class_of: Vec<u32> = (0..c as u32).map(|id| uf.find(id)).collect();
    JournalView::build(&class_of, &base.index).map(Some).map_err(ServeError::JournalBuild)
}

/// Builder for a [`ServiceHandle`]: `ServiceBuilder::new(graph)
/// .spec(spec).build()?` runs the pipeline once (synchronously), validates
/// and indexes the result, and publishes it as epoch 0.
pub struct ServiceBuilder {
    graph: Graph,
    spec: PipelineSpec,
    budget: JournalBudget,
    policy: RetryPolicy,
    clock: Arc<dyn Clock>,
}

/// Where [`ServiceBuilder::from_snapshot_or_rebuild`] got its epoch 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BootSource {
    /// The snapshot loaded and validated; epoch 0 reinterprets its buffer.
    Snapshot,
    /// The snapshot was missing/corrupt; epoch 0 came from a pipeline
    /// build over the builder's graph, and the boot failure is the first
    /// entry in the incident log.
    RebuildFallback,
}

impl ServiceBuilder {
    /// Starts a builder over `graph` with the default [`PipelineSpec`] and
    /// [`JournalBudget`].
    pub fn new(graph: Graph) -> Self {
        ServiceBuilder {
            graph,
            spec: PipelineSpec::default(),
            budget: JournalBudget::default(),
            policy: RetryPolicy::default(),
            clock: Arc::new(MonotonicClock::default()),
        }
    }

    /// Sets the pipeline spec used for the initial build and every rebuild.
    pub fn spec(mut self, spec: PipelineSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Sets the journal budget that triggers compaction rebuilds.
    pub fn journal_budget(mut self, budget: JournalBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the retry/backoff policy of the degradation state machine.
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Injects the time source the retry schedule reads (tests pass a
    /// [`ManualClock`] and advance it deterministically).
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Runs the pipeline, validates, indexes, and publishes epoch 0.
    pub fn build(self) -> Result<ServiceHandle, ServeError> {
        let base = Arc::new(build_base(&self.spec, &self.graph)?);
        Ok(publish_epoch_zero(
            self.graph,
            true,
            base,
            self.spec,
            self.budget,
            self.policy,
            self.clock,
        ))
    }

    /// Boot fallback chain: try the snapshot first, and if it is missing,
    /// truncated, or corrupt — any [`SnapshotError`] — fall back to a
    /// pipeline build over the builder's graph instead of refusing to
    /// start. The failure is not swallowed: it is recorded as a
    /// [`IncidentOp::Boot`] incident (typed
    /// [`ServeError::SnapshotBoot`]) in the otherwise-Healthy fallback
    /// service, and the returned [`BootSource`] says which path won.
    ///
    /// On a successful snapshot boot the builder's graph is installed as
    /// the base graph **when its vertex count matches the snapshot's**, so
    /// budget-triggered compaction works immediately (plain
    /// [`ServiceBuilder::from_snapshot`] has no edges and must disable
    /// it). The caller asserts, by using this method, that the graph is
    /// the one the snapshot captured. On a mismatch the snapshot still
    /// boots, with compaction disabled exactly like `from_snapshot`.
    ///
    /// # Errors
    /// Only if **both** paths fail: the snapshot error is in the incident
    /// log's stead and the pipeline error is returned.
    pub fn from_snapshot_or_rebuild(
        self,
        path: impl AsRef<Path>,
    ) -> Result<(ServiceHandle, BootSource), ServeError> {
        match snapshot::load(path.as_ref()) {
            Ok(snap) => {
                let (algorithm, _algo) = match snap.algorithm {
                    1 => (ResolvedAlgorithm::Forest, Algorithm::Forest),
                    _ => (ResolvedAlgorithm::General, Algorithm::General),
                };
                let graph_n = snap.graph_n as usize;
                let base = Arc::new(BaseIndex {
                    index: snap.index,
                    labeling: snap.labeling,
                    stats: RunStats::default(),
                    algorithm,
                    graph_n,
                    graph_m: snap.graph_m as usize,
                    pipeline_ms: 0.0,
                    index_ms: 0.0,
                });
                let (graph, has_base_graph) = if self.graph.n() == graph_n {
                    (self.graph, true)
                } else {
                    (Graph::empty(graph_n), false)
                };
                Ok((
                    publish_epoch_zero(
                        graph,
                        has_base_graph,
                        base,
                        self.spec,
                        self.budget,
                        self.policy,
                        self.clock,
                    ),
                    BootSource::Snapshot,
                ))
            }
            Err(snap_err) => {
                let boot_error = ServeError::SnapshotBoot(snap_err.to_string());
                let base = Arc::new(build_base(&self.spec, &self.graph)?);
                let handle = publish_epoch_zero(
                    self.graph,
                    true,
                    base,
                    self.spec,
                    self.budget,
                    self.policy,
                    self.clock,
                );
                {
                    let service = &handle.service;
                    let mut st = lock_stream(&service.stream);
                    record_incident(service, &mut st, IncidentOp::Boot, boot_error);
                }
                Ok((handle, BootSource::RebuildFallback))
            }
        }
    }

    /// Boots a service from a snapshot on disk: one bulk read, header +
    /// checksum validation, and epoch 0 is published with its index
    /// sections reinterpreted **in place** over the snapshot buffer — no
    /// pipeline run, no per-element deserialization. This is how one
    /// pipeline run fans out to N serving replicas that boot in
    /// milliseconds.
    ///
    /// The booted service answers queries and accepts
    /// [`ServiceHandle::insert_edges`] (journal-epochs need only the index,
    /// which the snapshot carries). A snapshot does not carry the base
    /// graph's *edges*, so budget-triggered compaction stays disabled until
    /// an explicit [`ServiceHandle::rebuild`] installs a real graph; the
    /// journal simply keeps growing in the meantime. Rebuilds use a default
    /// spec pinned to the snapshot's algorithm.
    ///
    /// # Errors
    /// Any [`SnapshotError`]: i/o failure, foreign or damaged header,
    /// checksum mismatch, or semantic corruption. A corrupt snapshot never
    /// publishes anything.
    pub fn from_snapshot(path: impl AsRef<Path>) -> Result<ServiceHandle, SnapshotError> {
        let snap = snapshot::load(path.as_ref())?;
        let (algorithm, algo) = match snap.algorithm {
            1 => (ResolvedAlgorithm::Forest, Algorithm::Forest),
            _ => (ResolvedAlgorithm::General, Algorithm::General),
        };
        let graph_n = snap.graph_n as usize;
        let base = Arc::new(BaseIndex {
            index: snap.index,
            labeling: snap.labeling,
            stats: RunStats::default(),
            algorithm,
            graph_n,
            graph_m: snap.graph_m as usize,
            pipeline_ms: 0.0,
            index_ms: 0.0,
        });
        let spec = PipelineSpec::default().with_algorithm(algo);
        Ok(publish_epoch_zero(
            Graph::empty(graph_n),
            false,
            base,
            spec,
            JournalBudget::default(),
            RetryPolicy::default(),
            Arc::new(MonotonicClock::default()),
        ))
    }
}

/// Shared tail of [`ServiceBuilder::build`] and
/// [`ServiceBuilder::from_snapshot`]: wraps a finished base into stream
/// state and publishes it as epoch 0.
fn publish_epoch_zero(
    graph: Graph,
    has_base_graph: bool,
    base: Arc<BaseIndex>,
    spec: PipelineSpec,
    budget: JournalBudget,
    policy: RetryPolicy,
    clock: Arc<dyn Clock>,
) -> ServiceHandle {
    let c = base.index.num_components();
    let stream = StreamState {
        graph,
        pending: Vec::new(),
        uf: UnionFind::new(c),
        merges: 0,
        base: Arc::clone(&base),
        has_base_graph,
        compacting: false,
        generation: 0,
        health: HealthInner::new(),
    };
    let payload = PublishedIndex { epoch: 0, base, journal: None, inserted_edges: 0 };
    let service = ConnectivityService {
        cell: EpochCell::new(Arc::new(payload)),
        spec,
        budget,
        policy,
        clock,
        stream: Mutex::new(stream),
        tickets: RebuildTickets::new(),
    };
    ampc_obs::counter(CounterId::EpochsPublished).inc();
    ampc_obs::trace(TraceKind::EpochPublished, 0, 0);
    ServiceHandle { service: Arc::new(service) }
}

/// What one [`ServiceHandle::persist`] call wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistReport {
    /// The epoch that was captured.
    pub epoch: u64,
    /// Snapshot size in bytes.
    pub bytes: u64,
    /// True iff the captured epoch carried journal merges (they were
    /// materialized into the persisted index, which equals a full rebuild
    /// of the merged graph byte for byte).
    pub journal: bool,
}

/// What a sequenced background rebuild does once its pipeline run lands.
enum RebuildGoal {
    /// Explicit [`ServiceHandle::rebuild`]: the graph is the new ground
    /// truth; pending journal edges (they belong to the old lineage) are
    /// discarded.
    Replace,
    /// Budget-triggered compaction: the graph is the old base merged with
    /// the first `consumed` pending edges; the rest (inserted while the
    /// compaction ran) are replayed onto the new base. Abandons without
    /// publishing if a `Replace` landed in between (`generation` moved).
    Compact {
        /// Pending-edge prefix baked into the compacted graph.
        consumed: usize,
        /// Stream generation the compaction started from.
        generation: u64,
    },
}

/// A clone-able handle to a connectivity service. Clones share the same
/// epoch cell: an epoch published through any handle is visible to
/// snapshots taken through every other.
#[derive(Clone, Debug)]
pub struct ServiceHandle {
    service: Arc<ConnectivityService>,
}

impl ServiceHandle {
    /// Pins the current epoch — lock-free; never blocks on rebuilds or
    /// insertions. Call once per thread (or per request) and answer any
    /// number of queries against the returned snapshot.
    pub fn snapshot(&self) -> IndexSnapshot {
        IndexSnapshot { guard: self.service.cell.pin() }
    }

    /// The most recently published epoch number.
    pub fn current_epoch(&self) -> u64 {
        self.service.cell.epoch()
    }

    /// The spec every build and rebuild runs.
    pub fn spec(&self) -> &PipelineSpec {
        &self.service.spec
    }

    /// The budget past which insertions trigger a compaction rebuild.
    pub fn journal_budget(&self) -> JournalBudget {
        self.service.budget
    }

    /// The retry/backoff policy of the degradation state machine.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.service.policy
    }

    /// A point-in-time copy of the degradation state machine: current
    /// [`HealthState`], failure streak, bounded incident log, and (when
    /// `Degraded`) time until the next compaction retry.
    pub fn health(&self) -> HealthReport {
        let service = &self.service;
        let st = lock_stream(&service.stream);
        let h = &st.health;
        let retry_in_ms = (h.state == HealthState::Degraded)
            .then(|| h.retry_at_ms.saturating_sub(service.clock.now_ms()));
        HealthReport {
            state: h.state,
            consecutive_failures: h.consecutive_failures,
            total_incidents: h.total_incidents,
            incidents: h.incidents.iter().cloned().collect(),
            retry_in_ms,
        }
    }

    /// Drives the retry schedule without an insert: if the service is
    /// `Degraded`, the backoff has elapsed, and no compaction is in
    /// flight, start one. Returns `true` iff a retry compaction was
    /// started. Inserts drive the same schedule implicitly; call this
    /// from a maintenance loop when the write path may go quiet.
    pub fn tick(&self) -> bool {
        let service = &self.service;
        let mut st = lock_stream(&service.stream);
        let due = st.health.state == HealthState::Degraded
            && service.clock.now_ms() >= st.health.retry_at_ms
            && !st.compacting
            && st.has_base_graph;
        if due {
            start_compaction_locked(service, &mut st);
        }
        due
    }

    /// Applies a batch of edge insertions to the current epoch and
    /// publishes the result as a **journal-epoch**: endpoint components
    /// are unioned over the base index's dense ids and the merged view is
    /// frozen into a [`JournalView`] — an `O(components)` publish, no
    /// pipeline run. Answers on the new epoch are byte-identical to a full
    /// rebuild over the merged graph.
    ///
    /// If the batch pushes the journal past the [`JournalBudget`], a
    /// background compaction rebuild starts (at most one at a time);
    /// insertions keep working and are replayed onto the new base when it
    /// lands.
    ///
    /// # Errors
    /// [`ServeError::VertexOutOfRange`] if any endpoint is `>= n` for the
    /// current graph, [`ServeError::ReadOnly`] when the state machine has
    /// given up on the write path, [`ServeError::JournalBuild`] if
    /// freezing the merges fails (the failure is also recorded in the
    /// incident log). The batch is atomic in every case: nothing is
    /// applied or published on error.
    pub fn insert_edges(&self, edges: &[(VertexId, VertexId)]) -> Result<InsertReport, ServeError> {
        let service = &self.service;
        let mut st = lock_stream(&service.stream);
        if st.health.state == HealthState::ReadOnly {
            return Err(ServeError::ReadOnly);
        }
        let n = st.graph.n();
        for &(u, v) in edges {
            let bad = if (u as usize) >= n {
                Some(u)
            } else if (v as usize) >= n {
                Some(v)
            } else {
                None
            };
            if let Some(vertex) = bad {
                return Err(ServeError::VertexOutOfRange { vertex, n });
            }
        }

        // Apply the batch to a *scratch* union-find and only commit it
        // after the journal freezes — a failed freeze must roll the whole
        // batch back, and the clone is `O(components)`, the same order as
        // the freeze itself.
        let base = Arc::clone(&st.base);
        let mut uf = st.uf.clone();
        let mut new_merges = 0usize;
        for &(u, v) in edges {
            let (cu, cv) = (base.index.component_of(u), base.index.component_of(v));
            if uf.union(cu, cv) {
                new_merges += 1;
            }
        }
        let merges = st.merges + new_merges;
        let journal_timer = ampc_obs::Timer::start(ampc_obs::hist(HistId::JournalBuildNs));
        let journal = match build_journal(&mut uf, merges, &base) {
            Ok(j) => j,
            Err(e) => {
                record_failure(service, &mut st, IncidentOp::JournalBuild, e.clone());
                return Err(e);
            }
        };
        let build_ns = journal_timer.stop();
        ampc_obs::counter(CounterId::JournalBuilds).inc();
        ampc_obs::trace(TraceKind::JournalBuilt, merges as u64, build_ns);
        st.uf = uf;
        st.merges = merges;
        st.pending.extend_from_slice(edges);

        let components = match &journal {
            Some(j) => j.num_components(),
            None => base.index.num_components(),
        };
        let inserted_edges = st.pending.len();
        let is_journal = journal.is_some();
        let publish_timer = ampc_obs::Timer::start(ampc_obs::hist(HistId::PublishNs));
        let epoch = service.cell.publish_with(|epoch| {
            Arc::new(PublishedIndex { epoch, base: Arc::clone(&base), journal, inserted_edges })
        });
        publish_timer.stop();
        ampc_obs::counter(CounterId::EpochsPublished).inc();
        ampc_obs::trace(TraceKind::EpochPublished, epoch, is_journal as u64);
        ampc_obs::gauge(GaugeId::JournalPendingEntries).set(inserted_edges as i64);

        // Healthy: the journal budget decides. Degraded: the budget is
        // suspended ("widened") — the deterministic retry schedule decides
        // instead, so a failing compaction is re-attempted with backoff
        // rather than on every over-budget batch.
        let due = match st.health.state {
            HealthState::Healthy => service.budget.exceeded_by(st.pending.len(), st.merges),
            HealthState::Degraded => service.clock.now_ms() >= st.health.retry_at_ms,
            HealthState::ReadOnly => false,
        };
        let compaction_started = due && !st.compacting && st.has_base_graph;
        if compaction_started {
            start_compaction_locked(service, &mut st);
        }

        Ok(InsertReport {
            epoch,
            applied: edges.len(),
            new_merges,
            journal_edges: inserted_edges,
            journal_merges: st.merges,
            components,
            compaction_started,
        })
    }

    /// Rebuilds the index over `graph` on a background thread and
    /// publishes it as a new base epoch. Readers keep answering against
    /// their pinned snapshots throughout; the swap is atomic. Pending
    /// journal edges are discarded — an explicit rebuild defines a new
    /// ground-truth graph.
    ///
    /// Concurrent rebuilds publish in **request order** (each request takes
    /// a ticket here, synchronously), so a slow earlier-requested rebuild
    /// can never overwrite a newer epoch.
    ///
    /// Returns immediately with a [`RebuildHandle`]; call
    /// [`RebuildHandle::wait`] for the published epoch number (or the
    /// pipeline/validation error, in which case nothing was published).
    /// Dropping the handle joins the rebuild and logs failures to stderr
    /// instead of silently swallowing them; use [`RebuildHandle::detach`]
    /// for explicit fire-and-forget.
    pub fn rebuild(&self, graph: Graph) -> RebuildHandle {
        let ticket = self.service.tickets.take();
        let service = Arc::clone(&self.service);
        let join =
            std::thread::spawn(move || run_rebuild(&service, graph, RebuildGoal::Replace, ticket));
        RebuildHandle { join: Some(join) }
    }

    /// Convenience: [`ServiceHandle::rebuild`] + wait.
    pub fn rebuild_blocking(&self, graph: Graph) -> Result<u64, ServeError> {
        self.rebuild(graph).wait()
    }

    /// Persists the **currently published epoch** to `path` as a snapshot
    /// (write-to-temp + atomic rename: concurrent readers of the file see
    /// the old snapshot or the new one, never a torn write).
    ///
    /// The epoch is pinned first — exactly one published epoch is
    /// captured, even while insertions and rebuilds race this call. A
    /// journal-epoch is materialized at persist time: the journal's merges
    /// are folded into a fresh index that is byte-identical to a full
    /// rebuild of the merged graph, so a replica booted from the snapshot
    /// answers exactly like this epoch.
    pub fn persist(&self, path: impl AsRef<Path>) -> Result<PersistReport, SnapshotError> {
        let snap = self.snapshot();
        let (n, m) = snap.graph_size();
        let algorithm = snap.algorithm().number();
        let bytes = match snap.journal() {
            None => snapshot::persist(
                path.as_ref(),
                snap.index(),
                snap.labeling(),
                n as u64,
                m as u64,
                algorithm,
            )?,
            Some(journal) => {
                let base = snap.index();
                // Merged dense ids are themselves a labeling of the merged
                // partition; building from it reproduces a full rebuild
                // byte for byte (see `ampc_query::journal`).
                let merged = Labeling(
                    (0..n as VertexId)
                        .map(|v| journal.resolve(base.component_of(v)) as u64)
                        .collect(),
                );
                let index = ComponentIndex::build(&merged);
                snapshot::persist(path.as_ref(), &index, &merged, n as u64, m as u64, algorithm)?
            }
        };
        Ok(PersistReport { epoch: snap.epoch(), bytes, journal: snap.is_journal() })
    }
}

/// Kicks off a background compaction over the merged (base + pending)
/// graph. Caller holds the stream lock and has decided the compaction is
/// due. Fire-and-forget by design: the compaction reports through the
/// epoch cell and the health state machine (success → `Healthy`, failure
/// → incident + backoff), not through a handle.
fn start_compaction_locked(service: &Arc<ConnectivityService>, st: &mut StreamState) {
    st.compacting = true;
    ampc_obs::counter(CounterId::CompactionsStarted).inc();
    ampc_obs::trace(TraceKind::CompactionStarted, service.cell.epoch(), 0);
    let consumed = st.pending.len();
    let generation = st.generation;
    let n = st.graph.n();
    let merged: Vec<(VertexId, VertexId)> =
        st.graph.edges().chain(st.pending.iter().copied()).collect();
    let graph = Graph::from_edges(n, &merged);
    let ticket = service.tickets.take();
    let service = Arc::clone(service);
    std::thread::spawn(move || {
        run_rebuild(&service, graph, RebuildGoal::Compact { consumed, generation }, ticket)
    });
}

/// Body of every sequenced background rebuild (explicit or compaction):
/// run the pipeline (the expensive part, concurrent with everything), wait
/// for this ticket's turn, then swap stream state + publish under the
/// stream lock. The ticket is advanced on **every** path, including
/// pipeline failure and panic, so one dead rebuild never wedges later
/// ones; every failure (including a panic, via `catch_unwind`) is
/// recorded in the incident log and advances the degradation state
/// machine instead of disappearing with the thread.
fn run_rebuild(
    service: &Arc<ConnectivityService>,
    graph: Graph,
    goal: RebuildGoal,
    ticket: u64,
) -> Result<u64, ServeError> {
    let start_ns = ampc_obs::monotonic_ns();
    let built = catch_unwind(AssertUnwindSafe(|| {
        fault::check(Site::RebuildPipeline)?;
        build_base(&service.spec, &graph)
    }));
    service.tickets.wait_for(ticket);
    // The publish half is wrapped too: a panic mid-publish (injected or
    // real) must still advance the ticket and record a failure, or every
    // later rebuild wedges behind this one's turn. The stream mutations
    // inside are ordered fallible-first, so an unwind leaves consistent
    // state and `lock_stream` recovers the poisoned mutex.
    let result =
        catch_unwind(AssertUnwindSafe(|| publish_rebuild(service, graph, &goal, built, start_ns)))
            .unwrap_or(Err(ServeError::RebuildPanicked));
    if let Err(e) = &result {
        let mut st = lock_stream(&service.stream);
        let op = match goal {
            RebuildGoal::Replace => IncidentOp::Rebuild,
            RebuildGoal::Compact { .. } => {
                // Let a later insert batch (or retry tick) start a fresh
                // compaction.
                st.compacting = false;
                IncidentOp::Compaction
            }
        };
        record_failure(service, &mut st, op, e.clone());
    }
    service.tickets.advance();
    result
}

/// The publish half of [`run_rebuild`], split out so the caller can
/// guarantee ticket advancement around any early return.
fn publish_rebuild(
    service: &Arc<ConnectivityService>,
    graph: Graph,
    goal: &RebuildGoal,
    built: std::thread::Result<Result<BaseIndex, ServeError>>,
    start_ns: u64,
) -> Result<u64, ServeError> {
    let base = match built {
        Ok(Ok(base)) => Arc::new(base),
        Ok(Err(e)) => return Err(e),
        Err(_) => return Err(ServeError::RebuildPanicked),
    };
    let mut st = lock_stream(&service.stream);
    match *goal {
        RebuildGoal::Replace => {
            st.graph = graph;
            st.pending.clear();
            st.uf = UnionFind::new(base.index.num_components());
            st.merges = 0;
            st.base = Arc::clone(&base);
            // A rebuild's graph is real ground truth — a snapshot-booted
            // service regains compaction here, and a Degraded/ReadOnly
            // service regains Healthy: the explicit rebuild is the
            // operator's recovery lever.
            st.has_base_graph = true;
            st.compacting = false;
            st.generation += 1;
            mark_recovered(&mut st.health);
            ampc_obs::gauge(GaugeId::JournalPendingEntries).set(0);
            let epoch = service.cell.publish_with(|epoch| {
                Arc::new(PublishedIndex {
                    epoch,
                    base: Arc::clone(&base),
                    journal: None,
                    inserted_edges: 0,
                })
            });
            ampc_obs::counter(CounterId::EpochsPublished).inc();
            ampc_obs::trace(TraceKind::EpochPublished, epoch, 0);
            Ok(epoch)
        }
        RebuildGoal::Compact { consumed, generation } => {
            if st.generation != generation {
                // A Replace landed while we compacted: our base (and the
                // pending edges we consumed) belong to a dead lineage.
                // Publishing would clobber the newer graph — abandon.
                // Not a failure and not a success: health is untouched.
                st.compacting = false;
                let epoch = service.cell.epoch();
                ampc_obs::trace(TraceKind::CompactionYielded, epoch, 0);
                return Ok(epoch);
            }
            // Compute the replay state *before* mutating anything, so a
            // failure here (the `compact.publish` failpoint, or a journal
            // freeze error) leaves the stream state exactly as it was —
            // the in-flight journal lineage keeps serving.
            fault::check(Site::CompactPublish)?;
            let c = base.index.num_components();
            let mut uf = UnionFind::new(c);
            let mut merges = 0usize;
            for &(u, v) in st.pending.iter().skip(consumed) {
                // Replayed edges were validated at insert time and the
                // compacted graph has the same vertex count.
                if uf.union(base.index.component_of(u), base.index.component_of(v)) {
                    merges += 1;
                }
            }
            let journal = build_journal(&mut uf, merges, &base)?;
            st.graph = graph;
            st.pending.drain(..consumed);
            st.uf = uf;
            st.merges = merges;
            st.base = Arc::clone(&base);
            st.compacting = false;
            mark_recovered(&mut st.health);
            let inserted_edges = st.pending.len();
            let is_journal = journal.is_some();
            let epoch = service.cell.publish_with(|epoch| {
                Arc::new(PublishedIndex { epoch, base: Arc::clone(&base), journal, inserted_edges })
            });
            let duration_ns = ampc_obs::monotonic_ns().saturating_sub(start_ns);
            ampc_obs::hist(HistId::CompactionNs).record(duration_ns);
            ampc_obs::counter(CounterId::CompactionsFinished).inc();
            ampc_obs::counter(CounterId::EpochsPublished).inc();
            ampc_obs::gauge(GaugeId::JournalPendingEntries).set(inserted_edges as i64);
            ampc_obs::trace(TraceKind::CompactionFinished, epoch, duration_ns);
            ampc_obs::trace(TraceKind::EpochPublished, epoch, is_journal as u64);
            Ok(epoch)
        }
    }
}

/// Handle to an in-flight background rebuild.
///
/// Dropping the handle **joins** the rebuild and logs a failure to stderr —
/// the old behavior (silently detaching the thread and discarding its
/// error) meant a failed rebuild was indistinguishable from a slow one.
/// Call [`RebuildHandle::detach`] when fire-and-forget is really wanted.
pub struct RebuildHandle {
    join: Option<JoinHandle<Result<u64, ServeError>>>,
}

impl RebuildHandle {
    /// Blocks until the rebuild publishes (returning its epoch number) or
    /// fails (returning the error; nothing was published).
    pub fn wait(mut self) -> Result<u64, ServeError> {
        let join = self.join.take().expect("wait consumes the only join handle");
        join.join().map_err(|_| ServeError::RebuildPanicked)?
    }

    /// True once the background thread has finished (the result is ready
    /// and `wait` will not block).
    pub fn is_finished(&self) -> bool {
        self.join.as_ref().is_none_or(JoinHandle::is_finished)
    }

    /// Explicitly lets the rebuild finish in the background. The result is
    /// discarded; the publish (or not, on failure) still happens in ticket
    /// order.
    pub fn detach(mut self) {
        self.join.take();
    }
}

impl Drop for RebuildHandle {
    fn drop(&mut self) {
        if let Some(join) = self.join.take() {
            match join.join() {
                Ok(Ok(_)) => {}
                Ok(Err(e)) => eprintln!("ampc-serve: dropped rebuild failed: {e}"),
                Err(_) => eprintln!("ampc-serve: dropped rebuild panicked"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc::DhtBackend;
    use ampc_cc::pipeline::Algorithm;
    use ampc_graph::generators::{erdos_renyi_gnm, random_forest};
    use ampc_graph::reference_components;
    use ampc_query::Query;

    fn spec() -> PipelineSpec {
        PipelineSpec::default().with_seed(42).with_machines(4)
    }

    #[test]
    fn build_serves_a_validated_epoch_zero() {
        let g = random_forest(2000, 13, 7);
        let truth = reference_components(&g);
        let service = ServiceBuilder::new(g).spec(spec()).build().expect("build");
        let snap = service.snapshot();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.algorithm().number(), 1);
        assert_eq!(snap.graph_size().0, 2000);
        assert_eq!(snap.index().num_components(), 13);
        assert!(!snap.is_journal());
        // Byte-identical to the reference-built index (partition purity).
        assert_eq!(*snap.index(), ComponentIndex::build(&truth));
        assert!(snap.labeling().same_partition(&truth));
        assert!(snap.stats().rounds() > 0);
    }

    #[test]
    fn rebuild_publishes_new_epochs_while_old_snapshots_answer() {
        let g0 = random_forest(500, 5, 1);
        let g1 = random_forest(800, 9, 2);
        let service = ServiceBuilder::new(g0).spec(spec()).build().unwrap();
        let old = service.snapshot();
        assert_eq!(old.index().num_components(), 5);

        let epoch = service.rebuild_blocking(g1).expect("rebuild");
        assert_eq!(epoch, 1);
        assert_eq!(service.current_epoch(), 1);
        // The old snapshot still answers against its pinned epoch…
        assert_eq!(old.epoch(), 0);
        assert_eq!(old.index().num_components(), 5);
        // …and new snapshots see the new graph.
        let new = service.snapshot();
        assert_eq!(new.epoch(), 1);
        assert_eq!(new.index().num_components(), 9);
        assert_eq!(new.graph_size().0, 800);
    }

    #[test]
    fn clones_share_the_epoch_cell() {
        let service = ServiceBuilder::new(random_forest(300, 3, 4)).spec(spec()).build().unwrap();
        let clone = service.clone();
        clone.rebuild_blocking(random_forest(300, 7, 5)).unwrap();
        assert_eq!(service.current_epoch(), 1);
        assert_eq!(service.snapshot().index().num_components(), 7);
    }

    #[test]
    fn retired_epochs_are_freed_once_unpinned() {
        let service = ServiceBuilder::new(random_forest(200, 2, 6)).spec(spec()).build().unwrap();
        let snap0 = service.snapshot();
        let weak0 = snap0.downgrade();
        service.rebuild_blocking(random_forest(200, 4, 7)).unwrap();
        service.rebuild_blocking(random_forest(200, 6, 8)).unwrap();
        assert!(weak0.upgrade().is_some(), "pinned epoch 0 must stay alive");
        drop(snap0);
        assert!(weak0.upgrade().is_none(), "unpinned retired epoch must be freed");
    }

    #[test]
    fn spec_is_honored_by_rebuilds() {
        let spec = PipelineSpec::default()
            .with_seed(9)
            .with_algorithm(Algorithm::General)
            .with_backend(DhtBackend::dense())
            .with_k(3);
        let service =
            ServiceBuilder::new(erdos_renyi_gnm(400, 900, 3)).spec(spec.clone()).build().unwrap();
        assert_eq!(service.spec(), &spec);
        assert_eq!(service.snapshot().algorithm().number(), 2);
        service.rebuild_blocking(erdos_renyi_gnm(500, 1200, 4)).unwrap();
        let snap = service.snapshot();
        assert_eq!(snap.algorithm().number(), 2);
        let truth = reference_components(&erdos_renyi_gnm(500, 1200, 4));
        assert_eq!(*snap.index(), ComponentIndex::build(&truth));
    }

    #[test]
    fn snapshots_of_one_epoch_answer_identically() {
        let g = random_forest(1000, 11, 10);
        let service = ServiceBuilder::new(g).spec(spec()).build().unwrap();
        let a = service.snapshot();
        let b = service.snapshot();
        assert_eq!(a.epoch(), b.epoch());
        assert_eq!(a.index(), b.index());
        for v in 0..1000u32 {
            assert_eq!(
                a.engine().answer(Query::ComponentOf(v)),
                b.engine().answer(Query::ComponentOf(v))
            );
        }
    }

    #[test]
    fn insert_edges_publishes_journal_epochs_matching_a_fresh_oracle() {
        // A forest of 8 trees; stitch trees together batch by batch and
        // check the journal answers equal a from-scratch union-find build
        // of the accumulated graph after every batch.
        let g = random_forest(600, 8, 11);
        let mut all_edges: Vec<(VertexId, VertexId)> = g.edges().collect();
        let service = ServiceBuilder::new(g).spec(spec()).build().unwrap();

        let batches: Vec<Vec<(VertexId, VertexId)>> =
            vec![vec![(0, 599), (5, 5)], vec![(10, 590), (0, 5)], vec![(300, 301)]];
        for (i, batch) in batches.iter().enumerate() {
            let report = service.insert_edges(batch).expect("insert");
            assert_eq!(report.epoch, i as u64 + 1);
            assert_eq!(report.applied, batch.len());
            all_edges.extend_from_slice(batch);
            let oracle =
                ComponentIndex::build(&reference_components(&Graph::from_edges(600, &all_edges)));
            let snap = service.snapshot();
            assert_eq!(snap.epoch(), report.epoch);
            assert_eq!(snap.num_components(), oracle.num_components());
            assert_eq!(report.components, oracle.num_components());
            let eng = snap.engine();
            for v in 0..600u32 {
                assert_eq!(
                    eng.answer(Query::ComponentOf(v)),
                    oracle.component_of(v) as u64,
                    "vertex {v} after batch {i}"
                );
                assert_eq!(eng.answer(Query::ComponentSize(v)), oracle.component_size(v) as u64);
            }
            for k in 1..=9u32 {
                assert_eq!(
                    eng.answer(Query::TopKSize(k)),
                    oracle.kth_largest_size(k as usize) as u64
                );
            }
        }
    }

    #[test]
    fn insert_batches_are_atomic_on_out_of_range_vertices() {
        let service = ServiceBuilder::new(random_forest(100, 4, 12)).spec(spec()).build().unwrap();
        let before = service.current_epoch();
        let err = service.insert_edges(&[(0, 50), (3, 100)]).unwrap_err();
        assert_eq!(err, ServeError::VertexOutOfRange { vertex: 100, n: 100 });
        // Nothing applied, nothing published — including the valid edge.
        assert_eq!(service.current_epoch(), before);
        let report = service.insert_edges(&[(0, 50)]).expect("valid batch");
        assert_eq!(report.epoch, before + 1);
        // The service still answers after the rejected batch.
        assert!(service.snapshot().engine().try_answer(Query::Connected(0, 50)).is_some());
    }

    #[test]
    fn duplicate_and_intra_component_edges_publish_identity_epochs() {
        let g = random_forest(200, 2, 13);
        let idx = ComponentIndex::build(&reference_components(&g));
        let comp0: Vec<VertexId> = (0..200u32).filter(|&v| idx.component_of(v) == 0).collect();
        let service = ServiceBuilder::new(g).spec(spec()).build().unwrap();
        // An edge inside one existing component merges nothing.
        let report = service.insert_edges(&[(comp0[0], comp0[1])]).unwrap();
        assert_eq!(report.new_merges, 0);
        assert_eq!(report.journal_merges, 0);
        let snap = service.snapshot();
        assert_eq!(snap.epoch(), 1);
        assert!(!snap.is_journal(), "no merges ⇒ no journal, just a fresh epoch on the base");
        assert_eq!(snap.num_components(), 2);
    }

    #[test]
    fn rebuild_resets_the_journal_lineage() {
        let service = ServiceBuilder::new(random_forest(300, 6, 14)).spec(spec()).build().unwrap();
        service.insert_edges(&[(0, 299)]).unwrap();
        assert!(service.snapshot().is_journal() || service.snapshot().num_components() == 5);
        let g2 = random_forest(150, 3, 15);
        let truth2 = reference_components(&g2);
        service.rebuild_blocking(g2).unwrap();
        let snap = service.snapshot();
        assert!(!snap.is_journal(), "a full rebuild starts a clean lineage");
        assert_eq!(*snap.index(), ComponentIndex::build(&truth2));
        // Inserts after the rebuild validate against the *new* graph.
        let err = service.insert_edges(&[(0, 200)]).unwrap_err();
        assert_eq!(err, ServeError::VertexOutOfRange { vertex: 200, n: 150 });
    }

    #[test]
    fn over_budget_insertions_trigger_a_compaction_rebuild() {
        let g = random_forest(400, 10, 16);
        let mut all_edges: Vec<(VertexId, VertexId)> = g.edges().collect();
        let service = ServiceBuilder::new(g)
            .spec(spec())
            .journal_budget(JournalBudget::new(2, usize::MAX))
            .build()
            .unwrap();
        let batch = [(0u32, 399u32), (1, 398), (2, 397)];
        all_edges.extend_from_slice(&batch);
        let report = service.insert_edges(&batch).unwrap();
        assert!(report.compaction_started, "3 edges > budget of 2 must compact");
        // Poll until the compaction publishes a journal-free base epoch.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        loop {
            let snap = service.snapshot();
            if snap.epoch() > report.epoch && !snap.is_journal() {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "compaction never landed");
            std::thread::yield_now();
        }
        let snap = service.snapshot();
        let oracle =
            ComponentIndex::build(&reference_components(&Graph::from_edges(400, &all_edges)));
        assert_eq!(*snap.index(), oracle, "compacted base must equal the fresh oracle");
        // The journal lineage restarted: new inserts build on the new base.
        let r2 = service.insert_edges(&[(3, 396)]).unwrap();
        assert_eq!(r2.journal_edges, 1);
    }

    // Failpoint-driven state-machine coverage lives in tests/chaos.rs —
    // the fault registry is process-global and lib tests run in parallel,
    // so only failpoint-free behavior is exercised here.

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_consecutive_failures: 5,
            base_backoff_ms: 100,
            max_backoff_ms: 1000,
            max_incidents: 8,
        };
        assert_eq!(p.backoff_ms(1), 100);
        assert_eq!(p.backoff_ms(2), 200);
        assert_eq!(p.backoff_ms(3), 400);
        assert_eq!(p.backoff_ms(4), 800);
        assert_eq!(p.backoff_ms(5), 1000, "capped");
        assert_eq!(p.backoff_ms(60), 1000, "shift is clamped, no overflow");
        assert_eq!(p.backoff_ms(0), 100, "defensive: streak 0 behaves like 1");
    }

    #[test]
    fn manual_clock_is_shared_across_clones() {
        let clock = ManualClock::new();
        let alias = clock.clone();
        assert_eq!(clock.now_ms(), 0);
        alias.advance_ms(250);
        assert_eq!(clock.now_ms(), 250);
    }

    #[test]
    fn service_starts_healthy_with_an_empty_incident_log() {
        let service = ServiceBuilder::new(random_forest(100, 2, 20)).spec(spec()).build().unwrap();
        let health = service.health();
        assert_eq!(health.state, HealthState::Healthy);
        assert_eq!(health.consecutive_failures, 0);
        assert_eq!(health.total_incidents, 0);
        assert!(health.incidents.is_empty());
        assert_eq!(health.retry_in_ms, None);
        assert!(!service.tick(), "healthy services have nothing to retry");
    }

    #[test]
    fn boot_fallback_builds_and_records_the_snapshot_failure() {
        let path = std::env::temp_dir()
            .join(format!("ampc_serve_no_such_snapshot_{}.snap", std::process::id()));
        let g = random_forest(400, 7, 21);
        let truth = reference_components(&g);
        let (service, source) =
            ServiceBuilder::new(g).spec(spec()).from_snapshot_or_rebuild(&path).expect("fallback");
        assert_eq!(source, BootSource::RebuildFallback);
        assert_eq!(*service.snapshot().index(), ComponentIndex::build(&truth));
        let health = service.health();
        // The failure is observable but the fallback service is healthy.
        assert_eq!(health.state, HealthState::Healthy);
        assert_eq!(health.total_incidents, 1);
        assert_eq!(health.incidents[0].op, IncidentOp::Boot);
        assert!(matches!(health.incidents[0].error, ServeError::SnapshotBoot(_)));
    }

    #[test]
    fn boot_from_snapshot_with_matching_graph_keeps_compaction() {
        let path =
            std::env::temp_dir().join(format!("ampc_serve_boot_chain_{}.snap", std::process::id()));
        let g = random_forest(300, 5, 22);
        let origin = ServiceBuilder::new(g.clone()).spec(spec()).build().unwrap();
        origin.persist(&path).expect("persist");

        let (replica, source) = ServiceBuilder::new(g)
            .spec(spec())
            .journal_budget(JournalBudget::new(1, usize::MAX))
            .from_snapshot_or_rebuild(&path)
            .expect("boot");
        assert_eq!(source, BootSource::Snapshot);
        assert_eq!(replica.health().total_incidents, 0);
        // The builder's graph became ground truth: over-budget inserts
        // compact, which plain `from_snapshot` cannot do.
        let report = replica.insert_edges(&[(0, 299), (1, 298)]).expect("insert");
        assert!(report.compaction_started, "matching graph must re-enable compaction");

        // A vertex-count mismatch falls back to the edge-less boot.
        let (replica2, source2) = ServiceBuilder::new(random_forest(10, 1, 23))
            .spec(spec())
            .journal_budget(JournalBudget::new(1, usize::MAX))
            .from_snapshot_or_rebuild(&path)
            .expect("boot");
        assert_eq!(source2, BootSource::Snapshot);
        let report2 = replica2.insert_edges(&[(0, 299), (1, 298)]).expect("insert");
        assert!(!report2.compaction_started, "mismatched graph must not become ground truth");

        std::fs::remove_file(&path).ok();
    }
}
