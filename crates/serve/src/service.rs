//! `ConnectivityService` — the run→validate→index→serve lifecycle as a
//! first-class API.
//!
//! [`ServiceBuilder`] runs a [`PipelineSpec`] over a graph, validates the
//! labeling against the graph (the same check the CLI always performed),
//! freezes it into a [`ComponentIndex`], and publishes it as epoch 0 of an
//! [`EpochCell`]. The resulting [`ServiceHandle`] is clone-able and
//! thread-safe: any number of reader threads call
//! [`ServiceHandle::snapshot`] — a lock-free pin — and answer queries
//! against their pinned epoch, while [`ServiceHandle::rebuild`] runs the
//! pipeline on a *background thread* and publishes the new index
//! atomically. Readers holding old snapshots are never blocked and never
//! observe a half-built index; a retired epoch's memory is reclaimed once
//! the last snapshot pinning it is dropped.
//!
//! Per-epoch determinism: the published index is a pure function of the
//! (spec, graph) pair — the pipelines are seed-deterministic and the index
//! remaps labels by partition — so every snapshot of one epoch answers
//! byte-identically on every thread, machine, and backend.

use std::sync::{Arc, Weak};
use std::thread::JoinHandle;

use ampc::{AmpcError, RunStats};
use ampc_cc::pipeline::{Pipeline as _, PipelineSpec, ResolvedAlgorithm};
use ampc_graph::{Graph, Labeling};
use ampc_query::{ComponentIndex, QueryEngine};

use crate::epoch::{EpochCell, EpochGuard};

/// Errors surfaced by the serving layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The underlying pipeline run failed.
    Pipeline(AmpcError),
    /// The pipeline produced a labeling that does not validate against the
    /// graph (index construction refused it).
    InvalidLabeling(String),
    /// A background rebuild thread panicked.
    RebuildPanicked,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Pipeline(e) => write!(f, "pipeline run failed: {e}"),
            ServeError::InvalidLabeling(msg) => write!(f, "labeling rejected: {msg}"),
            ServeError::RebuildPanicked => write!(f, "background rebuild thread panicked"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<AmpcError> for ServeError {
    fn from(e: AmpcError) -> Self {
        ServeError::Pipeline(e)
    }
}

/// One published epoch: the immutable index plus the run that produced it.
/// Everything here is frozen at publish time; readers share it via `Arc`.
#[derive(Debug)]
pub struct PublishedIndex {
    epoch: u64,
    index: ComponentIndex,
    labeling: Labeling,
    stats: RunStats,
    algorithm: ResolvedAlgorithm,
    graph_n: usize,
    graph_m: usize,
}

impl PublishedIndex {
    /// The epoch this index was published as.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The immutable component index.
    pub fn index(&self) -> &ComponentIndex {
        &self.index
    }

    /// The raw labeling the pipeline produced (e.g. for `--labels` output).
    pub fn labeling(&self) -> &Labeling {
        &self.labeling
    }

    /// The producing run's cost accounting.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Which algorithm produced this epoch.
    pub fn algorithm(&self) -> ResolvedAlgorithm {
        self.algorithm
    }

    /// `(n, m)` of the graph this epoch indexed.
    pub fn graph_size(&self) -> (usize, usize) {
        (self.graph_n, self.graph_m)
    }
}

/// A pinned, immutable view of one published epoch. Cheap to clone (an
/// `Arc` bump); holding it keeps that epoch's index alive, dropping it
/// releases the pin. Obtainable only via [`ServiceHandle::snapshot`] —
/// lock-free.
#[derive(Clone)]
pub struct IndexSnapshot {
    guard: EpochGuard<PublishedIndex>,
}

impl IndexSnapshot {
    /// The epoch this snapshot pinned.
    pub fn epoch(&self) -> u64 {
        self.guard.epoch()
    }

    /// A borrow-only query engine over this snapshot's index. Engines are
    /// `Copy`; make one per thread or per batch, they cost nothing.
    pub fn engine(&self) -> QueryEngine<'_> {
        QueryEngine::new(self.guard.index())
    }

    /// Downgrades to a weak reference to the epoch payload — the hook the
    /// lifecycle tests use to observe that retired epochs are freed once
    /// every snapshot is dropped.
    pub fn downgrade(&self) -> Weak<PublishedIndex> {
        Arc::downgrade(self.guard.value())
    }
}

impl std::ops::Deref for IndexSnapshot {
    type Target = PublishedIndex;

    fn deref(&self) -> &PublishedIndex {
        &self.guard
    }
}

/// The shared state behind every [`ServiceHandle`] clone: the epoch cell
/// plus the spec every rebuild re-runs.
#[derive(Debug)]
struct ConnectivityService {
    cell: EpochCell<PublishedIndex>,
    spec: PipelineSpec,
}

/// Runs the spec on `g` and freezes the result into an epoch payload.
/// Validation is part of the lifecycle: a labeling that does not validate
/// against `g` is never published.
fn build_payload(spec: &PipelineSpec, g: &Graph, epoch: u64) -> Result<PublishedIndex, ServeError> {
    let run = spec.resolve(g).execute(g)?;
    let index = ComponentIndex::from_run(g, &run.labeling).map_err(ServeError::InvalidLabeling)?;
    Ok(PublishedIndex {
        epoch,
        index,
        labeling: run.labeling,
        stats: run.stats,
        algorithm: run.algorithm,
        graph_n: g.n(),
        graph_m: g.m(),
    })
}

/// Builder for a [`ServiceHandle`]: `ServiceBuilder::new(graph)
/// .spec(spec).build()?` runs the pipeline once (synchronously), validates
/// and indexes the result, and publishes it as epoch 0.
pub struct ServiceBuilder {
    graph: Graph,
    spec: PipelineSpec,
}

impl ServiceBuilder {
    /// Starts a builder over `graph` with the default [`PipelineSpec`].
    pub fn new(graph: Graph) -> Self {
        ServiceBuilder { graph, spec: PipelineSpec::default() }
    }

    /// Sets the pipeline spec used for the initial build and every rebuild.
    pub fn spec(mut self, spec: PipelineSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Runs the pipeline, validates, indexes, and publishes epoch 0.
    pub fn build(self) -> Result<ServiceHandle, ServeError> {
        let payload = build_payload(&self.spec, &self.graph, 0)?;
        let service =
            ConnectivityService { cell: EpochCell::new(Arc::new(payload)), spec: self.spec };
        Ok(ServiceHandle { service: Arc::new(service) })
    }
}

/// A clone-able handle to a connectivity service. Clones share the same
/// epoch cell: a rebuild published through any handle is visible to
/// snapshots taken through every other.
#[derive(Clone, Debug)]
pub struct ServiceHandle {
    service: Arc<ConnectivityService>,
}

impl ServiceHandle {
    /// Pins the current epoch — lock-free; never blocks on rebuilds. Call
    /// once per thread (or per request) and answer any number of queries
    /// against the returned snapshot.
    pub fn snapshot(&self) -> IndexSnapshot {
        IndexSnapshot { guard: self.service.cell.pin() }
    }

    /// The most recently published epoch number.
    pub fn current_epoch(&self) -> u64 {
        self.service.cell.epoch()
    }

    /// The spec every build and rebuild runs.
    pub fn spec(&self) -> &PipelineSpec {
        &self.service.spec
    }

    /// Rebuilds the index over `graph` on a background thread and
    /// publishes it as the next epoch when done. Readers keep answering
    /// against their pinned snapshots throughout; the swap is atomic.
    ///
    /// Returns immediately with a [`RebuildHandle`]; call
    /// [`RebuildHandle::wait`] for the published epoch number (or the
    /// pipeline/validation error, in which case nothing was published).
    pub fn rebuild(&self, graph: Graph) -> RebuildHandle {
        let service = Arc::clone(&self.service);
        let join = std::thread::spawn(move || {
            // Run the pipeline *before* taking the publish slot: the
            // expensive work happens with zero impact on the epoch cell.
            let run = build_payload(&service.spec, &graph, 0)?;
            let epoch =
                service.cell.publish_with(move |epoch| Arc::new(PublishedIndex { epoch, ..run }));
            Ok(epoch)
        });
        RebuildHandle { join }
    }

    /// Convenience: [`ServiceHandle::rebuild`] + wait.
    pub fn rebuild_blocking(&self, graph: Graph) -> Result<u64, ServeError> {
        self.rebuild(graph).wait()
    }
}

/// Handle to an in-flight background rebuild.
pub struct RebuildHandle {
    join: JoinHandle<Result<u64, ServeError>>,
}

impl RebuildHandle {
    /// Blocks until the rebuild publishes (returning its epoch number) or
    /// fails (returning the error; nothing was published).
    pub fn wait(self) -> Result<u64, ServeError> {
        self.join.join().map_err(|_| ServeError::RebuildPanicked)?
    }

    /// True once the background thread has finished (the result is ready
    /// and `wait` will not block).
    pub fn is_finished(&self) -> bool {
        self.join.is_finished()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc::DhtBackend;
    use ampc_cc::pipeline::Algorithm;
    use ampc_graph::generators::{erdos_renyi_gnm, random_forest};
    use ampc_graph::reference_components;

    fn spec() -> PipelineSpec {
        PipelineSpec::default().with_seed(42).with_machines(4)
    }

    #[test]
    fn build_serves_a_validated_epoch_zero() {
        let g = random_forest(2000, 13, 7);
        let truth = reference_components(&g);
        let service = ServiceBuilder::new(g).spec(spec()).build().expect("build");
        let snap = service.snapshot();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.algorithm().number(), 1);
        assert_eq!(snap.graph_size().0, 2000);
        assert_eq!(snap.index().num_components(), 13);
        // Byte-identical to the reference-built index (partition purity).
        assert_eq!(*snap.index(), ComponentIndex::build(&truth));
        assert!(snap.labeling().same_partition(&truth));
        assert!(snap.stats().rounds() > 0);
    }

    #[test]
    fn rebuild_publishes_new_epochs_while_old_snapshots_answer() {
        let g0 = random_forest(500, 5, 1);
        let g1 = random_forest(800, 9, 2);
        let service = ServiceBuilder::new(g0).spec(spec()).build().unwrap();
        let old = service.snapshot();
        assert_eq!(old.index().num_components(), 5);

        let epoch = service.rebuild_blocking(g1).expect("rebuild");
        assert_eq!(epoch, 1);
        assert_eq!(service.current_epoch(), 1);
        // The old snapshot still answers against its pinned epoch…
        assert_eq!(old.epoch(), 0);
        assert_eq!(old.index().num_components(), 5);
        // …and new snapshots see the new graph.
        let new = service.snapshot();
        assert_eq!(new.epoch(), 1);
        assert_eq!(new.index().num_components(), 9);
        assert_eq!(new.graph_size().0, 800);
    }

    #[test]
    fn clones_share_the_epoch_cell() {
        let service = ServiceBuilder::new(random_forest(300, 3, 4)).spec(spec()).build().unwrap();
        let clone = service.clone();
        clone.rebuild_blocking(random_forest(300, 7, 5)).unwrap();
        assert_eq!(service.current_epoch(), 1);
        assert_eq!(service.snapshot().index().num_components(), 7);
    }

    #[test]
    fn retired_epochs_are_freed_once_unpinned() {
        let service = ServiceBuilder::new(random_forest(200, 2, 6)).spec(spec()).build().unwrap();
        let snap0 = service.snapshot();
        let weak0 = snap0.downgrade();
        service.rebuild_blocking(random_forest(200, 4, 7)).unwrap();
        service.rebuild_blocking(random_forest(200, 6, 8)).unwrap();
        assert!(weak0.upgrade().is_some(), "pinned epoch 0 must stay alive");
        drop(snap0);
        assert!(weak0.upgrade().is_none(), "unpinned retired epoch must be freed");
    }

    #[test]
    fn spec_is_honored_by_rebuilds() {
        let spec = PipelineSpec::default()
            .with_seed(9)
            .with_algorithm(Algorithm::General)
            .with_backend(DhtBackend::dense())
            .with_k(3);
        let service =
            ServiceBuilder::new(erdos_renyi_gnm(400, 900, 3)).spec(spec.clone()).build().unwrap();
        assert_eq!(service.spec(), &spec);
        assert_eq!(service.snapshot().algorithm().number(), 2);
        service.rebuild_blocking(erdos_renyi_gnm(500, 1200, 4)).unwrap();
        let snap = service.snapshot();
        assert_eq!(snap.algorithm().number(), 2);
        let truth = reference_components(&erdos_renyi_gnm(500, 1200, 4));
        assert_eq!(*snap.index(), ComponentIndex::build(&truth));
    }

    #[test]
    fn snapshots_of_one_epoch_answer_identically() {
        let g = random_forest(1000, 11, 10);
        let service = ServiceBuilder::new(g).spec(spec()).build().unwrap();
        let a = service.snapshot();
        let b = service.snapshot();
        assert_eq!(a.epoch(), b.epoch());
        assert_eq!(a.index(), b.index());
        use ampc_query::Query;
        for v in 0..1000u32 {
            assert_eq!(
                a.engine().answer(Query::ComponentOf(v)),
                b.engine().answer(Query::ComponentOf(v))
            );
        }
    }
}
