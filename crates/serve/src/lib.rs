//! # `ampc-serve` — the connectivity serving layer
//!
//! `ampc-query` froze one finished run into an immutable index; this crate
//! is what keeps that index **live**: the run→validate→index→serve
//! lifecycle as a first-class service API, safe for any number of reader
//! threads while background rebuilds publish new indexes under traffic.
//!
//! * [`EpochCell`] — the one concurrency primitive: a hand-rolled two-slot
//!   `AtomicPtr`/`Arc` swap cell (no external crates — the workspace is
//!   offline). Readers pin the current epoch lock-free; publishers swap in
//!   a new value atomically; a retired epoch is freed exactly when its
//!   last guard drops.
//! * [`ServiceBuilder`] / [`ServiceHandle`] — `ServiceBuilder::new(graph)
//!   .spec(spec).build()?` runs the configured [`PipelineSpec`], validates
//!   the labeling against the graph, freezes it into a `ComponentIndex`,
//!   and publishes epoch 0. The clone-able handle serves lock-free
//!   [`IndexSnapshot`]s and runs [`ServiceHandle::rebuild`] on a
//!   background thread — readers keep answering against their pinned
//!   epoch while the swap happens under live traffic. Rebuilds publish in
//!   request order (ticket-sequenced), never completion order.
//! * [`ServiceHandle::insert_edges`] — the incremental delta path:
//!   streaming edge insertions union dense component ids and publish as
//!   cheap **journal-epochs** ([`JournalView`] riding on an unchanged
//!   base index, `O(components)` per publish), byte-identical to a full
//!   rebuild of the merged graph; past a [`JournalBudget`] the service
//!   compacts with a background rebuild and replays in-flight inserts.
//! * [`ServiceHandle::persist`] / [`ServiceBuilder::from_snapshot`] — the
//!   fan-out path: persist pins the published epoch and writes it as a
//!   versioned, checksummed snapshot (`ampc_query::snapshot`, atomic
//!   rename); boot is one bulk read plus validation, publishing epoch 0
//!   with the index sections reinterpreted in place over the snapshot
//!   buffer — zero per-element deserialization, no pipeline run.
//! * [`driver`] — the multi-threaded workload driver: a deterministic
//!   per-thread striping of one query stream (totals are seed-reproducible
//!   at any thread count), per-thread and aggregate queries/sec, each
//!   thread answering through its own pinned snapshot.
//! * [`fault`] + the degradation state machine — every risky seam
//!   (pipeline build, compaction publish, journal freeze, snapshot
//!   write/load) carries a named **failpoint** (compiled in always, one
//!   relaxed atomic load when disarmed); failures no longer vanish with
//!   their thread but land as typed incidents in a bounded log and drive
//!   `Healthy → Degraded → ReadOnly` ([`HealthState`]) with bounded
//!   deterministic retry-with-backoff ([`RetryPolicy`], injectable
//!   [`Clock`]). Reads keep serving the last published epoch in every
//!   state; [`ServiceBuilder::from_snapshot_or_rebuild`] gives boot the
//!   same no-single-failure-kills-us treatment.
//!
//! Per-epoch determinism carries over from the layers below: a published
//! index is a pure function of `(spec, graph)`, so every snapshot of one
//! epoch answers byte-identically — the property the swap-under-load tests
//! pin by fingerprinting answers against per-graph oracles.

#![warn(missing_docs)]

pub mod driver;
pub mod epoch;
pub mod fault;
mod service;

pub use ampc_cc::pipeline::PipelineSpec;
pub use ampc_query::{JournalView, SnapshotError};
pub use epoch::{EpochCell, EpochGuard};
pub use fault::{FaultAction, InjectedFault, Site};
pub use service::{
    BootSource, Clock, HealthReport, HealthState, Incident, IncidentOp, IndexSnapshot,
    InsertReport, JournalBudget, ManualClock, MonotonicClock, PersistReport, PublishedIndex,
    RebuildHandle, RetryPolicy, ServeError, ServiceBuilder, ServiceHandle,
};
