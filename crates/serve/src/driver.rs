//! Multi-threaded workload driver over a [`ServiceHandle`].
//!
//! The driver partitions one deterministic query stream into contiguous
//! per-thread stripes — thread `t` of `T` gets the `t`-th of `T` near-equal
//! chunks, a pure function of `(len, T)` — so the *work* is
//! seed-reproducible at any thread count: every query is answered exactly
//! once, and the aggregate checksum (a wrapping sum, hence
//! partition-order-invariant) is identical for 1 thread and 64. Each
//! thread pins its own [`IndexSnapshot`] (the lock-free service read path)
//! and reuses one answer buffer, so the measured loop is exactly the
//! serving hot path: pin, answer, sum.
//!
//! Timing is reported per thread (each thread's own queries/sec) and in
//! aggregate (total queries over the wall-clock of the parallel region) —
//! the aggregate is the scaling number, the per-thread rows expose
//! stragglers. Both the one-call-per-query and the batched engine paths
//! are timed, in separate parallel regions, against the *same* per-thread
//! snapshot pinned at the start of the run — so one run's answers belong
//! to one epoch per thread even when a rebuild publishes mid-run.

use std::time::Instant;

use ampc_query::workload::Mix;
use ampc_query::{throughput, Query};

use crate::service::ServiceHandle;

/// One thread's measurements.
#[derive(Debug, Clone)]
pub struct ThreadReport {
    /// Thread index in `0..threads`.
    pub thread: usize,
    /// Queries this thread answered (its stripe length).
    pub queries: usize,
    /// Epoch the thread's snapshot pinned.
    pub epoch: u64,
    /// Queries/sec of the one-call-per-query pass.
    pub single_qps: f64,
    /// Queries/sec of the batched pass.
    pub batch_qps: f64,
    /// Wrapping sum of this thread's answers (identical across both paths;
    /// verified by the driver).
    pub checksum: u64,
}

/// Aggregate + per-thread results of one driver run.
#[derive(Debug, Clone)]
pub struct DriverReport {
    /// Thread count the run used.
    pub threads: usize,
    /// Total queries answered (the full stream, once).
    pub total_queries: usize,
    /// Aggregate single-call queries/sec: total queries over the parallel
    /// region's wall clock.
    pub aggregate_single_qps: f64,
    /// Aggregate batched queries/sec.
    pub aggregate_batch_qps: f64,
    /// Wrapping sum of all answers — invariant under the thread count.
    pub checksum: u64,
    /// Per-thread rows, in thread order.
    pub per_thread: Vec<ThreadReport>,
}

/// Per-query latency distribution from one dedicated timed pass (see
/// [`run_latency`]). Quantiles are log2-bucket upper bounds clamped to the
/// observed max — within one bucket of the exact order statistics.
#[derive(Debug, Clone, Copy)]
pub struct LatencyReport {
    /// Thread count the pass used.
    pub threads: usize,
    /// Queries timed (the full stream, once).
    pub queries: u64,
    /// Median latency in nanoseconds.
    pub p50_ns: u64,
    /// 90th-percentile latency in nanoseconds.
    pub p90_ns: u64,
    /// 99th-percentile latency in nanoseconds.
    pub p99_ns: u64,
    /// 99.9th-percentile latency in nanoseconds.
    pub p999_ns: u64,
    /// Slowest observed query in nanoseconds (exact).
    pub max_ns: u64,
    /// Mean latency in nanoseconds (exact).
    pub mean_ns: f64,
    /// Wrapping sum of all answers — comparable to [`DriverReport`]'s.
    pub checksum: u64,
}

/// The contiguous stripe of `len` items that thread `t` of `threads` owns:
/// near-equal chunks, the first `len % threads` threads take one extra.
/// Deterministic, covering, and disjoint — the partition behind the
/// driver's reproducible-totals contract.
pub fn stripe(len: usize, threads: usize, t: usize) -> std::ops::Range<usize> {
    let base = len / threads;
    let extra = len % threads;
    let lo = t * base + t.min(extra);
    let hi = lo + base + usize::from(t < extra);
    lo..hi
}

/// Runs the full `queries` stream against `service` on `threads` threads
/// (batched pass in chunks of `batch`). Each thread pins its own snapshot.
///
/// # Panics
/// Panics if `threads` or `batch` is zero, or if any thread's single and
/// batched checksums diverge (a broken engine, never a usage error).
pub fn run(
    service: &ServiceHandle,
    queries: &[Query],
    threads: usize,
    batch: usize,
) -> DriverReport {
    assert!(threads > 0, "driver needs at least one thread");
    assert!(batch > 0, "batch size must be positive");

    struct ThreadSlot {
        /// Pinned in the first region and reused by the second, so both
        /// passes of one run answer against the same epoch even if a
        /// rebuild publishes mid-run — the checksum cross-check below is
        /// then a genuine engine invariant, never a swap artifact.
        snapshot: Option<crate::service::IndexSnapshot>,
        queries: usize,
        single_qps: f64,
        single_sum: u64,
        batch_qps: f64,
        batch_sum: u64,
    }
    let mut slots: Vec<ThreadSlot> = (0..threads)
        .map(|t| ThreadSlot {
            snapshot: None,
            queries: stripe(queries.len(), threads, t).len(),
            single_qps: 0.0,
            single_sum: 0,
            batch_qps: 0.0,
            batch_sum: 0,
        })
        .collect();

    // Region 1: every thread pins its snapshot and runs the
    // one-call-per-query pass on its stripe.
    let single_wall = parallel_region(&mut slots, |t, slot| {
        let snap = slot.snapshot.insert(service.snapshot());
        let stripe = &queries[stripe(queries.len(), threads, t)];
        let (qps, sum) = throughput::single_pass(&snap.engine(), stripe);
        slot.single_qps = qps;
        slot.single_sum = sum;
    });

    // Region 2: the batched pass against the same pinned snapshots,
    // reused answer buffers.
    let batch_wall = parallel_region(&mut slots, |t, slot| {
        let snap = slot.snapshot.as_ref().expect("pinned in region 1");
        let stripe = &queries[stripe(queries.len(), threads, t)];
        let mut buf = Vec::with_capacity(batch.min(stripe.len()));
        let (qps, sum) = throughput::batched_pass(&snap.engine(), stripe, batch, &mut buf);
        slot.batch_qps = qps;
        slot.batch_sum = sum;
    });

    let mut checksum = 0u64;
    let per_thread: Vec<ThreadReport> = slots
        .iter()
        .enumerate()
        .map(|(t, s)| {
            assert_eq!(
                s.single_sum, s.batch_sum,
                "thread {t}: batched path diverged from the single-call path"
            );
            checksum = checksum.wrapping_add(s.single_sum);
            ThreadReport {
                thread: t,
                queries: s.queries,
                epoch: s.snapshot.as_ref().map(|snap| snap.epoch()).unwrap_or(0),
                single_qps: s.single_qps,
                batch_qps: s.batch_qps,
                checksum: s.single_sum,
            }
        })
        .collect();

    DriverReport {
        threads,
        total_queries: queries.len(),
        aggregate_single_qps: queries.len() as f64 / single_wall.max(1e-9),
        aggregate_batch_qps: queries.len() as f64 / batch_wall.max(1e-9),
        checksum,
        per_thread,
    }
}

/// Times every query of the stream **individually** into a latency
/// histogram, on `threads` threads with the same deterministic striping as
/// [`run`]. A separate pass from the throughput regions by design: the two
/// clock reads around each query would depress q/s if folded into the
/// timed throughput loops, so distributions and throughput come from
/// different passes over the same engine (see
/// `ampc_query::throughput::latency_pass`).
///
/// # Panics
/// Panics if `threads` is zero.
pub fn run_latency(service: &ServiceHandle, queries: &[Query], threads: usize) -> LatencyReport {
    assert!(threads > 0, "driver needs at least one thread");
    let hist = ampc_obs::Histogram::new();
    let mut sums: Vec<u64> = vec![0; threads];
    parallel_region(&mut sums, |t, sum| {
        let snap = service.snapshot();
        let stripe = &queries[stripe(queries.len(), threads, t)];
        *sum = throughput::latency_pass(&snap.engine(), stripe, &hist);
    });
    let snap = hist.snapshot();
    LatencyReport {
        threads,
        queries: snap.count,
        p50_ns: snap.quantile(0.5),
        p90_ns: snap.quantile(0.9),
        p99_ns: snap.quantile(0.99),
        p999_ns: snap.quantile(0.999),
        max_ns: snap.max,
        mean_ns: snap.mean(),
        checksum: sums.iter().fold(0u64, |a, &b| a.wrapping_add(b)),
    }
}

/// Convenience mirroring [`run_mix`]: deterministic workload from the
/// current snapshot, then [`run_latency`] over it.
pub fn run_latency_mix(
    service: &ServiceHandle,
    mix: Mix,
    count: usize,
    seed: u64,
    threads: usize,
) -> LatencyReport {
    let snap = service.snapshot();
    let queries = ampc_query::workload::generate(snap.index(), mix, count, seed);
    run_latency(service, &queries, threads)
}

/// Spawns one scoped thread per slot, runs `body(t, slot)` on each, and
/// returns the wall-clock seconds of the whole region.
fn parallel_region<S: Send>(slots: &mut [S], body: impl Fn(usize, &mut S) + Sync) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for (t, slot) in slots.iter_mut().enumerate() {
            let body = &body;
            scope.spawn(move || body(t, slot));
        }
    });
    t0.elapsed().as_secs_f64()
}

/// Convenience for benches and the CLI: generate the mix's deterministic
/// workload from the service's *current* snapshot and drive it. The
/// workload depends only on `(index, mix, count, seed)`, so two calls at
/// the same epoch drive identical streams.
pub fn run_mix(
    service: &ServiceHandle,
    mix: Mix,
    count: usize,
    seed: u64,
    threads: usize,
    batch: usize,
) -> DriverReport {
    let snap = service.snapshot();
    let queries = ampc_query::workload::generate(snap.index(), mix, count, seed);
    run(service, &queries, threads, batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_cc::pipeline::PipelineSpec;
    use ampc_graph::generators::random_forest;
    use ampc_query::workload;

    use crate::service::ServiceBuilder;

    fn service() -> ServiceHandle {
        let g = random_forest(2000, 17, 3);
        ServiceBuilder::new(g)
            .spec(PipelineSpec::default().with_seed(5).with_machines(4))
            .build()
            .expect("service build")
    }

    #[test]
    fn stripes_partition_the_stream() {
        for (len, threads) in [(10, 3), (7, 7), (5, 8), (0, 4), (1000, 16), (13, 1)] {
            let mut covered = Vec::new();
            for t in 0..threads {
                covered.extend(stripe(len, threads, t));
            }
            assert_eq!(covered, (0..len).collect::<Vec<_>>(), "len={len} threads={threads}");
            // Near-equal: stripe lengths differ by at most one.
            let lens: Vec<usize> = (0..threads).map(|t| stripe(len, threads, t).len()).collect();
            let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
            assert!(max - min <= 1, "unbalanced stripes {lens:?}");
        }
    }

    #[test]
    fn totals_are_invariant_under_thread_count() {
        let service = service();
        let snap = service.snapshot();
        let queries = workload::generate(snap.index(), workload::Mix::Uniform, 20_000, 99);
        let baseline = run(&service, &queries, 1, 256);
        assert_eq!(baseline.total_queries, 20_000);
        for threads in [2, 3, 4, 7] {
            let r = run(&service, &queries, threads, 256);
            assert_eq!(r.checksum, baseline.checksum, "checksum changed at {threads} threads");
            assert_eq!(r.total_queries, baseline.total_queries);
            assert_eq!(r.per_thread.len(), threads);
            assert_eq!(r.per_thread.iter().map(|t| t.queries).sum::<usize>(), 20_000);
            assert!(r.per_thread.iter().all(|t| t.epoch == 0));
        }
    }

    #[test]
    fn run_mix_drives_the_standard_mixes() {
        let service = service();
        for mix in workload::Mix::STANDARD {
            let r = run_mix(&service, mix, 4000, 7, 2, 128);
            assert_eq!(r.total_queries, 4000);
            assert_eq!(r.threads, 2);
            assert!(r.aggregate_single_qps > 0.0 && r.aggregate_batch_qps > 0.0);
            // Deterministic workload ⇒ deterministic checksum across runs.
            let again = run_mix(&service, mix, 4000, 7, 4, 32);
            assert_eq!(r.checksum, again.checksum, "mix {} checksum drifted", mix.name());
        }
    }

    #[test]
    fn latency_pass_matches_throughput_checksum_with_ordered_quantiles() {
        let service = service();
        let snap = service.snapshot();
        let queries = workload::generate(snap.index(), workload::Mix::Uniform, 10_000, 21);
        let throughput = run(&service, &queries, 2, 256);
        let lat = run_latency(&service, &queries, 2);
        // Same stream, same engine: the answers (hence checksum) must
        // match the throughput passes, at any thread count.
        assert_eq!(lat.checksum, throughput.checksum);
        assert_eq!(run_latency(&service, &queries, 4).checksum, throughput.checksum);
        assert_eq!(lat.queries, 10_000);
        assert!(lat.p50_ns > 0, "a timed query cannot take zero time");
        assert!(lat.p50_ns <= lat.p90_ns);
        assert!(lat.p90_ns <= lat.p99_ns);
        assert!(lat.p99_ns <= lat.p999_ns);
        assert!(lat.p999_ns <= lat.max_ns);
        assert!(lat.mean_ns > 0.0);
    }

    #[test]
    fn empty_stream_reports_zeros() {
        let service = service();
        let r = run(&service, &[], 4, 64);
        assert_eq!((r.total_queries, r.checksum), (0, 0));
        assert_eq!(r.per_thread.len(), 4);
        assert!(r.per_thread.iter().all(|t| t.queries == 0));
    }
}
