//! A hand-rolled epoch cell: lock-free readers over an atomically
//! swappable `Arc<T>`.
//!
//! The serving layer needs exactly one concurrency primitive: readers
//! obtain a consistent snapshot of the current index *without ever taking a
//! lock*, while a background rebuild publishes a replacement index
//! atomically. The offline workspace has no `arc-swap` crate, so
//! [`EpochCell`] implements the classic two-slot scheme by hand:
//!
//! ```text
//! slots[0] ─ AtomicPtr<T> (an Arc leaked via into_raw) + pin counter
//! slots[1] ─ AtomicPtr<T>                              + pin counter
//! epoch    ─ AtomicU64; epoch & 1 selects the active slot
//! ```
//!
//! **Reader protocol** ([`EpochCell::pin`]): load `epoch`, bump the active
//! slot's pin counter, re-check `epoch`; if unchanged, take a strong `Arc`
//! reference from the slot's pointer and unpin. The pin counter only
//! protects the window between reading the pointer and incrementing the
//! Arc's strong count — once the guard holds its own `Arc`, the slot can be
//! reused freely. Readers never block and never spin more than one retry
//! per concurrent publish.
//!
//! **Writer protocol** ([`EpochCell::publish`]): serialize writers with a
//! mutex (readers never touch it), store the new pointer into the inactive
//! slot (always empty between publishes — see below), increment `epoch` —
//! making that slot active — then *retire* the previous slot: wait for
//! stragglers still inside its pin window to drain (pins are held only for
//! a few instructions, so this terminates immediately), null its pointer,
//! and drop the cell's strong reference. The cell therefore holds exactly
//! one reference — the current epoch — and a retired epoch's payload is
//! freed the moment its last guard drops: standard `Arc` semantics, with
//! no lingering cell-side reference.
//!
//! **Why every answer is consistent with exactly one epoch:** a guard holds
//! one `Arc<T>` obtained while its slot provably held the epoch-`e` payload
//! (the pin + re-check rules out the slot being recycled mid-read, see the
//! ordering argument in DESIGN.md), and `T` is immutable once published —
//! so all reads through one guard see one published value, torn reads are
//! impossible by construction, and the guard's [`EpochGuard::epoch`] names
//! the epoch those answers belong to.
//!
//! All atomics use `SeqCst`. Publishing is rare (a full pipeline rebuild
//! precedes every swap) and pins are two atomic RMWs per snapshot, so the
//! simplest ordering that makes the proof one paragraph is the right
//! trade; see DESIGN.md ("The service layer") for the argument.

use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// One slot of the two-slot cell: a leaked `Arc<T>` plus a pin counter
/// protecting the pointer-read → strong-count-increment window.
struct Slot<T> {
    ptr: AtomicPtr<T>,
    readers: AtomicUsize,
}

impl<T> Slot<T> {
    fn new(ptr: *mut T) -> Self {
        Slot { ptr: AtomicPtr::new(ptr), readers: AtomicUsize::new(0) }
    }
}

/// A lock-free-for-readers, atomically swappable `Arc<T>` cell with a
/// monotonically increasing epoch number. See the module docs for the
/// protocol.
pub struct EpochCell<T> {
    slots: [Slot<T>; 2],
    /// Published-epoch counter; `epoch & 1` selects the active slot.
    epoch: AtomicU64,
    /// Serializes publishers. Readers never lock it.
    writer: Mutex<()>,
}

// SAFETY: the cell owns (via leaked Arcs) values of `T` that are handed out
// across threads as `Arc<T>`; that is sound exactly when `Arc<T>` itself is
// sendable/shareable, i.e. `T: Send + Sync`.
unsafe impl<T: Send + Sync> Send for EpochCell<T> {}
unsafe impl<T: Send + Sync> Sync for EpochCell<T> {}

impl<T> EpochCell<T> {
    /// Creates a cell publishing `initial` as epoch 0.
    pub fn new(initial: Arc<T>) -> Self {
        EpochCell {
            slots: [Slot::new(Arc::into_raw(initial) as *mut T), Slot::new(std::ptr::null_mut())],
            epoch: AtomicU64::new(0),
            writer: Mutex::new(()),
        }
    }

    /// The most recently published epoch number.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(SeqCst)
    }

    /// Pins the current value: lock-free, wait-free unless a publish lands
    /// in the middle of the (few-instruction) pin window, in which case the
    /// reader retries once per concurrent publish.
    pub fn pin(&self) -> EpochGuard<T> {
        loop {
            let e = self.epoch.load(SeqCst);
            let slot = &self.slots[(e & 1) as usize];
            slot.readers.fetch_add(1, SeqCst);
            // Re-check: if the epoch moved, `slot` may be (or be about to
            // be) recycled by a publisher that saw readers == 0 before our
            // increment — back off and retry against the new epoch.
            if self.epoch.load(SeqCst) == e {
                let ptr = slot.ptr.load(SeqCst);
                // SAFETY: `ptr` came from `Arc::into_raw` (new/publish) and
                // cannot have been released: a publisher retires this slot
                // only after (a) storing epoch `e + 1` — which our re-check
                // above precedes in the SeqCst order, since it still saw
                // `e` — and (b) observing `readers == 0`, excluded by our
                // increment (which precedes the re-check, hence the
                // publisher's drain) until we unpin below. So the Arc
                // backing `ptr` is alive for the whole window.
                let value = unsafe {
                    Arc::increment_strong_count(ptr);
                    Arc::from_raw(ptr)
                };
                slot.readers.fetch_sub(1, SeqCst);
                return EpochGuard { value, epoch: e };
            }
            slot.readers.fetch_sub(1, SeqCst);
        }
    }

    /// Publishes `value` as the next epoch and returns its epoch number.
    /// Readers already holding guards keep their pinned value; new `pin`
    /// calls see `value`. Publishers are serialized; readers are unaffected.
    pub fn publish(&self, value: Arc<T>) -> u64 {
        self.publish_with(|_| value)
    }

    /// Like [`EpochCell::publish`], but the value is built by a closure
    /// that receives the epoch number it will be published as — so a
    /// payload can embed its own epoch even with concurrent publishers.
    pub fn publish_with<F: FnOnce(u64) -> Arc<T>>(&self, make: F) -> u64 {
        // A poisoned writer mutex is recoverable by construction: the
        // guarded state is the slot/epoch pointer dance below, and a
        // panicking publisher can only die inside `make(next)` — *before*
        // any slot or epoch mutation (the atomics themselves never panic).
        // So poison means "a previous publisher aborted cleanly", not "the
        // cell is half-written"; refusing to publish forever (the old
        // `.expect`) bricked the service for no soundness gain.
        let _w = self.writer.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        let e = self.epoch.load(SeqCst);
        let next = e + 1;
        // Between publishes exactly one slot is populated (the active one);
        // the target slot was nulled when it was last retired, so the new
        // value just drops in.
        let new_ptr = Arc::into_raw(make(next)) as *mut T;
        let vacated = self.slots[(next & 1) as usize].ptr.swap(new_ptr, SeqCst);
        debug_assert!(vacated.is_null(), "target slot must be empty between publishes");
        self.epoch.store(next, SeqCst);

        // Retire the previous slot. After the epoch store above, no reader
        // can newly pass the re-check for epoch `e`; wait out stragglers
        // already inside the pin window (a few instructions each), then
        // release the cell's reference so the retired payload lives exactly
        // as long as its guards.
        let prev = &self.slots[(e & 1) as usize];
        while prev.readers.load(SeqCst) != 0 {
            std::hint::spin_loop();
        }
        let old_ptr = prev.ptr.swap(std::ptr::null_mut(), SeqCst);
        if !old_ptr.is_null() {
            // SAFETY: `old_ptr` is the leaked Arc published as epoch `e`.
            // No reader can still reach it: the epoch has advanced (new
            // re-checks fail) and the pin window drained (stragglers that
            // passed the re-check finished taking their own strong count).
            // Guards keep the value alive via those counts.
            unsafe { drop(Arc::from_raw(old_ptr)) };
        }
        next
    }
}

impl<T> std::fmt::Debug for EpochCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochCell").field("epoch", &self.epoch()).finish_non_exhaustive()
    }
}

impl<T> Drop for EpochCell<T> {
    fn drop(&mut self) {
        for slot in &self.slots {
            let ptr = slot.ptr.load(SeqCst);
            if !ptr.is_null() {
                // SAFETY: we have `&mut self`, so no reader or writer is
                // live; each non-null slot holds exactly one leaked Arc.
                unsafe { drop(Arc::from_raw(ptr)) };
            }
        }
    }
}

/// A pinned epoch: an owned strong reference to one published value plus
/// the epoch number it was published as. Dropping the guard releases the
/// reference; the value is freed when its epoch is retired **and** every
/// guard is gone.
pub struct EpochGuard<T> {
    value: Arc<T>,
    epoch: u64,
}

impl<T> EpochGuard<T> {
    /// The epoch this guard pinned.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The pinned value as an `Arc` (e.g. to downgrade to a `Weak` in
    /// lifecycle tests, or to keep the payload past the guard).
    pub fn value(&self) -> &Arc<T> {
        &self.value
    }
}

impl<T> std::ops::Deref for EpochGuard<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> Clone for EpochGuard<T> {
    fn clone(&self) -> Self {
        EpochGuard { value: Arc::clone(&self.value), epoch: self.epoch }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn pin_sees_the_published_value_and_epoch() {
        let cell = EpochCell::new(Arc::new(10u64));
        let g0 = cell.pin();
        assert_eq!((*g0, g0.epoch()), (10, 0));
        assert_eq!(cell.publish(Arc::new(11)), 1);
        assert_eq!(cell.publish(Arc::new(12)), 2);
        // The old guard still answers against its pinned epoch.
        assert_eq!((*g0, g0.epoch()), (10, 0));
        let g2 = cell.pin();
        assert_eq!((*g2, g2.epoch()), (12, 2));
        assert_eq!(cell.epoch(), 2);
    }

    #[test]
    fn publish_with_hands_the_payload_its_epoch() {
        let cell = EpochCell::new(Arc::new((0u64, "genesis")));
        for _ in 0..5 {
            let e = cell.publish_with(|e| Arc::new((e, "rebuilt")));
            let g = cell.pin();
            assert_eq!(g.epoch(), e);
            assert_eq!(g.0, e, "payload must embed the epoch it was published as");
        }
    }

    /// Tracks drops so the retire-on-unpin contract is observable.
    struct DropFlag(Arc<AtomicBool>);
    impl Drop for DropFlag {
        fn drop(&mut self) {
            self.0.store(true, SeqCst);
        }
    }

    #[test]
    fn retired_epochs_are_dropped_once_unpinned() {
        let dropped = Arc::new(AtomicBool::new(false));
        let cell = EpochCell::new(Arc::new(DropFlag(Arc::clone(&dropped))));
        let guard = cell.pin();
        // One publish retires epoch 0; only the guard keeps it alive.
        cell.publish(Arc::new(DropFlag(Arc::new(AtomicBool::new(false)))));
        assert!(!dropped.load(SeqCst), "pinned epoch must stay alive");
        drop(guard);
        assert!(dropped.load(SeqCst), "unpinned retired epoch must be freed");
        // An unpinned epoch is freed by the publish itself: the cell holds
        // no reference to a retired value.
        let dropped1 = Arc::new(AtomicBool::new(false));
        cell.publish(Arc::new(DropFlag(Arc::clone(&dropped1))));
        assert!(!dropped1.load(SeqCst));
        cell.publish(Arc::new(DropFlag(Arc::new(AtomicBool::new(false)))));
        assert!(dropped1.load(SeqCst), "publish must retire the unpinned previous epoch");
    }

    #[test]
    fn cell_drop_releases_both_slots() {
        let d0 = Arc::new(AtomicBool::new(false));
        let d1 = Arc::new(AtomicBool::new(false));
        let cell = EpochCell::new(Arc::new(DropFlag(Arc::clone(&d0))));
        cell.publish(Arc::new(DropFlag(Arc::clone(&d1))));
        drop(cell);
        assert!(d0.load(SeqCst) && d1.load(SeqCst), "cell drop must free both slots");
    }

    #[test]
    fn concurrent_readers_never_see_a_torn_value() {
        // Payload is (epoch, epoch * SALT): a torn read (pointer from one
        // epoch, content from another) or use-after-free would break the
        // invariant. Hammer with readers while a writer publishes rapidly.
        const SALT: u64 = 0x9E37_79B9_7F4A_7C15;
        const PUBLISHES: u64 = 2_000;
        let cell = Arc::new(EpochCell::new(Arc::new((0u64, 0u64))));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut seen = 0u64;
                    while !stop.load(SeqCst) {
                        let g = cell.pin();
                        let (e, salted) = *g;
                        assert_eq!(salted, e.wrapping_mul(SALT), "torn read at epoch {e}");
                        assert!(e >= seen, "epoch went backwards: {e} after {seen}");
                        seen = e;
                    }
                });
            }
            for _ in 0..PUBLISHES {
                cell.publish_with(|e| Arc::new((e, e.wrapping_mul(SALT))));
            }
            stop.store(true, SeqCst);
        });
        assert_eq!(cell.epoch(), PUBLISHES);
        let g = cell.pin();
        assert_eq!(g.0, PUBLISHES);
    }

    #[test]
    fn concurrent_publishers_serialize_and_epochs_stay_dense() {
        let cell = Arc::new(EpochCell::new(Arc::new(0u64)));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                s.spawn(move || {
                    for _ in 0..250 {
                        cell.publish_with(Arc::new);
                    }
                });
            }
        });
        // 4 × 250 publishes ⇒ epoch exactly 1000, payload embeds it.
        assert_eq!(cell.epoch(), 1000);
        assert_eq!(*cell.pin().value().as_ref(), 1000);
    }

    #[test]
    fn poisoned_publisher_does_not_brick_the_cell() {
        // A publisher that panics inside its `make` closure poisons the
        // writer mutex. The cell must shrug that off: the panic fires
        // before any slot/epoch mutation, so the guarded state is intact
        // and later publishes must succeed (this used to panic forever).
        let cell = Arc::new(EpochCell::new(Arc::new(1u64)));
        let result = std::panic::catch_unwind({
            let cell = Arc::clone(&cell);
            move || {
                cell.publish_with(|_| -> Arc<u64> { panic!("publisher died mid-build") });
            }
        });
        assert!(result.is_err(), "the publisher panic must propagate to its caller");
        // The failed publish changed nothing…
        assert_eq!(cell.epoch(), 0);
        assert_eq!(*cell.pin().value().as_ref(), 1);
        // …and the cell still publishes and reads normally afterwards.
        assert_eq!(cell.publish(Arc::new(2)), 1);
        let g = cell.pin();
        assert_eq!((*g, g.epoch()), (2, 1));
    }

    #[test]
    fn guard_clone_shares_the_pin() {
        let cell = EpochCell::new(Arc::new(5u64));
        let a = cell.pin();
        let b = a.clone();
        cell.publish(Arc::new(6));
        assert_eq!((*a, a.epoch()), (5, 0));
        assert_eq!((*b, b.epoch()), (5, 0));
    }
}
