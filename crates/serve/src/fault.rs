//! Deterministic failpoints: named fault-injection sites threaded through
//! the risky seams of the serving stack.
//!
//! The AMPC model assumes machines and storage that fail; a serving
//! reproduction has to make every failure on its path *injectable*, or the
//! recovery code is dead code with a green test suite. This module is a
//! hand-rolled failpoint framework (no external crates — the workspace is
//! offline) compiled in unconditionally but **free when disarmed**: a
//! traversal of a disarmed site is one `Relaxed` atomic load and a
//! predictable branch, nothing else — no counter bump, no lock, no
//! allocation. Read-path code (`snapshot()`, `QueryEngine`) carries no
//! sites at all.
//!
//! # Site catalog
//!
//! | site                  | seam                                            |
//! |-----------------------|-------------------------------------------------|
//! | `rebuild.pipeline`    | pipeline build inside every background rebuild  |
//! | `compact.publish`     | compaction publish (after the build succeeded)  |
//! | `journal.build`       | journal-epoch freeze on the insert path         |
//! | `persist.pre-tmp`     | snapshot write, before the temp file exists     |
//! | `persist.pre-rename`  | snapshot write, temp durable but not renamed    |
//! | `persist.pre-dirsync` | snapshot write, renamed but parent not fsynced  |
//! | `snapshot.load`       | snapshot boot, before the file is read          |
//! | `net.accept`          | network server, after a connection is accepted  |
//! | `net.read`            | network frame read (server and client)          |
//! | `net.write`           | network frame write (server and client)         |
//! | `test.probe`          | reserved for framework unit tests (no call site)|
//!
//! The `persist.*` / `snapshot.load` sites live in `ampc_query::snapshot`
//! (a crate this one depends on), so they are reached through the tiny
//! function-pointer hook `ampc_query::snapshot::fail` exports; arming any
//! site installs this module's router there. The router is never
//! uninstalled — after installation a disarmed traversal in `ampc_query`
//! costs one extra `Relaxed` load plus a short `match`, still on cold
//! (persist/boot) paths only.
//!
//! # Semantics
//!
//! A site is armed with an action, a *skip* count and a *fire* count:
//! the first `skip` traversals pass through, the next `count` traversals
//! fire the action, then the site disarms itself. All three are packed
//! into one `AtomicU64` updated by CAS, so arming from a chaos controller
//! thread races benignly with traversals — every traversal sees exactly
//! one consistent state and the skip/fire budget is never over- or
//! under-spent.
//!
//! Actions:
//! * [`FaultAction::Error`] — the site returns [`InjectedFault`]; the
//!   caller maps it into its own typed error (`ServeError::Injected`,
//!   `SnapshotError::Io`) and takes its real failure path. This simulates
//!   a *detected* failure: an I/O error, a lost race, a failed build.
//! * [`FaultAction::Panic`] — the site panics. This simulates a *crash*:
//!   a bug in a background thread, a process kill mid-persist (the panic
//!   unwinds past cleanup code exactly like `kill -9` skips it).
//!
//! The registry is process-global (that is what lets the CLI arm a site
//! from `--fail` and have it fire deep inside a background thread), so
//! tests that arm sites must serialize among themselves — the chaos suite
//! holds one mutex across every arming test.

use std::sync::atomic::{AtomicU64, Ordering};

/// A named fault-injection site. The numeric value indexes the global
/// registry; the name is the stable CLI / catalog identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Site {
    /// Pipeline build inside every background rebuild (explicit rebuild
    /// and budget-triggered compaction both pass through it).
    RebuildPipeline = 0,
    /// Compaction publish: fires after the compaction's pipeline build
    /// succeeded, before any stream state is touched — a compaction that
    /// "loses the race" at the last moment.
    CompactPublish = 1,
    /// Journal-epoch freeze on the insert path (caller-thread code).
    JournalBuild = 2,
    /// Snapshot write, before the temp file is created.
    PersistPreTmp = 3,
    /// Snapshot write, after the temp file is written and fsynced,
    /// before the rename.
    PersistPreRename = 4,
    /// Snapshot write, after the rename, before the parent-directory
    /// fsync.
    PersistPreDirSync = 5,
    /// Snapshot boot, before the file is opened.
    SnapshotLoad = 6,
    /// Network server accept loop, right after a connection is accepted —
    /// firing drops the connection, simulating a failed accept.
    NetAccept = 7,
    /// Network frame read (traversed by server workers and clients alike);
    /// firing surfaces as a typed I/O error on the reader.
    NetRead = 8,
    /// Network frame write; firing surfaces as a typed I/O error on the
    /// writer.
    NetWrite = 9,
    /// Reserved for framework unit tests; no production call site, so
    /// arming it can never perturb concurrently running service tests.
    TestProbe = 10,
}

/// Every site, in registry order (the CLI prints this as the catalog).
pub const ALL_SITES: [Site; 11] = [
    Site::RebuildPipeline,
    Site::CompactPublish,
    Site::JournalBuild,
    Site::PersistPreTmp,
    Site::PersistPreRename,
    Site::PersistPreDirSync,
    Site::SnapshotLoad,
    Site::NetAccept,
    Site::NetRead,
    Site::NetWrite,
    Site::TestProbe,
];

impl Site {
    /// The stable name used by the CLI grammar and the catalog.
    pub fn name(self) -> &'static str {
        match self {
            Site::RebuildPipeline => "rebuild.pipeline",
            Site::CompactPublish => "compact.publish",
            Site::JournalBuild => "journal.build",
            Site::PersistPreTmp => "persist.pre-tmp",
            Site::PersistPreRename => "persist.pre-rename",
            Site::PersistPreDirSync => "persist.pre-dirsync",
            Site::SnapshotLoad => "snapshot.load",
            Site::NetAccept => "net.accept",
            Site::NetRead => "net.read",
            Site::NetWrite => "net.write",
            Site::TestProbe => "test.probe",
        }
    }

    /// Looks a site up by its stable name.
    pub fn from_name(name: &str) -> Option<Site> {
        ALL_SITES.into_iter().find(|s| s.name() == name)
    }
}

/// What an armed site does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Return [`InjectedFault`] — a detected failure the caller converts
    /// into its typed error path.
    Error,
    /// Panic — a crash. Unwinds past cleanup code, like a killed process.
    Panic,
}

/// The typed value an [`FaultAction::Error`] site returns. Callers map it
/// into their own error enum (`ServeError::Injected`, `SnapshotError::Io`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InjectedFault {
    /// The site that fired.
    pub site: Site,
}

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault at failpoint `{}`", self.site.name())
    }
}

impl std::error::Error for InjectedFault {}

// Packed per-site arm state, one AtomicU64:
//
//   bits  0..24  skip  — traversals to pass through before firing
//   bits 24..48  count — traversals that fire, then the site disarms
//   bits 48..50  action — 0 disarmed (whole word 0), 1 Error, 2 Panic
//
// The packing keeps arm/traverse lock-free: a traversal CAS-decrements
// skip or count and acts on the value it won with, so concurrent
// traversals split the budget exactly.
const SKIP_SHIFT: u32 = 0;
const COUNT_SHIFT: u32 = 24;
const ACTION_SHIFT: u32 = 48;
const FIELD_MASK: u64 = (1 << 24) - 1;

/// Largest value accepted for `skip` and `count` (24-bit fields).
pub const MAX_ARM_FIELD: u64 = FIELD_MASK;

fn pack(action: FaultAction, skip: u64, count: u64) -> u64 {
    let a = match action {
        FaultAction::Error => 1u64,
        FaultAction::Panic => 2u64,
    };
    debug_assert!(skip <= FIELD_MASK && count <= FIELD_MASK);
    (a << ACTION_SHIFT)
        | ((count & FIELD_MASK) << COUNT_SHIFT)
        | ((skip & FIELD_MASK) << SKIP_SHIFT)
}

struct SiteState {
    armed: AtomicU64,
    /// Traversals that consulted an *armed* site (disarmed traversals are
    /// deliberately uncounted — that is the zero-cost contract).
    armed_hits: AtomicU64,
    /// Times the site actually fired (either action).
    fired: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const SITE_INIT: SiteState =
    SiteState { armed: AtomicU64::new(0), armed_hits: AtomicU64::new(0), fired: AtomicU64::new(0) };

static REGISTRY: [SiteState; ALL_SITES.len()] = [SITE_INIT; ALL_SITES.len()];

/// The traversal every call site runs. Disarmed cost: one `Relaxed` load.
///
/// # Panics
/// Panics iff the site is armed with [`FaultAction::Panic`] and this
/// traversal consumed one of its fires.
#[inline]
pub fn check(site: Site) -> Result<(), InjectedFault> {
    let state = &REGISTRY[site as usize];
    if state.armed.load(Ordering::Relaxed) == 0 {
        return Ok(());
    }
    check_armed(site, state)
}

#[cold]
fn check_armed(site: Site, state: &SiteState) -> Result<(), InjectedFault> {
    state.armed_hits.fetch_add(1, Ordering::Relaxed);
    let mut fire_action: Option<FaultAction> = None;
    // CAS loop: consume one unit of skip or count from whatever state the
    // site is in *now* (a controller may re-arm or disarm concurrently).
    let update = state.armed.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
        fire_action = None;
        if cur == 0 {
            return None; // disarmed under us — pass through
        }
        let skip = (cur >> SKIP_SHIFT) & FIELD_MASK;
        let count = (cur >> COUNT_SHIFT) & FIELD_MASK;
        if skip > 0 {
            return Some(cur - (1 << SKIP_SHIFT));
        }
        if count == 0 {
            return Some(0); // exhausted — self-disarm
        }
        fire_action =
            Some(if (cur >> ACTION_SHIFT) == 2 { FaultAction::Panic } else { FaultAction::Error });
        // Last fire clears the whole word (self-disarm), keeping the
        // "disarmed == 0" fast-path invariant.
        let next = cur - (1 << COUNT_SHIFT);
        Some(if (next >> COUNT_SHIFT) & FIELD_MASK == 0 { 0 } else { next })
    });
    if update.is_err() {
        return Ok(());
    }
    match fire_action {
        None => Ok(()),
        Some(action) => {
            state.fired.fetch_add(1, Ordering::Relaxed);
            match action {
                FaultAction::Error => Err(InjectedFault { site }),
                FaultAction::Panic => {
                    panic!("failpoint `{}` fired (injected panic)", site.name())
                }
            }
        }
    }
}

/// Arms `site`: the next `skip` traversals pass, the following `count`
/// traversals fire `action`, then the site disarms itself. Replaces any
/// previous arming. `skip`/`count` are clamped to [`MAX_ARM_FIELD`];
/// `count == 0` disarms.
///
/// Arming any site (idempotently) installs the router into
/// `ampc_query::snapshot`'s hook so the `persist.*` / `snapshot.load`
/// sites fire too.
pub fn arm(site: Site, action: FaultAction, skip: u64, count: u64) {
    install_query_hook();
    let word =
        if count == 0 { 0 } else { pack(action, skip.min(FIELD_MASK), count.min(FIELD_MASK)) };
    REGISTRY[site as usize].armed.store(word, Ordering::Relaxed);
}

/// Disarms one site (its counters are kept; see [`reset_counters`]).
pub fn disarm(site: Site) {
    REGISTRY[site as usize].armed.store(0, Ordering::Relaxed);
}

/// Disarms every site.
pub fn disarm_all() {
    for s in ALL_SITES {
        disarm(s);
    }
}

/// Traversals that consulted `site` while it was armed.
pub fn armed_hits(site: Site) -> u64 {
    REGISTRY[site as usize].armed_hits.load(Ordering::Relaxed)
}

/// Times `site` actually fired (either action) since the last
/// [`reset_counters`].
pub fn fired(site: Site) -> u64 {
    REGISTRY[site as usize].fired.load(Ordering::Relaxed)
}

/// Zeroes every site's counters (does not disarm).
pub fn reset_counters() {
    for s in ALL_SITES {
        REGISTRY[s as usize].armed_hits.store(0, Ordering::Relaxed);
        REGISTRY[s as usize].fired.store(0, Ordering::Relaxed);
    }
}

/// Parses and arms one `--fail` spec: `SITE[:K][:panic]` — fire at the
/// `K`-th traversal (default 1), once; `panic` selects
/// [`FaultAction::Panic`] instead of the default error action. Returns
/// the armed site.
///
/// ```text
/// --fail journal.build            error on the next journal freeze
/// --fail rebuild.pipeline:3       error on the 3rd rebuild build
/// --fail persist.pre-rename:1:panic   crash mid-persist, tmp left behind
/// ```
pub fn arm_spec(spec: &str) -> Result<Site, String> {
    let mut parts = spec.split(':');
    let name = parts.next().unwrap_or("");
    let site = Site::from_name(name).ok_or_else(|| {
        let catalog: Vec<&str> = ALL_SITES.iter().map(|s| s.name()).collect();
        format!("unknown failpoint `{name}` (sites: {})", catalog.join(", "))
    })?;
    let mut k = 1u64;
    let mut action = FaultAction::Error;
    for part in parts {
        if part == "panic" {
            action = FaultAction::Panic;
        } else {
            k = part
                .parse::<u64>()
                .ok()
                .filter(|k| (1..=MAX_ARM_FIELD).contains(k))
                .ok_or_else(|| format!("bad hit index `{part}` in failpoint spec `{spec}`"))?;
        }
    }
    arm(site, action, k - 1, 1);
    Ok(site)
}

/// Router installed into `ampc_query::snapshot`'s fault hook: maps the
/// query crate's site names onto this registry. Unknown names pass
/// through (forward compatibility over failing closed: a hook must never
/// invent faults).
fn query_router(site: &'static str) -> std::io::Result<()> {
    let mapped = match site {
        "persist.pre-tmp" => Site::PersistPreTmp,
        "persist.pre-rename" => Site::PersistPreRename,
        "persist.pre-dirsync" => Site::PersistPreDirSync,
        "snapshot.load" => Site::SnapshotLoad,
        _ => return Ok(()),
    };
    check(mapped).map_err(std::io::Error::other)
}

fn install_query_hook() {
    ampc_query::snapshot::fail::set_hook(Some(query_router));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All framework semantics in one sequential test: the registry is
    /// process-global, and only `test.probe` (no production call site) is
    /// armed, so concurrently running service tests are never perturbed.
    #[test]
    fn arm_skip_count_fire_and_disarm_semantics() {
        let s = Site::TestProbe;
        reset_counters();
        assert_eq!(check(s), Ok(()), "disarmed site must pass");
        assert_eq!(armed_hits(s), 0, "disarmed traversals are uncounted");

        // skip 2, fire 2, then self-disarm.
        arm(s, FaultAction::Error, 2, 2);
        assert_eq!(check(s), Ok(()));
        assert_eq!(check(s), Ok(()));
        assert_eq!(check(s), Err(InjectedFault { site: s }));
        assert_eq!(check(s), Err(InjectedFault { site: s }));
        assert_eq!(check(s), Ok(()), "budget spent — site must self-disarm");
        assert_eq!(fired(s), 2);
        assert_eq!(armed_hits(s), 4, "the post-disarm traversal is uncounted");

        // Re-arm replaces, disarm clears.
        arm(s, FaultAction::Error, 0, 5);
        disarm(s);
        assert_eq!(check(s), Ok(()));

        // Panic action panics and counts as fired.
        arm(s, FaultAction::Panic, 0, 1);
        let r = std::panic::catch_unwind(|| check(s));
        assert!(r.is_err(), "panic action must panic");
        assert_eq!(fired(s), 3);
        assert_eq!(check(s), Ok(()), "one-shot panic disarmed itself");

        // count == 0 means disarm.
        arm(s, FaultAction::Error, 3, 0);
        assert_eq!(check(s), Ok(()));

        reset_counters();
        assert_eq!((fired(s), armed_hits(s)), (0, 0));
    }

    #[test]
    fn site_names_roundtrip_and_are_unique() {
        for s in ALL_SITES {
            assert_eq!(Site::from_name(s.name()), Some(s));
        }
        assert_eq!(Site::from_name("no.such.site"), None);
        let mut names: Vec<&str> = ALL_SITES.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL_SITES.len());
    }

    #[test]
    fn arm_spec_grammar() {
        // Valid specs arm test.probe only (then immediately disarm).
        assert_eq!(arm_spec("test.probe"), Ok(Site::TestProbe));
        disarm(Site::TestProbe);
        assert_eq!(arm_spec("test.probe:7"), Ok(Site::TestProbe));
        disarm(Site::TestProbe);
        assert_eq!(arm_spec("test.probe:2:panic"), Ok(Site::TestProbe));
        disarm(Site::TestProbe);

        assert!(arm_spec("bogus.site").unwrap_err().contains("unknown failpoint"));
        assert!(arm_spec("test.probe:0").unwrap_err().contains("bad hit index"));
        assert!(arm_spec("test.probe:x").unwrap_err().contains("bad hit index"));
    }
}
