//! Snapshot persist → replica boot, end to end through the service layer.
//!
//! The contract under test: `ServiceHandle::persist` captures exactly one
//! published epoch (base or journal), and a replica booted with
//! `ServiceBuilder::from_snapshot` answers the entire query algebra
//! **byte-identically** to the live service at that epoch — across
//! generator families, both pipeline algorithms, every standard workload
//! mix, and while insertions race the persist call. A booted replica is a
//! first-class service: it accepts journal-epoch insertions, refuses to
//! compact over the base graph it does not have, and regains compaction
//! after an explicit rebuild installs one.

use ampc::rng::{derive_seed, SplitMix64};
use ampc_cc::pipeline::Algorithm;
use ampc_graph::generators::{disjoint_cliques, erdos_renyi_gnm, grid2d, random_forest};
use ampc_graph::{reference_components, Graph, VertexId};
use ampc_query::{workload, ComponentIndex};
use ampc_serve::{
    driver, JournalBudget, PipelineSpec, ServiceBuilder, ServiceHandle, SnapshotError,
};
use std::path::PathBuf;

/// A unique temp path per test (tests run concurrently in one process).
fn temp_snap(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ampc_boot_{tag}_{}.snap", std::process::id()))
}

/// A deterministic batch of random candidate edges over `n` vertices.
fn edge_batch(n: usize, len: usize, seed: u64) -> Vec<(VertexId, VertexId)> {
    let mut rng = SplitMix64::new(seed);
    (0..len)
        .map(|_| (rng.next_below(n as u64) as VertexId, rng.next_below(n as u64) as VertexId))
        .collect()
}

/// Asserts `booted` and `live` answer every standard mix byte-identically
/// (multi-threaded driver checksums) and expose equal index state.
fn assert_replica_identical(live: &ServiceHandle, booted: &ServiceHandle, ctx: &str) {
    let live_snap = live.snapshot();
    let booted_snap = booted.snapshot();
    assert!(booted_snap.index().is_snapshot_backed(), "{ctx}: boot must be zero-copy");
    if !live_snap.is_journal() {
        // At a journal epoch the live index is the *base* (merges ride in
        // the journal) while the replica's is the materialized merge, so
        // raw index equality only holds for base epochs — answers must be
        // identical either way, which the mix sweep below pins.
        assert_eq!(booted_snap.index(), live_snap.index(), "{ctx}: index state diverges");
    }
    assert_eq!(booted_snap.graph_size(), live_snap.graph_size(), "{ctx}: graph size");
    for mix in workload::Mix::STANDARD {
        let queries = workload::generate(live_snap.index(), mix, 3000, 0xB007);
        let a = driver::run(live, &queries, 2, 128);
        let b = driver::run(booted, &queries, 2, 128);
        assert_eq!(a.checksum, b.checksum, "{ctx}/{}: answers diverge", mix.name());
        assert_eq!(a.total_queries, b.total_queries, "{ctx}/{}", mix.name());
    }
}

#[test]
fn booted_replica_matches_live_service_across_families_and_algorithms() {
    type MakeGraph = fn() -> Graph;
    let matrix: [(&str, MakeGraph, Algorithm, u8); 4] = [
        ("random_forest", || random_forest(900, 12, 11), Algorithm::Forest, 1),
        ("gnm", || erdos_renyi_gnm(900, 1200, 11), Algorithm::General, 2),
        ("grid2d", || grid2d(30, 30), Algorithm::General, 2),
        ("cliques", || disjoint_cliques(30, 30), Algorithm::General, 2),
    ];
    for (family, make, algorithm, number) in matrix {
        let spec = PipelineSpec::default().with_algorithm(algorithm).with_seed(9).with_machines(4);
        let live = ServiceBuilder::new(make()).spec(spec).build().expect("live build");
        let path = temp_snap(family);
        let report = live.persist(&path).expect("persist");
        assert_eq!(report.epoch, 0, "{family}: base epoch");
        assert!(!report.journal, "{family}: no journal at epoch 0");

        let booted = ServiceBuilder::from_snapshot(&path).expect("boot");
        assert_eq!(booted.current_epoch(), 0, "{family}: boot publishes epoch 0");
        assert_eq!(
            booted.snapshot().algorithm().number(),
            number,
            "{family}: algorithm tag must survive the roundtrip"
        );
        assert_replica_identical(&live, &booted, family);
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn journal_epoch_persist_materializes_merges() {
    // Persisting a journal-epoch must fold the journal into the snapshot:
    // the booted replica (which has no journal) answers like the live
    // service's merged view, i.e. like a full rebuild over the merged graph.
    const N: usize = 700;
    let g = random_forest(N, 14, 23);
    let mut edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    let live = ServiceBuilder::new(g)
        .spec(PipelineSpec::default().with_seed(23).with_machines(4))
        .journal_budget(JournalBudget::unbounded())
        .build()
        .expect("build");

    let path = temp_snap("journal");
    for b in 0..3u64 {
        let batch = edge_batch(N, 20, derive_seed(&[0x10AD, b]));
        live.insert_edges(&batch).expect("insert");
        edges.extend_from_slice(&batch);

        let report = live.persist(&path).expect("persist journal epoch");
        assert_eq!(report.epoch, b + 1, "persist must capture the journal epoch");
        assert!(report.journal, "epoch {} rides on a journal", b + 1);

        let booted = ServiceBuilder::from_snapshot(&path).expect("boot");
        let oracle = ComponentIndex::build(&reference_components(&Graph::from_edges(N, &edges)));
        assert_eq!(
            *booted.snapshot().index(),
            oracle,
            "batch {b}: booted index must equal a full rebuild of the merged graph"
        );
        assert_replica_identical(&live, &booted, &format!("journal batch {b}"));
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn persist_under_live_inserts_captures_exactly_one_epoch() {
    // A writer thread streams insertion batches while the main thread
    // persists repeatedly. Every persisted file must decode to the exact
    // materialized state of the *one* epoch its report names — never a
    // blend of two epochs (the failure mode of persisting without pinning).
    const N: usize = 500;
    const BATCHES: usize = 24;
    const BATCH_LEN: usize = 6;
    let g = random_forest(N, 10, 31);
    let base_edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    // Batches are deterministic, so the accumulated edge set at epoch e is
    // reconstructible after the fact.
    let batches: Vec<Vec<(VertexId, VertexId)>> =
        (0..BATCHES).map(|b| edge_batch(N, BATCH_LEN, derive_seed(&[0xACE5, b as u64]))).collect();
    let edges_at = |epoch: u64| -> Vec<(VertexId, VertexId)> {
        let mut e = base_edges.clone();
        for batch in &batches[..epoch as usize] {
            e.extend_from_slice(batch);
        }
        e
    };

    let live = ServiceBuilder::new(g)
        .spec(PipelineSpec::default().with_seed(31).with_machines(4))
        .journal_budget(JournalBudget::unbounded())
        .build()
        .expect("build");

    std::thread::scope(|s| {
        let writer = {
            let live = live.clone();
            let batches = &batches;
            s.spawn(move || {
                for batch in batches {
                    live.insert_edges(batch).expect("insert");
                }
            })
        };
        for i in 0..8 {
            let path = temp_snap(&format!("race_{i}"));
            let report = live.persist(&path).expect("persist under inserts");
            let snap = ampc_query::snapshot::load(&path).expect("load");
            let oracle = ComponentIndex::build(&reference_components(&Graph::from_edges(
                N,
                &edges_at(report.epoch),
            )));
            assert_eq!(
                snap.index, oracle,
                "persist {i} captured epoch {} but its index is not that epoch's state",
                report.epoch
            );
            assert_eq!(snap.graph_m as usize, edges_at(report.epoch).len(), "persist {i}");
            std::fs::remove_file(&path).unwrap();
        }
        writer.join().unwrap();
    });

    // After the stream quiesces, a final persist captures the last epoch.
    let path = temp_snap("race_final");
    let report = live.persist(&path).expect("final persist");
    assert_eq!(report.epoch, BATCHES as u64);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn booted_replica_serves_inserts_and_compacts_only_after_a_real_graph_arrives() {
    const N: usize = 600;
    let g = erdos_renyi_gnm(N, 500, 41);
    let mut edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    let live = ServiceBuilder::new(g)
        .spec(PipelineSpec::default().with_algorithm(Algorithm::General).with_seed(41))
        .build()
        .expect("build");
    let path = temp_snap("inserts");
    live.persist(&path).expect("persist");
    let booted = ServiceBuilder::from_snapshot(&path).expect("boot");
    std::fs::remove_file(&path).unwrap();

    // Journal-epoch insertions need only the index, which the snapshot
    // carries — the replica accepts them and stays oracle-exact.
    for b in 0..3u64 {
        let batch = edge_batch(N, 15, derive_seed(&[0xB11D, b]));
        let report = booted.insert_edges(&batch).expect("insert on booted replica");
        assert_eq!(report.epoch, b + 1);
        assert!(!report.compaction_started, "no base graph, must not compact");
        edges.extend_from_slice(&batch);
        let oracle = ComponentIndex::build(&reference_components(&Graph::from_edges(N, &edges)));
        let snap = booted.snapshot();
        let engine = snap.engine();
        for v in 0..N as VertexId {
            assert_eq!(
                engine.answer(ampc_query::Query::ComponentOf(v)),
                oracle.component_of(v) as u64,
                "batch {b}: ComponentOf({v})"
            );
        }
    }

    // Blowing straight past the default budget must still not compact: the
    // snapshot carries no edge list, so there is nothing to merge with.
    let budget = booted.journal_budget();
    let flood = edge_batch(N, budget.max_edges + 1, 0xF100D);
    let report = booted.insert_edges(&flood).expect("over-budget insert");
    assert!(
        !report.compaction_started,
        "over budget without a base graph must not start a compaction"
    );
    edges.extend_from_slice(&flood);

    // An explicit rebuild installs the merged graph as the new ground
    // truth; compaction is live again from then on.
    let rebuilt_epoch =
        booted.rebuild_blocking(Graph::from_edges(N, &edges)).expect("rebuild on booted replica");
    assert!(rebuilt_epoch > report.epoch, "rebuild must publish a new epoch");
    let oracle = ComponentIndex::build(&reference_components(&Graph::from_edges(N, &edges)));
    assert_eq!(*booted.snapshot().index(), oracle, "rebuild must match the oracle");

    let flood = edge_batch(N, budget.max_edges + 1, 0xF200D);
    let report = booted.insert_edges(&flood).expect("post-rebuild insert");
    assert!(report.compaction_started, "with a real graph the budget must trigger compaction");
    // Let the background compaction land before the test exits.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    let mut last = booted.current_epoch();
    loop {
        std::thread::sleep(std::time::Duration::from_millis(20));
        let now = booted.current_epoch();
        if now == last {
            break;
        }
        last = now;
        assert!(std::time::Instant::now() < deadline, "compaction never quiesced");
    }
}

#[test]
fn boot_refuses_damaged_or_missing_snapshots() {
    let g = random_forest(300, 6, 51);
    let live =
        ServiceBuilder::new(g).spec(PipelineSpec::default().with_seed(51)).build().expect("build");
    let path = temp_snap("damage");
    live.persist(&path).expect("persist");

    // Flip one payload byte: the boot must fail with the section's
    // checksum error and publish nothing.
    let mut bytes = std::fs::read(&path).unwrap();
    let table = ampc_query::snapshot::section_table(&bytes).expect("table");
    bytes[table[2].byte_off + 5] ^= 0x04;
    std::fs::write(&path, &bytes).unwrap();
    match ServiceBuilder::from_snapshot(&path) {
        Err(SnapshotError::ChecksumMismatch { section }) => assert_eq!(section, "members"),
        other => panic!("corrupt boot gave {:?}", other.err().map(|e| e.to_string())),
    }

    std::fs::remove_file(&path).unwrap();
    assert!(
        matches!(ServiceBuilder::from_snapshot(&path), Err(SnapshotError::Io(_))),
        "missing file must be an Io error"
    );
}
