//! Chaos suite: deterministic failpoint schedules driven through the
//! serving stack, under concurrent readers, asserting the standing
//! invariants of the degradation state machine:
//!
//! 1. **readers never panic** — every injected failure is absorbed by the
//!    write path; snapshots keep answering in every health state;
//! 2. **published epochs stay byte-identical to their oracle** — a failed
//!    batch/compaction/persist changes nothing, a successful one changes
//!    exactly what a from-scratch build over the accepted edges would;
//! 3. **the service converges back to `Healthy` once faults stop** — via
//!    the bounded retry-with-backoff schedule, or an explicit rebuild
//!    when it has degraded all the way to `ReadOnly`.
//!
//! The fault registry is process-global, so every test here serializes
//! through [`FaultSession`] and leaves the registry disarmed and the
//! service quiesced (`Healthy`, no rebuild in flight) on exit.
//!
//! Quick mode (`AMPC_CHAOS_QUICK=1`, used by CI) shrinks the per-seed
//! round count; the seed matrix itself stays fixed at 8 seeds.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use ampc::rng::{derive_seed, SplitMix64};
use ampc_cc::pipeline::PipelineSpec;
use ampc_graph::generators::random_forest;
use ampc_graph::{reference_components, Graph, VertexId};
use ampc_query::{snapshot, ComponentIndex, Query};
use ampc_serve::fault::{self, FaultAction, Site};
use ampc_serve::{
    BootSource, HealthState, IncidentOp, JournalBudget, ManualClock, RetryPolicy, ServeError,
    ServiceBuilder, ServiceHandle, SnapshotError,
};

/// The failpoints with production call sites (everything but `test.probe`).
const PROD_SITES: [Site; 7] = [
    Site::RebuildPipeline,
    Site::CompactPublish,
    Site::JournalBuild,
    Site::PersistPreTmp,
    Site::PersistPreRename,
    Site::PersistPreDirSync,
    Site::SnapshotLoad,
];

/// Serializes fault-armed tests (the registry is process-global) and
/// guarantees a disarmed registry on entry and exit, panic included.
struct FaultSession {
    _guard: MutexGuard<'static, ()>,
}

impl FaultSession {
    fn begin() -> Self {
        static LOCK: Mutex<()> = Mutex::new(());
        let guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        fault::disarm_all();
        fault::reset_counters();
        FaultSession { _guard: guard }
    }
}

impl Drop for FaultSession {
    fn drop(&mut self) {
        fault::disarm_all();
    }
}

fn spec(seed: u64) -> PipelineSpec {
    PipelineSpec::default().with_seed(seed).with_machines(4)
}

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ampc_chaos_{tag}_{}.snap", std::process::id()))
}

/// Removes `path` plus any `.tmp.*` staging litter injected panics left
/// next to it.
fn clean_snapshot_files(path: &Path) {
    let _ = std::fs::remove_file(path);
    let (Some(dir), Some(stem)) = (path.parent(), path.file_stem()) else { return };
    let stem = stem.to_string_lossy().into_owned();
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for e in entries.filter_map(Result::ok) {
        let name = e.file_name().to_string_lossy().into_owned();
        if name.starts_with(&stem) && name.contains(".tmp.") {
            let _ = std::fs::remove_file(e.path());
        }
    }
}

fn oracle_index(n: usize, edges: &[(VertexId, VertexId)]) -> ComponentIndex {
    ComponentIndex::build(&reference_components(&Graph::from_edges(n, edges)))
}

/// Full-algebra byte-identity check of the current epoch against a
/// from-scratch build over `edges`.
fn assert_oracle(service: &ServiceHandle, n: usize, edges: &[(VertexId, VertexId)], ctx: &str) {
    let oracle = oracle_index(n, edges);
    let snap = service.snapshot();
    let engine = snap.engine();
    assert_eq!(snap.num_components(), oracle.num_components(), "{ctx}: component count");
    for v in 0..n as VertexId {
        assert_eq!(
            engine.answer(Query::ComponentOf(v)),
            oracle.component_of(v) as u64,
            "{ctx}: ComponentOf({v})"
        );
        assert_eq!(
            engine.answer(Query::ComponentSize(v)),
            oracle.component_size(v) as u64,
            "{ctx}: ComponentSize({v})"
        );
    }
    let mut rng = SplitMix64::new(derive_seed(&[n as u64, edges.len() as u64]));
    for _ in 0..100 {
        let (u, v) = (rng.next_below(n as u64) as VertexId, rng.next_below(n as u64) as VertexId);
        assert_eq!(
            engine.answer(Query::Connected(u, v)),
            oracle.connected(u, v) as u64,
            "{ctx}: Connected({u},{v})"
        );
    }
    for k in 1..=(oracle.num_components() as u32 + 1) {
        assert_eq!(
            engine.answer(Query::TopKSize(k)),
            oracle.kth_largest_size(k as usize) as u64,
            "{ctx}: TopKSize({k})"
        );
    }
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for: {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Drives the state machine back to `Healthy` with all faults disarmed:
/// `Degraded` → advance the injected clock past the backoff and `tick()`;
/// `ReadOnly` → the operator lever, an explicit rebuild over the accepted
/// edges. Returning means the service is quiesced (no rebuild in flight).
fn recover_to_healthy(
    service: &ServiceHandle,
    clock: &ManualClock,
    n: usize,
    edges: &[(VertexId, VertexId)],
) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match service.health().state {
            HealthState::Healthy => return,
            HealthState::Degraded => {
                clock.advance_ms(60_000);
                service.tick();
            }
            HealthState::ReadOnly => {
                service
                    .rebuild_blocking(Graph::from_edges(n, edges))
                    .expect("recovery rebuild with faults disarmed must succeed");
            }
        }
        assert!(Instant::now() < deadline, "service never converged back to Healthy");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// An edge connecting two currently-distinct components, if any remain.
fn bridge_edge(n: usize, edges: &[(VertexId, VertexId)]) -> Option<(VertexId, VertexId)> {
    let labels = reference_components(&Graph::from_edges(n, edges));
    let first = labels.0[0];
    (1..n).find(|&v| labels.0[v] != first).map(|v| (0, v as VertexId))
}

// ---------------------------------------------------------------------------
// Deterministic state-machine walks
// ---------------------------------------------------------------------------

#[test]
fn degradation_walks_healthy_degraded_readonly_and_recovers() {
    let _s = FaultSession::begin();
    let n = 120;
    let g = random_forest(n, 6, 31);
    let mut edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    let clock = ManualClock::new();
    let policy = RetryPolicy {
        max_consecutive_failures: 3,
        base_backoff_ms: 100,
        max_backoff_ms: 400,
        max_incidents: 4,
    };
    let service = ServiceBuilder::new(g)
        .spec(spec(31))
        .journal_budget(JournalBudget::new(0, usize::MAX))
        .retry_policy(policy)
        .clock(Arc::new(clock.clone()))
        .build()
        .expect("build");

    // Every compaction publish fails until we disarm.
    fault::arm(Site::CompactPublish, FaultAction::Error, 0, u64::MAX);

    // Strike 1: the over-budget insert starts a compaction that fails.
    let r = service.insert_edges(&[(0, (n - 1) as VertexId)]).expect("insert");
    assert!(r.compaction_started);
    edges.push((0, (n - 1) as VertexId));
    wait_until("first compaction failure", || service.health().state == HealthState::Degraded);
    let h = service.health();
    assert_eq!(h.consecutive_failures, 1);
    assert_eq!(h.retry_in_ms, Some(100), "base backoff, clock has not moved");

    // Degraded keeps accepting inserts — the journal path is unaffected —
    // but the budget no longer triggers compaction before the backoff.
    let bridge = bridge_edge(n, &edges).expect("components remain");
    let r = service.insert_edges(&[bridge]).expect("degraded insert");
    assert!(!r.compaction_started, "backoff not elapsed: no retry yet");
    edges.push(bridge);
    assert_oracle(&service, n, &edges, "degraded journal epoch");

    // Strike 2: backoff elapses, tick retries, retry fails, backoff doubles.
    clock.advance_ms(100);
    assert!(service.tick(), "elapsed backoff must start a retry");
    wait_until("second compaction failure", || service.health().consecutive_failures == 2);
    assert_eq!(service.health().state, HealthState::Degraded);
    assert!(!service.tick(), "doubled backoff (200ms) has not elapsed");

    // Strike 3: the policy gives up — ReadOnly.
    clock.advance_ms(200);
    assert!(service.tick());
    wait_until("read-only transition", || service.health().state == HealthState::ReadOnly);

    // Inserts are refused, reads keep serving the last published epoch.
    let err = service.insert_edges(&[(1, 2)]).expect_err("read-only refuses writes");
    assert_eq!(err, ServeError::ReadOnly);
    assert!(!service.tick(), "read-only does not self-retry");
    assert_oracle(&service, n, &edges, "read-only still serves");

    let h = service.health();
    assert_eq!(h.total_incidents, 3);
    assert_eq!(h.incidents.len(), 3);
    assert!(h.incidents.iter().all(|i| i.op == IncidentOp::Compaction));
    assert!(h
        .incidents
        .iter()
        .all(|i| i.error == ServeError::Injected { site: "compact.publish" }));
    assert!(h.incidents.windows(2).all(|w| w[0].seq < w[1].seq));

    // The operator lever: an explicit successful rebuild restores Healthy.
    fault::disarm_all();
    service.rebuild_blocking(Graph::from_edges(n, &edges)).expect("recovery rebuild");
    let h = service.health();
    assert_eq!(h.state, HealthState::Healthy);
    assert_eq!(h.consecutive_failures, 0);
    assert_eq!(h.total_incidents, 3, "recovery clears state, not history");
    let r = service.insert_edges(&[(2, 3)]).expect("writes restored");
    edges.push((2, 3));
    assert_oracle(&service, n, &edges, "post-recovery epoch");
    assert!(r.epoch > 0);
    recover_to_healthy(&service, &clock, n, &edges);
}

#[test]
fn incident_log_is_bounded_but_counts_everything() {
    let _s = FaultSession::begin();
    let n = 80;
    let g = random_forest(n, 4, 32);
    let base_edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    let clock = ManualClock::new();
    let service = ServiceBuilder::new(g)
        .spec(spec(32))
        .journal_budget(JournalBudget::unbounded())
        .retry_policy(RetryPolicy {
            max_consecutive_failures: 100,
            base_backoff_ms: 1,
            max_backoff_ms: 1,
            max_incidents: 3,
        })
        .clock(Arc::new(clock.clone()))
        .build()
        .expect("build");

    // A merge-causing edge over the base forest; every attempt fails, so
    // the same bridge stays valid across all five strikes.
    let bridge = bridge_edge(n, &base_edges).expect("forest has multiple components");
    fault::arm(Site::JournalBuild, FaultAction::Error, 0, u64::MAX);
    for i in 0..5u64 {
        clock.advance_ms(10);
        let err = service.insert_edges(&[bridge]).expect_err("armed journal build");
        assert_eq!(err, ServeError::Injected { site: "journal.build" });
        let h = service.health();
        assert_eq!(h.total_incidents, i + 1);
        assert!(h.incidents.len() <= 3, "log must stay bounded");
    }
    let h = service.health();
    assert_eq!(h.incidents.len(), 3);
    // Oldest evicted first: the retained tail is seqs 3..=5.
    assert_eq!(h.incidents.iter().map(|i| i.seq).collect::<Vec<_>>(), vec![3, 4, 5]);
    assert!(h.incidents.iter().all(|i| i.op == IncidentOp::JournalBuild));
    // Timestamps come from the injected clock.
    assert_eq!(h.incidents.last().unwrap().at_ms, 50);
    fault::disarm_all();
}

#[test]
fn journal_build_failure_is_atomic_and_recoverable() {
    let _s = FaultSession::begin();
    let n = 100;
    let g = random_forest(n, 5, 33);
    let mut edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    let clock = ManualClock::new();
    let service = ServiceBuilder::new(g)
        .spec(spec(33))
        .journal_budget(JournalBudget::unbounded())
        .clock(Arc::new(clock.clone()))
        .build()
        .expect("build");

    let bridge = bridge_edge(n, &edges).expect("components remain");
    let epoch_before = service.current_epoch();

    fault::arm(Site::JournalBuild, FaultAction::Error, 0, 1);
    let err = service.insert_edges(&[bridge]).expect_err("armed journal build");
    assert_eq!(err, ServeError::Injected { site: "journal.build" });

    // Atomic rollback: nothing published, nothing half-applied.
    assert_eq!(service.current_epoch(), epoch_before);
    assert_oracle(&service, n, &edges, "epoch unchanged after failed batch");
    assert_eq!(service.health().state, HealthState::Degraded);

    // The *same* batch succeeds once the fault clears — the union-find was
    // not corrupted by the failed attempt.
    let r = service.insert_edges(&[bridge]).expect("retry of the failed batch");
    assert_eq!(r.new_merges, 1);
    edges.push(bridge);
    assert_oracle(&service, n, &edges, "retried batch");

    // A successful compaction (here: driven by tick after backoff) is the
    // other recovery edge back to Healthy.
    recover_to_healthy(&service, &clock, n, &edges);
    assert_oracle(&service, n, &edges, "recovered epoch");
}

#[test]
fn insert_path_panic_leaves_consistent_state() {
    let _s = FaultSession::begin();
    let n = 90;
    let g = random_forest(n, 4, 34);
    let mut edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    let service = ServiceBuilder::new(g)
        .spec(spec(34))
        .journal_budget(JournalBudget::unbounded())
        .build()
        .expect("build");

    let bridge = bridge_edge(n, &edges).expect("components remain");
    let epoch_before = service.current_epoch();

    // A panic on the caller's insert thread (the harshest version of the
    // old `expect`): the stream mutex is poisoned mid-call, but all
    // mutations happen after the fallible steps, so recovery sees
    // consistent state.
    fault::arm(Site::JournalBuild, FaultAction::Panic, 0, 1);
    let unwound = catch_unwind(AssertUnwindSafe(|| service.insert_edges(&[bridge])));
    assert!(unwound.is_err(), "armed panic must fire");

    assert_eq!(service.current_epoch(), epoch_before);
    assert_oracle(&service, n, &edges, "state after caller panic");
    // The service is fully operational: same batch, clean pass.
    let r = service.insert_edges(&[bridge]).expect("insert after poison recovery");
    assert_eq!(r.new_merges, 1);
    edges.push(bridge);
    assert_oracle(&service, n, &edges, "post-panic journal epoch");
}

#[test]
fn rebuild_and_compaction_panics_are_recorded_not_lost() {
    let _s = FaultSession::begin();
    let n = 110;
    let g = random_forest(n, 5, 35);
    let mut edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    let clock = ManualClock::new();
    let service = ServiceBuilder::new(g)
        .spec(spec(35))
        .journal_budget(JournalBudget::new(0, usize::MAX))
        .clock(Arc::new(clock.clone()))
        .build()
        .expect("build");

    // An explicit rebuild whose pipeline panics: typed error to the
    // caller, incident in the log, service Degraded but serving.
    fault::arm(Site::RebuildPipeline, FaultAction::Panic, 0, 1);
    let err = service.rebuild_blocking(Graph::from_edges(n, &edges)).expect_err("armed panic");
    assert_eq!(err, ServeError::RebuildPanicked);
    let h = service.health();
    assert_eq!(h.state, HealthState::Degraded);
    assert_eq!(h.incidents.last().map(|i| i.op), Some(IncidentOp::Rebuild));
    assert_eq!(h.incidents.last().map(|i| &i.error), Some(&ServeError::RebuildPanicked));
    assert_oracle(&service, n, &edges, "serving through a panicked rebuild");

    // A compaction that panics *at the publish seam* — past the pipeline's
    // own catch — must not wedge the ticket queue or lose the failure.
    recover_to_healthy(&service, &clock, n, &edges);
    fault::arm(Site::CompactPublish, FaultAction::Panic, 0, 1);
    let bridge = bridge_edge(n, &edges).expect("components remain");
    let r = service.insert_edges(&[bridge]).expect("insert starts compaction");
    assert!(r.compaction_started);
    edges.push(bridge);
    wait_until("publish-side panic recorded", || {
        service.health().incidents.last().map(|i| i.op) == Some(IncidentOp::Compaction)
    });
    assert_eq!(service.health().state, HealthState::Degraded);
    assert_oracle(&service, n, &edges, "journal keeps serving through publish panic");

    // The ticket queue survived: later rebuilds still publish.
    fault::disarm_all();
    recover_to_healthy(&service, &clock, n, &edges);
    service.rebuild_blocking(Graph::from_edges(n, &edges)).expect("queue not wedged");
    assert_oracle(&service, n, &edges, "post-panic rebuild");
}

// ---------------------------------------------------------------------------
// Crash-mid-persist kill matrix (satellite: torn-write coverage)
// ---------------------------------------------------------------------------

#[test]
fn crash_mid_persist_leaves_old_or_new_file_never_torn() {
    let _s = FaultSession::begin();
    let n = 100;
    let old_graph = random_forest(n, 7, 36);
    let new_edges: Vec<(VertexId, VertexId)> = {
        let mut e: Vec<(VertexId, VertexId)> = old_graph.edges().collect();
        e.push((0, 99));
        e
    };
    let old_service = ServiceBuilder::new(old_graph).spec(spec(36)).build().expect("build old");
    let new_service = ServiceBuilder::new(Graph::from_edges(n, &new_edges))
        .spec(spec(36))
        .build()
        .expect("build new");
    let old_snap = old_service.snapshot();
    let new_snap = new_service.snapshot();

    let stages = [
        // (site, the write is killed before any rename, so the old file survives)
        (Site::PersistPreTmp, true),
        (Site::PersistPreRename, true),
        // killed after the rename: the new file is already in place.
        (Site::PersistPreDirSync, false),
    ];
    for (site, expect_old) in stages {
        for action in [FaultAction::Error, FaultAction::Panic] {
            let path = tmp_path(&format!("kill_{}_{action:?}", site.name().replace('.', "_")));
            clean_snapshot_files(&path);
            old_service.persist(&path).expect("baseline persist");

            fault::arm(site, action, 0, 1);
            let attempt = catch_unwind(AssertUnwindSafe(|| new_service.persist(&path)));
            match (action, attempt) {
                (FaultAction::Error, Ok(res)) => {
                    assert!(
                        matches!(res, Err(SnapshotError::Io(_))),
                        "killed persist must surface a typed error at {}",
                        site.name()
                    );
                }
                (FaultAction::Panic, Err(_)) => {} // simulated crash: unwound past cleanup
                (a, r) => panic!("unexpected outcome for {a:?} at {}: {r:?}", site.name()),
            }

            // The invariant: whatever the kill point, the destination loads
            // as exactly one complete snapshot — the old one before the
            // rename, the new one after. Never torn, never absent.
            let loaded = snapshot::load(&path).expect("destination must stay loadable");
            if expect_old {
                assert_eq!(loaded.index, *old_snap.index(), "pre-rename kill keeps old file");
            } else {
                assert_eq!(loaded.index, *new_snap.index(), "post-rename kill shows new file");
            }

            // Stale litter from the crash (pre-rename panic leaves a tmp
            // file) never breaks a later persist or load.
            new_service.persist(&path).expect("persist over crash litter");
            let reloaded = snapshot::load(&path).expect("load after recovery persist");
            assert_eq!(reloaded.index, *new_snap.index());
            clean_snapshot_files(&path);
        }
    }
}

// ---------------------------------------------------------------------------
// Boot fallback chain
// ---------------------------------------------------------------------------

#[test]
fn boot_fallback_chain_survives_truncation_and_load_faults() {
    let _s = FaultSession::begin();
    let n = 150;
    let g = random_forest(n, 6, 37);
    let edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    let path = tmp_path("bootchain");
    clean_snapshot_files(&path);

    let origin = ServiceBuilder::new(g.clone()).spec(spec(37)).build().expect("build");
    origin.persist(&path).expect("persist");

    // Truncate the snapshot: strict boot fails typed, fallback boot serves.
    let bytes = std::fs::read(&path).expect("read snapshot");
    std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
    let strict = ServiceBuilder::from_snapshot(&path);
    assert!(strict.is_err(), "truncated snapshot must not boot strictly");
    let (fallback, source) = ServiceBuilder::new(g.clone())
        .spec(spec(37))
        .from_snapshot_or_rebuild(&path)
        .expect("fallback boot");
    assert_eq!(source, BootSource::RebuildFallback);
    assert_oracle(&fallback, n, &edges, "fallback-boot service");
    let h = fallback.health();
    assert_eq!(h.state, HealthState::Healthy, "fallback boot is healthy, incident logged");
    assert_eq!(h.incidents.last().map(|i| i.op), Some(IncidentOp::Boot));

    // Repair the file, then inject an i/o fault at the load seam itself.
    std::fs::write(&path, &bytes).expect("restore snapshot");
    fault::arm(Site::SnapshotLoad, FaultAction::Error, 0, 1);
    assert!(ServiceBuilder::from_snapshot(&path).is_err(), "injected load fault");
    fault::arm(Site::SnapshotLoad, FaultAction::Error, 0, 1);
    let (fallback2, source2) = ServiceBuilder::new(g.clone())
        .spec(spec(37))
        .from_snapshot_or_rebuild(&path)
        .expect("fallback boot under load fault");
    assert_eq!(source2, BootSource::RebuildFallback);
    assert_oracle(&fallback2, n, &edges, "fallback under load fault");

    // Faults cleared: the chain prefers the snapshot again.
    fault::disarm_all();
    let (replica, source3) =
        ServiceBuilder::new(g).spec(spec(37)).from_snapshot_or_rebuild(&path).expect("snap boot");
    assert_eq!(source3, BootSource::Snapshot);
    assert_eq!(replica.health().total_incidents, 0);
    assert_oracle(&replica, n, &edges, "snapshot-boot replica");
    clean_snapshot_files(&path);
}

// ---------------------------------------------------------------------------
// Coverage driver + the seeded chaos matrix
// ---------------------------------------------------------------------------

/// Arms `site` and drives the one operation that traverses it, waiting for
/// the fire. Leaves the used service quiesced.
fn drive_site_once(site: Site) {
    let fired_before = fault::fired(site);
    let n = 60;
    let g = random_forest(n, 4, 99);
    let edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    let clock = ManualClock::new();
    let budget = if site == Site::CompactPublish {
        JournalBudget::new(0, usize::MAX)
    } else {
        JournalBudget::unbounded()
    };
    let service = ServiceBuilder::new(g)
        .spec(spec(99))
        .journal_budget(budget)
        .clock(Arc::new(clock.clone()))
        .build()
        .expect("build");
    let path = tmp_path(&format!("drive_{}", site.name().replace('.', "_")));
    clean_snapshot_files(&path);

    fault::arm(site, FaultAction::Error, 0, 1);
    let mut edges = edges;
    match site {
        Site::RebuildPipeline => {
            let err = service.rebuild_blocking(Graph::from_edges(n, &edges));
            assert_eq!(err, Err(ServeError::Injected { site: "rebuild.pipeline" }));
        }
        Site::CompactPublish => {
            let bridge = bridge_edge(n, &edges).expect("components remain");
            service.insert_edges(&[bridge]).expect("insert starts compaction");
            edges.push(bridge);
            wait_until("compact.publish fire", || fault::fired(site) > fired_before);
        }
        Site::JournalBuild => {
            let bridge = bridge_edge(n, &edges).expect("components remain");
            let err = service.insert_edges(&[bridge]);
            assert_eq!(err, Err(ServeError::Injected { site: "journal.build" }));
        }
        Site::PersistPreTmp | Site::PersistPreRename | Site::PersistPreDirSync => {
            let res = service.persist(&path);
            assert!(matches!(res, Err(SnapshotError::Io(_))));
        }
        Site::SnapshotLoad => {
            // The load seam fires before the file is even opened.
            assert!(snapshot::load(&path).is_err());
        }
        Site::TestProbe => unreachable!("no production call site"),
        Site::NetAccept | Site::NetRead | Site::NetWrite => {
            unreachable!("net seams live in ampc-net; exercised by its chaos suite")
        }
    }
    wait_until("site fire observed", || fault::fired(site) > fired_before);
    fault::disarm_all();
    recover_to_healthy(&service, &clock, n, &edges);
    clean_snapshot_files(&path);
}

#[test]
fn every_fault_class_fires_and_is_survived() {
    let _s = FaultSession::begin();
    for site in PROD_SITES {
        drive_site_once(site);
        assert!(fault::fired(site) >= 1, "{} must have fired", site.name());
    }
}

/// One seeded schedule: a reader pool hammering snapshots while the main
/// thread inserts, persists, loads, and advances time — with a rotating
/// failpoint armed each round.
fn run_chaos_schedule(seed: u64, rounds: usize) {
    let mut rng = SplitMix64::new(derive_seed(&[0xC8A05, seed]));
    let n = 120 + (seed as usize % 4) * 40;
    let trees = 6 + (seed as usize % 5);
    let g = random_forest(n, trees, seed);
    let mut edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    let clock = ManualClock::new();
    let policy = RetryPolicy {
        max_consecutive_failures: 3 + (seed % 3) as u32,
        base_backoff_ms: 50,
        max_backoff_ms: 400,
        max_incidents: 16,
    };
    let service = ServiceBuilder::new(g)
        .spec(spec(seed))
        .journal_budget(JournalBudget::new(2, usize::MAX))
        .retry_policy(policy)
        .clock(Arc::new(clock.clone()))
        .build()
        .expect("build");

    // Reader pool: 1–3 threads, never blocked, never panicking, and every
    // answer internally consistent within its pinned epoch.
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..(1 + seed as usize % 3))
        .map(|r| {
            let service = service.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut rng = SplitMix64::new(derive_seed(&[seed, r as u64]));
                let mut reads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = service.snapshot();
                    let eng = snap.engine();
                    let nn = snap.graph_size().0 as u64;
                    let u = rng.next_below(nn) as VertexId;
                    let v = rng.next_below(nn) as VertexId;
                    assert_eq!(eng.answer(Query::Connected(u, u)), 1);
                    let cu = eng.answer(Query::ComponentOf(u));
                    assert_eq!(eng.answer(Query::ComponentOf(u)), cu, "same-epoch determinism");
                    if eng.answer(Query::Connected(u, v)) == 1 {
                        assert_eq!(eng.answer(Query::ComponentOf(v)), cu);
                    }
                    reads += 1;
                }
                reads
            })
        })
        .collect();

    let path = tmp_path(&format!("matrix_{seed}"));
    clean_snapshot_files(&path);

    for round in 0..rounds {
        // Lineage refresh: once everything is one component the journal
        // path has nothing left to merge — rebuild onto a fresh forest.
        if bridge_edge(n, &edges).is_none() {
            fault::disarm_all();
            recover_to_healthy(&service, &clock, n, &edges);
            let g2 = random_forest(n, trees, derive_seed(&[seed, round as u64]));
            edges = g2.edges().collect();
            service.rebuild_blocking(g2).expect("lineage refresh");
        }

        let site = PROD_SITES[(round + seed as usize) % PROD_SITES.len()];
        // Publish-side and insert-path panics get dedicated deterministic
        // tests; the matrix panics where a crash is the realistic failure
        // (pipeline threads, persist i/o).
        let panic_ok = matches!(
            site,
            Site::RebuildPipeline
                | Site::PersistPreTmp
                | Site::PersistPreRename
                | Site::PersistPreDirSync
        );
        let action = if panic_ok && rng.next_below(3) == 0 {
            FaultAction::Panic
        } else {
            FaultAction::Error
        };
        fault::arm(site, action, 0, 1);

        // Insert a batch: random edges plus a guaranteed merge when one
        // exists (so the journal path and budget trigger stay exercised).
        let mut batch: Vec<(VertexId, VertexId)> = (0..1 + rng.next_below(3))
            .map(|_| (rng.next_below(n as u64) as VertexId, rng.next_below(n as u64) as VertexId))
            .collect();
        if let Some(bridge) = bridge_edge(n, &edges) {
            batch.push(bridge);
        }
        match service.insert_edges(&batch) {
            Ok(_) => edges.extend_from_slice(&batch),
            Err(ServeError::ReadOnly) => {} // handled by the bailout below
            Err(_) => {}                    // injected: batch rolled back
        }

        // Persist probe (an armed persist site may kill it — including by
        // simulated crash) and load probe (never panics, typed error or a
        // complete snapshot).
        let _ = catch_unwind(AssertUnwindSafe(|| service.persist(&path)));
        if let Ok(loaded) = snapshot::load(&path) {
            assert!(loaded.index.num_vertices() > 0, "loaded snapshot must be complete");
        }

        // Advance the injected clock and give the retry schedule a chance.
        clock.advance_ms(rng.next_below(300));
        service.tick();

        // ReadOnly mid-schedule: pull the operator lever and keep going.
        if service.health().state == HealthState::ReadOnly {
            fault::disarm_all();
            service.rebuild_blocking(Graph::from_edges(n, &edges)).expect("bailout rebuild");
        }

        // The standing invariant, checked every round: the published epoch
        // answers byte-identically to the accepted-edge oracle, whatever
        // just failed.
        assert_oracle(&service, n, &edges, &format!("seed {seed} round {round}"));
    }

    // Faults stop; the service must converge to Healthy and still match.
    fault::disarm_all();
    recover_to_healthy(&service, &clock, n, &edges);
    assert_eq!(service.health().state, HealthState::Healthy, "seed {seed} must end Healthy");
    assert_oracle(&service, n, &edges, &format!("seed {seed} converged"));

    stop.store(true, Ordering::Relaxed);
    for r in readers {
        let reads = r.join().expect("reader must never panic");
        assert!(reads > 0, "reader made progress under chaos");
    }
    clean_snapshot_files(&path);
}

#[test]
fn chaos_matrix_seeded_schedules_converge_healthy() {
    let _s = FaultSession::begin();
    let quick = std::env::var("AMPC_CHAOS_QUICK").is_ok();
    let rounds = if quick { 7 } else { 14 };
    for seed in 1..=8u64 {
        run_chaos_schedule(seed, rounds);
    }
    // Acceptance: every fault class was hit somewhere in the matrix. The
    // rotation makes this overwhelmingly likely; the direct driver closes
    // the gap deterministically if a class was starved (e.g. disarmed by a
    // bailout before firing).
    for site in PROD_SITES {
        if fault::fired(site) == 0 {
            drive_site_once(site);
        }
        assert!(fault::fired(site) >= 1, "fault class {} never fired", site.name());
    }
}
