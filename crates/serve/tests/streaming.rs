//! Streaming journal-epochs: after every accepted insertion batch the
//! service must answer the whole query algebra **byte-identically** to a
//! from-scratch union-find build over the accumulated graph — across a
//! family × seed matrix, under concurrent readers, and across the
//! budget-triggered compaction fallback.

use ampc::rng::{derive_seed, SplitMix64};
use ampc_cc::pipeline::PipelineSpec;
use ampc_graph::generators::{erdos_renyi_gnm, random_forest};
use ampc_graph::{reference_components, Graph, VertexId};
use ampc_query::{ComponentIndex, Query};
use ampc_serve::{JournalBudget, ServiceBuilder, ServiceHandle};

/// A deterministic batch of random candidate edges over `n` vertices.
fn edge_batch(n: usize, len: usize, seed: u64) -> Vec<(VertexId, VertexId)> {
    let mut rng = SplitMix64::new(seed);
    (0..len)
        .map(|_| (rng.next_below(n as u64) as VertexId, rng.next_below(n as u64) as VertexId))
        .collect()
}

/// Asserts every algebra answer on the service's current epoch equals the
/// from-scratch oracle built over `edges`.
fn assert_matches_oracle(
    service: &ServiceHandle,
    n: usize,
    edges: &[(VertexId, VertexId)],
    ctx: &str,
) {
    let oracle = ComponentIndex::build(&reference_components(&Graph::from_edges(n, edges)));
    let snap = service.snapshot();
    let engine = snap.engine();
    assert_eq!(snap.num_components(), oracle.num_components(), "{ctx}: component count");
    for v in 0..n as VertexId {
        assert_eq!(
            engine.answer(Query::ComponentOf(v)),
            oracle.component_of(v) as u64,
            "{ctx}: ComponentOf({v})"
        );
        assert_eq!(
            engine.answer(Query::ComponentSize(v)),
            oracle.component_size(v) as u64,
            "{ctx}: ComponentSize({v})"
        );
    }
    let mut rng = SplitMix64::new(derive_seed(&[n as u64, edges.len() as u64]));
    for _ in 0..200 {
        let (u, v) = (rng.next_below(n as u64) as VertexId, rng.next_below(n as u64) as VertexId);
        assert_eq!(
            engine.answer(Query::Connected(u, v)),
            oracle.connected(u, v) as u64,
            "{ctx}: Connected({u},{v})"
        );
    }
    for k in 1..=(oracle.num_components() as u32 + 2) {
        assert_eq!(
            engine.answer(Query::TopKSize(k)),
            oracle.kth_largest_size(k as usize) as u64,
            "{ctx}: TopKSize({k})"
        );
    }
}

#[test]
fn journal_epochs_match_fresh_builds_across_families_and_seeds() {
    // family × seed matrix: every batch of inserts on every graph must
    // leave the service byte-identical to a from-scratch build.
    const N: usize = 500;
    const BATCHES: usize = 4;
    const BATCH_LEN: usize = 12;
    type MakeGraph = fn(u64) -> Graph;
    let families: [(&str, MakeGraph); 2] = [
        ("forest", |seed| random_forest(N, 10, seed)),
        ("gnm", |seed| erdos_renyi_gnm(N, 300, seed)),
    ];
    for (family, make) in &families {
        for seed in [1u64, 2, 3] {
            let g = make(seed);
            let mut edges: Vec<(VertexId, VertexId)> = g.edges().collect();
            let spec = PipelineSpec::default().with_seed(seed).with_machines(4);
            let service = ServiceBuilder::new(g)
                .spec(spec)
                .journal_budget(JournalBudget::unbounded())
                .build()
                .expect("build");
            for b in 0..BATCHES {
                let batch = edge_batch(N, BATCH_LEN, derive_seed(&[0x57A6, seed, b as u64]));
                let report = service.insert_edges(&batch).expect("insert");
                assert_eq!(report.applied, batch.len());
                assert!(!report.compaction_started, "unbounded budget must never compact");
                edges.extend_from_slice(&batch);
                assert_matches_oracle(
                    &service,
                    N,
                    &edges,
                    &format!("{family}/seed {seed}/batch {b}"),
                );
            }
            // The journal carries every merge the batches caused.
            let snap = service.snapshot();
            assert_eq!(snap.epoch(), BATCHES as u64);
            assert_eq!(snap.graph_size().1, edges.len());
        }
    }
}

#[test]
fn budget_fallback_compacts_and_replays_inserts_mid_compaction() {
    // A tiny budget forces a compaction almost immediately; inserts issued
    // *while* the compaction rebuild runs must survive onto the new base.
    // Whatever the interleaving, the final answers equal the oracle over
    // every accepted edge.
    const N: usize = 600;
    let g = random_forest(N, 12, 0xC0);
    let mut edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    let spec = PipelineSpec::default().with_seed(5).with_machines(4);
    let service = ServiceBuilder::new(g)
        .spec(spec)
        .journal_budget(JournalBudget::new(4, usize::MAX))
        .build()
        .expect("build");

    let mut compactions = 0usize;
    for b in 0..10u64 {
        let batch = edge_batch(N, 3, derive_seed(&[0xFA11, b]));
        let report = service.insert_edges(&batch).expect("insert");
        edges.extend_from_slice(&batch);
        compactions += report.compaction_started as usize;
    }
    assert!(compactions > 0, "a 4-edge budget must have triggered compaction");

    // Wait until no compaction is in flight: the epoch stops moving once
    // the last background rebuild lands (we stopped inserting).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    let mut last = service.current_epoch();
    loop {
        std::thread::sleep(std::time::Duration::from_millis(20));
        let now = service.current_epoch();
        if now == last {
            break;
        }
        last = now;
        assert!(std::time::Instant::now() < deadline, "compactions never quiesced");
    }
    assert_matches_oracle(&service, N, &edges, "post-compaction");
    // Edges accepted across all lineages are all accounted for.
    assert_eq!(service.snapshot().graph_size().1, edges.len());
}

#[test]
fn readers_stay_consistent_while_journal_epochs_publish() {
    // Concurrent readers hammer snapshots while a writer streams insertion
    // batches. Every snapshot must be internally consistent: its component
    // count, ComponentOf partition, and TopKSize(1) all agree with *one*
    // published journal state (answers are taken through one snapshot, so
    // any torn state would show as a partition that sums wrong).
    use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
    const N: usize = 400;
    let g = random_forest(N, 8, 0xBEE);
    let spec = PipelineSpec::default().with_seed(3).with_machines(2);
    let service = ServiceBuilder::new(g)
        .spec(spec)
        .journal_budget(JournalBudget::unbounded())
        .build()
        .expect("build");

    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for _ in 0..3 {
            s.spawn(|| {
                while !stop.load(SeqCst) {
                    let snap = service.snapshot();
                    let engine = snap.engine();
                    let c = snap.num_components();
                    // Partition check: component ids are dense in 0..c and
                    // the sizes of the distinct ids sum to n.
                    let mut size_of = vec![0u64; c];
                    let mut total = 0u64;
                    for v in 0..N as VertexId {
                        let id = engine.answer(Query::ComponentOf(v)) as usize;
                        assert!(id < c, "dense id {id} out of range for {c} components");
                        let sz = engine.answer(Query::ComponentSize(v));
                        if size_of[id] == 0 {
                            size_of[id] = sz;
                            total += sz;
                        } else {
                            assert_eq!(size_of[id], sz, "size disagreement within component");
                        }
                    }
                    assert_eq!(total, N as u64, "component sizes must partition the graph");
                    let max = *size_of.iter().max().unwrap();
                    assert_eq!(engine.answer(Query::TopKSize(1)), max);
                }
            });
        }
        for b in 0..12u64 {
            let batch = edge_batch(N, 6, derive_seed(&[0x5EED, b]));
            service.insert_edges(&batch).expect("insert");
        }
        stop.store(true, SeqCst);
    });
    assert_eq!(service.current_epoch(), 12);
}
