//! Swap-under-load: reader threads answer queries while background
//! rebuilds publish new epochs through the same service.
//!
//! The pinned invariant: **every answer is consistent with exactly one
//! published epoch**. Each test graph is chosen so its index (and the
//! checksum of a fixed query workload against it) is a unique fingerprint;
//! a torn read — an answer mixing two epochs' indexes — would produce a
//! fingerprint matching *no* published graph and fail loudly. The tests
//! also pin the lifecycle half of the contract: a snapshot taken before a
//! rebuild keeps answering its old epoch across arbitrarily many swaps,
//! and a retired epoch's memory is freed exactly when its last snapshot
//! drops.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::SeqCst};
use std::sync::Barrier;

use ampc_cc::pipeline::PipelineSpec;
use ampc_graph::generators::random_forest;
use ampc_graph::reference_components;
use ampc_graph::Graph;
use ampc_query::workload::{self, Mix};
use ampc_query::{ComponentIndex, QueryEngine};
use ampc_serve::ServiceBuilder;

/// Vertex count shared by every epoch's graph, so one query stream is
/// valid against every published index.
const N: usize = 400;
/// Reader threads.
const READERS: usize = 4;
/// Rebuilds published while readers are live.
const REBUILDS: usize = 3;

/// The graph published as epoch `i`: component count `5 + 3i` uniquely
/// fingerprints the epoch.
fn epoch_graph(i: usize) -> Graph {
    random_forest(N, 5 + 3 * i, 0xEC0 + i as u64)
}

/// Per-epoch oracle: the reference-built index (byte-identical to what the
/// service must publish) and the checksum of the shared workload under it.
struct Oracle {
    index: ComponentIndex,
    checksum: u64,
}

fn oracles(queries: &[ampc_query::Query]) -> Vec<Oracle> {
    let oracles: Vec<Oracle> = (0..=REBUILDS)
        .map(|i| {
            let index = ComponentIndex::build(&reference_components(&epoch_graph(i)));
            let engine = QueryEngine::new(&index);
            let checksum = queries.iter().fold(0u64, |acc, &q| acc.wrapping_add(engine.answer(q)));
            Oracle { index, checksum }
        })
        .collect();
    // The fingerprints must be pairwise distinct or the exactly-one-epoch
    // assertion below would be vacuous.
    for a in 0..oracles.len() {
        for b in a + 1..oracles.len() {
            assert_ne!(oracles[a].checksum, oracles[b].checksum, "oracles {a}/{b} collide");
            assert_ne!(oracles[a].index.num_components(), oracles[b].index.num_components());
        }
    }
    oracles
}

/// A query stream valid against every epoch's graph (all share `N`).
fn shared_workload() -> Vec<ampc_query::Query> {
    let base = ComponentIndex::build(&reference_components(&epoch_graph(0)));
    workload::generate(&base, Mix::Uniform, 2_000, 0x10AD)
}

#[test]
fn readers_stay_consistent_across_sequential_rebuilds() {
    let queries = shared_workload();
    let oracles = oracles(&queries);
    let spec = PipelineSpec::default().with_seed(21).with_machines(4);
    let service = ServiceBuilder::new(epoch_graph(0)).spec(spec).build().expect("build");

    let stop = AtomicBool::new(false);
    let iterations = AtomicUsize::new(0);
    // Readers take their first snapshot before the barrier; rebuilds start
    // after it — so every reader provably pins epoch 0 and stays live
    // across all REBUILDS swaps.
    let barrier = Barrier::new(READERS + 1);

    std::thread::scope(|s| {
        for _ in 0..READERS {
            s.spawn(|| {
                let genesis = service.snapshot();
                assert_eq!(genesis.epoch(), 0);
                barrier.wait();
                while !stop.load(SeqCst) {
                    let snap = service.snapshot();
                    let e = snap.epoch() as usize;
                    // Sequential publishes ⇒ epoch e carries epoch_graph(e).
                    assert!(e <= REBUILDS, "epoch {e} was never published");
                    assert_eq!(
                        snap.index(),
                        &oracles[e].index,
                        "epoch {e}: snapshot index diverged from its oracle (torn read?)"
                    );
                    let engine = snap.engine();
                    let sum =
                        queries.iter().fold(0u64, |acc, &q| acc.wrapping_add(engine.answer(q)));
                    assert_eq!(
                        sum, oracles[e].checksum,
                        "epoch {e}: answers inconsistent with the pinned epoch"
                    );
                    iterations.fetch_add(1, SeqCst);
                }
                // The genesis snapshot answered epoch 0 all along — and
                // still does after every swap.
                assert_eq!(genesis.epoch(), 0);
                assert_eq!(genesis.index(), &oracles[0].index);
            });
        }

        barrier.wait();
        for (i, oracle) in oracles.iter().enumerate().skip(1) {
            let epoch = service.rebuild(epoch_graph(i)).wait().expect("rebuild");
            assert_eq!(epoch as usize, i, "sequential rebuilds must publish dense epochs");
            assert_eq!(service.snapshot().index(), &oracle.index);
        }
        stop.store(true, SeqCst);
    });

    assert_eq!(service.current_epoch() as usize, REBUILDS);
    assert!(
        iterations.load(SeqCst) >= READERS,
        "readers made too few passes to exercise the swap window"
    );
}

#[test]
fn concurrent_rebuild_publishers_never_tear_a_snapshot() {
    let queries = shared_workload();
    let oracles = oracles(&queries);
    let spec = PipelineSpec::default().with_seed(33).with_machines(4);
    let service = ServiceBuilder::new(epoch_graph(0)).spec(spec).build().expect("build");

    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for _ in 0..READERS {
            s.spawn(|| {
                while !stop.load(SeqCst) {
                    let snap = service.snapshot();
                    // Publish order is racy, so identify the epoch's graph
                    // by fingerprint — it must match exactly one oracle,
                    // wholesale.
                    let engine = snap.engine();
                    let sum =
                        queries.iter().fold(0u64, |acc, &q| acc.wrapping_add(engine.answer(q)));
                    let matches: Vec<usize> = oracles
                        .iter()
                        .enumerate()
                        .filter(|(_, o)| o.checksum == sum && &o.index == snap.index())
                        .map(|(i, _)| i)
                        .collect();
                    assert_eq!(
                        matches.len(),
                        1,
                        "snapshot at epoch {} matches {} oracles — torn or unknown index",
                        snap.epoch(),
                        matches.len()
                    );
                }
            });
        }

        // M rebuild threads publish concurrently (rebuild() itself spawns a
        // background thread; we just fire them all before waiting).
        let handles: Vec<_> = (1..=REBUILDS).map(|i| service.rebuild(epoch_graph(i))).collect();
        let mut epochs: Vec<u64> =
            handles.into_iter().map(|h| h.wait().expect("rebuild")).collect();
        epochs.sort_unstable();
        assert_eq!(epochs, vec![1, 2, 3], "publishes must serialize into dense epochs");
        stop.store(true, SeqCst);
    });

    // Whichever rebuild won the last publish, the final index is exactly
    // one of the published graphs.
    let last = service.snapshot();
    assert_eq!(last.epoch() as usize, REBUILDS);
    assert!(
        oracles.iter().any(|o| &o.index == last.index()),
        "final epoch serves an index that was never built"
    );
}

#[test]
fn driver_stays_per_thread_consistent_while_rebuilds_publish() {
    // The multi-threaded driver pins one snapshot per thread and reuses it
    // for both timed passes, so a rebuild landing mid-run must neither
    // panic the single-vs-batched cross-check nor mix epochs within a
    // thread: every per-thread checksum must equal the oracle sum of that
    // thread's stripe against the graph of the epoch the row reports.
    let queries = shared_workload();
    let oracles = oracles(&queries);
    let spec = PipelineSpec::default().with_seed(77).with_machines(2);
    let service = ServiceBuilder::new(epoch_graph(0)).spec(spec).build().expect("build");

    const THREADS: usize = 3;
    // Per-epoch, per-stripe oracle sums.
    let stripe_sum = |epoch: usize, t: usize| -> u64 {
        let engine = QueryEngine::new(&oracles[epoch].index);
        queries[ampc_serve::driver::stripe(queries.len(), THREADS, t)]
            .iter()
            .fold(0u64, |acc, &q| acc.wrapping_add(engine.answer(q)))
    };

    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        // Rebuild loop: cycle through the epoch graphs; epoch e always
        // carries epoch_graph(e % (REBUILDS + 1)) because publishes are
        // sequential here.
        s.spawn(|| {
            let mut i = 0usize;
            while !stop.load(SeqCst) {
                i += 1;
                let g = epoch_graph(i % (REBUILDS + 1));
                service.rebuild(g).wait().expect("rebuild");
            }
        });
        for _ in 0..20 {
            let report = ampc_serve::driver::run(&service, &queries, THREADS, 256);
            for row in &report.per_thread {
                let epoch = row.epoch as usize % (REBUILDS + 1);
                assert_eq!(
                    row.checksum,
                    stripe_sum(epoch, row.thread),
                    "thread {} at epoch {}: answers mixed epochs",
                    row.thread,
                    row.epoch
                );
            }
        }
        stop.store(true, SeqCst);
    });
}

#[test]
fn shrinking_graph_rebuilds_answer_old_workloads_with_the_sentinel() {
    // A query stream generated against a 400-vertex epoch keeps hammering
    // the service across a rebuild down to 150 vertices. Out-of-range
    // vertices must answer NO_ANSWER — never panic a reader (this used to
    // kill the serving thread with an index-out-of-bounds).
    use ampc_query::NO_ANSWER;
    let queries = shared_workload();
    let small = random_forest(150, 4, 0x5417);
    let small_oracle = ComponentIndex::build(&reference_components(&small));
    let spec = PipelineSpec::default().with_seed(91).with_machines(4);
    let service = ServiceBuilder::new(epoch_graph(0)).spec(spec).build().expect("build");

    let stop = AtomicBool::new(false);
    let sentinel_seen = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..READERS {
            s.spawn(|| {
                while !stop.load(SeqCst) {
                    let snap = service.snapshot();
                    let engine = snap.engine();
                    for &q in &queries {
                        // Must not panic; on the small epoch, out-of-range
                        // vertices answer the sentinel.
                        if engine.answer(q) == NO_ANSWER {
                            assert_eq!(snap.epoch(), 1, "sentinel on the full-range epoch");
                            sentinel_seen.fetch_add(1, SeqCst);
                        }
                    }
                }
            });
        }
        service.rebuild(small.clone()).wait().expect("shrinking rebuild");
        // Run the workload on the small epoch from this thread too, so the
        // sentinel assertion below doesn't depend on a reader re-snapshotting
        // before `stop` lands.
        let snap = service.snapshot();
        assert_eq!(snap.epoch(), 1);
        let engine = snap.engine();
        for &q in &queries {
            if engine.answer(q) == NO_ANSWER {
                sentinel_seen.fetch_add(1, SeqCst);
            }
        }
        stop.store(true, SeqCst);
    });

    let snap = service.snapshot();
    assert_eq!(snap.epoch(), 1);
    assert_eq!(snap.index(), &small_oracle);
    // The shared workload names vertices ≥ 150, so the small epoch must
    // have produced sentinels (otherwise this test exercised nothing).
    assert!(sentinel_seen.load(SeqCst) > 0, "no out-of-range query reached the small epoch");
    assert_eq!(snap.engine().try_answer(ampc_query::Query::ComponentOf(399)), None);
}

#[test]
fn requested_order_wins_for_concurrent_rebuilds() {
    // Request a slow rebuild (big graph) and then a fast one (tiny graph):
    // the tiny one finishes its pipeline first, but publishes must respect
    // request order, so the *last-requested* graph is the final epoch.
    // Under completion-order publishing (the old bug) the big stale graph
    // would overwrite the tiny one.
    use ampc_graph::generators::erdos_renyi_gnm;
    let big = erdos_renyi_gnm(60_000, 180_000, 0xB16);
    let tiny = random_forest(64, 2, 0x717);
    let tiny_oracle = ComponentIndex::build(&reference_components(&tiny));
    let spec = PipelineSpec::default().with_seed(13).with_machines(4);
    let service = ServiceBuilder::new(epoch_graph(0)).spec(spec).build().expect("build");

    let first = service.rebuild(big);
    let second = service.rebuild(tiny);
    let e1 = first.wait().expect("big rebuild");
    let e2 = second.wait().expect("tiny rebuild");
    assert_eq!((e1, e2), (1, 2), "publishes must land in request order");
    let snap = service.snapshot();
    assert_eq!(snap.epoch(), 2);
    assert_eq!(snap.index(), &tiny_oracle, "a stale slow rebuild overwrote a newer epoch");
}

#[test]
fn dropped_rebuild_handles_still_publish_in_request_order() {
    // Dropping a RebuildHandle must not detach-and-forget: the rebuild
    // still runs, still publishes, and still respects request order (the
    // drop joins the worker). The old code silently discarded the join
    // handle *and* the error.
    let spec = PipelineSpec::default().with_seed(47).with_machines(2);
    let service = ServiceBuilder::new(epoch_graph(0)).spec(spec).build().expect("build");
    for i in 1..=REBUILDS {
        drop(service.rebuild(epoch_graph(i)));
    }
    assert_eq!(service.current_epoch() as usize, REBUILDS);
    let final_oracle = ComponentIndex::build(&reference_components(&epoch_graph(REBUILDS)));
    assert_eq!(service.snapshot().index(), &final_oracle);
}

#[test]
fn retired_epochs_are_dropped_once_unpinned_under_load() {
    let spec = PipelineSpec::default().with_seed(55).with_machines(2);
    let service = ServiceBuilder::new(epoch_graph(0)).spec(spec).build().expect("build");

    let pinned = service.snapshot();
    let weak0 = pinned.downgrade();
    let weak1;
    {
        // Pin epoch 1 only inside this scope.
        service.rebuild_blocking(epoch_graph(1)).expect("rebuild 1");
        let transient = service.snapshot();
        assert_eq!(transient.epoch(), 1);
        weak1 = transient.downgrade();
        service.rebuild_blocking(epoch_graph(2)).expect("rebuild 2");
        assert!(weak1.upgrade().is_some(), "epoch 1 still pinned by `transient`");
    }
    // Epoch 1 lost its last pin when `transient` dropped; epoch 0 is still
    // pinned; epoch 2 is current.
    assert!(weak1.upgrade().is_none(), "unpinned retired epoch 1 must be freed");
    assert!(weak0.upgrade().is_some(), "epoch 0 is still pinned");
    assert_eq!(pinned.epoch(), 0);
    drop(pinned);
    assert!(weak0.upgrade().is_none(), "epoch 0 must be freed once its snapshot drops");
    assert_eq!(service.current_epoch(), 2);
}
