//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment cannot reach crates.io, so `ampc-bench` links this
//! minimal shim instead of the real `criterion`. It implements just the API
//! surface the workspace benches use — `criterion_group!`/`criterion_main!`,
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], [`BenchmarkId`]
//! and [`Throughput`] — with wall-clock timing and plain-text reporting
//! rather than criterion's statistical machinery. Each benchmark runs a
//! small fixed number of timed iterations and prints mean time per
//! iteration, so `cargo bench` stays useful for coarse regression checks.
//!
//! Replacing the `criterion = { path = ... }` entry in `crates/bench` with
//! the real registry crate requires no source changes in the benches.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Number of timed iterations per benchmark. The real criterion calibrates
/// this statistically; the shim keeps `cargo bench` fast and deterministic.
const SHIM_ITERS: u32 = 3;

/// Top-level handle passed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Mirrors `Criterion::configure_from_args`; the shim ignores CLI args.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _parent: self }
    }
}

/// Identifies one benchmark within a group: a function name plus a
/// parameter rendered with `Display` (e.g. an input size).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("family", n)` — function name + parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation for a benchmark's input.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Input size in abstract elements (vertices, edges, items).
    Elements(u64),
    /// Input size in bytes.
    Bytes(u64),
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Mirrors criterion's sample-size control; the shim ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Mirrors criterion's measurement-time control; the shim ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with an input throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
        f(&mut b);
        self.report(&id.id, &b);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
        f(&mut b, input);
        self.report(&id.id, &b);
        self
    }

    /// Ends the group. (The real criterion finalizes reports here.)
    pub fn finish(self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let per_iter = if b.iters == 0 { Duration::ZERO } else { b.elapsed / b.iters };
        match self.throughput {
            Some(Throughput::Elements(n)) if !per_iter.is_zero() => {
                let rate = n as f64 / per_iter.as_secs_f64();
                println!(
                    "bench {}/{id}: {per_iter:?}/iter ({rate:.0} elem/s, {} iters)",
                    self.name, b.iters
                );
            }
            _ => {
                println!("bench {}/{id}: {per_iter:?}/iter ({} iters)", self.name, b.iters);
            }
        }
    }
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Times `routine`, accumulating wall-clock over a fixed iteration count.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..SHIM_ITERS {
            let start = Instant::now();
            black_box(routine());
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benches_and_counts_iters() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        let mut calls = 0u32;
        group.sample_size(10).throughput(Throughput::Elements(4));
        group.bench_function("f", |b| b.iter(|| calls += 1));
        group
            .bench_with_input(BenchmarkId::new("g", 7), &3u32, |b, &x| b.iter(|| black_box(x * 2)));
        group.finish();
        assert_eq!(calls, SHIM_ITERS);
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("fam", 42).id, "fam/42");
        assert_eq!(BenchmarkId::from_parameter(9).id, "9");
        assert_eq!(BenchmarkId::from("raw").id, "raw");
    }
}
