//! Property tests of the §3 shrink machinery on arbitrary disjoint-cycle
//! collections: correctness, ledger balance, parent-forest acyclicity, and
//! pointer integrity after every iteration.

use ampc::rng::SplitMix64;
use ampc::{AmpcConfig, Key};
use ampc_cc::cycles::{unpack, CycleState, BWD, FWD, PARENT};
use ampc_cc::forest::shrink_large::shrink_large_cycles;
use ampc_cc::forest::shrink_small::shrink_small_cycles;

/// Cases per property — mirrors the original `ProptestConfig::with_cases(16)`.
/// (No registry access for `proptest`, so properties run over a deterministic
/// hand-rolled case loop seeded per `(property tag, case index)`.)
const CASES: u64 = 16;

/// Deterministic per-case RNG.
fn case_rng(tag: u64, case: u64) -> SplitMix64 {
    ampc::rng::stream(0x5481_11CC, tag, case, 0)
}

/// Random cycle-size vector: `len` in `1..max_len`, sizes in `2..max_size`.
fn arb_sizes(rng: &mut SplitMix64, max_len: u64, max_size: u64) -> Vec<usize> {
    let len = 1 + rng.next_below(max_len - 1);
    (0..len).map(|_| (2 + rng.next_below(max_size - 2)) as usize).collect()
}

/// Builds a successor permutation of disjoint cycles with the given sizes,
/// interleaving vertex ids across cycles so machine chunks mix cycles.
fn cycles_from_sizes(sizes: &[usize]) -> Vec<u64> {
    let n: usize = sizes.iter().sum();
    let mut succ = vec![0u64; n];
    let mut base = 0usize;
    for &s in sizes {
        for i in 0..s {
            succ[base + i] = (base + (i + 1) % s) as u64;
        }
        base += s;
    }
    succ
}

/// Ground-truth cycle id per vertex.
fn cycle_ids(succ: &[u64]) -> Vec<usize> {
    let mut id = vec![usize::MAX; succ.len()];
    let mut next = 0;
    for s in 0..succ.len() {
        if id[s] != usize::MAX {
            continue;
        }
        let mut cur = s;
        while id[cur] == usize::MAX {
            id[cur] = next;
            cur = succ[cur] as usize;
        }
        next += 1;
    }
    id
}

/// Checks that the alive pointer structure is a set of disjoint cycles
/// whose membership respects the original cycles.
fn assert_pointer_integrity(state: &CycleState, orig_cycle: &[usize]) {
    use std::collections::HashSet;
    let alive: HashSet<u64> = state.alive.iter().copied().collect();
    for &v in &state.alive {
        let fwd = state.sys.snapshot().get(Key::new(FWD, v)).expect("alive FWD");
        let (succ, _, _) = unpack(*fwd);
        assert!(alive.contains(&succ), "v={v} points to dead successor {succ}");
        assert_eq!(orig_cycle[succ as usize], orig_cycle[v as usize], "pointer crossed cycles");
        let bwd = state.sys.snapshot().get(Key::new(BWD, v)).expect("alive BWD");
        let (pred, _, _) = unpack(*bwd);
        assert!(alive.contains(&pred), "v={v} points to dead predecessor {pred}");
        // succ/pred must be mutually consistent.
        let (ps, _, _) = unpack(*state.sys.snapshot().get(Key::new(FWD, pred)).expect("pred FWD"));
        assert_eq!(ps, v, "pred({v}) = {pred} but succ({pred}) = {ps}");
    }
}

/// Checks that the PARENT relation is acyclic and stays within cycles.
fn assert_parent_forest(state: &CycleState, orig_cycle: &[usize], n: usize) {
    for start in 0..n as u64 {
        let mut cur = start;
        let mut hops = 0;
        while let Some(&p) = state.sys.snapshot().get(Key::new(PARENT, cur)) {
            assert_eq!(
                orig_cycle[p as usize], orig_cycle[start as usize],
                "parent chain crossed cycles"
            );
            cur = p;
            hops += 1;
            assert!(hops <= 10_000, "parent cycle detected from {start}");
        }
    }
}

#[test]
fn iteration_preserves_invariants() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let sizes = arb_sizes(&mut rng, 20, 60);
        let b = 1 + rng.next_below(7) as u16;
        let seed = rng.next_below(10_000);
        let succ = cycles_from_sizes(&sizes);
        let orig = cycle_ids(&succ);
        let n = succ.len();
        let mut st: CycleState = CycleState::from_successors(
            &succ,
            AmpcConfig::default().with_machines(5).with_seed(seed),
        );
        let mut iters = 0;
        while !st.alive.is_empty() {
            let out = shrink_small_cycles(&mut st, b, 1 << 16, true).unwrap();
            // Ledger balance.
            assert_eq!(
                out.alive_before - out.alive_after,
                out.loop_contracted
                    + out.segment_contracted
                    + out.step2_contracted
                    + out.finished_cycles,
                "case {case}"
            );
            assert_pointer_integrity(&st, &orig);
            assert_parent_forest(&st, &orig, n);
            iters += 1;
            assert!(iters < 200, "case {case}: did not converge");
        }
        // Final labels: exactly the original cycle partition.
        let labels = st.compose_labels(3 * iters + 8).unwrap();
        for i in 0..n {
            for j in (i + 1)..n {
                assert_eq!(labels[i] == labels[j], orig[i] == orig[j], "case {case}");
            }
        }
        // Each cycle contributes exactly one root.
        let mut roots = st.roots.clone();
        roots.sort_unstable();
        roots.dedup();
        assert_eq!(roots.len(), sizes.len(), "case {case}");
    }
}

#[test]
fn shrink_large_preserves_invariants() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let sizes = arb_sizes(&mut rng, 8, 400);
        let seed = rng.next_below(10_000);
        let succ = cycles_from_sizes(&sizes);
        let orig = cycle_ids(&succ);
        let n = succ.len();
        let mut st: CycleState = CycleState::from_successors(
            &succ,
            AmpcConfig::default().with_machines(3).with_seed(seed),
        );
        let out = shrink_large_cycles(&mut st, 32, 1 << 16).unwrap();
        assert_pointer_integrity(&st, &orig);
        assert_parent_forest(&st, &orig, n);
        // Every removed vertex's chain terminates at an alive vertex or root.
        let alive: std::collections::HashSet<u64> = st.alive.iter().copied().collect();
        let roots: std::collections::HashSet<u64> = st.roots.iter().copied().collect();
        let labels = st.compose_labels(out.repetitions * 2 + 8).unwrap();
        for (v, &l) in labels.iter().enumerate() {
            assert!(
                alive.contains(&l) || roots.contains(&l),
                "case {case}: vertex {v} maps to dead {l}"
            );
            assert_eq!(orig[l as usize], orig[v], "case {case}: vertex {v} mapped across cycles");
        }
    }
}

#[test]
fn walk_cap_never_breaks_correctness() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let sizes = arb_sizes(&mut rng, 10, 40);
        let cap = 2 + rng.next_below(10) as usize;
        let seed = rng.next_below(1000);
        // Starved caps: abstention must preserve exact correctness.
        let succ = cycles_from_sizes(&sizes);
        let orig = cycle_ids(&succ);
        let mut st: CycleState = CycleState::from_successors(
            &succ,
            AmpcConfig::default().with_machines(4).with_seed(seed),
        );
        let mut iters = 0;
        while !st.alive.is_empty() {
            shrink_small_cycles(&mut st, 2, cap, true).unwrap();
            iters += 1;
            assert!(iters < 500, "case {case}: starved run did not converge");
        }
        let labels = st.compose_labels(3 * iters + 8).unwrap();
        for i in 0..succ.len() {
            for j in (i + 1)..succ.len() {
                assert_eq!(labels[i] == labels[j], orig[i] == orig[j], "case {case}");
            }
        }
    }
}

/// Statistical check of Lemma 3.10's expectation: after Step 1 alone (no
/// deterministic phase), a k-cycle retains at most `2k/2^B + 1/2^B`
/// vertices in expectation.
#[test]
fn lemma_3_10_expectation_over_seeds() {
    let k = 4096usize;
    let b = 6u16;
    let succ = cycles_from_sizes(&[k]);
    let trials = 12;
    let mut total_after = 0usize;
    for seed in 0..trials {
        let mut st: CycleState = CycleState::from_successors(
            &succ,
            AmpcConfig::default().with_machines(4).with_seed(1000 + seed),
        );
        let out = shrink_small_cycles(&mut st, b, 1 << 16, false).unwrap();
        total_after += out.alive_after;
    }
    let mean = total_after as f64 / trials as f64;
    // 2k/2^B + 1/2^B = 128.02; allow 1.8× sampling slack over the
    // expectation bound at 12 trials.
    let bound = 2.0 * k as f64 / 64.0 + 1.0 / 64.0;
    assert!(mean <= 1.8 * bound, "mean survivors {mean:.1} exceed Lemma 3.10 bound {bound:.1}");
    // Sanity floor: Step 1 cannot do better than the max-rank census.
    assert!(mean >= 1.0);
}
