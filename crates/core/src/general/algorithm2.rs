//! Algorithm 2 — `ConnectedComponents` for general graphs (Theorem 1.2).
//!
//! ```text
//! 1: function ConnectedComponents(G)
//! 2:   n = |V(G)|, m = |E(G)|, d = √(m/n)
//! 3:   if T/n = n^Ω(1):
//! 4:     solve with the algorithm of Theorem 4.1
//! 5:   H := each edge of G sampled independently with probability 1/d
//! 6:   C := ShrinkRecurse(H, n)
//! 7:   return Compose(ShrinkRecurse(Contract(G, C), n), C)
//!
//! 8: function ShrinkRecurse(G, n)
//! 9:   (G', M) := ShrinkGeneral(G, min(2^√(T/n), √S))
//! 10:  return Compose(ConnectedComponents(G'), M)
//! ```
//!
//! The two recursive calls cannot run in parallel (the second needs the
//! first's output — Lemma 4.9), so the recursion tree size is the round
//! complexity up to the `O(1)` rounds per call. Lemma 4.6 bounds the
//! expected number of `ConnectedComponents` calls by `2^O(k)` when
//! `T = Ω(m + n log^(k) n)`; experiment E5 measures exactly this count.

use ampc::{AmpcConfig, AmpcResult, DhtBackend, RunStats};
use ampc_graph::contract::contract;
use ampc_graph::{reference_components, Graph, Labeling};

use crate::general::bdeplus::theorem41;
use crate::general::sampling::{algorithm2_sample_probability, sample_edges};
use crate::general::shrink_general::shrink_general;
use crate::log_iter;

/// Configuration for Algorithm 2.
#[derive(Debug, Clone)]
pub struct GeneralCcConfig {
    /// Simulated machine count.
    pub machines: usize,
    /// Run seed.
    pub seed: u64,
    /// Local-space exponent: `S = (n + m)^delta`.
    pub delta: f64,
    /// The space parameter `k` of Theorem 1.2: total space
    /// `T = space_const · (m + n · log^(k) n)`.
    pub k: u32,
    /// Constant in front of the total-space bound.
    pub space_const: f64,
    /// Base-case threshold: when `T/n ≥ n^gamma` the Theorem 4.1 solver is
    /// used (the paper's `T/n = n^Ω(1)` test).
    pub gamma: f64,
    /// Inputs at most this size are solved on one machine.
    pub small_threshold: usize,
    /// Recursion depth safety bound.
    pub max_depth: usize,
    /// DHT storage backend for every system the recursion constructs.
    pub backend: DhtBackend,
}

impl Default for GeneralCcConfig {
    fn default() -> Self {
        GeneralCcConfig {
            machines: 8,
            seed: 0x6E_4242,
            delta: 0.6,
            k: 2,
            space_const: 4.0,
            // The paper's test is asymptotic (`T/n = n^Ω(1)`); at
            // benchmarkable sizes gamma must be large enough that modest
            // T/n ratios do NOT count as polynomial, or the recursion never
            // fires. 0.5 makes the k-dependence observable (experiment E5).
            gamma: 0.50,
            small_threshold: 128,
            max_depth: 40,
            backend: DhtBackend::Flat,
        }
    }
}

impl GeneralCcConfig {
    /// Sets `k` (larger `k` → less space → more rounds).
    pub fn with_k(mut self, k: u32) -> Self {
        self.k = k;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the DHT storage backend.
    pub fn with_backend(mut self, backend: DhtBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Total space `T` for an `(n, m)` input.
    pub fn total_space(&self, n: usize, m: usize) -> usize {
        let t = self.space_const * (m as f64 + n as f64 * log_iter(n.max(2) as f64, self.k));
        t.ceil() as usize
    }

    /// Local space `S` for an `(n, m)` input.
    pub fn local_space(&self, n: usize, m: usize) -> usize {
        (((n + m).max(2) as f64).powf(self.delta).ceil() as usize).max(64)
    }
}

/// One `ConnectedComponents` invocation in the recursion tree — the data
/// behind Lemma 4.8's "space per vertex climbs the log ladder" argument.
#[derive(Debug, Clone)]
pub struct CallReport {
    /// Recursion depth of this call.
    pub depth: usize,
    /// Vertices of the call's input graph.
    pub n: usize,
    /// Edges of the call's input graph.
    pub m: usize,
    /// Available space per vertex, `T/n`.
    pub space_per_vertex: f64,
    /// Whether the call bottomed out (base case or small input).
    pub terminal: bool,
}

/// Result of an Algorithm 2 run.
#[derive(Debug)]
pub struct GeneralCcResult {
    /// CC-labeling of the input graph.
    pub labeling: Labeling,
    /// Aggregated AMPC accounting across the whole recursion.
    pub stats: RunStats,
    /// Number of `ConnectedComponents` calls (Lemma 4.6's `2^O(k)`).
    pub cc_calls: usize,
    /// Deepest recursion level reached.
    pub max_depth_reached: usize,
    /// How many calls bottomed out in the Theorem 4.1 solver.
    pub base_case_calls: usize,
    /// Total space budget `T` the run was configured with.
    pub total_space: usize,
    /// One record per `ConnectedComponents` call, in call order.
    pub calls: Vec<CallReport>,
}

struct Driver<'a> {
    cfg: &'a GeneralCcConfig,
    t_total: usize,
    s_local: usize,
    stats: RunStats,
    cc_calls: usize,
    base_case_calls: usize,
    max_depth: usize,
    seed_ctr: u64,
    calls: Vec<CallReport>,
}

impl Driver<'_> {
    fn next_seed(&mut self) -> u64 {
        self.seed_ctr = self.seed_ctr.wrapping_add(1);
        self.cfg.seed.wrapping_add(self.seed_ctr.wrapping_mul(0x9E37_79B9))
    }

    fn ampc_cfg(&mut self) -> AmpcConfig {
        AmpcConfig::default()
            .with_machines(self.cfg.machines)
            .with_seed(self.next_seed())
            .with_backend(self.cfg.backend)
    }

    /// Algorithm 2, lines 1–7.
    fn connected_components(&mut self, g: &Graph, depth: usize) -> AmpcResult<Vec<u64>> {
        self.cc_calls += 1;
        self.max_depth = self.max_depth.max(depth);
        let (n, m) = (g.n(), g.m());
        let space_per_vertex = self.t_total as f64 / n.max(1) as f64;
        let call_idx = self.calls.len();
        self.calls.push(CallReport { depth, n, m, space_per_vertex, terminal: false });

        // Degenerate / small inputs: solve on one machine (charged).
        if n <= self.cfg.small_threshold || n + 2 * m <= self.s_local || depth >= self.cfg.max_depth
        {
            self.calls[call_idx].terminal = true;
            self.stats.charge_external(1, n + 2 * m, n + 2 * m);
            return Ok(reference_components(g).0);
        }

        // Line 3: base case when space per vertex is polynomially large.
        if space_per_vertex >= (n as f64).powf(self.cfg.gamma) {
            self.calls[call_idx].terminal = true;
            self.base_case_calls += 1;
            let cfg = self.ampc_cfg();
            let res = theorem41(g, self.t_total, self.s_local, &cfg)?;
            self.stats.absorb(&res.stats);
            return Ok(res.labeling.0);
        }

        // Line 5: sample H with probability 1/d, d = √(m/n). Host-side edge
        // filter; charged one round at linear cost.
        let p = algorithm2_sample_probability(n, m);
        let h = sample_edges(g, p, self.next_seed());
        self.stats.charge_external(1, 2 * m, n + 2 * m);

        // Line 6: C := ShrinkRecurse(H, n).
        let c = self.shrink_recurse(&h, depth)?;

        // Line 7: Compose(ShrinkRecurse(Contract(G, C), n), C).
        let contraction = contract(g, &c);
        self.stats.charge_external(1, 2 * m, n + 2 * m);
        let c2 = self.shrink_recurse(&contraction.graph, depth)?;
        let labels: Vec<u64> = contraction.class_of.iter().map(|&cls| c2[cls as usize]).collect();
        self.stats.charge_external(1, n, n);
        Ok(labels)
    }

    /// Algorithm 2, lines 8–10.
    fn shrink_recurse(&mut self, g: &Graph, depth: usize) -> AmpcResult<Vec<u64>> {
        let n = g.n().max(1);
        if g.n() <= self.cfg.small_threshold {
            self.stats.charge_external(1, g.n() + 2 * g.m(), g.n() + 2 * g.m());
            return Ok(reference_components(g).0);
        }
        // t = min(2^√(T/n), √S), clamped to at least 2 so progress is made.
        let sqrt_s = (self.s_local as f64).sqrt();
        let budget = (self.t_total as f64 / n as f64).max(1.0).sqrt();
        let t = budget.exp2().min(sqrt_s).max(2.0) as usize;

        let cfg = self.ampc_cfg();
        let out = shrink_general(g, t, self.s_local, cfg)?;
        self.stats.absorb(&out.stats);

        let sub = if out.h.n() >= g.n() {
            // No reduction (degenerate t): avoid infinite recursion.
            self.stats.charge_external(1, g.n() + 2 * g.m(), g.n() + 2 * g.m());
            reference_components(&out.h).0
        } else {
            self.connected_components(&out.h, depth + 1)?
        };
        Ok(out.to_h.iter().map(|&cls| sub[cls as usize]).collect())
    }
}

/// Computes the connected components of a general graph per Algorithm 2.
///
/// ```
/// use ampc_cc::general::algorithm2::{connected_components_general, GeneralCcConfig};
/// use ampc_graph::generators::erdos_renyi_gnm;
/// use ampc_graph::reference_components;
///
/// let g = erdos_renyi_gnm(500, 1500, 7);
/// let cfg = GeneralCcConfig::default().with_k(2);
/// let result = connected_components_general(&g, &cfg)?;
/// assert!(result.labeling.same_partition(&reference_components(&g)));
/// # Ok::<(), ampc::AmpcError>(())
/// ```
pub fn connected_components_general(
    g: &Graph,
    cfg: &GeneralCcConfig,
) -> AmpcResult<GeneralCcResult> {
    let t_total = cfg.total_space(g.n(), g.m());
    let s_local = cfg.local_space(g.n(), g.m());
    let mut driver = Driver {
        cfg,
        t_total,
        s_local,
        stats: RunStats::new(),
        cc_calls: 0,
        base_case_calls: 0,
        max_depth: 0,
        seed_ctr: 0,
        calls: Vec::new(),
    };
    let labels = driver.connected_components(g, 0)?;
    Ok(GeneralCcResult {
        labeling: Labeling(labels),
        stats: driver.stats,
        cc_calls: driver.cc_calls,
        max_depth_reached: driver.max_depth,
        base_case_calls: driver.base_case_calls,
        total_space: t_total,
        calls: driver.calls,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::generators::{
        barbell, disjoint_cliques, erdos_renyi_gnm, grid2d, preferential_attachment, GraphFamily,
    };

    fn check(g: &Graph, cfg: &GeneralCcConfig) -> GeneralCcResult {
        let res = connected_components_general(g, cfg).unwrap();
        assert!(
            res.labeling.same_partition(&reference_components(g)),
            "wrong components (n={}, m={}, k={})",
            g.n(),
            g.m(),
            cfg.k
        );
        res
    }

    #[test]
    fn all_graph_families_correct() {
        for fam in GraphFamily::ALL {
            let g = fam.generate(1500, 31);
            check(&g, &GeneralCcConfig::default().with_seed(fam as u64));
        }
    }

    #[test]
    fn k_sweep_stays_correct() {
        let g = erdos_renyi_gnm(4000, 12_000, 5);
        for k in 1..=5 {
            check(&g, &GeneralCcConfig::default().with_k(k).with_seed(k as u64));
        }
    }

    #[test]
    fn component_counts_preserved() {
        let g = disjoint_cliques(25, 20);
        let res = check(&g, &GeneralCcConfig::default());
        assert_eq!(res.labeling.num_components(), 25);
    }

    #[test]
    fn cc_calls_bounded() {
        // Lemma 4.6 shape: the number of recursive calls is 2^O(k), which
        // for k=2 and these sizes should be a small constant.
        let g = erdos_renyi_gnm(8000, 32_000, 6);
        let res = check(&g, &GeneralCcConfig::default().with_k(2));
        assert!(res.cc_calls <= 64, "cc_calls = {}", res.cc_calls);
    }

    #[test]
    fn more_space_means_fewer_calls() {
        let g = erdos_renyi_gnm(8000, 24_000, 7);
        let roomy = check(&g, &GeneralCcConfig::default().with_k(1));
        let tight = check(&g, &GeneralCcConfig::default().with_k(4));
        assert!(
            roomy.cc_calls <= tight.cc_calls,
            "k=1 used {} calls, k=4 used {}",
            roomy.cc_calls,
            tight.cc_calls
        );
    }

    #[test]
    fn handles_dense_and_sparse_extremes() {
        check(&barbell(40, 10), &GeneralCcConfig::default());
        check(&grid2d(60, 60), &GeneralCcConfig::default());
        check(&preferential_attachment(2000, 4, 8), &GeneralCcConfig::default());
        check(&Graph::empty(500), &GeneralCcConfig::default());
    }

    #[test]
    fn deterministic_given_seed() {
        let g = erdos_renyi_gnm(3000, 9000, 9);
        let cfg = GeneralCcConfig::default().with_seed(1234);
        let a = connected_components_general(&g, &cfg).unwrap();
        let b = connected_components_general(&g, &cfg).unwrap();
        assert_eq!(a.labeling.0, b.labeling.0);
        assert_eq!(a.cc_calls, b.cc_calls);
        assert_eq!(a.stats.rounds(), b.stats.rounds());
    }

    #[test]
    fn space_per_vertex_climbs_with_depth() {
        // Lemma 4.8's mechanism: each recursion level multiplies the
        // available space per vertex. Within every root-to-leaf chain of
        // calls, T/n must be strictly increasing.
        let g = erdos_renyi_gnm(8000, 64_000, 10);
        let mut cfg = GeneralCcConfig::default().with_seed(11).with_k(4);
        cfg.gamma = 0.75;
        cfg.space_const = 1.0;
        let res = check(&g, &cfg);
        assert_eq!(res.calls.len(), res.cc_calls);
        assert!(res.calls.iter().any(|c| c.depth > 0), "recursion never fired");
        for w in res.calls.windows(2) {
            if w[1].depth > w[0].depth {
                assert!(
                    w[1].space_per_vertex > w[0].space_per_vertex,
                    "space/vertex fell on descent: {:?} -> {:?}",
                    w[0],
                    w[1]
                );
            }
        }
        // Every chain ends in a terminal call.
        assert!(res.calls.iter().filter(|c| c.terminal).count() >= 1);
    }

    #[test]
    fn tiny_inputs() {
        check(&Graph::empty(0), &GeneralCcConfig::default());
        check(&Graph::from_edges(2, &[(0, 1)]), &GeneralCcConfig::default());
        check(&Graph::from_edges(5, &[(0, 1), (3, 4)]), &GeneralCcConfig::default());
    }
}
