//! Rooted-forest connectivity — Claim 4.12.
//!
//! The super-edges produced by `ShrinkGeneral`'s truncated BFS form a
//! forest of rooted trees (each non-root has exactly one parent of lower
//! rank). Claim 4.12 observes that this is *easier* than general forest
//! connectivity: map each tree to its Euler-tour cycle (every cycle then
//! contains exactly one arc set belonging to the marked root), shrink long
//! cycles to `O(n^ε)`, and then **each marked vertex simply traverses its
//! whole cycle** in a single adaptive round, labeling its entire component
//! — `O(1)` rounds, optimal space.
//!
//! Two implementations are provided and cross-checked:
//!
//! * [`resolve_roots_euler`] — the Claim 4.12 construction itself;
//! * [`resolve_roots_chase`] — adaptive parent-pointer chasing with path
//!   compression (the lighter substitute `ShrinkGeneral` uses by default;
//!   ranks strictly decrease along parents so chains are short).
//!
//! The `rooted_forest` ablation test demonstrates they agree on random
//! forests, and `ShrinkGeneral` can be configured to use either.

use ampc::{
    AmpcConfig, AmpcResult, DenseDht, DhtBackend, DhtStorage, FlatDht, Key, RunStats, ShardedDht,
};
use ampc_graph::euler::forest_to_cycles;
use ampc_graph::{Graph, VertexId};

use crate::cycles::{unpack, CycleState, FWD};
use crate::forest::shrink_large::shrink_large_cycles;

/// Output of a rooted-forest resolution: per-vertex root labels plus AMPC
/// accounting.
#[derive(Debug)]
pub struct RootedForestOutcome {
    /// `labels[v]` = root of `v`'s tree.
    pub labels: Vec<u64>,
    /// AMPC accounting for the resolution.
    pub stats: RunStats,
    /// Rounds used by the traversal phase.
    pub traversal_rounds: usize,
}

/// Resolves roots by the Claim 4.12 construction: Euler tour → capped
/// cycles → one whole-cycle traversal per marked (root-carrying) vertex.
///
/// `parents[v] = Some(w)` makes `w` the parent of `v`; `None` marks roots.
pub fn resolve_roots_euler(
    parents: &[Option<VertexId>],
    walk_cap: usize,
    ampc_cfg: AmpcConfig,
) -> AmpcResult<RootedForestOutcome> {
    match ampc_cfg.backend {
        DhtBackend::Flat => resolve_roots_euler_impl::<FlatDht<u64>>(parents, walk_cap, ampc_cfg),
        DhtBackend::Sharded { .. } => {
            resolve_roots_euler_impl::<ShardedDht<u64>>(parents, walk_cap, ampc_cfg)
        }
        DhtBackend::Dense { .. } => {
            resolve_roots_euler_impl::<DenseDht<u64>>(parents, walk_cap, ampc_cfg)
        }
    }
}

fn resolve_roots_euler_impl<S: DhtStorage<u64>>(
    parents: &[Option<VertexId>],
    walk_cap: usize,
    ampc_cfg: AmpcConfig,
) -> AmpcResult<RootedForestOutcome> {
    let n = parents.len();
    let edges: Vec<(VertexId, VertexId)> =
        parents.iter().enumerate().filter_map(|(v, p)| p.map(|p| (v as VertexId, p))).collect();
    let forest = Graph::from_edges(n, &edges);

    // Euler tour (Observation 3.1; cited O(1)-round primitive, charged).
    // (`from_decomposition` hints an unhinted dense backend's slab at the
    // arc count itself.)
    let decomp = forest_to_cycles(&forest);
    let mut state: CycleState<S> = CycleState::from_decomposition(&decomp, ampc_cfg);
    state.sys.stats_mut().charge_external(1, 2 * forest.m(), 2 * decomp.len().max(1));

    // Cap cycle lengths so the marked traversal fits the machine budget.
    let target = (walk_cap / 4).max(16);
    shrink_large_cycles(&mut state, target, walk_cap)?;

    // Mark phase: the cycle vertices that are copies of a *root* carry the
    // mark. After contraction some copies were absorbed; each contracted
    // group's PARENT chain ends at an alive vertex, so we mark the alive
    // representative of each root copy by composing once (charged as the
    // O(1)-round Compose it is).
    let arc_labels = state.compose_labels(16)?;
    let mut root_rep: Vec<Option<u64>> = vec![None; decomp.len()];
    for (arc, &orig) in decomp.origin.iter().enumerate() {
        if parents[orig as usize].is_none() {
            root_rep[arc_labels[arc] as usize] = Some(orig as u64);
        }
    }

    // Traversal phase (the heart of Claim 4.12): every alive vertex that
    // represents a root arc walks its entire cycle, labeling everything it
    // passes with the root id — one adaptive round.
    let rounds_before = state.sys.stats().rounds();
    let marked: Vec<(u64, u64)> =
        state.alive.iter().filter_map(|&a| root_rep[a as usize].map(|r| (a, r))).collect();
    let sweeps = state.sys.round("rf-traverse", &marked, |ctx, &(start, root)| {
        let mut covered = vec![start];
        let mut cur = unpack(*ctx.read(Key::new(FWD, start)).expect("alive")).0;
        while cur != start {
            covered.push(cur);
            cur = unpack(*ctx.read(Key::new(FWD, cur)).expect("alive")).0;
        }
        Some((root, covered))
    })?;
    let traversal_rounds = state.sys.stats().rounds() - rounds_before;

    // Project: alive cycle vertex → root, then original vertex → root via
    // its (composed) arc representative.
    let mut alive_root: std::collections::HashMap<u64, u64> = Default::default();
    for (root, covered) in sweeps.results {
        for a in covered {
            alive_root.insert(a, root);
        }
    }
    let mut labels = vec![u64::MAX; n];
    for (arc, &orig) in decomp.origin.iter().enumerate() {
        if labels[orig as usize] == u64::MAX {
            labels[orig as usize] = alive_root[&arc_labels[arc]];
        }
    }
    // Isolated vertices of the parent forest are their own roots.
    for (v, label) in labels.iter_mut().enumerate() {
        if *label == u64::MAX {
            *label = v as u64;
        }
    }
    state.sys.stats_mut().charge_external(1, n, n);

    let (_, stats) = state.sys.finish();
    Ok(RootedForestOutcome { labels, stats, traversal_rounds })
}

/// Resolves roots by adaptive pointer chasing with path compression — the
/// lightweight alternative (see module docs).
pub fn resolve_roots_chase(
    parents: &[Option<VertexId>],
    chase_cap: usize,
    ampc_cfg: AmpcConfig,
) -> AmpcResult<RootedForestOutcome> {
    match ampc_cfg.backend {
        DhtBackend::Flat => resolve_roots_chase_impl::<FlatDht<u64>>(parents, chase_cap, ampc_cfg),
        DhtBackend::Sharded { .. } => {
            resolve_roots_chase_impl::<ShardedDht<u64>>(parents, chase_cap, ampc_cfg)
        }
        DhtBackend::Dense { .. } => {
            resolve_roots_chase_impl::<DenseDht<u64>>(parents, chase_cap, ampc_cfg)
        }
    }
}

fn resolve_roots_chase_impl<S: DhtStorage<u64>>(
    parents: &[Option<VertexId>],
    chase_cap: usize,
    ampc_cfg: AmpcConfig,
) -> AmpcResult<RootedForestOutcome> {
    const SUPER: ampc::Space = 0;
    let n = parents.len();
    // Parent pointers are keyed by vertex ids 0..n — the dense slab hint.
    let backend = ampc_cfg.backend.with_capacity_hint(n.max(1));
    let ampc_cfg = ampc_cfg.with_backend(backend);
    let mut sys: ampc::AmpcSystem<u64, S> = ampc::AmpcSystem::new(
        ampc_cfg,
        parents
            .iter()
            .enumerate()
            .filter_map(|(v, p)| p.map(|p| (Key::new(SUPER, v as u64), p as u64))),
    );
    let mut labels = vec![u64::MAX; n];
    let mut unresolved: Vec<u64> = (0..n as u64).collect();
    let mut traversal_rounds = 0usize;
    while !unresolved.is_empty() {
        traversal_rounds += 1;
        assert!(traversal_rounds <= 32, "chains failed to resolve");
        let out = sys.round("rf-chase", &unresolved, |ctx, &v| {
            let mut cur = v;
            for _ in 0..chase_cap.max(2) {
                match ctx.read(Key::new(SUPER, cur)) {
                    Some(&p) => cur = p,
                    None => return Some((v, Some(cur))),
                }
            }
            ctx.write(Key::new(SUPER, v), cur);
            Some((v, None))
        })?;
        unresolved = out
            .results
            .into_iter()
            .filter_map(|(v, root)| match root {
                Some(r) => {
                    labels[v as usize] = r;
                    None
                }
                None => Some(v),
            })
            .collect();
    }
    let (_, stats) = sys.finish();
    Ok(RootedForestOutcome { labels, stats, traversal_rounds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc::rng::stream;

    fn random_parent_forest(n: usize, roots: usize, seed: u64) -> Vec<Option<VertexId>> {
        // Vertices 0..roots are roots; every other vertex parents a
        // uniformly random earlier vertex.
        let mut rng = stream(seed, 0, 0, 0);
        (0..n)
            .map(|v| if v < roots { None } else { Some(rng.next_below(v as u64) as VertexId) })
            .collect()
    }

    fn reference_roots(parents: &[Option<VertexId>]) -> Vec<u64> {
        (0..parents.len())
            .map(|mut v| {
                while let Some(p) = parents[v] {
                    v = p as usize;
                }
                v as u64
            })
            .collect()
    }

    fn cfg(seed: u64) -> AmpcConfig {
        AmpcConfig::default().with_machines(4).with_seed(seed)
    }

    #[test]
    fn euler_variant_matches_reference() {
        let parents = random_parent_forest(2000, 17, 1);
        let out = resolve_roots_euler(&parents, 1 << 12, cfg(2)).unwrap();
        assert_eq!(out.labels, reference_roots(&parents));
    }

    #[test]
    fn chase_variant_matches_reference() {
        let parents = random_parent_forest(2000, 17, 3);
        let out = resolve_roots_chase(&parents, 1 << 12, cfg(4)).unwrap();
        assert_eq!(out.labels, reference_roots(&parents));
    }

    #[test]
    fn both_variants_agree() {
        for seed in 0..3 {
            let parents = random_parent_forest(800, 9, seed);
            let a = resolve_roots_euler(&parents, 1 << 12, cfg(seed)).unwrap();
            let b = resolve_roots_chase(&parents, 1 << 12, cfg(seed)).unwrap();
            assert_eq!(a.labels, b.labels, "seed {seed}");
        }
    }

    #[test]
    fn traversal_is_single_round() {
        // Claim 4.12's punchline: the marked sweep is ONE adaptive round.
        let parents = random_parent_forest(3000, 25, 7);
        let out = resolve_roots_euler(&parents, 1 << 13, cfg(8)).unwrap();
        assert_eq!(out.traversal_rounds, 1);
    }

    #[test]
    fn deep_chain_forest() {
        // A single path of parents: depth n−1, the worst case for naive
        // chasing (the Euler variant is depth-independent; the chase
        // variant needs multiple capped rounds).
        let n = 3000;
        let parents: Vec<Option<VertexId>> =
            (0..n).map(|v| if v == 0 { None } else { Some(v as VertexId - 1) }).collect();
        let euler = resolve_roots_euler(&parents, 1 << 12, cfg(9)).unwrap();
        assert!(euler.labels.iter().all(|&l| l == 0));
        let chase = resolve_roots_chase(&parents, 64, cfg(9)).unwrap();
        assert!(chase.labels.iter().all(|&l| l == 0));
        assert!(
            chase.traversal_rounds > 1,
            "a capped chase on a deep chain must need multiple rounds"
        );
    }

    #[test]
    fn all_roots_forest() {
        let parents: Vec<Option<VertexId>> = vec![None; 100];
        let out = resolve_roots_euler(&parents, 1 << 10, cfg(10)).unwrap();
        assert_eq!(out.labels, (0..100u64).collect::<Vec<_>>());
    }

    #[test]
    fn star_forest() {
        // Every vertex parents vertex 0 directly.
        let parents: Vec<Option<VertexId>> =
            (0..500).map(|v| if v == 0 { None } else { Some(0) }).collect();
        let out = resolve_roots_euler(&parents, 1 << 12, cfg(11)).unwrap();
        assert!(out.labels.iter().all(|&l| l == 0));
    }
}
