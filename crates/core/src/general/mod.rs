//! Theorem 1.2 — general-graph connectivity in `2^O(k)` rounds with
//! `O(m + n·log^(k) n)` total space per round.

pub mod algorithm2;
pub mod bdeplus;
pub mod rooted_forest;
pub mod sampling;
pub mod shrink_general;
