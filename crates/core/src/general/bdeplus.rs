//! The Theorem 4.1 subroutine: `O(log log_{T/n} n)`-round connectivity
//! [BDE+21], used by Algorithm 2 as its base case (and by experiment E8 as
//! a baseline).
//!
//! The cited algorithm repeatedly grows per-vertex exploration budgets as
//! the graph contracts: with `T` total space and `n_i` surviving vertices,
//! each vertex can afford `t_i = T/n_i` exploration, and one
//! `ShrinkGeneral(·, t_i)` application reduces the vertex count to
//! `≈ m/t_i`, so the budget multiplies by `≈ T/m` per level — reaching
//! `√S` in `O(log log_{T/n} n)` levels when `T/n = n^Ω(1)`. This module
//! implements exactly that loop (a behavioural substitute for the cited
//! black box — see DESIGN.md), finishing locally once the remainder fits a
//! single machine.

use ampc::{AmpcConfig, AmpcResult, RunStats};
use ampc_graph::{reference_components, Graph, Labeling};

use crate::general::shrink_general::shrink_general;

/// Result of the Theorem 4.1 solver.
#[derive(Debug)]
pub struct BdePlusResult {
    /// CC-labeling of the input graph.
    pub labeling: Labeling,
    /// AMPC accounting (all levels absorbed).
    pub stats: RunStats,
    /// `ShrinkGeneral` levels executed.
    pub levels: usize,
    /// Exploration budgets used per level.
    pub budgets: Vec<usize>,
}

/// Solves connectivity with total space `t_total` and local space `s_local`
/// per the Theorem 4.1 recipe.
pub fn theorem41(
    g: &Graph,
    t_total: usize,
    s_local: usize,
    ampc_cfg: &AmpcConfig,
) -> AmpcResult<BdePlusResult> {
    let mut stats = RunStats::new();
    let mut budgets = Vec::new();
    let sqrt_s = (s_local as f64).sqrt().floor().max(2.0) as usize;

    // Work stack of (graph, mapping to previous level).
    let mut levels: Vec<Vec<u32>> = Vec::new(); // to_h mappings, innermost last
    let mut cur = g.clone();
    let mut seed_bump = 0u64;

    let base_labels: Labeling = loop {
        let n = cur.n().max(1);
        // Base case: remainder fits one machine → collect and solve locally
        // (charged one round and its footprint).
        if cur.n() + cur.m() <= s_local || cur.n() <= 64 {
            stats.charge_external(1, cur.n() + 2 * cur.m(), cur.n() + 2 * cur.m());
            break reference_components(&cur);
        }
        let t = (t_total / n).clamp(2, sqrt_s);
        budgets.push(t);
        let cfg = ampc_cfg.clone().with_seed(ampc_cfg.seed.wrapping_add(seed_bump));
        seed_bump += 1;
        let out = shrink_general(&cur, t, s_local, cfg)?;
        stats.absorb(&out.stats);
        if out.h.n() >= cur.n() {
            // No progress (t degenerated): finish locally for correctness.
            stats.charge_external(1, cur.n() + 2 * cur.m(), cur.n() + 2 * cur.m());
            break reference_components(&cur);
        }
        levels.push(out.to_h);
        cur = out.h;
        assert!(levels.len() <= 64, "Theorem 4.1 loop failed to converge");
    };

    // Compose the labelings back out through the mappings.
    let mut labels = base_labels.0;
    for to_h in levels.iter().rev() {
        labels = to_h.iter().map(|&c| labels[c as usize]).collect();
    }
    let level_count = levels.len();

    Ok(BdePlusResult { labeling: Labeling(labels), stats, levels: level_count, budgets })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::generators::{disjoint_cliques, erdos_renyi_gnm, grid2d};

    fn cfg() -> AmpcConfig {
        AmpcConfig::default().with_machines(4).with_seed(99)
    }

    fn check(g: &Graph, t_total: usize, s_local: usize) -> BdePlusResult {
        let res = theorem41(g, t_total, s_local, &cfg()).unwrap();
        assert!(
            res.labeling.same_partition(&reference_components(g)),
            "wrong labeling (T={t_total}, S={s_local})"
        );
        res
    }

    #[test]
    fn solves_er_graphs() {
        let g = erdos_renyi_gnm(2000, 6000, 1);
        check(&g, 64_000, 2_000);
    }

    #[test]
    fn solves_disconnected_graphs() {
        let g = disjoint_cliques(20, 15);
        let res = check(&g, 30_000, 1_500);
        assert_eq!(res.labeling.num_components(), 20);
    }

    #[test]
    fn solves_grids() {
        let g = grid2d(50, 50);
        check(&g, 50_000, 2_000);
    }

    #[test]
    fn more_space_means_fewer_levels() {
        // The log log_{T/n} n shape: larger T/n → larger budgets → fewer
        // ShrinkGeneral levels.
        let g = erdos_renyi_gnm(4000, 16_000, 2);
        let tight = check(&g, 3 * 16_000, 4_000);
        let roomy = check(&g, 60 * 16_000, 4_000);
        assert!(
            roomy.levels <= tight.levels,
            "more space used more levels: {} vs {}",
            roomy.levels,
            tight.levels
        );
        assert!(roomy.budgets.first().unwrap_or(&0) >= tight.budgets.first().unwrap_or(&0));
    }

    #[test]
    fn tiny_graph_short_circuits() {
        let g = erdos_renyi_gnm(50, 80, 3);
        let res = check(&g, 10_000, 10_000);
        assert_eq!(res.levels, 0);
    }
}
