//! `ShrinkGeneral` — the CC-shrinking algorithm of Lemma 4.2.
//!
//! For a parameter `1 ≤ t = O(√S)`, outputs a graph `H` with
//! `E[|V(H)|] = O(m/t)` and `|E(H)| = O(m)` in `O(1)` AMPC rounds using
//! `O(m log t)` space in expectation. Following §4.3 (which extends
//! Algorithm 1 of [BDE+20]):
//!
//! 1. transform `G` into `G3` of maximum degree 3 (vertex → cycle gadget);
//! 2. give every vertex a uniformly random rank;
//! 3. run a truncated BFS from every vertex `v`, stopping when (a) `t`
//!    vertices have been explored, (b) the component is exhausted, or
//!    (c) a vertex `w` of *lower* rank is reached — in which case a
//!    directed super-edge `w → v` is created (i.e. `v`'s parent is `w`);
//! 4. the super-edges form a forest of rooted trees and the probability of
//!    being a root is `O(1/t)`; compute a CC-labeling of that forest and
//!    return `Contract(G3, C)`.
//!
//! Claim 4.11 (the paper's improvement over [BDE+20]) says the BFS step
//! costs `O(m log t)` expected total queries — measured by experiment E6.
//!
//! Step 4's rooted-forest labeling (Claim 4.12) is implemented as adaptive
//! root-chasing with path compression: every vertex follows parent pointers
//! (ranks strictly decrease along them, so chains are short — `O(log n)` in
//! expectation) and rewrites its pointer to the furthest vertex reached if
//! the walk is capped. One round suffices unless a chain exceeds the
//! machine budget; the loop below charges exactly the rounds it uses. See
//! DESIGN.md (substitutions) for why this preserves the cited interface.

use ampc::{
    AmpcConfig, AmpcResult, AmpcSystem, DenseDht, DhtBackend, DhtStorage, DhtValue, FlatDht, Key,
    RunStats, ShardedDht, Space,
};
use ampc_graph::contract::contract;
use ampc_graph::degree3::to_degree3;
use ampc_graph::{Graph, VertexId};

/// Keyspace: adjacency lists of `G3`.
const ADJ: Space = 0;
/// Keyspace: random vertex ranks.
const RANK: Space = 1;
/// Keyspace: super-edge parent pointers.
const SUPER: Space = 2;

/// DHT value for the general-graph algorithms: either an adjacency list or
/// a scalar word.
#[derive(Clone, Debug)]
pub enum GVal {
    /// Adjacency list (charged one word of header plus one per neighbor).
    Adj(Vec<u64>),
    /// A scalar (rank or parent pointer).
    Num(u64),
}

impl GVal {
    fn num(&self) -> u64 {
        match self {
            GVal::Num(x) => *x,
            GVal::Adj(_) => panic!("expected scalar DHT value, found adjacency list"),
        }
    }
}

impl DhtValue for GVal {
    fn words(&self) -> usize {
        match self {
            GVal::Adj(v) => 1 + v.len(),
            GVal::Num(_) => 1,
        }
    }
}

/// Result of a `ShrinkGeneral` invocation.
#[derive(Debug)]
pub struct ShrinkGeneralOutcome {
    /// The shrunk graph `H` (a contraction of `G3`, hence of `G`).
    pub h: Graph,
    /// Mapping from input vertices to `H` vertices (any gadget copy works:
    /// copies of one vertex are connected in `G3`, so their classes lie in
    /// one component of `H`).
    pub to_h: Vec<VertexId>,
    /// AMPC accounting for this invocation.
    pub stats: RunStats,
    /// Queries spent in the truncated-BFS round (Claim 4.11's `O(m log t)`).
    pub bfs_queries: usize,
    /// Number of super-edge roots (`E = O(m/t)` by Lemma 3.3 of [BDE+20]).
    pub roots: usize,
    /// Vertices of the degree-3 transform.
    pub n3: usize,
    /// Rounds spent chasing super-edge parents (1 unless chains exceeded
    /// the budget).
    pub chase_rounds: usize,
}

/// Strategy for labeling the super-edge rooted forest (Claim 4.12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RootResolution {
    /// Adaptive parent chasing with path compression (default: chains
    /// follow strictly decreasing ranks and are short in practice).
    #[default]
    Chase,
    /// The full Claim 4.12 construction: Euler tour of the parent forest,
    /// capped cycles, one whole-cycle sweep per marked root. Depth
    /// independent — `O(1)` rounds even on adversarially deep forests.
    EulerTour,
}

/// Runs `ShrinkGeneral(G, t)` with the default (chasing) root resolution.
///
/// `chase_cap` bounds each adaptive walk (use the machine budget `S`).
pub fn shrink_general(
    g: &Graph,
    t: usize,
    chase_cap: usize,
    ampc_cfg: AmpcConfig,
) -> AmpcResult<ShrinkGeneralOutcome> {
    shrink_general_with(g, t, chase_cap, ampc_cfg, RootResolution::Chase)
}

/// Runs `ShrinkGeneral(G, t)` with an explicit root-resolution strategy.
///
/// Dispatches on [`AmpcConfig::backend`] once; the whole invocation then
/// runs monomorphized against the chosen storage backend.
pub fn shrink_general_with(
    g: &Graph,
    t: usize,
    chase_cap: usize,
    ampc_cfg: AmpcConfig,
    resolution: RootResolution,
) -> AmpcResult<ShrinkGeneralOutcome> {
    match ampc_cfg.backend {
        DhtBackend::Flat => {
            shrink_general_impl::<FlatDht<GVal>>(g, t, chase_cap, ampc_cfg, resolution)
        }
        DhtBackend::Sharded { .. } => {
            shrink_general_impl::<ShardedDht<GVal>>(g, t, chase_cap, ampc_cfg, resolution)
        }
        DhtBackend::Dense { .. } => {
            shrink_general_impl::<DenseDht<GVal>>(g, t, chase_cap, ampc_cfg, resolution)
        }
    }
}

fn shrink_general_impl<S: DhtStorage<GVal>>(
    g: &Graph,
    t: usize,
    chase_cap: usize,
    ampc_cfg: AmpcConfig,
    resolution: RootResolution,
) -> AmpcResult<ShrinkGeneralOutcome> {
    let t = t.max(1);
    // Step 1: degree-3 transform (host-side cited primitive; charged).
    let d3 = to_degree3(g);
    let n3 = d3.graph.n();
    let m3 = d3.graph.m();

    // Every keyspace here (ADJ/RANK/SUPER) is indexed by G3 vertex ids
    // 0..n3 — the dense backend's slab hint.
    let backend = ampc_cfg.backend.with_capacity_hint(n3.max(1));
    let ampc_cfg = ampc_cfg.with_backend(backend);
    let mut sys: AmpcSystem<GVal, S> = AmpcSystem::new(
        ampc_cfg,
        (0..n3).map(|v| {
            let adj: Vec<u64> =
                d3.graph.neighbors(v as VertexId).iter().map(|&w| w as u64).collect();
            (Key::new(ADJ, v as u64), GVal::Adj(adj))
        }),
    );
    sys.stats_mut().charge_external(1, 2 * g.m(), 2 * (g.n() + g.m()));

    let items: Vec<u64> = (0..n3 as u64).collect();

    // Step 2: random ranks.
    sys.round("sg-ranks", &items, |ctx, &v| {
        let r = ctx.rng(0, v).next_u64();
        ctx.write(Key::new(RANK, v), GVal::Num(r));
        None::<()>
    })?;

    // Step 3: truncated BFS from every vertex. Results report the created
    // super-edges so the Euler-tour resolution can build the parent forest
    // host-side (orchestration; the edges are also written to the DHT).
    let bfs_before = sys.stats().total_queries();
    let bfs = sys.round("sg-bfs", &items, |ctx, &v| {
        let my_rank = ctx.read(Key::new(RANK, v)).expect("rank").num();
        let me = (my_rank, v);
        let mut queue = std::collections::VecDeque::from([v]);
        let mut visited = std::collections::HashSet::from([v]);
        let mut explored = 0usize;
        while let Some(u) = queue.pop_front() {
            // Stop (a): the search has explored t vertices (v itself counts,
            // so t = 1 performs no expansion and every vertex is a root).
            if explored + 1 >= t {
                return None;
            }
            explored += 1;
            let adj = match ctx.read(Key::new(ADJ, u)) {
                Some(GVal::Adj(a)) => a.clone(),
                _ => panic!("missing adjacency"),
            };
            for w in adj {
                if !visited.insert(w) {
                    continue;
                }
                let rw = ctx.read(Key::new(RANK, w)).expect("rank").num();
                if (rw, w) < me {
                    // Stop (c): lower-rank vertex reached → super-edge w → v.
                    ctx.write(Key::new(SUPER, v), GVal::Num(w));
                    return Some((v, w));
                }
                queue.push_back(w);
            }
        }
        // Stop (b): component exhausted → v is a root.
        None
    })?;
    let bfs_queries = sys.stats().total_queries() - bfs_before;

    // Step 4: label the rooted super-edge forest (Claim 4.12).
    let mut labels3 = vec![u64::MAX; n3];
    let mut chase_rounds = 0usize;
    match resolution {
        RootResolution::EulerTour => {
            let mut parents: Vec<Option<VertexId>> = vec![None; n3];
            for (v, w) in bfs.results {
                parents[v as usize] = Some(w as VertexId);
            }
            let sub_cfg = sys.config().clone().with_seed(sys.config().seed ^ 0xC412);
            let out =
                crate::general::rooted_forest::resolve_roots_euler(&parents, chase_cap, sub_cfg)?;
            chase_rounds = out.traversal_rounds;
            sys.stats_mut().absorb(&out.stats);
            labels3.copy_from_slice(&out.labels);
        }
        RootResolution::Chase => {
            let mut unresolved: Vec<u64> = items.clone();
            while !unresolved.is_empty() {
                chase_rounds += 1;
                assert!(chase_rounds <= 32, "super-edge chains failed to resolve");
                let out = sys.round("sg-chase", &unresolved, |ctx, &v| {
                    let mut cur = v;
                    for _ in 0..chase_cap.max(2) {
                        match ctx.read(Key::new(SUPER, cur)) {
                            Some(p) => cur = p.num(),
                            None => return Some((v, Some(cur))), // reached a root
                        }
                    }
                    // Budget exhausted: compress the path and retry next round.
                    ctx.write(Key::new(SUPER, v), GVal::Num(cur));
                    Some((v, None))
                })?;
                unresolved = out
                    .results
                    .into_iter()
                    .filter_map(|(v, root)| match root {
                        Some(r) => {
                            labels3[v as usize] = r;
                            None
                        }
                        None => Some(v),
                    })
                    .collect();
            }
        }
    }
    let roots = {
        let mut rs: Vec<u64> = labels3.to_vec();
        rs.sort_unstable();
        rs.dedup();
        rs.len()
    };

    // Contract(G3, C) — cited O(1)-round primitive, charged.
    let contraction = contract(&d3.graph, &labels3);
    sys.stats_mut().charge_external(1, 2 * m3, 2 * (n3 + m3));

    // Map each input vertex through its first gadget copy.
    let mut to_h = vec![VertexId::MAX; g.n()];
    for (v3, &orig) in d3.origin.iter().enumerate() {
        if to_h[orig as usize] == VertexId::MAX {
            to_h[orig as usize] = contraction.class_of[v3];
        }
    }

    let (_, stats) = sys.finish();
    Ok(ShrinkGeneralOutcome {
        h: contraction.graph,
        to_h,
        stats,
        bfs_queries,
        roots,
        n3,
        chase_rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::generators::{erdos_renyi_gnm, grid2d, preferential_attachment};
    use ampc_graph::{reference_components, Labeling};

    fn cfg(seed: u64) -> AmpcConfig {
        AmpcConfig::default().with_machines(4).with_seed(seed)
    }

    /// `ShrinkGeneral` must be CC-shrinking: labeling H + mapping → correct
    /// labeling of G (Definition 2.1).
    fn assert_cc_shrinking(g: &Graph, t: usize, seed: u64) -> ShrinkGeneralOutcome {
        let out = shrink_general(g, t, 4096, cfg(seed)).unwrap();
        let h_labels = reference_components(&out.h);
        let g_labels: Vec<u64> = out.to_h.iter().map(|&c| h_labels.get(c)).collect();
        assert!(
            Labeling(g_labels).same_partition(&reference_components(g)),
            "composition broke components (t={t})"
        );
        out
    }

    #[test]
    fn shrinks_er_graph_correctly() {
        let g = erdos_renyi_gnm(500, 1200, 3);
        for t in [1, 2, 4, 16, 64] {
            assert_cc_shrinking(&g, t, t as u64);
        }
    }

    #[test]
    fn vertex_reduction_scales_with_t() {
        // Lemma 4.2: E|V(H)| = O(m/t). Doubling t should roughly halve |V(H)|.
        let g = erdos_renyi_gnm(4000, 10_000, 7);
        let v4 = assert_cc_shrinking(&g, 4, 1).h.n();
        let v32 = assert_cc_shrinking(&g, 32, 2).h.n();
        assert!(
            (v32 as f64) < (v4 as f64) * 0.4,
            "t=32 gave {v32} vertices vs t=4 giving {v4}: no m/t scaling"
        );
    }

    #[test]
    fn root_probability_near_one_over_t() {
        let g = erdos_renyi_gnm(3000, 9000, 11);
        let t = 16usize;
        let out = assert_cc_shrinking(&g, t, 5);
        let rate = out.roots as f64 / out.n3 as f64;
        // Lemma 3.3 of [BDE+20]: P(root) = O(1/t). Allow a small constant.
        assert!(rate < 4.0 / t as f64, "root rate {rate} vs 1/t = {}", 1.0 / t as f64);
    }

    #[test]
    fn bfs_queries_are_m_log_t_shaped() {
        // Claim 4.11: expected BFS space O(m log t) — i.e. queries per G3
        // vertex should grow like log t, not like t.
        let g = erdos_renyi_gnm(4000, 8000, 13);
        let q4 = assert_cc_shrinking(&g, 4, 1).bfs_queries as f64;
        let q64 = assert_cc_shrinking(&g, 64, 1).bfs_queries as f64;
        // t grew 16×; log t grew 3×; queries must stay well below 16×.
        assert!(q64 < 6.0 * q4, "BFS queries {q4} → {q64}: grows like t, not log t");
    }

    #[test]
    fn disconnected_graph_components_survive() {
        let g = ampc_graph::generators::disjoint_cliques(10, 12);
        let out = assert_cc_shrinking(&g, 8, 9);
        assert!(reference_components(&out.h).num_components() == 10);
    }

    #[test]
    fn grid_and_power_law_workloads() {
        assert_cc_shrinking(&grid2d(30, 30), 8, 1);
        assert_cc_shrinking(&preferential_attachment(800, 3, 2), 8, 2);
    }

    #[test]
    fn t_equals_one_still_valid() {
        // Degenerate t: every vertex is a root; H ≅ G3 contract-by-identity.
        let g = erdos_renyi_gnm(200, 400, 17);
        let out = assert_cc_shrinking(&g, 1, 3);
        assert_eq!(out.h.n(), out.n3);
    }

    #[test]
    fn edge_bound_preserved() {
        // |E(H)| = O(m): contraction never adds edges.
        let g = erdos_renyi_gnm(2000, 6000, 19);
        let out = assert_cc_shrinking(&g, 16, 4);
        assert!(out.h.m() <= g.m() + out.n3); // gadget cycle edges also shrink
    }

    #[test]
    fn single_round_chase_in_practice() {
        let g = erdos_renyi_gnm(3000, 6000, 23);
        let out = assert_cc_shrinking(&g, 16, 6);
        assert_eq!(out.chase_rounds, 1, "decreasing-rank chains should resolve in one round");
    }

    #[test]
    fn euler_tour_resolution_matches_chase() {
        // The Claim 4.12 construction and the chasing substitute must pick
        // exactly the same roots (they label the same parent forest), hence
        // produce identical shrunk graphs.
        let g = erdos_renyi_gnm(1500, 4500, 29);
        for t in [4usize, 16] {
            let chase = shrink_general_with(&g, t, 4096, cfg(31), RootResolution::Chase).unwrap();
            let euler =
                shrink_general_with(&g, t, 4096, cfg(31), RootResolution::EulerTour).unwrap();
            assert_eq!(chase.h.n(), euler.h.n(), "t={t}");
            assert_eq!(chase.to_h, euler.to_h, "t={t}");
            // And the Euler variant is CC-shrinking in its own right.
            let h_labels = reference_components(&euler.h);
            let composed = Labeling(euler.to_h.iter().map(|&c| h_labels.get(c)).collect());
            assert!(composed.same_partition(&reference_components(&g)));
        }
    }
}
