//! Uniform edge sampling and the KKT bound (Theorem 4.3 / Corollary 4.4).
//!
//! Theorem 4.3 (KKT95): if `H` is obtained from `G` by keeping each edge
//! independently with probability `p`, the expected number of edges of `G`
//! connecting distinct components of `H` is at most `n/p`.
//!
//! Corollary 4.4: with `p = √(n/m)` (so that `|E(H)| ≈ mp = √(mn)` too),
//! both `H` and `Contract(G, C_H)` have `O(√(mn))` edges in expectation —
//! the balance Algorithm 2 exploits to halve the exponent of the average
//! degree at each level of recursion.

use ampc::rng::stream;
use ampc_graph::{reference_components, Graph};

/// Keeps each edge of `g` independently with probability `p`
/// (deterministically, from `seed`). The vertex set is unchanged.
pub fn sample_edges(g: &Graph, p: f64, seed: u64) -> Graph {
    let edges: Vec<(u32, u32)> = g
        .edges()
        .filter(|&(u, v)| {
            let mut r = stream(seed, 0, u as u64, v as u64);
            r.bernoulli(p)
        })
        .collect();
    Graph::from_edges(g.n(), &edges)
}

/// Number of edges of `g` whose endpoints lie in different components of
/// the subgraph `h` (the quantity Theorem 4.3 bounds by `n/p`).
pub fn crossing_edges(g: &Graph, h: &Graph) -> usize {
    assert_eq!(g.n(), h.n());
    let labels = reference_components(h);
    g.edges().filter(|&(u, v)| labels.get(u) != labels.get(v)).count()
}

/// The sampling probability Algorithm 2 uses: `p = 1/d` with `d = √(m/n)`,
/// clamped to `(0, 1]`.
pub fn algorithm2_sample_probability(n: usize, m: usize) -> f64 {
    if m == 0 {
        return 1.0;
    }
    let d = (m as f64 / n.max(1) as f64).sqrt().max(1.0);
    (1.0 / d).clamp(f64::MIN_POSITIVE, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::generators::erdos_renyi_gnm;

    #[test]
    fn sampling_keeps_roughly_pm_edges() {
        let g = erdos_renyi_gnm(2000, 20_000, 1);
        let h = sample_edges(&g, 0.25, 7);
        let kept = h.m() as f64;
        assert!((kept - 5000.0).abs() < 600.0, "kept {kept} of 20000 at p=0.25");
        assert_eq!(h.n(), g.n());
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let g = erdos_renyi_gnm(500, 3000, 2);
        assert_eq!(sample_edges(&g, 0.5, 9), sample_edges(&g, 0.5, 9));
        assert_ne!(sample_edges(&g, 0.5, 9), sample_edges(&g, 0.5, 10));
    }

    #[test]
    fn kkt_bound_holds_on_random_graphs() {
        // Theorem 4.3: E[crossing] ≤ n/p. Check the empirical value with
        // slack over a few seeds.
        let n = 3000;
        let g = erdos_renyi_gnm(n, 30_000, 3);
        let p = 0.2;
        for seed in 0..3 {
            let h = sample_edges(&g, p, seed);
            let crossing = crossing_edges(&g, &h);
            let bound = (n as f64 / p) * 2.0; // 2× slack over expectation
            assert!((crossing as f64) < bound, "crossing {crossing} vs bound {bound}");
        }
    }

    #[test]
    fn corollary_44_balance() {
        // With p = √(n/m): both |E(H)| and crossing edges are O(√(mn)).
        let n = 2000;
        let m = 32_000;
        let g = erdos_renyi_gnm(n, m, 4);
        let p = algorithm2_sample_probability(n, m);
        let h = sample_edges(&g, p, 11);
        let sqrt_mn = ((m as f64) * (n as f64)).sqrt();
        assert!((h.m() as f64) < 3.0 * sqrt_mn, "|E(H)| = {} vs √(mn) = {sqrt_mn}", h.m());
        let crossing = crossing_edges(&g, &h) as f64;
        assert!(crossing < 6.0 * sqrt_mn, "crossing {crossing} vs √(mn) = {sqrt_mn}");
    }

    #[test]
    fn probability_clamps() {
        assert_eq!(algorithm2_sample_probability(100, 0), 1.0);
        assert_eq!(algorithm2_sample_probability(100, 50), 1.0); // m < n → d = 1
        let p = algorithm2_sample_probability(100, 10_000);
        assert!((p - 0.1).abs() < 1e-9);
    }

    #[test]
    fn p_one_is_identity() {
        let g = erdos_renyi_gnm(300, 1000, 5);
        assert_eq!(sample_edges(&g, 1.0, 1), g);
        assert_eq!(crossing_edges(&g, &g), 0);
    }
}
