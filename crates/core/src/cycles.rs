//! DHT-resident state for vertex-disjoint cycle collections.
//!
//! All of §3's algorithms (`ShrinkLargeCycles`, `ShrinkSmallCycles`,
//! `Standard-Cycle-CC`) operate on a collection of disjoint cycles. The
//! cycle structure lives in the shared DHT as doubly linked successor /
//! predecessor pointers so that machines traverse it with genuine adaptive
//! reads:
//!
//! | keyspace | key | value |
//! |---|---|---|
//! | [`FWD`] | cycle vertex | packed `(successor, rank, mark)` |
//! | [`BWD`] | cycle vertex | packed `(predecessor, rank, mark)` |
//! | [`STAMP`] | cycle vertex | max rank stamped by traversals (merge-max) |
//! | [`PARENT`] | contracted vertex | the vertex it was contracted into |
//!
//! Rank and a sampling mark are packed into the pointer word so that one
//! DHT read per hop suffices, matching the paper's query accounting.
//!
//! The driver (host) keeps the list of *alive* vertices — pure
//! orchestration data; every data access that the paper counts goes through
//! the DHT.

use ampc::{AmpcConfig, AmpcSystem, DhtStorage, FlatDht, Key, RunStats, Space};
use ampc_graph::euler::CycleDecomposition;

/// Keyspace: forward pointer + rank + mark.
pub const FWD: Space = 0;
/// Keyspace: backward pointer + rank + mark.
pub const BWD: Space = 1;
/// Keyspace: rank stamps (merge-max).
pub const STAMP: Space = 2;
/// Keyspace: contraction parent pointers (the `Compose` mapping).
pub const PARENT: Space = 3;

/// Packs a pointer word: 47-bit vertex id, 16-bit rank, 1-bit mark.
#[inline]
pub fn pack(id: u64, rank: u16, mark: bool) -> u64 {
    debug_assert!(id < (1 << 47));
    (id << 17) | ((rank as u64) << 1) | (mark as u64)
}

/// Inverse of [`pack`].
#[inline]
pub fn unpack(word: u64) -> (u64, u16, bool) {
    (word >> 17, ((word >> 1) & 0xFFFF) as u16, word & 1 == 1)
}

/// A cycle collection living in an [`AmpcSystem`], plus the host-side alive
/// list.
///
/// Generic over the DHT storage backend `S` (default: the flat reference
/// backend); the forest algorithms are generic over the same parameter and
/// the pipeline dispatches once on [`ampc::DhtBackend`].
pub struct CycleState<S = FlatDht<u64>> {
    /// The AMPC deployment holding the cycle pointers.
    pub sys: AmpcSystem<u64, S>,
    /// Cycle vertices not yet contracted away (orchestration data).
    pub alive: Vec<u64>,
    /// Number of cycle vertices initially.
    pub n0: usize,
    /// Finished components: vertices that became cycle representatives.
    pub roots: Vec<u64>,
}

impl<S: DhtStorage<u64>> CycleState<S> {
    /// Loads a [`CycleDecomposition`] into a fresh AMPC system. Loading the
    /// input is free (the model assumes the input resides in the DHT).
    pub fn from_decomposition(decomp: &CycleDecomposition, config: AmpcConfig) -> Self {
        let pred = decomp.predecessors();
        let n0 = decomp.len();
        // Every cycle keyspace is indexed by arc ids 0..n0 — size an
        // unhinted dense backend's slab accordingly.
        let backend = config.backend.with_capacity_hint(n0.max(1));
        let config = config.with_backend(backend);
        let init = (0..n0).flat_map(|a| {
            [
                (Key::new(FWD, a as u64), pack(decomp.succ[a] as u64, 0, false)),
                (Key::new(BWD, a as u64), pack(pred[a] as u64, 0, false)),
            ]
        });
        let sys = AmpcSystem::new(config, init);
        CycleState { sys, alive: (0..n0 as u64).collect(), n0, roots: Vec::new() }
    }

    /// Builds a state directly from an explicit successor permutation
    /// (used by unit tests and by the rooted-forest reduction).
    pub fn from_successors(succ: &[u64], config: AmpcConfig) -> Self {
        let n0 = succ.len();
        let backend = config.backend.with_capacity_hint(n0.max(1));
        let config = config.with_backend(backend);
        let mut pred = vec![0u64; n0];
        for (a, &s) in succ.iter().enumerate() {
            pred[s as usize] = a as u64;
        }
        let init = (0..n0).flat_map(|a| {
            [
                (Key::new(FWD, a as u64), pack(succ[a], 0, false)),
                (Key::new(BWD, a as u64), pack(pred[a], 0, false)),
            ]
        });
        let sys = AmpcSystem::new(config, init);
        // Length-1 cycles are already finished components.
        let mut alive = Vec::with_capacity(n0);
        let mut roots = Vec::new();
        for (a, &s) in succ.iter().enumerate() {
            if s == a as u64 {
                roots.push(a as u64);
            } else {
                alive.push(a as u64);
            }
        }
        CycleState { sys, alive, n0, roots }
    }

    /// Removes `dead` vertices from the alive list and records `done` ones
    /// as finished roots.
    pub fn retire(&mut self, dead: &std::collections::HashSet<u64>, done: &[u64]) {
        self.alive.retain(|v| !dead.contains(v));
        self.roots.extend_from_slice(done);
    }

    /// Resolves the final component label of every original cycle vertex by
    /// walking `PARENT` chains adaptively — the `Compose` of Definition 2.1.
    ///
    /// Chains have length at most the number of contraction steps executed,
    /// which is `O(log* n)` — far below any machine's budget — so one AMPC
    /// round suffices.
    pub fn compose_labels(&mut self, max_chain: usize) -> ampc::AmpcResult<Vec<u64>> {
        let items: Vec<u64> = (0..self.n0 as u64).collect();
        let out = self.sys.round("compose", &items, |ctx, &x| {
            let mut cur = x;
            for _ in 0..=max_chain {
                match ctx.read(Key::new(PARENT, cur)) {
                    Some(&p) => cur = p,
                    None => return Some(cur),
                }
            }
            panic!("PARENT chain exceeded {} hops — contraction bookkeeping bug", max_chain);
        })?;
        Ok(out.results)
    }

    /// Accumulated run statistics.
    pub fn stats(&self) -> &RunStats {
        self.sys.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for (id, rank, mark) in
            [(0u64, 0u16, false), (5, 9, true), ((1 << 47) - 1, u16::MAX, false)]
        {
            assert_eq!(unpack(pack(id, rank, mark)), (id, rank, mark));
        }
    }

    #[test]
    fn from_successors_initializes_pointers() {
        // One 3-cycle (0→1→2→0) and one singleton (3).
        let mut st: CycleState =
            CycleState::from_successors(&[1, 2, 0, 3], AmpcConfig::default().with_machines(2));
        assert_eq!(st.alive, vec![0, 1, 2]);
        assert_eq!(st.roots, vec![3]);
        let (succ, _, _) = unpack(*st.sys.snapshot().get(Key::new(FWD, 1)).unwrap());
        assert_eq!(succ, 2);
        let (pred, _, _) = unpack(*st.sys.snapshot().get(Key::new(BWD, 0)).unwrap());
        assert_eq!(pred, 2);
        // Compose with no contractions: everyone is their own root.
        let labels = st.compose_labels(4).unwrap();
        assert_eq!(labels, vec![0, 1, 2, 3]);
    }

    #[test]
    fn compose_follows_parent_chains() {
        let mut st: CycleState = CycleState::from_successors(&[1, 2, 0, 3], AmpcConfig::default());
        st.sys.host_update(|dht| {
            dht.insert(Key::new(PARENT, 1), 0);
            dht.insert(Key::new(PARENT, 2), 1); // chain 2 → 1 → 0
        });
        let labels = st.compose_labels(4).unwrap();
        assert_eq!(labels, vec![0, 0, 0, 3]);
    }

    #[test]
    fn retire_updates_alive_and_roots() {
        let mut st: CycleState = CycleState::from_successors(&[1, 0, 3, 2], AmpcConfig::default());
        let dead: std::collections::HashSet<u64> = [1u64, 2, 3].into_iter().collect();
        st.retire(&dead, &[0]);
        assert_eq!(st.alive, vec![0]);
        assert_eq!(st.roots, vec![0]);
    }
}
