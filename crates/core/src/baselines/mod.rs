//! Baseline algorithms for the comparison experiments (E8).

pub mod mpc_label_prop;
