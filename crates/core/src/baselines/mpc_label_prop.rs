//! Classic MPC baseline: synchronous min-label propagation.
//!
//! In the (non-adaptive) MPC model a machine only sees the messages it
//! received, so component labels spread one hop per round and connectivity
//! needs `Θ(D)` rounds (or `Θ(log D)` with graph exponentiation, at a
//! super-linear space cost — exactly the trade-off the paper's introduction
//! discusses: under the 1-vs-2-cycles conjecture `Ω(log D)` is optimal for
//! MPC, while the AMPC DHT removes the dependence on `D` entirely).
//!
//! Both variants are provided for experiment E8:
//! * [`min_label_propagation`] — one hop per round, linear total space;
//! * [`exponentiated_propagation`] — pointer doubling over current labels,
//!   `O(log n)` rounds, but the label-graph densification mirrors why MPC
//!   round compression needs `ω(n)` space.

use ampc_graph::{Graph, Labeling, VertexId};

/// Result of an MPC baseline run.
#[derive(Debug, Clone)]
pub struct MpcRunResult {
    /// The computed CC-labeling.
    pub labeling: Labeling,
    /// Synchronous MPC rounds used.
    pub rounds: usize,
    /// Total messages sent (words) across all rounds — the MPC analogue of
    /// total communication.
    pub total_messages: usize,
}

/// Min-label propagation: every vertex repeatedly adopts the minimum label
/// in its closed neighborhood until fixpoint. `Θ(D)` rounds, `O(m)` words
/// per round.
pub fn min_label_propagation(g: &Graph) -> MpcRunResult {
    let n = g.n();
    let mut labels: Vec<u64> = (0..n as u64).collect();
    let mut rounds = 0usize;
    let mut total_messages = 0usize;
    loop {
        let mut next = labels.clone();
        let mut changed = false;
        for v in 0..n as VertexId {
            for &w in g.neighbors(v) {
                total_messages += 1;
                if labels[w as usize] < next[v as usize] {
                    next[v as usize] = labels[w as usize];
                    changed = true;
                }
            }
        }
        rounds += 1;
        labels = next;
        if !changed {
            break;
        }
        assert!(rounds <= 2 * n + 2, "propagation failed to converge");
    }
    MpcRunResult { labeling: Labeling(labels), rounds, total_messages }
}

/// Label propagation with pointer doubling: each round every vertex adopts
/// `min(label[v], label[label[v]], min over neighbors' labels)`. Converges
/// in `O(log n)` rounds; message volume per round includes the label
/// indirections.
pub fn exponentiated_propagation(g: &Graph) -> MpcRunResult {
    let n = g.n();
    let mut labels: Vec<u64> = (0..n as u64).collect();
    let mut rounds = 0usize;
    let mut total_messages = 0usize;
    loop {
        let mut next = labels.clone();
        let mut changed = false;
        for v in 0..n {
            // Neighbor minimum (one message per edge endpoint)…
            for &w in g.neighbors(v as VertexId) {
                total_messages += 1;
                next[v] = next[v].min(labels[w as usize]);
            }
            // …then hook to the label's label (pointer doubling).
            total_messages += 1;
            let ll = labels[labels[v] as usize];
            next[v] = next[v].min(ll);
        }
        if next != labels {
            changed = true;
        }
        labels = next;
        rounds += 1;
        if !changed {
            break;
        }
        assert!(rounds <= 4 * (n.max(2) as f64).log2() as usize + 16, "doubling failed");
    }
    MpcRunResult { labeling: Labeling(labels), rounds, total_messages }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::generators::{erdos_renyi_gnm, grid2d, path};
    use ampc_graph::reference_components;

    #[test]
    fn both_variants_correct() {
        for g in [erdos_renyi_gnm(500, 1200, 1), grid2d(20, 25), path(300)] {
            let truth = reference_components(&g);
            assert!(min_label_propagation(&g).labeling.same_partition(&truth));
            assert!(exponentiated_propagation(&g).labeling.same_partition(&truth));
        }
    }

    #[test]
    fn propagation_pays_diameter_rounds() {
        // A path of length L needs ≈ L rounds — the MPC pain point.
        let g = path(400);
        let res = min_label_propagation(&g);
        assert!(res.rounds >= 399, "only {} rounds on a 400-path", res.rounds);
    }

    #[test]
    fn doubling_pays_log_rounds() {
        let g = path(4096);
        let res = exponentiated_propagation(&g);
        assert!(res.rounds <= 40, "doubling took {} rounds on a 4096-path", res.rounds);
        assert!(res.rounds >= 10);
    }

    #[test]
    fn isolated_vertices_keep_own_labels() {
        let g = Graph::empty(10);
        let res = min_label_propagation(&g);
        assert_eq!(res.labeling.num_components(), 10);
        assert_eq!(res.rounds, 1);
    }
}
