//! Unified pipeline dispatch: one spec, one entry point, both algorithms.
//!
//! Before this module, every consumer of the pipelines — the `ampc-cc`
//! binary, the benches, the serving layer — re-implemented the same grid:
//! match on forest vs. general, build the matching config, thread the
//! backend/seed/machine plumbing through, and adapt the two result types.
//! [`PipelineSpec`] collapses that grid into a single value (algorithm,
//! backend, limits, seed, machines) and [`Pipeline::execute`] into a single
//! call returning the unified [`PipelineRun`].
//!
//! Dispatch stays fully monomorphized: [`PipelineSpec::resolve`] picks the
//! concrete pipeline once (consulting the input for [`Algorithm::Auto`]),
//! and the per-backend match arms inside
//! [`connected_components_forest`]/[`connected_components_general`] remain
//! the only dispatch points — no `dyn` anywhere on the hot path.

use ampc::{AmpcResult, DhtBackend, RunStats};
use ampc_graph::{Graph, Labeling};

use crate::forest::pipeline::{connected_components_forest, ForestCcConfig};
use crate::general::algorithm2::{connected_components_general, GeneralCcConfig};

/// Which of the paper's algorithms a [`PipelineSpec`] requests.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// Pick Algorithm 1 for forests, Algorithm 2 otherwise (the default).
    #[default]
    Auto,
    /// Algorithm 1 (Theorem 1.1) — requires an acyclic input.
    Forest,
    /// Algorithm 2 (Theorem 1.2) — any graph.
    General,
}

impl Algorithm {
    /// Parses a spec string: `auto`, `forest`, or `general`.
    pub fn parse(s: &str) -> Result<Algorithm, String> {
        match s {
            "auto" => Ok(Algorithm::Auto),
            "forest" => Ok(Algorithm::Forest),
            "general" => Ok(Algorithm::General),
            other => Err(format!("unknown algorithm {other:?} (expected auto|forest|general)")),
        }
    }

    /// Short reporting name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Auto => "auto",
            Algorithm::Forest => "forest",
            Algorithm::General => "general",
        }
    }
}

/// The algorithm a run actually used once `Auto` has been resolved.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ResolvedAlgorithm {
    /// Algorithm 1 (forest pipeline).
    Forest,
    /// Algorithm 2 (general-graph recursion).
    General,
}

impl ResolvedAlgorithm {
    /// The paper's algorithm number (1 = forest, 2 = general).
    pub fn number(&self) -> u8 {
        match self {
            ResolvedAlgorithm::Forest => 1,
            ResolvedAlgorithm::General => 2,
        }
    }

    /// Short reporting name.
    pub fn name(&self) -> &'static str {
        match self {
            ResolvedAlgorithm::Forest => "forest",
            ResolvedAlgorithm::General => "general",
        }
    }
}

/// Everything needed to run a connectivity pipeline, in one value.
///
/// The spec is plain `Clone + Send` data, so it can be stored in a serving
/// handle, shipped to a background rebuild thread, or embedded in a bench
/// table row. Two runs of the same spec on the same graph are
/// byte-identical (the pipelines are deterministic given the seed).
#[derive(Clone, Debug, PartialEq)]
pub struct PipelineSpec {
    /// Algorithm selection (resolved against the input when `Auto`).
    pub algorithm: Algorithm,
    /// DHT storage backend for every system the pipeline constructs.
    pub backend: DhtBackend,
    /// The space parameter `k` of Theorem 1.2 (ignored by Algorithm 1).
    pub k: u32,
    /// Run seed.
    pub seed: u64,
    /// Simulated machine count.
    pub machines: usize,
    /// Attach space limits and record violations (audit mode). Currently
    /// honored by the forest pipeline; the general recursion's audit mode
    /// is a ROADMAP item.
    pub audit_limits: bool,
}

impl Default for PipelineSpec {
    fn default() -> Self {
        PipelineSpec {
            algorithm: Algorithm::Auto,
            backend: DhtBackend::Flat,
            k: 2,
            seed: 0xCC,
            machines: 8,
            audit_limits: false,
        }
    }
}

impl PipelineSpec {
    /// Sets the algorithm.
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Selects the DHT storage backend.
    pub fn with_backend(mut self, backend: DhtBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the space parameter `k` (Algorithm 2 only).
    pub fn with_k(mut self, k: u32) -> Self {
        self.k = k;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the simulated machine count.
    pub fn with_machines(mut self, machines: usize) -> Self {
        self.machines = machines;
        self
    }

    /// Enables audit-mode space limits.
    pub fn with_audit_limits(mut self, audit: bool) -> Self {
        self.audit_limits = audit;
        self
    }

    /// The forest config this spec denotes.
    pub fn forest_config(&self) -> ForestCcConfig {
        let mut cfg = ForestCcConfig::default().with_seed(self.seed).with_backend(self.backend);
        cfg.machines = self.machines;
        cfg.audit_limits = self.audit_limits;
        cfg
    }

    /// The general-graph config this spec denotes.
    pub fn general_config(&self) -> GeneralCcConfig {
        let mut cfg = GeneralCcConfig::default()
            .with_seed(self.seed)
            .with_k(self.k)
            .with_backend(self.backend);
        cfg.machines = self.machines;
        cfg
    }

    /// Resolves `Auto` against `g` and returns the concrete pipeline.
    /// Resolution consults only `g.is_forest()`; it never runs anything.
    pub fn resolve(&self, g: &Graph) -> ResolvedPipeline {
        let use_forest = match self.algorithm {
            Algorithm::Forest => true,
            Algorithm::General => false,
            Algorithm::Auto => g.is_forest(),
        };
        if use_forest {
            ResolvedPipeline::Forest(ForestPipeline { cfg: self.forest_config() })
        } else {
            ResolvedPipeline::General(GeneralPipeline { cfg: self.general_config() })
        }
    }

    /// Resolves and executes in one call — the everyday entry point.
    pub fn run(&self, g: &Graph) -> AmpcResult<PipelineRun> {
        self.resolve(g).execute(g)
    }
}

/// Unified result of any pipeline run: the product every consumer of the
/// old per-algorithm result types actually used.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// The computed CC-labeling of the input graph.
    pub labeling: Labeling,
    /// Aggregated AMPC cost accounting.
    pub stats: RunStats,
    /// Which algorithm produced it.
    pub algorithm: ResolvedAlgorithm,
}

/// A runnable connectivity pipeline: the seam the serving layer and the
/// benches program against instead of the concrete entry points.
pub trait Pipeline {
    /// The algorithm this pipeline executes.
    fn algorithm(&self) -> ResolvedAlgorithm;

    /// Human-readable description for run logs (algorithm number, theorem,
    /// parameters).
    fn describe(&self) -> String;

    /// Runs the pipeline on `g`.
    fn execute(&self, g: &Graph) -> AmpcResult<PipelineRun>;
}

/// Algorithm 1 as a [`Pipeline`].
#[derive(Debug, Clone)]
pub struct ForestPipeline {
    /// The full forest configuration (exposed so experiments can tweak
    /// knobs the spec doesn't model, e.g. the trade-off `B₀`).
    pub cfg: ForestCcConfig,
}

impl Pipeline for ForestPipeline {
    fn algorithm(&self) -> ResolvedAlgorithm {
        ResolvedAlgorithm::Forest
    }

    fn describe(&self) -> String {
        "1 (forest, Theorem 1.1)".to_string()
    }

    fn execute(&self, g: &Graph) -> AmpcResult<PipelineRun> {
        let r = connected_components_forest(g, &self.cfg)?;
        Ok(PipelineRun {
            labeling: r.labeling,
            stats: r.stats,
            algorithm: ResolvedAlgorithm::Forest,
        })
    }
}

/// Algorithm 2 as a [`Pipeline`].
#[derive(Debug, Clone)]
pub struct GeneralPipeline {
    /// The full general-graph configuration.
    pub cfg: GeneralCcConfig,
}

impl Pipeline for GeneralPipeline {
    fn algorithm(&self) -> ResolvedAlgorithm {
        ResolvedAlgorithm::General
    }

    fn describe(&self) -> String {
        format!("2 (general, Theorem 1.2, k = {})", self.cfg.k)
    }

    fn execute(&self, g: &Graph) -> AmpcResult<PipelineRun> {
        let r = connected_components_general(g, &self.cfg)?;
        Ok(PipelineRun {
            labeling: r.labeling,
            stats: r.stats,
            algorithm: ResolvedAlgorithm::General,
        })
    }
}

/// A [`PipelineSpec`] resolved to its concrete pipeline. Enum (not `dyn`)
/// so `execute` dispatches statically into the monomorphized entry points.
#[derive(Debug, Clone)]
pub enum ResolvedPipeline {
    /// Algorithm 1.
    Forest(ForestPipeline),
    /// Algorithm 2.
    General(GeneralPipeline),
}

impl Pipeline for ResolvedPipeline {
    fn algorithm(&self) -> ResolvedAlgorithm {
        match self {
            ResolvedPipeline::Forest(p) => p.algorithm(),
            ResolvedPipeline::General(p) => p.algorithm(),
        }
    }

    fn describe(&self) -> String {
        match self {
            ResolvedPipeline::Forest(p) => p.describe(),
            ResolvedPipeline::General(p) => p.describe(),
        }
    }

    fn execute(&self, g: &Graph) -> AmpcResult<PipelineRun> {
        match self {
            ResolvedPipeline::Forest(p) => p.execute(g),
            ResolvedPipeline::General(p) => p.execute(g),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::generators::{erdos_renyi_gnm, random_forest};
    use ampc_graph::reference_components;

    #[test]
    fn auto_resolves_by_input_shape() {
        let forest = random_forest(200, 4, 1);
        let cyclic = erdos_renyi_gnm(100, 300, 2);
        let spec = PipelineSpec::default();
        assert_eq!(spec.resolve(&forest).algorithm(), ResolvedAlgorithm::Forest);
        assert_eq!(spec.resolve(&cyclic).algorithm(), ResolvedAlgorithm::General);
        // Explicit selection overrides the shape (general runs on forests).
        let spec = spec.with_algorithm(Algorithm::General);
        assert_eq!(spec.resolve(&forest).algorithm(), ResolvedAlgorithm::General);
    }

    #[test]
    fn spec_run_matches_direct_config_run() {
        // The spec is sugar, not a different pipeline: its runs must be
        // byte-identical to direct calls with the equivalent configs.
        let forest = random_forest(800, 7, 3);
        let spec = PipelineSpec::default().with_seed(99).with_backend(DhtBackend::dense());
        let via_spec = spec.run(&forest).unwrap();
        let direct = connected_components_forest(&forest, &spec.forest_config()).unwrap();
        assert_eq!(via_spec.labeling.0, direct.labeling.0);
        assert_eq!(via_spec.stats.rounds(), direct.stats.rounds());
        assert_eq!(via_spec.algorithm.number(), 1);

        let cyclic = erdos_renyi_gnm(300, 900, 4);
        let spec = PipelineSpec::default().with_seed(7).with_k(3);
        let via_spec = spec.run(&cyclic).unwrap();
        let direct = connected_components_general(&cyclic, &spec.general_config()).unwrap();
        assert_eq!(via_spec.labeling.0, direct.labeling.0);
        assert_eq!(via_spec.stats.total_queries(), direct.stats.total_queries());
        assert_eq!(via_spec.algorithm.number(), 2);
    }

    #[test]
    fn spec_runs_are_correct_and_deterministic() {
        let g = erdos_renyi_gnm(500, 1200, 5);
        let spec = PipelineSpec::default().with_seed(11).with_machines(4);
        let a = spec.run(&g).unwrap();
        let b = spec.run(&g).unwrap();
        assert!(a.labeling.same_partition(&reference_components(&g)));
        assert_eq!(a.labeling.0, b.labeling.0);
        assert_eq!(a.stats.rounds(), b.stats.rounds());
    }

    #[test]
    fn describe_names_the_algorithm() {
        let g = random_forest(50, 2, 1);
        let spec = PipelineSpec::default();
        assert!(spec.resolve(&g).describe().starts_with("1 (forest"));
        let spec = spec.with_algorithm(Algorithm::General).with_k(5);
        assert_eq!(spec.resolve(&g).describe(), "2 (general, Theorem 1.2, k = 5)");
    }

    #[test]
    fn algorithm_parse_grammar() {
        assert_eq!(Algorithm::parse("auto").unwrap(), Algorithm::Auto);
        assert_eq!(Algorithm::parse("forest").unwrap(), Algorithm::Forest);
        assert_eq!(Algorithm::parse("general").unwrap(), Algorithm::General);
        assert!(Algorithm::parse("fastest").is_err());
        assert_eq!(Algorithm::Auto.name(), "auto");
        assert_eq!(ResolvedAlgorithm::Forest.name(), "forest");
        assert_eq!(ResolvedAlgorithm::General.number(), 2);
    }

    #[test]
    fn audit_limits_thread_through() {
        let spec = PipelineSpec::default().with_audit_limits(true);
        assert!(spec.forest_config().audit_limits);
        let g = random_forest(500, 3, 9);
        // Audit mode records rather than errors; the run must still verify.
        let run = spec.run(&g).unwrap();
        assert!(run.labeling.same_partition(&reference_components(&g)));
    }
}
