//! # `ampc-cc` — AMPC connected components in optimal space
//!
//! Implementation of the algorithms of *"Adaptive Massively Parallel
//! Connectivity in Optimal Space"* (Latypov, Łącki, Maus, Uitto — SPAA 2023)
//! on top of the [`ampc`] runtime simulator:
//!
//! * [`forest`] — **Theorem 1.1**: connected components of an `n`-vertex
//!   forest in `O(log* n)` AMPC rounds w.h.p. with optimal total space
//!   (Algorithm 1: Euler-tour reduction to cycles, `ShrinkLargeCycles`,
//!   iterated `ShrinkSmallCycles` with doubling budget `B`, and the
//!   `Standard-Cycle-CC` finisher), including the `O(k)` rounds ↔
//!   `O(n log^(k) n)` space trade-off.
//! * [`general`] — **Theorem 1.2**: connected components of a general graph
//!   in `2^O(k)` rounds with `O(m + n log^(k) n)` total space per round in
//!   expectation (Algorithm 2: KKT edge sampling + `ShrinkGeneral` +
//!   recursion), with the `ShrinkGeneral` CC-shrinker of Lemma 4.2.
//! * [`baselines`] — comparison algorithms: the BDE+21-style
//!   `O(log log_{T/n} n)` solver (Theorem 4.1, also used as a subroutine)
//!   and a classic MPC min-label-propagation round counter.
//! * [`pipeline`] — unified dispatch: a [`PipelineSpec`] (algorithm,
//!   backend, limits, seed, machines) resolves to a [`Pipeline`] whose
//!   `execute` returns one [`PipelineRun`] shape for both algorithms, so
//!   consumers (CLI, benches, the serving layer) never re-implement the
//!   pipeline × backend dispatch grid.
//!
//! Every public entry point returns both a validated
//! [`ampc_graph::Labeling`] and the run's [`ampc::RunStats`] so experiments
//! can compare measured rounds/queries/space against the paper's bounds.

#![warn(missing_docs)]

pub mod baselines;
pub mod cycles;
pub mod forest;
pub mod general;
pub mod pipeline;

pub use pipeline::{
    Algorithm, ForestPipeline, GeneralPipeline, Pipeline, PipelineRun, PipelineSpec,
    ResolvedAlgorithm, ResolvedPipeline,
};

/// Iterated logarithm `log* n` (base 2): the minimum `k ≥ 0` with
/// `log^(k) n ≤ 1`.
pub fn log_star(n: f64) -> u32 {
    let mut k = 0;
    let mut x = n;
    while x > 1.0 {
        x = x.log2();
        k += 1;
        if k > 16 {
            break; // unreachable for any representable f64
        }
    }
    k
}

/// `k`-th iterate of the paper's `log` (which clamps below 1):
/// `log^(0) n = n`, `log^(k) n = log(log^(k-1) n)`, with `log x = 1` for `x < 1`.
pub fn log_iter(n: f64, k: u32) -> f64 {
    let mut x = n;
    for _ in 0..k {
        x = if x >= 1.0 { x.log2().max(1.0) } else { 1.0 };
    }
    x
}

/// Tower function `2 ↑↑ k`: `2↑↑0 = 1`, `2↑↑k = 2^(2↑↑(k−1))`. Saturates at
/// `u64::MAX` (reached already for `k = 6`).
pub fn tower(k: u32) -> u64 {
    let mut x: u64 = 1;
    for _ in 0..k {
        if x >= 64 {
            return u64::MAX;
        }
        x = 1u64 << x;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_star_known_values() {
        assert_eq!(log_star(1.0), 0);
        assert_eq!(log_star(2.0), 1);
        assert_eq!(log_star(4.0), 2);
        assert_eq!(log_star(16.0), 3);
        assert_eq!(log_star(65536.0), 4);
        assert_eq!(log_star(1e18), 5);
    }

    #[test]
    fn log_iter_matches_definition() {
        assert_eq!(log_iter(256.0, 0), 256.0);
        assert_eq!(log_iter(256.0, 1), 8.0);
        assert_eq!(log_iter(256.0, 2), 3.0);
        // Values below 1 clamp to 1 (the paper's `log x = 1 for x < 1`).
        assert_eq!(log_iter(0.5, 1), 1.0);
    }

    #[test]
    fn tower_known_values() {
        assert_eq!(tower(0), 1);
        assert_eq!(tower(1), 2);
        assert_eq!(tower(2), 4);
        assert_eq!(tower(3), 16);
        assert_eq!(tower(4), 65536);
        assert_eq!(tower(5), u64::MAX); // 2^65536 saturates
    }

    #[test]
    fn tower_inverts_log_star() {
        for k in 0..5 {
            assert_eq!(log_star(tower(k) as f64), k);
        }
    }
}
