//! `ShrinkLargeCycles` — capping the maximum cycle length (Lemma 3.2).
//!
//! The paper cites [BDE+21, Corollary 8.1]: a CC-shrinking algorithm that
//! reduces every cycle to length `O(n^ε)` w.h.p. in `O(1)` AMPC rounds and
//! optimal space. The cited construction is not restated in the paper, so
//! we implement a sampling-based equivalent with the same interface (see
//! DESIGN.md, substitutions):
//!
//! Repeat `O(1)` times (the repetition count depends only on `ε`):
//!  1. every alive vertex marks itself independently with probability `ρ`;
//!  2. every *marked* vertex walks forward to the next marked vertex
//!     (capped at the machine budget) and contracts the unmarked segment
//!     behind it.
//!
//! With `ρ = c·ln(n)/L` each inter-mark gap is `≤ L` w.h.p., so walks stay
//! within budget, and each repetition multiplies cycle lengths by `≈ ρ`.
//! After `r` repetitions lengths are `≈ n·ρ^r ≤ L` for a constant `r`.
//! Cycles that happen to receive no mark are untouched — they are already
//! shorter than `L` w.h.p. A walk that hits its cap abstains entirely, so
//! the pointer structure stays consistent even in the improbable tail.

use std::collections::HashSet;

use ampc::{AmpcResult, DhtStorage, Key};

use crate::cycles::{pack, unpack, CycleState, BWD, FWD, PARENT, STAMP};

/// Measurements of a `ShrinkLargeCycles` invocation.
#[derive(Debug, Clone)]
pub struct ShrinkLargeOutcome {
    /// Sampling probability used per repetition.
    pub rho: f64,
    /// Number of mark-and-jump repetitions executed.
    pub repetitions: usize,
    /// Vertices contracted away in total.
    pub contracted: usize,
    /// AMPC rounds consumed.
    pub rounds: usize,
    /// DHT queries issued.
    pub queries: usize,
}

/// Runs the length-capping procedure with target maximum cycle length
/// `target_len` and per-walk budget `walk_cap` (walks are capped at
/// `min(walk_cap, 4·target_len)`).
pub fn shrink_large_cycles<S: DhtStorage<u64>>(
    state: &mut CycleState<S>,
    target_len: usize,
    walk_cap: usize,
) -> AmpcResult<ShrinkLargeOutcome> {
    let n0 = state.n0.max(2) as f64;
    let target = target_len.max(4);
    let rho = (4.0 * n0.ln() / target as f64).min(1.0);
    // Lengths shrink by ≈ρ per repetition; stop when n·ρ^r ≤ target.
    let repetitions = if rho >= 1.0 || state.n0 <= target {
        0 // every cycle is already within the target (or ρ degenerates)
    } else {
        let r = (n0.ln() - (target as f64).ln()) / -(rho.ln());
        (r.ceil() as usize + 1).min(12)
    };
    let cap = walk_cap.min(4 * target);

    let queries_before = state.sys.stats().total_queries();
    let rounds_before = state.sys.stats().rounds();
    let mut contracted = 0usize;

    for rep in 0..repetitions {
        // Round A: sample marks into the pointer words.
        let alive = state.alive.clone();
        state.sys.round("slc-mark", &alive, |ctx, &v| {
            let (succ, rank, _) = unpack(*ctx.read(Key::new(FWD, v)).expect("alive"));
            let mark = ctx.rng(rep as u64, v).bernoulli(rho);
            ctx.write(Key::new(FWD, v), pack(succ, rank, mark));
            None::<()>
        })?;

        // Round B: marked vertices jump to the next mark, contracting the
        // unmarked segment in between.
        let jump = state.sys.round("slc-jump", &alive, |ctx, &v| {
            let (succ, _, marked) = unpack(*ctx.read(Key::new(FWD, v)).expect("alive"));
            if !marked {
                return None;
            }
            let mut interior = Vec::new();
            let mut cur = succ;
            loop {
                if cur == v {
                    // Whole cycle walked: v is the only mark. If the cycle
                    // is already within the target, leave it alone — the
                    // cited primitive only shrinks *long* cycles, and
                    // freezing short ones preserves the `n' > n/log n`
                    // regime in which Algorithm 1's main loop operates.
                    if interior.len() < target {
                        return None;
                    }
                    break;
                }
                let (next, _, mark) = unpack(*ctx.read(Key::new(FWD, cur)).expect("alive"));
                if mark {
                    break;
                }
                interior.push(cur);
                if interior.len() >= cap {
                    return None; // cap hit (w.h.p. never): abstain entirely
                }
                cur = next;
            }
            if interior.is_empty() {
                return None;
            }
            for &x in &interior {
                ctx.write(Key::new(PARENT, x), v);
                ctx.delete(Key::new(FWD, x));
                ctx.delete(Key::new(BWD, x));
                ctx.delete(Key::new(STAMP, x));
            }
            // Rewire across the segment. `cur` is the next mark (or v
            // itself when the whole cycle collapsed into v).
            let collapsed = cur == v;
            ctx.write(Key::new(FWD, v), pack(cur, 0, true));
            ctx.write(Key::new(BWD, cur), pack(v, 0, false));
            Some((v, interior, collapsed))
        })?;

        let mut dead: HashSet<u64> = HashSet::new();
        let mut done: Vec<u64> = Vec::new();
        for (v, interior, collapsed) in jump.results {
            contracted += interior.len();
            dead.extend(interior);
            if collapsed {
                // The whole cycle folded into its only marked vertex.
                dead.insert(v);
                done.push(v);
            }
        }
        state.retire(&dead, &done);
    }

    Ok(ShrinkLargeOutcome {
        rho,
        repetitions,
        contracted,
        rounds: state.sys.stats().rounds() - rounds_before,
        queries: state.sys.stats().total_queries() - queries_before,
    })
}

/// Host-side audit: maximum alive cycle length, walked over the snapshot.
/// Used by tests and experiments (not an AMPC operation).
pub fn max_cycle_length<S: DhtStorage<u64>>(state: &CycleState<S>) -> usize {
    let mut seen: HashSet<u64> = HashSet::new();
    let mut max_len = 0;
    for &v in &state.alive {
        if seen.contains(&v) {
            continue;
        }
        let mut len = 0;
        let mut cur = v;
        loop {
            seen.insert(cur);
            len += 1;
            let w = state.sys.snapshot().get(Key::new(FWD, cur)).expect("alive pointer");
            cur = unpack(*w).0;
            if cur == v {
                break;
            }
        }
        max_len = max_len.max(len);
    }
    max_len
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc::AmpcConfig;

    fn ring_state(n: usize, seed: u64) -> CycleState {
        let succ: Vec<u64> = (0..n as u64).map(|i| (i + 1) % n as u64).collect();
        CycleState::from_successors(&succ, AmpcConfig::default().with_machines(4).with_seed(seed))
    }

    #[test]
    fn long_cycle_gets_capped() {
        let n = 50_000;
        let mut st = ring_state(n, 1);
        let target = 256;
        let out = shrink_large_cycles(&mut st, target, 1 << 20).unwrap();
        assert!(out.contracted > 0);
        let max_len = max_cycle_length(&st);
        // W.h.p. within a small constant of the target.
        assert!(max_len <= 4 * target, "max cycle length {max_len} vs target {target}");
        assert!(st.alive.len() < n / 10, "only {} of {n} contracted", n - st.alive.len());
    }

    #[test]
    fn constant_rounds() {
        let mut st = ring_state(100_000, 2);
        let out = shrink_large_cycles(&mut st, 512, 1 << 20).unwrap();
        // O(1): two rounds per repetition, constant repetitions.
        assert!(out.rounds <= 24, "rounds {}", out.rounds);
        assert_eq!(out.rounds, 2 * out.repetitions);
    }

    #[test]
    fn parent_chains_stay_within_cycle() {
        // After shrinking, composing labels must keep the two cycles apart.
        let a = 3_000usize;
        let b = 2_000usize;
        let mut succ: Vec<u64> = (0..a as u64).map(|i| (i + 1) % a as u64).collect();
        succ.extend((0..b as u64).map(|i| a as u64 + (i + 1) % b as u64));
        let mut st: CycleState =
            CycleState::from_successors(&succ, AmpcConfig::default().with_machines(4).with_seed(3));
        let out = shrink_large_cycles(&mut st, 64, 1 << 20).unwrap();
        let labels = st.compose_labels(out.repetitions + 4).unwrap();
        // Every original vertex's chain ends at an alive vertex of its own cycle.
        for (x, &l) in labels.iter().enumerate() {
            let root = l as usize;
            assert_eq!(root < a, x < a, "vertex {x} mapped across cycles to {root}");
        }
    }

    #[test]
    fn short_cycles_untouched_when_target_large() {
        let mut st = ring_state(64, 4);
        let out = shrink_large_cycles(&mut st, 4096, 1 << 20).unwrap();
        // Target beyond the cycle length → rho would exceed 1 → no-op.
        assert_eq!(out.repetitions, 0);
        assert_eq!(st.alive.len(), 64);
    }

    #[test]
    fn total_queries_linearish() {
        // Each repetition costs O(alive) queries: marked walks partition
        // the cycle, so walk lengths sum to ≈ alive.
        let n = 40_000;
        let mut st = ring_state(n, 5);
        let out = shrink_large_cycles(&mut st, 200, 1 << 20).unwrap();
        let per_rep = out.queries as f64 / out.repetitions.max(1) as f64;
        assert!(per_rep < 4.0 * n as f64, "queries per repetition {per_rep} not linear in n={n}");
    }
}
