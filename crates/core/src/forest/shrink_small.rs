//! `ShrinkSmallCycles(G, B)` — Figure 1 of the paper.
//!
//! One *iteration* runs four AMPC rounds over the alive cycle vertices:
//!
//! 1. **ranks** — every vertex samples a rank from the truncated geometric
//!    distribution `π_B` and publishes it (packed into its pointer words);
//!    rank stamps are reset.
//! 2. **probe** (Step 1, traversal) — every vertex traverses the cycle in
//!    both directions until it meets a vertex of equal-or-higher rank,
//!    *stamping* every vertex it encounters with its own rank (merge-max
//!    writes). A vertex that loops back to itself is the unique maximum of
//!    its cycle and contracts the whole cycle immediately.
//! 3. **contract** (Step 1, contraction) — each vertex compares its rank
//!    with the maximum stamp it received; the highest-rank vertices are the
//!    cycle's *leaders* (Claim 3.9 shows everyone is stamped with the cycle
//!    maximum). For each pair of adjacent leaders, the one with the higher
//!    id contracts the strictly-lower-rank segment between them and
//!    re-links the cycle across it.
//! 4. **step2** (Step 2, deterministic) — every surviving vertex explores
//!    its `16B`-hop neighborhood. If the neighborhood contains the whole
//!    cycle and the vertex has the highest id, it contracts the whole
//!    cycle; otherwise, if it has the highest id in the neighborhood, it
//!    contracts its `4B`-hop neighborhood (`8B` vertices — Lemma 3.8's
//!    guaranteed removal of `min{8B, k}` vertices, which defeats the
//!    additive `2^B` term of Lemma 3.10 on short cycles).
//!
//! ### Write-conflict freedom
//!
//! Pointer rewrites are assigned so every DHT key has at most one writer
//! per round: in round 3 the *segment owner* writes both endpoints' facing
//! pointers (`FWD` of the tail, `BWD` of the head); in round 4 compressors
//! are pairwise `> 16B` apart (each is the id-maximum of its `16B`-hop
//! neighborhood) while each rewires only `4B + 1` hops away, so their
//! updates cannot touch the same vertex. Stamps use merge-max writes, which
//! commute.

use std::collections::HashSet;

use ampc::{AmpcResult, DhtStorage, Key, MachineCtx};

use crate::cycles::{pack, unpack, CycleState, BWD, FWD, PARENT, STAMP};
use crate::forest::ranks::sample_rank;

/// Per-iteration measurements used by experiments E3 (query complexity) and
/// E4 (vertex drop).
#[derive(Debug, Clone)]
pub struct IterationOutcome {
    /// Rank width `B` used this iteration.
    pub b: u16,
    /// Alive cycle vertices entering the iteration.
    pub alive_before: usize,
    /// Alive cycle vertices after the iteration.
    pub alive_after: usize,
    /// Vertices removed by the whole-cycle loop case of Step 1.
    pub loop_contracted: usize,
    /// Vertices removed by leader segment contraction (Step 1).
    pub segment_contracted: usize,
    /// Vertices removed by the deterministic Step 2.
    pub step2_contracted: usize,
    /// Cycles that finished (reduced to a single representative).
    pub finished_cycles: usize,
    /// DHT queries issued during the iteration.
    pub queries: usize,
    /// AMPC rounds consumed (constant: 4, or 3 with Step 2 disabled).
    pub rounds: usize,
}

/// Result of one probe (round 2) for one vertex.
enum ProbeOutcome {
    /// Unique cycle maximum: contracted the whole cycle; lists the removed.
    Loop { leader: u64, removed: Vec<u64> },
}

/// Result of round 3 / round 4 for one vertex.
enum ContractOutcome {
    /// Vertices this machine contracted away.
    Removed(Vec<u64>),
    /// Whole cycle contracted into `leader`; `removed` lists the rest.
    Done { leader: u64, removed: Vec<u64> },
}

/// Walks one step in direction `space` (FWD or BWD), returning
/// `(next_vertex, rank_of_current)` as stored at `cur`.
#[inline]
fn read_link<S: DhtStorage<u64>>(
    ctx: &mut MachineCtx<'_, u64, S>,
    space: ampc::Space,
    cur: u64,
) -> (u64, u16) {
    let word = *ctx.read(Key::new(space, cur)).expect("alive vertex must have pointers");
    let (next, rank, _) = unpack(word);
    (next, rank)
}

/// Executes one `ShrinkSmallCycles(G', B)` iteration on `state`.
///
/// `walk_cap` bounds any single traversal (the paper guarantees `n^ε`-length
/// cycles after `ShrinkLargeCycles`, so the cap is never reached there; on a
/// cap hit the traversal safely abstains from contracting). `enable_step2`
/// exists for the E9 ablation.
pub fn shrink_small_cycles<S: DhtStorage<u64>>(
    state: &mut CycleState<S>,
    b: u16,
    walk_cap: usize,
    enable_step2: bool,
) -> AmpcResult<IterationOutcome> {
    let alive_before = state.alive.len();
    let queries_before = state.sys.stats().total_queries();
    let rounds_before = state.sys.stats().rounds();

    // Round 1: sample ranks, publish them in both pointer words, reset stamps.
    let alive = state.alive.clone();
    state.sys.round("ssc-ranks", &alive, |ctx, &v| {
        let (succ, _, _) = unpack(*ctx.read(Key::new(FWD, v)).expect("alive"));
        let (pred, _, _) = unpack(*ctx.read(Key::new(BWD, v)).expect("alive"));
        let rank = sample_rank(&mut ctx.rng(0, v), b);
        ctx.write(Key::new(FWD, v), pack(succ, rank, false));
        ctx.write(Key::new(BWD, v), pack(pred, rank, false));
        ctx.write(Key::new(STAMP, v), 0);
        None::<()>
    })?;

    // Round 2: probe + stamp; unique maxima contract their whole cycle.
    let probe = state.sys.round("ssc-probe", &alive, |ctx, &v| {
        let (succ, my_rank) = read_link(ctx, FWD, v);
        // Forward traversal.
        let mut visited = Vec::new();
        let mut cur = succ;
        let mut looped = false;
        loop {
            if cur == v {
                looped = true;
                break;
            }
            let (next, rank) = read_link(ctx, FWD, cur);
            ctx.write_merge(Key::new(STAMP, cur), my_rank as u64);
            if rank >= my_rank {
                break;
            }
            visited.push(cur);
            if visited.len() >= walk_cap {
                break;
            }
            cur = next;
        }
        if looped {
            // Case (i) of Step 1: v looped back to itself → v is the unique
            // maximum; contract the whole cycle into v.
            for &x in &visited {
                ctx.write(Key::new(PARENT, x), v);
                ctx.delete(Key::new(FWD, x));
                ctx.delete(Key::new(BWD, x));
                ctx.delete(Key::new(STAMP, x));
            }
            ctx.write(Key::new(FWD, v), pack(v, 0, false));
            ctx.write(Key::new(BWD, v), pack(v, 0, false));
            return Some(ProbeOutcome::Loop { leader: v, removed: visited });
        }
        // Backward traversal (stamping only; the loop case cannot occur
        // here without having occurred forward).
        let (pred, _) = read_link(ctx, BWD, v);
        let mut cur = pred;
        let mut steps = 0usize;
        loop {
            if cur == v {
                break;
            }
            let (next, rank) = read_link(ctx, BWD, cur);
            ctx.write_merge(Key::new(STAMP, cur), my_rank as u64);
            if rank >= my_rank {
                break;
            }
            steps += 1;
            if steps >= walk_cap {
                break;
            }
            cur = next;
        }
        None
    })?;

    let mut loop_contracted = 0usize;
    let mut finished_cycles = 0usize;
    let mut dead: HashSet<u64> = HashSet::new();
    let mut done_roots: Vec<u64> = Vec::new();
    for out in probe.results {
        let ProbeOutcome::Loop { leader, removed } = out;
        loop_contracted += removed.len();
        finished_cycles += 1;
        dead.extend(removed);
        dead.insert(leader);
        done_roots.push(leader);
    }
    state.retire(&dead, &done_roots);

    // Round 3: leaders contract the segments between them.
    let alive = state.alive.clone();
    let contract = state.sys.round("ssc-contract", &alive, |ctx, &v| {
        let (succ, my_rank) = read_link(ctx, FWD, v);
        let stamp = ctx.read(Key::new(STAMP, v)).copied().unwrap_or(0) as u16;
        if stamp > my_rank {
            return None; // not a leader; some leader will absorb this vertex
        }
        // Leader: find both neighboring leaders and the segments between.
        let walk =
            |ctx: &mut MachineCtx<'_, u64, S>, space, start: u64| -> Option<(u64, Vec<u64>)> {
                let mut interior = Vec::new();
                let mut cur = start;
                loop {
                    debug_assert_ne!(
                        cur, v,
                        "leader re-encountered itself; loop case should have fired"
                    );
                    let (next, rank) = read_link(ctx, space, cur);
                    if rank >= my_rank {
                        return Some((cur, interior));
                    }
                    interior.push(cur);
                    if interior.len() >= walk_cap {
                        return None; // cap hit: abstain (consistency preserved)
                    }
                    cur = next;
                }
            };
        let fwd = walk(ctx, FWD, succ);
        let (pred, _) = read_link(ctx, BWD, v);
        let bwd = walk(ctx, BWD, pred);

        let mut removed = Vec::new();
        // Segment ownership: for adjacent leaders (v, u) the higher id
        // contracts. The owner writes BOTH facing pointers of the segment's
        // endpoints, so a capped/abstaining neighbor never leaves the cycle
        // half-rewired.
        if let Some((w_f, interior)) = fwd {
            if v > w_f {
                for &x in &interior {
                    ctx.write(Key::new(PARENT, x), v);
                    ctx.delete(Key::new(FWD, x));
                    ctx.delete(Key::new(BWD, x));
                    ctx.delete(Key::new(STAMP, x));
                }
                ctx.write(Key::new(FWD, v), pack(w_f, 0, false));
                ctx.write(Key::new(BWD, w_f), pack(v, 0, false));
                removed.extend(interior);
            }
        }
        if let Some((w_b, interior)) = bwd {
            if v > w_b {
                for &x in &interior {
                    ctx.write(Key::new(PARENT, x), v);
                    ctx.delete(Key::new(FWD, x));
                    ctx.delete(Key::new(BWD, x));
                    ctx.delete(Key::new(STAMP, x));
                }
                ctx.write(Key::new(BWD, v), pack(w_b, 0, false));
                ctx.write(Key::new(FWD, w_b), pack(v, 0, false));
                removed.extend(interior);
            }
        }
        if removed.is_empty() {
            None
        } else {
            Some(ContractOutcome::Removed(removed))
        }
    })?;

    let mut segment_contracted = 0usize;
    let mut dead: HashSet<u64> = HashSet::new();
    for out in contract.results {
        if let ContractOutcome::Removed(r) = out {
            segment_contracted += r.len();
            dead.extend(r);
        }
    }
    state.retire(&dead, &[]);

    // Round 4 (Step 2): deterministic 16B-hop compression.
    let mut step2_contracted = 0usize;
    if enable_step2 {
        let alive = state.alive.clone();
        let hop16 = 16 * b as usize;
        let hop4 = 4 * b as usize;
        let step2 = state.sys.round("ssc-step2", &alive, |ctx, &v| {
            // Forward 16B-hop scan.
            let mut fwd = Vec::with_capacity(hop16);
            let mut cur = read_link(ctx, FWD, v).0;
            let mut looped = false;
            while fwd.len() < hop16 {
                if cur == v {
                    looped = true;
                    break;
                }
                fwd.push(cur);
                cur = read_link(ctx, FWD, cur).0;
            }
            if looped {
                // Whole cycle visible forward (k ≤ 16B).
                return if fwd.iter().all(|&x| x < v) {
                    for &x in &fwd {
                        ctx.write(Key::new(PARENT, x), v);
                        ctx.delete(Key::new(FWD, x));
                        ctx.delete(Key::new(BWD, x));
                        ctx.delete(Key::new(STAMP, x));
                    }
                    ctx.write(Key::new(FWD, v), pack(v, 0, false));
                    ctx.write(Key::new(BWD, v), pack(v, 0, false));
                    Some(ContractOutcome::Done { leader: v, removed: fwd })
                } else {
                    None
                };
            }
            // Backward 16B-hop scan.
            let mut bwd = Vec::with_capacity(hop16);
            let mut cur = read_link(ctx, BWD, v).0;
            while bwd.len() < hop16 {
                debug_assert_ne!(cur, v, "backward loop without forward loop is impossible");
                bwd.push(cur);
                cur = read_link(ctx, BWD, cur).0;
            }
            // If the two scans overlap the neighborhood covers the whole
            // cycle (16B < k ≤ 32B).
            let fset: HashSet<u64> = fwd.iter().copied().collect();
            if bwd.iter().any(|x| fset.contains(x)) {
                let all: HashSet<u64> = fwd.iter().chain(bwd.iter()).copied().collect();
                return if all.iter().all(|&x| x < v) {
                    let removed: Vec<u64> = all.into_iter().collect();
                    for &x in &removed {
                        ctx.write(Key::new(PARENT, x), v);
                        ctx.delete(Key::new(FWD, x));
                        ctx.delete(Key::new(BWD, x));
                        ctx.delete(Key::new(STAMP, x));
                    }
                    ctx.write(Key::new(FWD, v), pack(v, 0, false));
                    ctx.write(Key::new(BWD, v), pack(v, 0, false));
                    Some(ContractOutcome::Done { leader: v, removed })
                } else {
                    None
                };
            }
            // k > 32B: compress the 4B-hop neighborhood if v is the highest
            // id within 16B hops. Compressors are > 16B apart, so the 4B+1
            // rewiring regions below never collide.
            if fwd.iter().chain(bwd.iter()).all(|&x| x < v) {
                let mut removed = Vec::with_capacity(2 * hop4);
                removed.extend_from_slice(&fwd[..hop4]);
                removed.extend_from_slice(&bwd[..hop4]);
                for &x in &removed {
                    ctx.write(Key::new(PARENT, x), v);
                    ctx.delete(Key::new(FWD, x));
                    ctx.delete(Key::new(BWD, x));
                    ctx.delete(Key::new(STAMP, x));
                }
                let f_end = fwd[hop4];
                let b_end = bwd[hop4];
                ctx.write(Key::new(FWD, v), pack(f_end, 0, false));
                ctx.write(Key::new(BWD, f_end), pack(v, 0, false));
                ctx.write(Key::new(BWD, v), pack(b_end, 0, false));
                ctx.write(Key::new(FWD, b_end), pack(v, 0, false));
                return Some(ContractOutcome::Removed(removed));
            }
            None
        })?;

        let mut dead: HashSet<u64> = HashSet::new();
        let mut done_roots: Vec<u64> = Vec::new();
        for out in step2.results {
            match out {
                ContractOutcome::Removed(r) => {
                    step2_contracted += r.len();
                    dead.extend(r);
                }
                ContractOutcome::Done { leader, removed } => {
                    step2_contracted += removed.len();
                    finished_cycles += 1;
                    dead.extend(removed);
                    dead.insert(leader);
                    done_roots.push(leader);
                }
            }
        }
        state.retire(&dead, &done_roots);
    }

    Ok(IterationOutcome {
        b,
        alive_before,
        alive_after: state.alive.len(),
        loop_contracted,
        segment_contracted,
        step2_contracted,
        finished_cycles,
        queries: state.sys.stats().total_queries() - queries_before,
        rounds: state.sys.stats().rounds() - rounds_before,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc::AmpcConfig;

    fn ring(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| (i + 1) % n as u64).collect()
    }

    fn state_of(succ: Vec<u64>, seed: u64) -> CycleState {
        CycleState::from_successors(&succ, AmpcConfig::default().with_machines(4).with_seed(seed))
    }

    /// Drives iterations until everything contracts, then checks that the
    /// PARENT forest maps every vertex to its cycle's representative.
    fn run_to_completion(succ: Vec<u64>, b: u16, seed: u64) -> Vec<u64> {
        let n = succ.len();
        let mut st = state_of(succ, seed);
        let mut guard = 0;
        while !st.alive.is_empty() {
            shrink_small_cycles(&mut st, b, 1 << 20, true).unwrap();
            guard += 1;
            assert!(guard < 64, "did not converge");
        }
        // Parent chains deepen by at most 3 per iteration (segment
        // contraction, then Step 2, plus a possible same-round relay).
        st.compose_labels(guard * 3 + 8).unwrap().into_iter().take(n).collect()
    }

    fn assert_cycles_labeled(succ: &[u64], labels: &[u64]) {
        // Vertices on the same cycle of `succ` must share a label; vertices
        // on different cycles must not.
        let n = succ.len();
        let mut cycle_id = vec![u64::MAX; n];
        let mut next_id = 0;
        for start in 0..n {
            if cycle_id[start] != u64::MAX {
                continue;
            }
            let mut cur = start;
            while cycle_id[cur] == u64::MAX {
                cycle_id[cur] = next_id;
                cur = succ[cur] as usize;
            }
            next_id += 1;
        }
        for i in 0..n {
            for j in (i + 1)..n {
                assert_eq!(
                    labels[i] == labels[j],
                    cycle_id[i] == cycle_id[j],
                    "vertices {i},{j}: labels {} {} cycles {} {}",
                    labels[i],
                    labels[j],
                    cycle_id[i],
                    cycle_id[j]
                );
            }
        }
    }

    #[test]
    fn single_small_cycle_contracts() {
        let succ = ring(10);
        let labels = run_to_completion(succ.clone(), 2, 1);
        assert_cycles_labeled(&succ, &labels);
    }

    #[test]
    fn two_cycles_stay_separate() {
        // Cycles {0..5} and {6..14}.
        let mut succ: Vec<u64> = (0..6u64).map(|i| (i + 1) % 6).collect();
        succ.extend((6..15u64).map(|i| if i == 14 { 6 } else { i + 1 }));
        let labels = run_to_completion(succ.clone(), 2, 7);
        assert_cycles_labeled(&succ, &labels);
    }

    #[test]
    fn many_tiny_cycles_finish_in_one_iteration_via_step2() {
        // 2-cycles everywhere: Step 2's whole-cycle case must finish them
        // all in a single iteration (they fit in any 16B-hop neighborhood).
        let n = 50;
        let succ: Vec<u64> =
            (0..n as u64).map(|i| if i % 2 == 0 { i + 1 } else { i - 1 }).collect();
        let mut st = state_of(succ.clone(), 3);
        let out = shrink_small_cycles(&mut st, 2, 1 << 20, true).unwrap();
        assert!(st.alive.is_empty(), "alive left: {:?}", st.alive);
        assert_eq!(out.finished_cycles, n / 2);
    }

    #[test]
    fn step2_disabled_still_correct_but_slower() {
        let succ = ring(64);
        let n = succ.len();
        let mut st = state_of(succ.clone(), 11);
        let mut guard = 0;
        while !st.alive.is_empty() && guard < 200 {
            shrink_small_cycles(&mut st, 3, 1 << 20, false).unwrap();
            guard += 1;
        }
        assert!(st.alive.is_empty(), "no-step2 run stalled");
        let labels: Vec<u64> = st.compose_labels(512).unwrap().into_iter().take(n).collect();
        assert_cycles_labeled(&succ, &labels);
    }

    #[test]
    fn large_cycle_shrinks_by_roughly_2_pow_b() {
        // Lemma 3.12 (shape): one iteration on a long cycle should cut the
        // vertex count by a factor in the vicinity of 2^B.
        let n = 20_000;
        let mut st = state_of(ring(n), 5);
        let out = shrink_small_cycles(&mut st, 4, 1 << 20, true).unwrap();
        let drop = out.alive_before as f64 / (out.alive_after.max(1)) as f64;
        // 2^4 = 16; accept a generous band.
        assert!(drop > 4.0, "drop factor {drop} too small");
        assert!(out.alive_after < n / 4);
    }

    #[test]
    fn query_complexity_near_4b_per_vertex() {
        // Lemma 3.6/3.7 (shape): probe queries are O(B) per vertex.
        let n = 10_000;
        let mut st = state_of(ring(n), 9);
        let b = 4;
        let out = shrink_small_cycles(&mut st, b, 1 << 20, true).unwrap();
        let per_vertex = out.queries as f64 / n as f64;
        // Full iteration: probe (≤ ~4B expected) + contract + step2 (≤ 32B).
        let bound = 40.0 * b as f64 + 16.0;
        assert!(per_vertex < bound, "queries/vertex {per_vertex} exceeds {bound}");
    }

    #[test]
    fn deterministic_across_machine_counts() {
        let succ = ring(300);
        let run = |machines: usize| -> Vec<u64> {
            let mut st: CycleState = CycleState::from_successors(
                &succ,
                AmpcConfig::default().with_machines(machines).with_seed(77),
            );
            shrink_small_cycles(&mut st, 3, 1 << 20, true).unwrap();
            let mut alive = st.alive.clone();
            alive.sort_unstable();
            alive
        };
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn three_vertex_cycle_handles_all_rank_patterns() {
        // Tiny cycles exercise loop case, tie-breaks, and Step 2 together.
        for seed in 0..20 {
            let succ = vec![1u64, 2, 0];
            let labels = run_to_completion(succ.clone(), 2, seed);
            assert_cycles_labeled(&succ, &labels);
        }
    }

    #[test]
    fn b_one_degenerate_rank_still_progresses() {
        // B = 1 → all ranks equal → every vertex is a leader; Step 1 removes
        // nothing, but Step 2 must still make progress (Lemma 3.8).
        let succ = ring(40);
        let labels = run_to_completion(succ.clone(), 1, 13);
        assert_cycles_labeled(&succ, &labels);
    }
}
