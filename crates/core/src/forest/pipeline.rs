//! Algorithm 1 — `ConnectedComponentsForest` (Theorem 1.1).
//!
//! ```text
//! 1: function ConnectedComponentsForest(G)
//! 2:   Reduce to cycle-connectivity (Observation 3.1, Euler tour)
//! 3:   G' ← ShrinkLargeCycles(G)
//! 4:   B ← B₀
//! 5:   while |V(G')| > n / log n do
//! 6:     G' ← ShrinkSmallCycles(G', B)
//! 7:     B ← min{2B, cap}          (every second iteration)
//! 8:   return Standard-Cycle-CC(G')
//! ```
//!
//! The round/space trade-off of Theorem 1.1 ("O(k) rounds with
//! O(n·log^(k) n) total space") is obtained by initializing
//! `B₀ = 2↑↑(log* n − k)`-style (see [`ForestCcConfig::with_tradeoff_k`]):
//! a larger starting budget costs proportionally more queries (≈ space) in
//! the first iteration but skips the early doubling iterations.
//!
//! ### Constants at laptop scale
//!
//! The paper's constants (`B₀ = 100`, cap `ε·log n/100`, cycle-length cap
//! `n^ε` with `ε = δ/10`) are asymptotic: at any benchmarkable `n` they
//! degenerate (`2^100` dwarfs every feasible input, `ε·log n/100 < 1`).
//! The defaults below keep every *relationship* the analysis uses —
//! `B` doubles every second iteration, is capped at `Θ(log n)`, cycle
//! lengths are capped at `S^Θ(1)`, and the main loop exits at `n/log n` —
//! with constants scaled so the dynamics are observable. Experiments E1–E4
//! verify the resulting shapes against the lemmas.

use ampc::{
    AmpcConfig, AmpcResult, DenseDht, DhtBackend, DhtStorage, FlatDht, RunStats, ShardedDht,
    SpaceLimits,
};
use ampc_graph::euler::forest_to_cycles;
use ampc_graph::{Graph, Labeling};

use crate::cycles::CycleState;
use crate::forest::shrink_large::{shrink_large_cycles, ShrinkLargeOutcome};
use crate::forest::shrink_small::{shrink_small_cycles, IterationOutcome};
use crate::forest::standard_cycle_cc::{standard_cycle_cc, StandardCycleOutcome};
use crate::{log_star, tower};

/// Configuration of the forest-connectivity pipeline.
#[derive(Debug, Clone)]
pub struct ForestCcConfig {
    /// Simulated machine count.
    pub machines: usize,
    /// Run seed.
    pub seed: u64,
    /// Local-space exponent: `S = n^delta` words per machine.
    pub delta: f64,
    /// Initial rank width `B₀` (Algorithm 1 line 4).
    pub b0: u16,
    /// `B` cap as a multiple of `log₂ n` (the paper's `ε·log n/100`).
    pub b_cap_log_factor: f64,
    /// Double `B` every second iteration (Algorithm 1 line 7). Disabled
    /// only by the E9 ablation.
    pub double_b: bool,
    /// Run the deterministic Step 2. Disabled only by the E9 ablation.
    pub enable_step2: bool,
    /// Attach space limits and record violations (audit mode).
    pub audit_limits: bool,
    /// Constant-factor slack on `S` for the audit budget. The paper's
    /// per-machine bound is `O(n^δ)` (with random load balancing smoothing
    /// the tail — footnote 3); the audit enforces `factor · S` to make the
    /// hidden constant explicit.
    pub audit_budget_factor: f64,
    /// Skip the `ShrinkLargeCycles` preprocessing. Only valid when every
    /// cycle is known to fit the walk budget (used by experiments that
    /// isolate the main-loop dynamics on medium-sized trees).
    pub skip_shrink_large: bool,
    /// Remainder size below which cycles are collected onto one machine.
    pub collect_threshold: usize,
    /// Safety bound on main-loop iterations.
    pub max_iterations: usize,
    /// DHT storage backend for every system the pipeline constructs.
    pub backend: DhtBackend,
}

impl Default for ForestCcConfig {
    fn default() -> Self {
        ForestCcConfig {
            machines: 8,
            seed: 0xF0_1234,
            delta: 0.6,
            b0: 4,
            b_cap_log_factor: 0.75,
            double_b: true,
            enable_step2: true,
            audit_limits: false,
            audit_budget_factor: 8.0,
            skip_shrink_large: false,
            collect_threshold: 256,
            max_iterations: 64,
            backend: DhtBackend::Flat,
        }
    }
}

impl ForestCcConfig {
    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the machine count.
    pub fn with_machines(mut self, machines: usize) -> Self {
        self.machines = machines;
        self
    }

    /// Selects the DHT storage backend.
    pub fn with_backend(mut self, backend: DhtBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Configures the Theorem 1.1 trade-off: `O(k)` shrink iterations using
    /// `O(n · log^(k) n)`-ish first-iteration budget. Implemented as
    /// `B₀ = 2↑↑(log* n − k)` clamped to `[4, cap]`, mirroring the proof of
    /// Theorem 1.1 ("initialize B = 2↑↑(c·log* n − k)").
    pub fn with_tradeoff_k(mut self, n: usize, k: u32) -> Self {
        let stars = log_star(n.max(2) as f64);
        let cap = self.b_cap(n);
        let t = tower(stars.saturating_sub(k)).min(cap as u64).max(2);
        self.b0 = t as u16;
        self
    }

    /// The `B` cap for an `n`-vertex input.
    fn b_cap(&self, n: usize) -> u16 {
        let cap = (self.b_cap_log_factor * (n.max(4) as f64).log2()).floor();
        cap.clamp(4.0, 16.0) as u16
    }

    /// Per-machine word budget `S = n^delta`.
    fn local_space(&self, n: usize) -> usize {
        ((n.max(2) as f64).powf(self.delta).ceil() as usize).max(64)
    }
}

/// Full result of a forest-connectivity run.
#[derive(Debug, Clone)]
pub struct ForestCcResult {
    /// The computed CC-labeling of the input forest.
    pub labeling: Labeling,
    /// Aggregated AMPC cost accounting.
    pub stats: RunStats,
    /// `ShrinkLargeCycles` measurements.
    pub shrink_large: ShrinkLargeOutcome,
    /// Per-iteration measurements of the main loop (E3/E4 inputs).
    pub iterations: Vec<IterationOutcome>,
    /// `Standard-Cycle-CC` measurements.
    pub finisher: StandardCycleOutcome,
    /// Number of cycle vertices after the Euler reduction.
    pub cycle_vertices: usize,
    /// The configured per-machine budget `S`.
    pub local_space: usize,
}

impl ForestCcResult {
    /// Total AMPC rounds (the paper's headline metric).
    pub fn rounds(&self) -> usize {
        self.stats.rounds()
    }

    /// Peak per-round total space in words.
    pub fn peak_space(&self) -> usize {
        self.stats.peak_total_space()
    }

    /// Total DHT queries.
    pub fn queries(&self) -> usize {
        self.stats.total_queries()
    }
}

/// Computes the connected components of a forest per Algorithm 1.
///
/// ```
/// use ampc_cc::forest::pipeline::{connected_components_forest, ForestCcConfig};
/// use ampc_graph::generators::random_forest;
/// use ampc_graph::reference_components;
///
/// let forest = random_forest(1000, 5, 42);
/// let result = connected_components_forest(&forest, &ForestCcConfig::default())?;
/// assert!(result.labeling.same_partition(&reference_components(&forest)));
/// assert_eq!(result.labeling.num_components(), 5);
/// # Ok::<(), ampc::AmpcError>(())
/// ```
///
/// # Panics
/// Panics if `g` is not a forest.
pub fn connected_components_forest(g: &Graph, cfg: &ForestCcConfig) -> AmpcResult<ForestCcResult> {
    // Single dispatch point: everything below monomorphizes per backend so
    // adaptive reads stay direct hash probes (no dynamic dispatch).
    match cfg.backend {
        DhtBackend::Flat => forest_cc_impl::<FlatDht<u64>>(g, cfg),
        DhtBackend::Sharded { .. } => forest_cc_impl::<ShardedDht<u64>>(g, cfg),
        DhtBackend::Dense { .. } => forest_cc_impl::<DenseDht<u64>>(g, cfg),
    }
}

fn forest_cc_impl<S: DhtStorage<u64>>(
    g: &Graph,
    cfg: &ForestCcConfig,
) -> AmpcResult<ForestCcResult> {
    let n = g.n();
    let local_space = cfg.local_space(n.max(2));

    // Line 2: forest → disjoint cycles (Observation 3.1). The Euler tour is
    // a cited O(1)-round optimal-space primitive [TV85, BDE+21]; executed
    // natively, charged below.
    let decomp = forest_to_cycles(g);
    let n0 = decomp.len();

    // All cycle keyspaces (FWD/BWD/STAMP/PARENT) use ids 0..n0, so
    // `CycleState::from_decomposition` hints an unhinted dense backend's
    // slab at the cycle-vertex count (explicit `dense:N` capacities pass
    // through unchanged).
    let mut ampc_cfg = AmpcConfig::default()
        .with_machines(cfg.machines)
        .with_seed(cfg.seed)
        .with_backend(cfg.backend);
    if cfg.audit_limits {
        let budget = (cfg.audit_budget_factor * local_space as f64) as usize;
        ampc_cfg = ampc_cfg.with_limits(SpaceLimits::audit(budget));
    }
    let mut state: CycleState<S> = CycleState::from_decomposition(&decomp, ampc_cfg);
    state.sys.stats_mut().charge_external(1, 2 * g.m(), 2 * n0.max(1));

    // Line 3: cap cycle lengths well below the per-machine budget so no
    // traversal can approach S (the paper caps at n^ε with ε = δ/10 ≪ δ).
    // The sampling shrinker needs targets of at least Θ(log n); below that
    // we fall back to S/4, which still keeps walks within budget.
    let preferred = local_space / 16;
    let sampling_floor = (16.0 * (n.max(2) as f64).ln()) as usize;
    let target_len = if preferred >= sampling_floor { preferred } else { local_space / 4 }.max(16);
    let walk_cap = local_space;
    let shrink_large = if cfg.skip_shrink_large {
        shrink_large_cycles(&mut state, n0.max(4), walk_cap)? // degenerate: no-op
    } else {
        shrink_large_cycles(&mut state, target_len, walk_cap)?
    };

    // Lines 4–7: the ShrinkSmallCycles loop with doubling B.
    let b_cap = cfg.b_cap(n.max(2));
    let mut b = cfg.b0.clamp(1, b_cap);
    let stop_at = if n0 > 4 { n0 / (n0 as f64).log2().ceil() as usize } else { 0 };
    let mut iterations = Vec::new();
    while state.alive.len() > stop_at && iterations.len() < cfg.max_iterations {
        let out = shrink_small_cycles(&mut state, b, walk_cap, cfg.enable_step2)?;
        iterations.push(out);
        if cfg.double_b && iterations.len() % 2 == 0 {
            b = (b.saturating_mul(2)).min(b_cap);
        }
    }

    // Line 8: finish with Standard-Cycle-CC.
    let finisher = standard_cycle_cc(&mut state, walk_cap, cfg.collect_threshold)?;

    // Compose: resolve PARENT chains (Definition 2.1). Chain depth grows by
    // at most 3 per contraction phase.
    let max_chain = 3 * (iterations.len() + finisher.iterations + shrink_large.repetitions) + 8;
    let arc_labels = state.compose_labels(max_chain)?;

    // Project cycle-vertex labels back to forest vertices (each tree is one
    // cycle; isolated vertices get fresh labels). Host-side projection of
    // the Compose output; charged one round at linear cost.
    let mut labels = vec![u64::MAX; n];
    for (arc, &orig) in decomp.origin.iter().enumerate() {
        if labels[orig as usize] == u64::MAX {
            labels[orig as usize] = arc_labels[arc];
        }
    }
    for &v in &decomp.isolated {
        labels[v as usize] = n0 as u64 + v as u64;
    }
    state.sys.stats_mut().charge_external(1, n, n);

    let (_, stats) = state.sys.finish();
    Ok(ForestCcResult {
        labeling: Labeling(labels),
        stats,
        shrink_large,
        iterations,
        finisher,
        cycle_vertices: n0,
        local_space,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::generators::{random_forest, ForestFamily};
    use ampc_graph::reference_components;

    fn check(g: &Graph, cfg: &ForestCcConfig) -> ForestCcResult {
        let res = connected_components_forest(g, cfg).unwrap();
        assert!(
            res.labeling.same_partition(&reference_components(g)),
            "wrong components on n={} m={}",
            g.n(),
            g.m()
        );
        res
    }

    #[test]
    fn all_forest_families_correct() {
        for fam in ForestFamily::ALL {
            let g = fam.generate(3000, 21);
            let cfg = ForestCcConfig::default().with_seed(fam as u64 + 1);
            check(&g, &cfg);
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        check(&Graph::empty(0), &ForestCcConfig::default());
        check(&Graph::empty(5), &ForestCcConfig::default());
        check(&Graph::from_edges(2, &[(0, 1)]), &ForestCcConfig::default());
        check(&Graph::from_edges(3, &[(0, 2)]), &ForestCcConfig::default());
    }

    #[test]
    fn many_components_preserved() {
        let g = random_forest(20_000, 137, 5);
        let res = check(&g, &ForestCcConfig::default());
        assert_eq!(res.labeling.num_components(), 137);
    }

    #[test]
    fn rounds_stay_near_log_star() {
        // Theorem 1.1 shape: rounds grow like log* n — i.e. between n = 2^10
        // and n = 2^17 the round count should stay within a small constant.
        let r10 = check(&random_forest(1 << 10, 4, 7), &ForestCcConfig::default()).rounds();
        let r17 = check(&random_forest(1 << 17, 4, 7), &ForestCcConfig::default()).rounds();
        assert!(r17 <= r10 + 24, "rounds grew from {r10} to {r17}: not log*-like");
    }

    #[test]
    fn space_stays_linear() {
        // Theorem 1.1: optimal total space. Peak round space ≤ c·n words.
        let n = 1 << 16;
        let g = random_forest(n, 8, 9);
        let res = check(&g, &ForestCcConfig::default());
        let per_vertex = res.peak_space() as f64 / n as f64;
        assert!(per_vertex < 24.0, "peak space {per_vertex} words/vertex not linear");
    }

    #[test]
    fn tradeoff_k_reduces_iterations() {
        let n = 1 << 15;
        let g = random_forest(n, 4, 3);
        let base = ForestCcConfig::default();
        let aggressive = ForestCcConfig::default().with_tradeoff_k(n, 1);
        let r_base = check(&g, &base);
        let r_fast = check(&g, &aggressive);
        assert!(
            r_fast.iterations.len() <= r_base.iterations.len(),
            "k-tradeoff did not reduce iterations: {} vs {}",
            r_fast.iterations.len(),
            r_base.iterations.len()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let g = random_forest(5000, 11, 13);
        let cfg = ForestCcConfig::default().with_seed(42);
        let a = connected_components_forest(&g, &cfg).unwrap();
        let b = connected_components_forest(&g, &cfg).unwrap();
        assert_eq!(a.labeling.0, b.labeling.0);
        assert_eq!(a.rounds(), b.rounds());
        assert_eq!(a.queries(), b.queries());
    }

    #[test]
    fn audit_mode_reports_no_violations_at_scale() {
        // With S = n^0.7, capped cycle lengths, and machines sized so that
        // each holds O(1) vertices (T = M·S stays O(n) up to the audit
        // factor), no machine should exceed its budget.
        let n = 1 << 16;
        let g = random_forest(n, 4, 17);
        let cfg = ForestCcConfig {
            delta: 0.7,
            audit_limits: true,
            machines: n / 4,
            ..ForestCcConfig::default()
        };
        let res = connected_components_forest(&g, &cfg).unwrap();
        assert!(res.labeling.same_partition(&reference_components(&g)));
        let violations = res.stats.violations().count();
        assert_eq!(violations, 0, "machines exceeded audit budget");
    }

    #[test]
    fn step2_ablation_still_correct() {
        let g = random_forest(4000, 40, 19);
        let cfg = ForestCcConfig { enable_step2: false, ..ForestCcConfig::default() };
        check(&g, &cfg);
    }

    #[test]
    fn fixed_b_ablation_still_correct() {
        let g = random_forest(4000, 10, 23);
        let cfg = ForestCcConfig { double_b: false, ..ForestCcConfig::default() };
        check(&g, &cfg);
    }

    #[test]
    fn single_huge_path() {
        // The adversarial §1.3 shape: one long path.
        let g = ampc_graph::generators::path(60_000);
        let res = check(&g, &ForestCcConfig::default());
        assert_eq!(res.labeling.num_components(), 1);
    }
}
