//! Theorem 1.1 — forest connectivity in `O(log* n)` rounds, optimal space.

pub mod pipeline;
pub mod ranks;
pub mod shrink_large;
pub mod shrink_small;
pub mod standard_cycle_cc;
