//! Theorem 1.1 — forest connectivity in `O(log* n)` rounds, optimal space.

pub mod ranks;
pub mod shrink_small;
pub mod shrink_large;
pub mod standard_cycle_cc;
pub mod pipeline;
