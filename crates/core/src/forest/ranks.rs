//! The truncated geometric rank distribution `π_B` (Figure 1) and its
//! coin-tossing characterization (Claim 3.11).
//!
//! `π_B(i) = C_B / 2^i` for `i ∈ {1, …, B}`, `C_B = 1 / (1 − 2^{−B})`.
//! Claim 3.4 shows this is a probability distribution; Claim 3.11 shows it
//! equals the law of the following game: start with `q = 1`, repeatedly
//! toss a fair coin, on success set `q ← (q mod B) + 1`, on failure stop
//! and output `q`. Both samplers are implemented; a property test checks
//! they agree in distribution.

use ampc::rng::SplitMix64;

/// Samples a rank from `π_B` by CDF inversion. `B` must be in `1..=64`
/// (ranks are packed into 16 pointer bits; the paper caps `B` at
/// `ε·log(n)/100` which is far below `2^16` for every feasible input).
pub fn sample_rank(rng: &mut SplitMix64, b: u16) -> u16 {
    assert!((1..=64).contains(&b), "rank width B={b} outside supported range");
    let u = rng.next_f64();
    // CDF(i) = C_B · (1 − 2^{−i}); find the smallest i with CDF(i) > u.
    let cb = 1.0 / (1.0 - 0.5f64.powi(b as i32));
    let mut acc = 0.0;
    for i in 1..=b {
        acc += cb * 0.5f64.powi(i as i32);
        if u < acc {
            return i;
        }
    }
    b
}

/// Samples a rank via the coin-tossing game of Claim 3.11.
pub fn sample_rank_coin_game(rng: &mut SplitMix64, b: u16) -> u16 {
    assert!((1..=64).contains(&b));
    let mut q: u16 = 1;
    while rng.bernoulli(0.5) {
        q = (q % b) + 1;
    }
    q
}

/// Exact probability `π_B(i)`.
pub fn pi_b(i: u16, b: u16) -> f64 {
    if i == 0 || i > b {
        return 0.0;
    }
    let cb = 1.0 / (1.0 - 0.5f64.powi(b as i32));
    cb * 0.5f64.powi(i as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc::rng::stream;

    #[test]
    fn pi_b_is_a_distribution() {
        // Claim 3.4: Σ_i π_B(i) = 1 for every B.
        for b in 1..=64 {
            let total: f64 = (1..=b).map(|i| pi_b(i, b)).sum();
            assert!((total - 1.0).abs() < 1e-12, "B={b} sums to {total}");
        }
    }

    #[test]
    fn empirical_rank_frequencies_match_pi_b() {
        let b = 6;
        let trials = 200_000;
        let mut counts = vec![0usize; b as usize + 1];
        let mut rng = stream(99, 0, 0, 0);
        for _ in 0..trials {
            counts[sample_rank(&mut rng, b) as usize] += 1;
        }
        for i in 1..=b {
            let expected = pi_b(i, b);
            let observed = counts[i as usize] as f64 / trials as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "rank {i}: observed {observed:.4}, expected {expected:.4}"
            );
        }
    }

    #[test]
    fn coin_game_matches_pi_b_distribution() {
        // Claim 3.11: the coin game has law π_B.
        let b = 4;
        let trials = 200_000;
        let mut inv = vec![0usize; b as usize + 1];
        let mut game = vec![0usize; b as usize + 1];
        let mut rng1 = stream(7, 1, 0, 0);
        let mut rng2 = stream(7, 2, 0, 0);
        for _ in 0..trials {
            inv[sample_rank(&mut rng1, b) as usize] += 1;
            game[sample_rank_coin_game(&mut rng2, b) as usize] += 1;
        }
        for i in 1..=b as usize {
            let a = inv[i] as f64 / trials as f64;
            let g = game[i] as f64 / trials as f64;
            assert!((a - g).abs() < 0.01, "rank {i}: inversion {a:.4} vs game {g:.4}");
        }
    }

    #[test]
    fn ranks_always_in_range() {
        let mut rng = stream(3, 0, 0, 0);
        for b in [1u16, 2, 8, 16] {
            for _ in 0..1000 {
                let r = sample_rank(&mut rng, b);
                assert!((1..=b).contains(&r));
                let g = sample_rank_coin_game(&mut rng, b);
                assert!((1..=b).contains(&g));
            }
        }
    }

    #[test]
    fn b_equals_one_is_deterministic() {
        let mut rng = stream(5, 0, 0, 0);
        for _ in 0..100 {
            assert_eq!(sample_rank(&mut rng, 1), 1);
            assert_eq!(sample_rank_coin_game(&mut rng, 1), 1);
        }
    }
}
