//! `Standard-Cycle-CC` — finishing cycle connectivity with a log-factor of
//! extra space (Lemma 3.3, citing [BDE+21, Theorem 5]).
//!
//! The paper invokes this as a black box once the alive vertex count has
//! dropped to `n/log n`, at which point `O(n' · log n) = O(n)` total space
//! is affordable. Our implementation (a behavioural substitute, see
//! DESIGN.md) reuses the rank-contraction machinery with the *untruncated*
//! budget `B = Θ(log n)`: with ranks spanning `log n` levels, each cycle's
//! expected leader count after one iteration is `O(1)` and Step 2's
//! `16B = Θ(log n)`-hop sweep finishes any cycle of length `O(log n)`
//! outright, so the loop below converges in `O(1)` iterations in practice
//! (asserted by tests and measured in experiment E1). Queries per iteration
//! are `O(n' · B) = O(n' log n)` — exactly the cited space bound.
//!
//! Tiny remainders (below `collect_threshold`) are gathered onto a single
//! machine and solved locally, mirroring the paper's remark in the proof of
//! Theorem 1.1 ("we can collect the remaining graph onto a single machine
//! and solve the problem locally"); the collection is charged one round and
//! its true query/space cost.

use std::collections::HashSet;

use ampc::{AmpcResult, DhtStorage, Key};

use crate::cycles::{unpack, CycleState, BWD, FWD, PARENT, STAMP};
use crate::forest::shrink_small::shrink_small_cycles;

/// Measurements of a `Standard-Cycle-CC` invocation.
#[derive(Debug, Clone)]
pub struct StandardCycleOutcome {
    /// Rank width used for the high-budget iterations.
    pub b: u16,
    /// High-budget iterations executed.
    pub iterations: usize,
    /// Whether the tiny-remainder local collection fired.
    pub collected_locally: bool,
    /// AMPC rounds consumed (including the charged collection round).
    pub rounds: usize,
    /// DHT queries issued (including charged collection reads).
    pub queries: usize,
}

/// Solves connectivity on the remaining cycles of `state`, emptying its
/// alive list.
pub fn standard_cycle_cc<S: DhtStorage<u64>>(
    state: &mut CycleState<S>,
    walk_cap: usize,
    collect_threshold: usize,
) -> AmpcResult<StandardCycleOutcome> {
    let rounds_before = state.sys.stats().rounds();
    let queries_before = state.sys.stats().total_queries();
    let b = (state.n0.max(4) as f64).log2().ceil().clamp(4.0, 16.0) as u16;

    let mut iterations = 0usize;
    let mut collected_locally = false;
    while !state.alive.is_empty() {
        if state.alive.len() <= collect_threshold {
            collect_locally(state);
            collected_locally = true;
            break;
        }
        shrink_small_cycles(state, b, walk_cap, true)?;
        iterations += 1;
        assert!(iterations < 64, "Standard-Cycle-CC failed to converge");
    }

    Ok(StandardCycleOutcome {
        b,
        iterations,
        collected_locally,
        rounds: state.sys.stats().rounds() - rounds_before,
        queries: state.sys.stats().total_queries() - queries_before,
    })
}

/// Gathers all remaining cycles onto one machine and contracts each cycle
/// into its minimum-id vertex. Executed host-side; charged one AMPC round,
/// one query per alive vertex, and the snapshot's footprint — the price the
/// model assigns to "ship the remainder to one machine".
fn collect_locally<S: DhtStorage<u64>>(state: &mut CycleState<S>) {
    let alive = std::mem::take(&mut state.alive);
    let alive_set: HashSet<u64> = alive.iter().copied().collect();
    let snapshot_words = state.sys.snapshot().words();

    let mut visited: HashSet<u64> = HashSet::new();
    let mut writes: Vec<(u64, u64)> = Vec::new(); // (vertex, parent)
    let mut roots: Vec<u64> = Vec::new();
    for &v in &alive {
        if visited.contains(&v) {
            continue;
        }
        // Walk the cycle, collecting members.
        let mut members = vec![v];
        let mut cur = v;
        loop {
            let w = state.sys.snapshot().get(Key::new(FWD, cur)).expect("alive pointer");
            cur = unpack(*w).0;
            if cur == v {
                break;
            }
            debug_assert!(alive_set.contains(&cur), "dangling pointer to dead vertex {cur}");
            members.push(cur);
        }
        let root = *members.iter().min().expect("non-empty cycle");
        for &x in &members {
            visited.insert(x);
            if x != root {
                writes.push((x, root));
            }
        }
        roots.push(root);
    }

    let queries = visited.len() + writes.len();
    state.sys.host_update(|dht| {
        for &(x, p) in &writes {
            dht.insert(Key::new(PARENT, x), p);
            dht.remove(Key::new(FWD, x));
            dht.remove(Key::new(BWD, x));
            dht.remove(Key::new(STAMP, x));
        }
    });
    state.sys.stats_mut().charge_external(1, queries, snapshot_words);
    state.roots.extend(roots);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc::AmpcConfig;

    fn rings(sizes: &[usize], seed: u64) -> (Vec<u64>, CycleState) {
        let mut succ = Vec::new();
        let mut base = 0u64;
        for &s in sizes {
            for i in 0..s as u64 {
                succ.push(base + (i + 1) % s as u64);
            }
            base += s as u64;
        }
        let st = CycleState::from_successors(
            &succ,
            AmpcConfig::default().with_machines(4).with_seed(seed),
        );
        (succ, st)
    }

    fn check_labels(succ: &[u64], labels: &[u64]) {
        let n = succ.len();
        let mut cyc = vec![usize::MAX; n];
        let mut id = 0;
        for s in 0..n {
            if cyc[s] != usize::MAX {
                continue;
            }
            let mut cur = s;
            while cyc[cur] == usize::MAX {
                cyc[cur] = id;
                cur = succ[cur] as usize;
            }
            id += 1;
        }
        use std::collections::HashMap;
        let mut seen: HashMap<usize, u64> = HashMap::new();
        for v in 0..n {
            match seen.get(&cyc[v]) {
                Some(&l) => assert_eq!(l, labels[v], "cycle {} split", cyc[v]),
                None => {
                    assert!(
                        !seen.values().any(|&l| l == labels[v]),
                        "label {} reused across cycles",
                        labels[v]
                    );
                    seen.insert(cyc[v], labels[v]);
                }
            }
        }
    }

    #[test]
    fn finishes_mixed_cycle_sizes() {
        let (succ, mut st) = rings(&[2, 3, 17, 100, 999], 1);
        let out = standard_cycle_cc(&mut st, 1 << 20, 0).unwrap();
        assert!(st.alive.is_empty());
        assert!(out.iterations <= 6, "took {} iterations", out.iterations);
        let labels = st.compose_labels(out.iterations * 3 + 8).unwrap();
        check_labels(&succ, &labels);
    }

    #[test]
    fn converges_in_constant_iterations_on_large_input() {
        // Lemma 3.3 shape: O(1) rounds. With B = Θ(log n), two or three
        // iterations must suffice even for 10^5 vertices.
        let (_, mut st) = rings(&[100_000], 2);
        let out = standard_cycle_cc(&mut st, 1 << 21, 0).unwrap();
        assert!(out.iterations <= 4, "iterations {}", out.iterations);
    }

    #[test]
    fn query_budget_is_n_log_n() {
        let n = 50_000usize;
        let (_, mut st) = rings(&[n], 3);
        let out = standard_cycle_cc(&mut st, 1 << 21, 0).unwrap();
        let logn = (n as f64).log2();
        // O(n log n) with a moderate constant (Step 2 contributes 32B/vertex).
        assert!(
            (out.queries as f64) < 80.0 * n as f64 * logn,
            "queries {} exceed O(n log n)",
            out.queries
        );
    }

    #[test]
    fn local_collection_path() {
        let (succ, mut st) = rings(&[5, 9, 2], 4);
        let out = standard_cycle_cc(&mut st, 1 << 20, 1000).unwrap();
        assert!(out.collected_locally);
        assert_eq!(out.iterations, 0);
        assert!(st.alive.is_empty());
        let labels = st.compose_labels(4).unwrap();
        check_labels(&succ, &labels);
        // Roots are the cycle minima.
        let mut roots = st.roots.clone();
        roots.sort_unstable();
        assert_eq!(roots, vec![0, 5, 14]);
    }

    #[test]
    fn collection_charges_its_cost() {
        let (_, mut st) = rings(&[50], 5);
        let before = st.sys.stats().rounds();
        standard_cycle_cc(&mut st, 1 << 20, 1000).unwrap();
        assert!(st.sys.stats().rounds() > before, "collection must charge a round");
        assert!(st.sys.stats().total_queries() >= 50);
    }
}
