//! Per-machine execution context.
//!
//! A [`MachineCtx`] is handed to algorithm code once per machine per round.
//! It exposes exactly the capabilities an AMPC machine has:
//!
//! * **adaptive reads** from the previous round's snapshot ([`MachineCtx::read`]) —
//!   a value read may determine the next key read, within the same round;
//! * **buffered writes** to the next round's table ([`MachineCtx::write`],
//!   [`MachineCtx::write_merge`], [`MachineCtx::delete`]) — invisible until
//!   the round completes, exactly like the model's write-only DHT;
//! * **deterministic randomness** scoped to `(run, round, tag, id)`.
//!
//! Every access is metered in words; optional [`SpaceLimits`] breaches are
//! recorded and reported through the round's statistics.

use crate::dht::{DhtStorage, FlatDht, WriteOp};
use crate::key::Key;
use crate::limits::{LimitKind, LimitViolation, SpaceLimits};
use crate::rng::{self, SplitMix64};
use crate::value::DhtValue;

/// Execution context for one simulated machine within one round.
///
/// Generic over the storage backend `S` so the hot read path borrows the
/// snapshot *through the [`DhtStorage`] trait monomorphized per backend* —
/// no dynamic dispatch between an adaptive read and the hash probe.
pub struct MachineCtx<'a, V, S = FlatDht<V>> {
    snapshot: &'a S,
    pub(crate) write_buf: Vec<(Key, WriteOp<V>)>,
    pub(crate) reads: usize,
    pub(crate) read_words: usize,
    pub(crate) writes: usize,
    pub(crate) write_words: usize,
    pub(crate) violation: Option<LimitViolation>,
    limits: Option<SpaceLimits>,
    machine: usize,
    round: usize,
    seed: u64,
}

impl<'a, V: DhtValue, S: DhtStorage<V>> MachineCtx<'a, V, S> {
    /// `write_buf` is a recycled (empty, capacity-retaining) buffer from a
    /// previous round's machine, so steady-state rounds buffer writes
    /// without allocating; pass `Vec::new()` when none is available.
    pub(crate) fn new(
        snapshot: &'a S,
        limits: Option<SpaceLimits>,
        machine: usize,
        round: usize,
        seed: u64,
        write_buf: Vec<(Key, WriteOp<V>)>,
    ) -> Self {
        debug_assert!(write_buf.is_empty(), "recycled write buffer must be drained");
        MachineCtx {
            snapshot,
            write_buf,
            reads: 0,
            read_words: 0,
            writes: 0,
            write_words: 0,
            violation: None,
            limits,
            machine,
            round,
            seed,
        }
    }

    /// Adaptively reads `key` from the round's snapshot. Charges one query
    /// plus the value's word width against the read budget.
    #[inline]
    pub fn read(&mut self, key: Key) -> Option<&V> {
        let v = self.snapshot.get(key);
        self.reads += 1;
        // A miss still costs one word of probe traffic.
        self.read_words += v.map_or(1, DhtValue::words);
        self.check_limit(LimitKind::Reads);
        v
    }

    /// Reads `key` without charging the query meters. Reserved for data the
    /// model considers machine-local (e.g. re-reading a value this machine
    /// already paid for this round). Use sparingly; all paper-relevant reads
    /// must go through [`MachineCtx::read`].
    #[inline]
    pub fn peek(&self, key: Key) -> Option<&V> {
        self.snapshot.get(key)
    }

    /// Buffers a replacing write of `value` at `key`.
    #[inline]
    pub fn write(&mut self, key: Key, value: V) {
        self.writes += 1;
        self.write_words += value.words();
        self.write_buf.push((key, WriteOp::Put(value)));
        self.check_limit(LimitKind::Writes);
    }

    /// Buffers a merging write (combined with [`DhtValue::merge`]). Used for
    /// aggregate updates such as rank stamps where many machines target the
    /// same key and the result must be schedule-independent.
    #[inline]
    pub fn write_merge(&mut self, key: Key, value: V) {
        self.writes += 1;
        self.write_words += value.words();
        self.write_buf.push((key, WriteOp::Merge(value)));
        self.check_limit(LimitKind::Writes);
    }

    /// Buffers a deletion of `key`. Costs one write word (a tombstone).
    #[inline]
    pub fn delete(&mut self, key: Key) {
        self.writes += 1;
        self.write_words += 1;
        self.write_buf.push((key, WriteOp::Delete));
        self.check_limit(LimitKind::Writes);
    }

    /// Deterministic random stream scoped to `(run seed, round, tag, id)`.
    /// Identical across machine assignments and thread schedules.
    #[inline]
    pub fn rng(&self, tag: u64, id: u64) -> SplitMix64 {
        rng::stream(self.seed, self.round as u64, tag, id)
    }

    /// This machine's index within the round.
    pub fn machine_index(&self) -> usize {
        self.machine
    }

    /// The zero-based index of the current round.
    pub fn round_index(&self) -> usize {
        self.round
    }

    /// Queries issued so far this round by this machine.
    pub fn reads_used(&self) -> usize {
        self.reads
    }

    /// Read words consumed so far this round by this machine.
    pub fn read_words_used(&self) -> usize {
        self.read_words
    }

    /// Write words consumed so far this round by this machine.
    pub fn write_words_used(&self) -> usize {
        self.write_words
    }

    #[inline]
    fn check_limit(&mut self, kind: LimitKind) {
        let Some(limits) = self.limits else { return };
        if self.violation.is_some() {
            return; // only the first breach is recorded
        }
        let (used, budget) = match kind {
            LimitKind::Reads => (self.read_words, limits.read_words),
            LimitKind::Writes => (self.write_words, limits.write_words),
        };
        if used > budget {
            self.violation = Some(LimitViolation {
                round: self.round,
                round_name: std::borrow::Cow::Borrowed(""), // filled in by the executor
                machine: self.machine,
                used,
                budget,
                kind,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u16 = 0;

    fn table() -> FlatDht<u64> {
        let mut d = FlatDht::new();
        for i in 0..10u64 {
            d.insert(Key::new(S, i), i * i);
        }
        d
    }

    #[test]
    fn reads_are_metered() {
        let d = table();
        let mut ctx = MachineCtx::new(&d, None, 0, 0, 1, Vec::new());
        assert_eq!(ctx.read(Key::new(S, 3)), Some(&9));
        assert_eq!(ctx.read(Key::new(S, 99)), None);
        assert_eq!(ctx.reads_used(), 2);
        assert_eq!(ctx.read_words_used(), 2); // 1 hit word + 1 miss probe
    }

    #[test]
    fn adaptive_read_chain() {
        // The defining AMPC capability: value of one read chooses the next key.
        let mut d = FlatDht::new();
        d.insert(Key::new(S, 0), 4u64);
        d.insert(Key::new(S, 4), 7u64);
        d.insert(Key::new(S, 7), 0u64);
        let mut ctx = MachineCtx::new(&d, None, 0, 0, 1, Vec::new());
        let mut cur = 0u64;
        for _ in 0..3 {
            cur = *ctx.read(Key::new(S, cur)).unwrap();
        }
        assert_eq!(cur, 0);
        assert_eq!(ctx.reads_used(), 3);
    }

    #[test]
    fn writes_are_buffered_not_visible() {
        let d = table();
        let mut ctx = MachineCtx::new(&d, None, 0, 0, 1, Vec::new());
        ctx.write(Key::new(S, 3), 555);
        // Write-only DHT semantics: the round's snapshot is unchanged.
        assert_eq!(ctx.read(Key::new(S, 3)), Some(&9));
        assert_eq!(ctx.write_words_used(), 1);
    }

    #[test]
    fn violation_recorded_once() {
        let d = table();
        let limits = SpaceLimits::audit(2);
        let mut ctx = MachineCtx::new(&d, Some(limits), 5, 7, 1, Vec::new());
        for i in 0..4 {
            ctx.read(Key::new(S, i));
        }
        let v = ctx.violation.clone().expect("violation expected");
        assert_eq!(v.machine, 5);
        assert_eq!(v.round, 7);
        assert_eq!(v.used, 3); // recorded at first breach, not at the end
        assert_eq!(v.kind, LimitKind::Reads);
    }

    #[test]
    fn peek_does_not_charge_meters() {
        let d = table();
        let mut ctx = MachineCtx::new(&d, None, 0, 0, 1, Vec::new());
        assert_eq!(ctx.peek(Key::new(S, 3)), Some(&9));
        assert_eq!(ctx.reads_used(), 0);
        assert_eq!(ctx.read_words_used(), 0);
        ctx.read(Key::new(S, 3));
        assert_eq!(ctx.reads_used(), 1);
    }

    #[test]
    fn write_side_violation_recorded() {
        let d = table();
        let mut ctx = MachineCtx::new(&d, Some(SpaceLimits::audit(2)), 1, 0, 1, Vec::new());
        ctx.write(Key::new(S, 0), 1);
        ctx.write(Key::new(S, 1), 2);
        assert!(ctx.violation.is_none());
        ctx.delete(Key::new(S, 2)); // third write word breaches the budget
        let v = ctx.violation.clone().expect("violation");
        assert_eq!(v.kind, LimitKind::Writes);
        assert_eq!(v.used, 3);
    }

    #[test]
    fn rng_is_context_deterministic() {
        let d = table();
        let ctx1 = MachineCtx::new(&d, None, 0, 3, 42, Vec::new());
        // Same context on a different machine: streams depend on
        // (seed, round, tag, id), NOT on the machine index.
        let ctx2 = MachineCtx::new(&d, None, 9, 3, 42, Vec::new());
        assert_eq!(ctx1.rng(1, 5).next_u64(), ctx2.rng(1, 5).next_u64());
        assert_ne!(ctx1.rng(1, 5).next_u64(), ctx1.rng(1, 6).next_u64());
    }
}
