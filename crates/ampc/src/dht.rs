//! DHT storage backends.
//!
//! A storage backend plays the role of a round's *read-only* snapshot.
//! Machine write buffers are merged into a copy of it at the end of each
//! round (see [`crate::AmpcSystem`]), which models the common AMPC idiom of
//! carrying unchanged data forward: conceptually machines rewrite data they
//! still need; physically nobody implements it that way and neither do we.
//! Space accounting is unaffected because peak space per round is computed
//! as `snapshot words + communication words`, which upper-bounds the
//! literal "fresh output DHT" model.
//!
//! Two backends implement the [`DhtStorage`] trait:
//!
//! * [`FlatDht`] — one hash map, the reference implementation (alias
//!   [`Dht`] for backwards compatibility);
//! * [`ShardedDht`] — `N` power-of-two shards selected by packed-key hash,
//!   with per-shard word accounting and a shard-parallel merge.
//!
//! The executor partitions every round's write buffers by
//! [`DhtStorage::shard_of`] (preserving machine-index order within each
//! shard) and hands the partition to [`DhtStorage::apply_ops`]. Because a
//! key maps to exactly one shard, ops on different shards touch disjoint
//! key sets and commute; within a shard the machine-order sequence is
//! preserved. The merged result is therefore byte-identical to the fully
//! sequential global machine-order merge, no matter how many shards exist
//! or how the OS schedules the shard workers.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::key::{Key, Space};
use crate::value::DhtValue;

/// A fast multiply-xor hasher (FxHash-style) for the packed 64-bit keys.
/// SipHash resistance is unnecessary: keys are internal vertex identifiers.
#[derive(Default)]
pub(crate) struct PackedKeyHasher(u64);

impl Hasher for PackedKeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fold the slice one 8-byte chunk — one multiply round — at a time
        // rather than one round per byte. The tail chunk is length-tagged in
        // its (necessarily zero) top byte so slices that differ only in
        // trailing zero bytes still hash apart.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.write_u64(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.write_u64(u64::from_le_bytes(tail) | ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        // Single multiply-xorshift round; ample for low-collision integer ids.
        let mut x = self.0 ^ i;
        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 29;
        self.0 = x;
    }
}

type Build = BuildHasherDefault<PackedKeyHasher>;

/// A buffered mutation, applied to the snapshot when the round completes.
#[derive(Debug, Clone)]
pub enum WriteOp<V> {
    /// Replace the value at the key (last machine in index order wins).
    Put(V),
    /// Combine with the existing value via [`DhtValue::merge`].
    Merge(V),
    /// Remove the key (models shrinking algorithms retiring dead entries).
    Delete,
}

/// Which storage backend a deployment's DHT uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DhtBackend {
    /// One hash map ([`FlatDht`]) with a fully sequential merge.
    #[default]
    Flat,
    /// Power-of-two hash-partitioned shards ([`ShardedDht`]) with a
    /// shard-parallel merge.
    Sharded {
        /// Requested shard count, rounded up to a power of two.
        /// `0` selects an automatic count from the hardware parallelism.
        shards: usize,
    },
}

impl DhtBackend {
    /// The sharded backend with an automatically chosen shard count.
    pub fn sharded() -> Self {
        DhtBackend::Sharded { shards: 0 }
    }

    /// Short display name (`"flat"` / `"sharded"`).
    pub fn name(self) -> &'static str {
        match self {
            DhtBackend::Flat => "flat",
            DhtBackend::Sharded { .. } => "sharded",
        }
    }

    /// The shard count this backend resolves to on this host. Shard count
    /// never affects results (see the module docs), only merge parallelism.
    /// Explicit counts are clamped to `1..=65536` (the same bound as
    /// [`ShardedDht::with_shard_count`]) **before** rounding so absurd
    /// values can neither overflow `next_power_of_two` nor silently wrap to
    /// one shard.
    pub fn resolved_shards(self) -> usize {
        match self {
            DhtBackend::Flat => 1,
            DhtBackend::Sharded { shards: 0 } => auto_shard_count(),
            DhtBackend::Sharded { shards } => shards.clamp(1, 1 << 16).next_power_of_two(),
        }
    }
}

/// Default shard count: a few shards per hardware thread so the merge can
/// load-balance, bounded so tiny deployments don't drown in empty maps.
fn auto_shard_count() -> usize {
    let workers = std::thread::available_parallelism().map_or(1, usize::from);
    (workers * 4).next_power_of_two().clamp(4, 256)
}

/// Storage interface every DHT backend implements.
///
/// [`crate::MachineCtx`] reads borrow the snapshot through this trait with
/// the backend as a *generic* parameter, so the hot read path monomorphizes
/// per backend — no dynamic dispatch.
pub trait DhtStorage<V: DhtValue>: Clone + Send + Sync {
    /// Creates an empty store configured for `backend`. A backend that does
    /// not match the implementing type (e.g. constructing a [`FlatDht`]
    /// from [`DhtBackend::Sharded`]) is treated as that type's default
    /// configuration — callers dispatch consistently via
    /// [`crate::AmpcConfig::backend`].
    fn for_backend(backend: DhtBackend) -> Self;

    /// Looks up `key`.
    fn get(&self, key: Key) -> Option<&V>;

    /// Returns true if `key` is present.
    fn contains(&self, key: Key) -> bool {
        self.get(key).is_some()
    }

    /// Inserts `value` at `key`, replacing and returning any previous entry.
    fn insert(&mut self, key: Key, value: V) -> Option<V>;

    /// Merges `value` into the entry at `key` using [`DhtValue::merge`],
    /// inserting it outright if absent.
    fn merge(&mut self, key: Key, value: V);

    /// Removes the entry at `key`, returning it if present.
    fn remove(&mut self, key: Key) -> Option<V>;

    /// Number of entries.
    fn len(&self) -> usize;

    /// True when the store holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total word footprint of all stored values.
    fn words(&self) -> usize;

    /// Word footprint broken down per keyspace, as sorted
    /// `(space, entries, words)` triples. O(n); intended for reports and
    /// tests, not hot paths.
    fn words_by_space(&self) -> Vec<(Space, usize, usize)>;

    /// Visits every entry in unspecified order.
    fn for_each_entry(&self, f: &mut dyn FnMut(Key, &V));

    /// Number of shards write buffers should be partitioned into.
    fn shard_count(&self) -> usize;

    /// The shard a key's ops belong to (always `< shard_count()`).
    fn shard_of(&self, key: Key) -> usize;

    /// Applies buffered op lists. When `shard_count() > 1` the executor
    /// passes exactly one list per shard — `ops_by_shard[s]` holds shard
    /// `s`'s ops in machine-index order (then buffer order) — and the
    /// implementation must apply each shard's list in that order but may
    /// process distinct shards concurrently when `parallel` is set. When
    /// `shard_count() == 1` the executor instead passes one list per
    /// machine (skipping the partition copy); the lists must be applied
    /// sequentially in the given order.
    fn apply_ops(&mut self, ops_by_shard: Vec<Vec<(Key, WriteOp<V>)>>, parallel: bool);

    /// Short display name of the backend.
    fn backend_name(&self) -> &'static str;

    /// All entries sorted by key — the canonical form used to compare final
    /// snapshots across backends.
    fn sorted_entries(&self) -> Vec<(Key, V)> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each_entry(&mut |k, v| out.push((k, v.clone())));
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }
}

/// An immutable-per-round key-value store measured in words: the single-map
/// reference backend.
///
/// `FlatDht` tracks the total word footprint of its contents incrementally
/// so the executor can account snapshot space in `O(1)` per round.
#[derive(Clone)]
pub struct FlatDht<V> {
    map: HashMap<u64, V, Build>,
    words: usize,
}

/// Backwards-compatible name for the reference backend.
pub type Dht<V> = FlatDht<V>;

impl<V: DhtValue> Default for FlatDht<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: DhtValue> FlatDht<V> {
    /// Creates an empty table.
    pub fn new() -> Self {
        FlatDht { map: HashMap::default(), words: 0 }
    }

    /// Creates an empty table with capacity for `n` entries.
    pub fn with_capacity(n: usize) -> Self {
        FlatDht { map: HashMap::with_capacity_and_hasher(n, Build::default()), words: 0 }
    }

    /// Looks up `key`.
    #[inline]
    pub fn get(&self, key: Key) -> Option<&V> {
        self.map.get(&key.packed())
    }

    /// Returns true if `key` is present.
    #[inline]
    pub fn contains(&self, key: Key) -> bool {
        self.map.contains_key(&key.packed())
    }

    /// Inserts `value` at `key`, replacing any previous entry, and returns
    /// the previous entry if present.
    pub fn insert(&mut self, key: Key, value: V) -> Option<V> {
        self.words += value.words();
        let old = self.map.insert(key.packed(), value);
        if let Some(ref o) = old {
            self.words -= o.words();
        }
        old
    }

    /// Merges `value` into the entry at `key` using [`DhtValue::merge`],
    /// inserting it outright if absent.
    pub fn merge(&mut self, key: Key, value: V) {
        match self.map.get_mut(&key.packed()) {
            Some(existing) => {
                let before = existing.words();
                existing.merge(value);
                self.words = self.words - before + existing.words();
            }
            None => {
                self.words += value.words();
                self.map.insert(key.packed(), value);
            }
        }
    }

    /// Removes the entry at `key`, returning it if present.
    pub fn remove(&mut self, key: Key) -> Option<V> {
        let old = self.map.remove(&key.packed());
        if let Some(ref o) = old {
            self.words -= o.words();
        }
        old
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total word footprint of all stored values.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Word footprint broken down per keyspace, as sorted
    /// `(space, entries, words)` triples. O(n); intended for reports and
    /// tests, not hot paths.
    pub fn words_by_space(&self) -> Vec<(Space, usize, usize)> {
        let mut acc: std::collections::BTreeMap<Space, (usize, usize)> = Default::default();
        self.accumulate_words_by_space(&mut acc);
        acc.into_iter().map(|(s, (e, w))| (s, e, w)).collect()
    }

    /// Folds this table's per-space `(entries, words)` totals into `acc`
    /// (shared by the flat breakdown and the cross-shard aggregation).
    fn accumulate_words_by_space(
        &self,
        acc: &mut std::collections::BTreeMap<Space, (usize, usize)>,
    ) {
        for (&packed, v) in &self.map {
            let e = acc.entry(Key::space_of_packed(packed)).or_insert((0, 0));
            e.0 += 1;
            e.1 += v.words();
        }
    }

    /// Applies a batch of buffered ops in list order.
    fn apply_batch(&mut self, ops: Vec<(Key, WriteOp<V>)>) {
        for (key, op) in ops {
            match op {
                WriteOp::Put(v) => {
                    self.insert(key, v);
                }
                WriteOp::Merge(v) => self.merge(key, v),
                WriteOp::Delete => {
                    self.remove(key);
                }
            }
        }
    }
}

impl<V: DhtValue> DhtStorage<V> for FlatDht<V> {
    fn for_backend(backend: DhtBackend) -> Self {
        // A sharded config reaching the flat type means a caller fixed
        // `S = FlatDht` but set `with_backend(sharded())` — the setting
        // would be a silent no-op, so surface the dispatch mismatch early.
        debug_assert!(
            matches!(backend, DhtBackend::Flat),
            "FlatDht constructed for a {} backend config — dispatch on AmpcConfig::backend \
             (or use ShardedDht as the system's storage parameter)",
            backend.name()
        );
        FlatDht::new()
    }

    #[inline]
    fn get(&self, key: Key) -> Option<&V> {
        FlatDht::get(self, key)
    }

    #[inline]
    fn contains(&self, key: Key) -> bool {
        FlatDht::contains(self, key)
    }

    fn insert(&mut self, key: Key, value: V) -> Option<V> {
        FlatDht::insert(self, key, value)
    }

    fn merge(&mut self, key: Key, value: V) {
        FlatDht::merge(self, key, value)
    }

    fn remove(&mut self, key: Key) -> Option<V> {
        FlatDht::remove(self, key)
    }

    fn len(&self) -> usize {
        FlatDht::len(self)
    }

    fn is_empty(&self) -> bool {
        FlatDht::is_empty(self)
    }

    fn words(&self) -> usize {
        FlatDht::words(self)
    }

    fn words_by_space(&self) -> Vec<(Space, usize, usize)> {
        FlatDht::words_by_space(self)
    }

    fn for_each_entry(&self, f: &mut dyn FnMut(Key, &V)) {
        for (&packed, v) in &self.map {
            f(Key::from_packed(packed), v);
        }
    }

    fn shard_count(&self) -> usize {
        1
    }

    #[inline]
    fn shard_of(&self, _key: Key) -> usize {
        0
    }

    fn apply_ops(&mut self, ops_by_shard: Vec<Vec<(Key, WriteOp<V>)>>, _parallel: bool) {
        for ops in ops_by_shard {
            self.apply_batch(ops);
        }
    }

    fn backend_name(&self) -> &'static str {
        "flat"
    }
}

/// One multiply-xorshift round used to spread packed keys over shards.
/// This is the same mix the per-shard maps' [`PackedKeyHasher`] applies, so
/// the **shard index must not reuse its low bits**: hashbrown derives
/// bucket indices from the low hash bits, and routing on them would leave
/// every shard's map using only every `N`-th bucket. [`ShardedDht`]
/// therefore takes the shard index from bit 32 upward — disjoint from the
/// bucket bits of any realistically sized shard (< 2^32 entries) and from
/// the top-7 control bits.
#[inline]
fn spread(packed: u64) -> u64 {
    let mut x = packed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 29;
    x
}

/// Hash-partitioned storage: `N` power-of-two [`FlatDht`] shards.
///
/// Each shard tracks its own word footprint, so total accounting stays
/// `O(shards)` and the executor's shard-parallel merge can apply every
/// shard's op list on an independent worker without synchronization.
#[derive(Clone)]
pub struct ShardedDht<V> {
    shards: Vec<FlatDht<V>>,
    mask: u64,
}

impl<V: DhtValue> ShardedDht<V> {
    /// Creates an empty store with `shards` shards (rounded up to a power
    /// of two, clamped to `1..=65536`).
    pub fn with_shard_count(shards: usize) -> Self {
        let shards = shards.clamp(1, 1 << 16).next_power_of_two();
        ShardedDht {
            shards: (0..shards).map(|_| FlatDht::new()).collect(),
            mask: shards as u64 - 1,
        }
    }

    #[inline]
    fn shard_index(&self, key: Key) -> usize {
        // Bits 32.. of the spread hash: see `spread` for why the low bits
        // (hashbrown's bucket bits) must not select the shard.
        ((spread(key.packed()) >> 32) & self.mask) as usize
    }

    /// Per-shard word footprints (the per-shard accounting behind
    /// [`DhtStorage::words`]).
    pub fn shard_words(&self) -> Vec<usize> {
        self.shards.iter().map(FlatDht::words).collect()
    }
}

impl<V: DhtValue> DhtStorage<V> for ShardedDht<V> {
    fn for_backend(backend: DhtBackend) -> Self {
        Self::with_shard_count(backend.resolved_shards())
    }

    #[inline]
    fn get(&self, key: Key) -> Option<&V> {
        self.shards[self.shard_index(key)].get(key)
    }

    #[inline]
    fn contains(&self, key: Key) -> bool {
        self.shards[self.shard_index(key)].contains(key)
    }

    fn insert(&mut self, key: Key, value: V) -> Option<V> {
        let s = self.shard_index(key);
        self.shards[s].insert(key, value)
    }

    fn merge(&mut self, key: Key, value: V) {
        let s = self.shard_index(key);
        self.shards[s].merge(key, value)
    }

    fn remove(&mut self, key: Key) -> Option<V> {
        let s = self.shard_index(key);
        self.shards[s].remove(key)
    }

    fn len(&self) -> usize {
        self.shards.iter().map(FlatDht::len).sum()
    }

    fn words(&self) -> usize {
        self.shards.iter().map(FlatDht::words).sum()
    }

    fn words_by_space(&self) -> Vec<(Space, usize, usize)> {
        let mut acc: std::collections::BTreeMap<Space, (usize, usize)> = Default::default();
        for shard in &self.shards {
            shard.accumulate_words_by_space(&mut acc);
        }
        acc.into_iter().map(|(s, (e, w))| (s, e, w)).collect()
    }

    fn for_each_entry(&self, f: &mut dyn FnMut(Key, &V)) {
        for shard in &self.shards {
            shard.for_each_entry(f);
        }
    }

    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn shard_of(&self, key: Key) -> usize {
        self.shard_index(key)
    }

    fn apply_ops(&mut self, mut ops_by_shard: Vec<Vec<(Key, WriteOp<V>)>>, parallel: bool) {
        if self.shards.len() == 1 {
            // Single-shard store: the executor passes one list per machine
            // (see the trait contract) — apply them all in order.
            for ops in ops_by_shard {
                self.shards[0].apply_batch(ops);
            }
            return;
        }
        debug_assert_eq!(ops_by_shard.len(), self.shards.len());
        let workers =
            std::thread::available_parallelism().map_or(1, usize::from).min(self.shards.len());
        if parallel && workers > 1 {
            // Shard-parallel merge on scoped worker threads: each worker owns
            // a contiguous block of shards, so no shard is touched twice and
            // each shard's op list is applied in its recorded order.
            let block = self.shards.len().div_ceil(workers);
            std::thread::scope(|scope| {
                for (shard_block, ops_block) in
                    self.shards.chunks_mut(block).zip(ops_by_shard.chunks_mut(block))
                {
                    scope.spawn(move || {
                        for (shard, ops) in shard_block.iter_mut().zip(ops_block.iter_mut()) {
                            shard.apply_batch(std::mem::take(ops));
                        }
                    });
                }
            });
        } else {
            for (shard, ops) in self.shards.iter_mut().zip(ops_by_shard) {
                shard.apply_batch(ops);
            }
        }
    }

    fn backend_name(&self) -> &'static str {
        "sharded"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u16 = 0;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut d: Dht<u64> = Dht::new();
        assert!(d.is_empty());
        assert_eq!(d.insert(Key::new(S, 1), 10), None);
        assert_eq!(d.insert(Key::new(S, 1), 20), Some(10));
        assert_eq!(d.get(Key::new(S, 1)), Some(&20));
        assert_eq!(d.remove(Key::new(S, 1)), Some(20));
        assert!(d.get(Key::new(S, 1)).is_none());
        assert_eq!(d.words(), 0);
    }

    #[test]
    fn words_track_vector_values() {
        let mut d: Dht<Vec<u64>> = Dht::new();
        d.insert(Key::new(S, 1), vec![1, 2, 3]); // 4 words
        d.insert(Key::new(S, 2), vec![7]); // 2 words
        assert_eq!(d.words(), 6);
        d.insert(Key::new(S, 1), vec![9]); // replaces 4 with 2
        assert_eq!(d.words(), 4);
        d.remove(Key::new(S, 2));
        assert_eq!(d.words(), 2);
    }

    #[test]
    fn merge_takes_maximum_for_u64() {
        let mut d: Dht<u64> = Dht::new();
        d.merge(Key::new(S, 5), 3);
        d.merge(Key::new(S, 5), 9);
        d.merge(Key::new(S, 5), 4);
        assert_eq!(d.get(Key::new(S, 5)), Some(&9));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn spaces_are_disjoint() {
        let mut d: Dht<u64> = Dht::new();
        d.insert(Key::new(1, 7), 100);
        d.insert(Key::new(2, 7), 200);
        assert_eq!(d.get(Key::new(1, 7)), Some(&100));
        assert_eq!(d.get(Key::new(2, 7)), Some(&200));
    }

    #[test]
    fn dense_keys_do_not_collide() {
        let mut d: Dht<u64> = Dht::new();
        for i in 0..10_000u64 {
            d.insert(Key::new(3, i), i * 2);
        }
        assert_eq!(d.len(), 10_000);
        for i in (0..10_000u64).step_by(997) {
            assert_eq!(d.get(Key::new(3, i)), Some(&(i * 2)));
        }
    }
}

#[cfg(test)]
mod hasher_tests {
    use super::*;

    fn hash_bytes(bytes: &[u8]) -> u64 {
        let mut h = PackedKeyHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn byte_slices_hash_in_word_chunks() {
        // A 16-byte slice must equal exactly two write_u64 rounds — the
        // whole point of the chunked write path.
        let bytes: [u8; 16] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16];
        let mut direct = PackedKeyHasher::default();
        direct.write_u64(u64::from_le_bytes(bytes[..8].try_into().unwrap()));
        direct.write_u64(u64::from_le_bytes(bytes[8..].try_into().unwrap()));
        assert_eq!(hash_bytes(&bytes), direct.finish());
    }

    #[test]
    fn trailing_zero_bytes_change_the_hash() {
        // The length tag keeps "ab" and "ab\0" apart even though the padded
        // tail words are identical.
        assert_ne!(hash_bytes(b"ab"), hash_bytes(b"ab\0"));
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
    }

    #[test]
    fn distinct_slices_hash_distinctly() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for i in 0..1000u64 {
            assert!(seen.insert(hash_bytes(&i.to_le_bytes())), "collision at {i}");
        }
    }
}

#[cfg(test)]
mod space_breakdown_tests {
    use super::*;

    #[test]
    fn words_by_space_partitions_total() {
        let mut d: Dht<Vec<u64>> = Dht::new();
        d.insert(Key::new(1, 0), vec![1, 2]); // 3 words
        d.insert(Key::new(1, 1), vec![3]); // 2 words
        d.insert(Key::new(2, 0), vec![4, 5, 6]); // 4 words
        let by = d.words_by_space();
        assert_eq!(by, vec![(1, 2, 5), (2, 1, 4)]);
        assert_eq!(by.iter().map(|&(_, _, w)| w).sum::<usize>(), d.words());
    }

    #[test]
    fn sharded_words_by_space_matches_flat() {
        let mut flat: FlatDht<Vec<u64>> = FlatDht::new();
        let mut sharded: ShardedDht<Vec<u64>> = ShardedDht::with_shard_count(8);
        for i in 0..500u64 {
            let v = vec![i; (i % 4) as usize + 1];
            flat.insert(Key::new((i % 3) as Space, i), v.clone());
            DhtStorage::insert(&mut sharded, Key::new((i % 3) as Space, i), v);
        }
        assert_eq!(flat.words_by_space(), DhtStorage::words_by_space(&sharded));
        assert_eq!(flat.words(), DhtStorage::words(&sharded));
    }
}

#[cfg(test)]
mod sharded_tests {
    use super::*;

    fn ops(items: &[(u16, u64, WriteOp<u64>)]) -> Vec<(Key, WriteOp<u64>)> {
        items.iter().map(|(s, id, op)| (Key::new(*s, *id), op.clone())).collect()
    }

    #[test]
    fn sharded_basic_ops_match_flat() {
        let mut flat: FlatDht<u64> = FlatDht::new();
        let mut sharded: ShardedDht<u64> = ShardedDht::with_shard_count(4);
        for i in 0..2000u64 {
            flat.insert(Key::new((i % 5) as Space, i), i * 3);
            DhtStorage::insert(&mut sharded, Key::new((i % 5) as Space, i), i * 3);
        }
        for i in (0..2000u64).step_by(7) {
            flat.remove(Key::new((i % 5) as Space, i));
            DhtStorage::remove(&mut sharded, Key::new((i % 5) as Space, i));
        }
        for i in 0..2000u64 {
            flat.merge(Key::new(6, i % 17), i);
            DhtStorage::merge(&mut sharded, Key::new(6, i % 17), i);
        }
        assert_eq!(flat.sorted_entries(), sharded.sorted_entries());
        assert_eq!(FlatDht::len(&flat), DhtStorage::len(&sharded));
        assert_eq!(FlatDht::words(&flat), DhtStorage::words(&sharded));
    }

    #[test]
    fn shard_words_sum_to_total() {
        let mut sharded: ShardedDht<u64> = ShardedDht::with_shard_count(8);
        for i in 0..1000u64 {
            DhtStorage::insert(&mut sharded, Key::new(0, i), i);
        }
        let per_shard = sharded.shard_words();
        assert_eq!(per_shard.len(), 8);
        assert_eq!(per_shard.iter().sum::<usize>(), DhtStorage::words(&sharded));
        // The spreader must actually spread: no shard holds everything.
        assert!(per_shard.iter().all(|&w| w < 1000), "degenerate shard distribution");
    }

    #[test]
    fn shard_count_rounds_up_to_power_of_two() {
        let d: ShardedDht<u64> = ShardedDht::with_shard_count(5);
        assert_eq!(d.shard_count(), 8);
        let d: ShardedDht<u64> = ShardedDht::with_shard_count(0);
        assert_eq!(d.shard_count(), 1);
    }

    #[test]
    fn apply_ops_preserves_machine_order_within_shard() {
        // Two "machines" write the same key: the later list must win in both
        // backends, and parallel application must not change that.
        for parallel in [false, true] {
            let mut flat: FlatDht<u64> = FlatDht::new();
            let mut sharded: ShardedDht<u64> = ShardedDht::with_shard_count(4);
            let machine0 = ops(&[(0, 1, WriteOp::Put(10)), (0, 2, WriteOp::Put(20))]);
            let machine1 = ops(&[(0, 1, WriteOp::Put(11)), (0, 3, WriteOp::Delete)]);
            // Flat: single shard, machines concatenated in index order.
            let mut all = machine0.clone();
            all.extend(machine1.clone());
            DhtStorage::apply_ops(&mut flat, vec![all], parallel);
            // Sharded: partition the same sequence by shard, preserving order.
            let mut by_shard: Vec<Vec<(Key, WriteOp<u64>)>> =
                (0..sharded.shard_count()).map(|_| Vec::new()).collect();
            for (key, op) in machine0.into_iter().chain(machine1) {
                by_shard[sharded.shard_of(key)].push((key, op));
            }
            DhtStorage::apply_ops(&mut sharded, by_shard, parallel);
            assert_eq!(flat.sorted_entries(), sharded.sorted_entries());
            assert_eq!(DhtStorage::get(&sharded, Key::new(0, 1)), Some(&11));
        }
    }

    #[test]
    fn backend_resolution() {
        assert_eq!(DhtBackend::Flat.resolved_shards(), 1);
        assert_eq!(DhtBackend::Sharded { shards: 6 }.resolved_shards(), 8);
        assert!(DhtBackend::sharded().resolved_shards() >= 4);
        assert_eq!(DhtBackend::Flat.name(), "flat");
        assert_eq!(DhtBackend::sharded().name(), "sharded");
        let d: ShardedDht<u64> = DhtStorage::<u64>::for_backend(DhtBackend::Sharded { shards: 16 });
        assert_eq!(d.shard_count(), 16);
        let f: FlatDht<u64> = DhtStorage::<u64>::for_backend(DhtBackend::Flat);
        assert_eq!(DhtStorage::<u64>::shard_count(&f), 1);
    }

    #[test]
    fn absurd_shard_counts_clamp_instead_of_overflowing() {
        // next_power_of_two on huge values would panic (debug) or wrap to
        // zero (release); the clamp must run first, and both entry points
        // must agree on the cap.
        assert_eq!(DhtBackend::Sharded { shards: usize::MAX }.resolved_shards(), 1 << 16);
        assert_eq!(DhtBackend::Sharded { shards: 512 }.resolved_shards(), 512);
        let d: ShardedDht<u64> = ShardedDht::with_shard_count(usize::MAX);
        assert_eq!(d.shard_count(), 1 << 16);
    }

    #[test]
    fn single_shard_store_applies_one_list_per_machine() {
        // The executor's single-shard fast path hands over one list per
        // machine; a 1-shard ShardedDht must apply them all, in order.
        let mut d: ShardedDht<u64> = ShardedDht::with_shard_count(1);
        let machine0 = ops(&[(0, 1, WriteOp::Put(10))]);
        let machine1 = ops(&[(0, 1, WriteOp::Put(11)), (0, 2, WriteOp::Put(20))]);
        DhtStorage::apply_ops(&mut d, vec![machine0, machine1], true);
        assert_eq!(DhtStorage::get(&d, Key::new(0, 1)), Some(&11));
        assert_eq!(DhtStorage::len(&d), 2);
    }

    #[test]
    fn shard_routing_does_not_reuse_bucket_bits() {
        // Keys landing in one shard must still spread over that shard's
        // hash buckets: their full spread-hash low bits (hashbrown's bucket
        // bits) must take many values, not just the shard residue.
        let d: ShardedDht<u64> = ShardedDht::with_shard_count(64);
        let mut low_bits: std::collections::HashSet<u64> = Default::default();
        let mut in_shard0 = 0usize;
        for i in 0..100_000u64 {
            let key = Key::new(0, i);
            if d.shard_of(key) == 0 {
                in_shard0 += 1;
                low_bits.insert(spread(key.packed()) & 0xFFF);
            }
        }
        assert!(in_shard0 > 1000, "shard 0 unexpectedly empty");
        // If shard selection consumed the low bits, at most 4096/64 = 64
        // distinct low-bit patterns could appear here.
        assert!(
            low_bits.len() > 512,
            "only {} distinct bucket-bit patterns in shard 0 — shard index aliases bucket index",
            low_bits.len()
        );
    }
}
