//! DHT storage backends.
//!
//! A storage backend plays the role of a round's *read-only* snapshot.
//! Machine write buffers are merged into a copy of it at the end of each
//! round (see [`crate::AmpcSystem`]), which models the common AMPC idiom of
//! carrying unchanged data forward: conceptually machines rewrite data they
//! still need; physically nobody implements it that way and neither do we.
//! Space accounting is unaffected because peak space per round is computed
//! as `snapshot words + communication words`, which upper-bounds the
//! literal "fresh output DHT" model.
//!
//! Three backends implement the [`DhtStorage`] trait:
//!
//! * [`FlatDht`] — one hash map, the reference implementation (alias
//!   [`Dht`] for backwards compatibility);
//! * [`ShardedDht`] — `N` power-of-two shards selected by packed-key hash,
//!   with per-shard word accounting and a shard-parallel merge;
//! * [`DenseDht`] — per-keyspace direct-indexed slabs (`Vec<Option<V>>`
//!   sized to a capacity hint) with a hash-map overflow for ids beyond the
//!   slab, so an adaptive read costs a bounds check plus an array index —
//!   no hashing at all on the dense hot path — and the merge is partitioned
//!   by contiguous id *ranges* instead of hash shards.
//!
//! The executor partitions every round's write buffers by
//! [`DhtStorage::shard_of`] (preserving machine-index order within each
//! shard) and hands the partition to [`DhtStorage::apply_ops`]. Because a
//! key maps to exactly one shard — `shard_of` is a pure function of the
//! packed key, whether it hashes ([`ShardedDht`]) or range-partitions
//! ([`DenseDht`]) — ops on different shards touch disjoint key sets and
//! commute; within a shard the machine-order sequence is preserved. The
//! merged result is therefore byte-identical to the fully sequential
//! global machine-order merge, no matter how many shards exist or how the
//! OS schedules the shard workers.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::key::{Key, Space};
use crate::value::DhtValue;

/// A fast multiply-xor hasher (FxHash-style) for the packed 64-bit keys.
/// SipHash resistance is unnecessary: keys are internal vertex identifiers.
#[derive(Default)]
pub(crate) struct PackedKeyHasher(u64);

impl Hasher for PackedKeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fold the slice one 8-byte chunk — one multiply round — at a time
        // rather than one round per byte. The tail chunk is length-tagged in
        // its (necessarily zero) top byte so slices that differ only in
        // trailing zero bytes still hash apart.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.write_u64(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.write_u64(u64::from_le_bytes(tail) | ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        // Single multiply-xorshift round; ample for low-collision integer ids.
        let mut x = self.0 ^ i;
        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 29;
        self.0 = x;
    }
}

type Build = BuildHasherDefault<PackedKeyHasher>;

/// A buffered mutation, applied to the snapshot when the round completes.
#[derive(Debug, Clone)]
pub enum WriteOp<V> {
    /// Replace the value at the key (last machine in index order wins).
    Put(V),
    /// Combine with the existing value via [`DhtValue::merge`].
    Merge(V),
    /// Remove the key (models shrinking algorithms retiring dead entries).
    Delete,
}

/// Which storage backend a deployment's DHT uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DhtBackend {
    /// One hash map ([`FlatDht`]) with a fully sequential merge.
    #[default]
    Flat,
    /// Power-of-two hash-partitioned shards ([`ShardedDht`]) with a
    /// shard-parallel merge.
    Sharded {
        /// Requested shard count, rounded up to a power of two.
        /// `0` selects an automatic count from the hardware parallelism.
        shards: usize,
    },
    /// Direct-indexed per-keyspace slabs ([`DenseDht`]) with a hash-map
    /// overflow and a range-partitioned parallel merge.
    Dense {
        /// Slab capacity per keyspace: ids `0..cap` are stored in the slab,
        /// everything above spills to the overflow map. `0` means
        /// "unhinted" — pipelines that know their id domain fill it in via
        /// [`DhtBackend::with_capacity_hint`], otherwise a modest default
        /// applies.
        cap: usize,
    },
}

impl DhtBackend {
    /// The sharded backend with an automatically chosen shard count.
    pub fn sharded() -> Self {
        DhtBackend::Sharded { shards: 0 }
    }

    /// The dense backend with an unhinted slab capacity (pipelines hint it
    /// from their input size via [`DhtBackend::with_capacity_hint`]).
    pub fn dense() -> Self {
        DhtBackend::Dense { cap: 0 }
    }

    /// Short display name (`"flat"` / `"sharded"` / `"dense"`).
    pub fn name(self) -> &'static str {
        match self {
            DhtBackend::Flat => "flat",
            DhtBackend::Sharded { .. } => "sharded",
            DhtBackend::Dense { .. } => "dense",
        }
    }

    /// Parses a backend spec: `flat`, `sharded`, `sharded:N` (N hash
    /// shards), `dense`, or `dense:CAP` (CAP ids per keyspace slab; bare
    /// `dense` lets the pipeline hint the capacity from its input). The
    /// single grammar shared by the CLI and the bench harnesses.
    pub fn parse(s: &str) -> Result<DhtBackend, String> {
        match s {
            "flat" => Ok(DhtBackend::Flat),
            "sharded" => Ok(DhtBackend::sharded()),
            "dense" => Ok(DhtBackend::dense()),
            other => {
                if let Some(n) = other.strip_prefix("sharded:") {
                    let shards: usize =
                        n.parse().map_err(|e| format!("bad shard count in backend spec: {e}"))?;
                    Ok(DhtBackend::Sharded { shards })
                } else if let Some(n) = other.strip_prefix("dense:") {
                    let cap: usize =
                        n.parse().map_err(|e| format!("bad slab capacity in backend spec: {e}"))?;
                    if cap == 0 {
                        return Err("dense slab capacity must be positive (omit :CAP to let the \
                                    pipeline size the slab from its input)"
                            .into());
                    }
                    Ok(DhtBackend::Dense { cap })
                } else {
                    Err(format!(
                        "unknown backend {other:?} (expected flat|sharded[:N]|dense[:CAP])"
                    ))
                }
            }
        }
    }

    /// Fills in an unhinted dense slab capacity from a caller who knows the
    /// id domain (typically the pipeline's vertex count). An explicit
    /// `dense:N` capacity and the non-dense backends pass through
    /// unchanged, so pipelines can apply their hint unconditionally.
    #[must_use]
    pub fn with_capacity_hint(self, cap: usize) -> Self {
        match self {
            DhtBackend::Dense { cap: 0 } => DhtBackend::Dense { cap },
            other => other,
        }
    }

    /// The dense slab capacity this backend resolves to: the hint (or the
    /// default when unhinted), clamped so an absurd request cannot attempt
    /// an address-space-sized allocation.
    pub fn resolved_dense_cap(self) -> usize {
        let cap = match self {
            DhtBackend::Dense { cap: 0 } => DEFAULT_DENSE_CAP,
            DhtBackend::Dense { cap } => cap,
            _ => DEFAULT_DENSE_CAP,
        };
        cap.clamp(1, Key::MAX_DENSE_CAP)
    }

    /// The shard count this backend resolves to on this host. Shard count
    /// never affects results (see the module docs), only merge parallelism.
    /// Explicit counts are clamped to `1..=65536` (the same bound as
    /// [`ShardedDht::with_shard_count`]) **before** rounding so absurd
    /// values can neither overflow `next_power_of_two` nor silently wrap to
    /// one shard. For the dense backend this is its range-partition count
    /// plus the overflow partition.
    pub fn resolved_shards(self) -> usize {
        match self {
            DhtBackend::Flat => 1,
            DhtBackend::Sharded { shards: 0 } => auto_shard_count(),
            DhtBackend::Sharded { shards } => shards.clamp(1, 1 << 16).next_power_of_two(),
            DhtBackend::Dense { .. } => dense_layout(self.resolved_dense_cap()).2 + 1,
        }
    }
}

/// Slab capacity used when a dense deployment never received a hint. Small
/// enough that a handful of keyspaces stay cheap on tiny inputs; anything
/// bigger should — and in this repository does — come from a pipeline that
/// knows its id domain.
const DEFAULT_DENSE_CAP: usize = 1 << 16;

/// Default shard count: a few shards per hardware thread so the merge can
/// load-balance, bounded so tiny deployments don't drown in empty maps.
fn auto_shard_count() -> usize {
    let workers = std::thread::available_parallelism().map_or(1, usize::from);
    (workers * 4).next_power_of_two().clamp(4, 256)
}

/// Range-partition layout for a dense slab of `cap` slots: returns
/// `(range_len, range_shift, num_ranges)` with `range_len = 1 << range_shift`
/// and `num_ranges = ceil(cap / range_len)`. A couple of ranges per hardware
/// thread keeps the parallel merge load-balanced; the power-of-two range
/// length makes partition routing a shift, not a division.
fn dense_layout(cap: usize) -> (usize, u32, usize) {
    let workers = std::thread::available_parallelism().map_or(1, usize::from);
    let target = (workers * 2).next_power_of_two().clamp(2, 256);
    let range_len = cap.div_ceil(target).next_power_of_two().max(1);
    let shift = range_len.trailing_zeros();
    (range_len, shift, cap.div_ceil(range_len).max(1))
}

/// Storage interface every DHT backend implements.
///
/// [`crate::MachineCtx`] reads borrow the snapshot through this trait with
/// the backend as a *generic* parameter, so the hot read path monomorphizes
/// per backend — no dynamic dispatch.
pub trait DhtStorage<V: DhtValue>: Clone + Send + Sync {
    /// Creates an empty store configured for `backend`. A backend that does
    /// not match the implementing type (e.g. constructing a [`FlatDht`]
    /// from [`DhtBackend::Sharded`]) is treated as that type's default
    /// configuration — callers dispatch consistently via
    /// [`crate::AmpcConfig::backend`].
    fn for_backend(backend: DhtBackend) -> Self;

    /// Looks up `key`.
    fn get(&self, key: Key) -> Option<&V>;

    /// Returns true if `key` is present.
    fn contains(&self, key: Key) -> bool {
        self.get(key).is_some()
    }

    /// Inserts `value` at `key`, replacing and returning any previous entry.
    fn insert(&mut self, key: Key, value: V) -> Option<V>;

    /// Merges `value` into the entry at `key` using [`DhtValue::merge`],
    /// inserting it outright if absent.
    fn merge(&mut self, key: Key, value: V);

    /// Removes the entry at `key`, returning it if present.
    fn remove(&mut self, key: Key) -> Option<V>;

    /// Number of entries.
    fn len(&self) -> usize;

    /// True when the store holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total word footprint of all stored values.
    fn words(&self) -> usize;

    /// Word footprint broken down per keyspace, as sorted
    /// `(space, entries, words)` triples. O(n); intended for reports and
    /// tests, not hot paths.
    fn words_by_space(&self) -> Vec<(Space, usize, usize)>;

    /// Visits every entry in unspecified order.
    fn for_each_entry(&self, f: &mut dyn FnMut(Key, &V));

    /// Number of shards write buffers should be partitioned into.
    fn shard_count(&self) -> usize;

    /// The shard a key's ops belong to (always `< shard_count()`).
    fn shard_of(&self, key: Key) -> usize;

    /// Applies buffered op lists. When `shard_count() > 1` the executor
    /// passes exactly one list per shard — `ops_by_shard[s]` holds shard
    /// `s`'s ops in machine-index order (then buffer order) — and the
    /// implementation must apply each shard's list in that order but may
    /// process distinct shards concurrently when `parallel` is set. When
    /// `shard_count() == 1` the executor instead passes one list per
    /// machine (skipping the partition copy); the lists must be applied
    /// sequentially in the given order.
    ///
    /// Returns the same lists, **drained but with their capacity intact**,
    /// so the executor can recycle them as next round's machine write
    /// buffers / partition lists instead of reallocating (list order on
    /// return is unspecified — only the capacity matters).
    fn apply_ops(
        &mut self,
        ops_by_shard: Vec<Vec<(Key, WriteOp<V>)>>,
        parallel: bool,
    ) -> Vec<Vec<(Key, WriteOp<V>)>>;

    /// Short display name of the backend.
    fn backend_name(&self) -> &'static str;

    /// All entries sorted by key — the canonical form used to compare final
    /// snapshots across backends.
    fn sorted_entries(&self) -> Vec<(Key, V)> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each_entry(&mut |k, v| out.push((k, v.clone())));
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }
}

/// An immutable-per-round key-value store measured in words: the single-map
/// reference backend.
///
/// `FlatDht` tracks the total word footprint of its contents incrementally
/// so the executor can account snapshot space in `O(1)` per round.
#[derive(Clone)]
pub struct FlatDht<V> {
    map: HashMap<u64, V, Build>,
    words: usize,
}

/// Backwards-compatible name for the reference backend.
pub type Dht<V> = FlatDht<V>;

impl<V: DhtValue> Default for FlatDht<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: DhtValue> FlatDht<V> {
    /// Creates an empty table.
    pub fn new() -> Self {
        FlatDht { map: HashMap::default(), words: 0 }
    }

    /// Creates an empty table with capacity for `n` entries.
    pub fn with_capacity(n: usize) -> Self {
        FlatDht { map: HashMap::with_capacity_and_hasher(n, Build::default()), words: 0 }
    }

    /// Looks up `key`.
    #[inline]
    pub fn get(&self, key: Key) -> Option<&V> {
        self.map.get(&key.packed())
    }

    /// Returns true if `key` is present.
    #[inline]
    pub fn contains(&self, key: Key) -> bool {
        self.map.contains_key(&key.packed())
    }

    /// Inserts `value` at `key`, replacing any previous entry, and returns
    /// the previous entry if present.
    pub fn insert(&mut self, key: Key, value: V) -> Option<V> {
        self.words += value.words();
        let old = self.map.insert(key.packed(), value);
        if let Some(ref o) = old {
            self.words -= o.words();
        }
        old
    }

    /// Merges `value` into the entry at `key` using [`DhtValue::merge`],
    /// inserting it outright if absent.
    pub fn merge(&mut self, key: Key, value: V) {
        match self.map.get_mut(&key.packed()) {
            Some(existing) => {
                let before = existing.words();
                existing.merge(value);
                self.words = self.words - before + existing.words();
            }
            None => {
                self.words += value.words();
                self.map.insert(key.packed(), value);
            }
        }
    }

    /// Removes the entry at `key`, returning it if present.
    pub fn remove(&mut self, key: Key) -> Option<V> {
        let old = self.map.remove(&key.packed());
        if let Some(ref o) = old {
            self.words -= o.words();
        }
        old
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total word footprint of all stored values.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Word footprint broken down per keyspace, as sorted
    /// `(space, entries, words)` triples. O(n); intended for reports and
    /// tests, not hot paths.
    pub fn words_by_space(&self) -> Vec<(Space, usize, usize)> {
        let mut acc: std::collections::BTreeMap<Space, (usize, usize)> = Default::default();
        self.accumulate_words_by_space(&mut acc);
        acc.into_iter().map(|(s, (e, w))| (s, e, w)).collect()
    }

    /// Folds this table's per-space `(entries, words)` totals into `acc`
    /// (shared by the flat breakdown and the cross-shard aggregation).
    fn accumulate_words_by_space(
        &self,
        acc: &mut std::collections::BTreeMap<Space, (usize, usize)>,
    ) {
        for (&packed, v) in &self.map {
            let e = acc.entry(Key::space_of_packed(packed)).or_insert((0, 0));
            e.0 += 1;
            e.1 += v.words();
        }
    }

    /// Applies a batch of buffered ops in list order, draining the list in
    /// place so its allocation can be recycled by the caller.
    fn apply_batch(&mut self, ops: &mut Vec<(Key, WriteOp<V>)>) {
        for (key, op) in ops.drain(..) {
            match op {
                WriteOp::Put(v) => {
                    self.insert(key, v);
                }
                WriteOp::Merge(v) => self.merge(key, v),
                WriteOp::Delete => {
                    self.remove(key);
                }
            }
        }
    }
}

impl<V: DhtValue> DhtStorage<V> for FlatDht<V> {
    fn for_backend(backend: DhtBackend) -> Self {
        // A sharded config reaching the flat type means a caller fixed
        // `S = FlatDht` but set `with_backend(sharded())` — the setting
        // would be a silent no-op, so surface the dispatch mismatch early.
        debug_assert!(
            matches!(backend, DhtBackend::Flat),
            "FlatDht constructed for a {} backend config — dispatch on AmpcConfig::backend \
             (or use ShardedDht as the system's storage parameter)",
            backend.name()
        );
        FlatDht::new()
    }

    #[inline]
    fn get(&self, key: Key) -> Option<&V> {
        FlatDht::get(self, key)
    }

    #[inline]
    fn contains(&self, key: Key) -> bool {
        FlatDht::contains(self, key)
    }

    fn insert(&mut self, key: Key, value: V) -> Option<V> {
        FlatDht::insert(self, key, value)
    }

    fn merge(&mut self, key: Key, value: V) {
        FlatDht::merge(self, key, value)
    }

    fn remove(&mut self, key: Key) -> Option<V> {
        FlatDht::remove(self, key)
    }

    fn len(&self) -> usize {
        FlatDht::len(self)
    }

    fn is_empty(&self) -> bool {
        FlatDht::is_empty(self)
    }

    fn words(&self) -> usize {
        FlatDht::words(self)
    }

    fn words_by_space(&self) -> Vec<(Space, usize, usize)> {
        FlatDht::words_by_space(self)
    }

    fn for_each_entry(&self, f: &mut dyn FnMut(Key, &V)) {
        for (&packed, v) in &self.map {
            f(Key::from_packed(packed), v);
        }
    }

    fn shard_count(&self) -> usize {
        1
    }

    #[inline]
    fn shard_of(&self, _key: Key) -> usize {
        0
    }

    fn apply_ops(
        &mut self,
        mut ops_by_shard: Vec<Vec<(Key, WriteOp<V>)>>,
        _parallel: bool,
    ) -> Vec<Vec<(Key, WriteOp<V>)>> {
        for ops in &mut ops_by_shard {
            self.apply_batch(ops);
        }
        ops_by_shard
    }

    fn backend_name(&self) -> &'static str {
        "flat"
    }
}

/// One multiply-xorshift round used to spread packed keys over shards.
/// This is the same mix the per-shard maps' [`PackedKeyHasher`] applies, so
/// the **shard index must not reuse its low bits**: hashbrown derives
/// bucket indices from the low hash bits, and routing on them would leave
/// every shard's map using only every `N`-th bucket. [`ShardedDht`]
/// therefore takes the shard index from bit 32 upward — disjoint from the
/// bucket bits of any realistically sized shard (< 2^32 entries) and from
/// the top-7 control bits.
#[inline]
fn spread(packed: u64) -> u64 {
    let mut x = packed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 29;
    x
}

/// Hash-partitioned storage: `N` power-of-two [`FlatDht`] shards.
///
/// Each shard tracks its own word footprint, so total accounting stays
/// `O(shards)` and the executor's shard-parallel merge can apply every
/// shard's op list on an independent worker without synchronization.
#[derive(Clone)]
pub struct ShardedDht<V> {
    shards: Vec<FlatDht<V>>,
    mask: u64,
}

impl<V: DhtValue> ShardedDht<V> {
    /// Creates an empty store with `shards` shards (rounded up to a power
    /// of two, clamped to `1..=65536`).
    pub fn with_shard_count(shards: usize) -> Self {
        let shards = shards.clamp(1, 1 << 16).next_power_of_two();
        ShardedDht {
            shards: (0..shards).map(|_| FlatDht::new()).collect(),
            mask: shards as u64 - 1,
        }
    }

    #[inline]
    fn shard_index(&self, key: Key) -> usize {
        // Bits 32.. of the spread hash: see `spread` for why the low bits
        // (hashbrown's bucket bits) must not select the shard.
        ((spread(key.packed()) >> 32) & self.mask) as usize
    }

    /// Per-shard word footprints (the per-shard accounting behind
    /// [`DhtStorage::words`]).
    pub fn shard_words(&self) -> Vec<usize> {
        self.shards.iter().map(FlatDht::words).collect()
    }
}

impl<V: DhtValue> DhtStorage<V> for ShardedDht<V> {
    fn for_backend(backend: DhtBackend) -> Self {
        Self::with_shard_count(backend.resolved_shards())
    }

    #[inline]
    fn get(&self, key: Key) -> Option<&V> {
        self.shards[self.shard_index(key)].get(key)
    }

    #[inline]
    fn contains(&self, key: Key) -> bool {
        self.shards[self.shard_index(key)].contains(key)
    }

    fn insert(&mut self, key: Key, value: V) -> Option<V> {
        let s = self.shard_index(key);
        self.shards[s].insert(key, value)
    }

    fn merge(&mut self, key: Key, value: V) {
        let s = self.shard_index(key);
        self.shards[s].merge(key, value)
    }

    fn remove(&mut self, key: Key) -> Option<V> {
        let s = self.shard_index(key);
        self.shards[s].remove(key)
    }

    fn len(&self) -> usize {
        self.shards.iter().map(FlatDht::len).sum()
    }

    fn words(&self) -> usize {
        self.shards.iter().map(FlatDht::words).sum()
    }

    fn words_by_space(&self) -> Vec<(Space, usize, usize)> {
        let mut acc: std::collections::BTreeMap<Space, (usize, usize)> = Default::default();
        for shard in &self.shards {
            shard.accumulate_words_by_space(&mut acc);
        }
        acc.into_iter().map(|(s, (e, w))| (s, e, w)).collect()
    }

    fn for_each_entry(&self, f: &mut dyn FnMut(Key, &V)) {
        for shard in &self.shards {
            shard.for_each_entry(f);
        }
    }

    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn shard_of(&self, key: Key) -> usize {
        self.shard_index(key)
    }

    fn apply_ops(
        &mut self,
        mut ops_by_shard: Vec<Vec<(Key, WriteOp<V>)>>,
        parallel: bool,
    ) -> Vec<Vec<(Key, WriteOp<V>)>> {
        if self.shards.len() == 1 {
            // Single-shard store: the executor passes one list per machine
            // (see the trait contract) — apply them all in order.
            for ops in &mut ops_by_shard {
                self.shards[0].apply_batch(ops);
            }
            return ops_by_shard;
        }
        debug_assert_eq!(ops_by_shard.len(), self.shards.len());
        let workers =
            std::thread::available_parallelism().map_or(1, usize::from).min(self.shards.len());
        if parallel && workers > 1 {
            // Shard-parallel merge on scoped worker threads: each worker owns
            // a contiguous block of shards, so no shard is touched twice and
            // each shard's op list is applied in its recorded order.
            let block = self.shards.len().div_ceil(workers);
            std::thread::scope(|scope| {
                for (shard_block, ops_block) in
                    self.shards.chunks_mut(block).zip(ops_by_shard.chunks_mut(block))
                {
                    scope.spawn(move || {
                        for (shard, ops) in shard_block.iter_mut().zip(ops_block.iter_mut()) {
                            shard.apply_batch(ops);
                        }
                    });
                }
            });
        } else {
            for (shard, ops) in self.shards.iter_mut().zip(&mut ops_by_shard) {
                shard.apply_batch(ops);
            }
        }
        ops_by_shard
    }

    fn backend_name(&self) -> &'static str {
        "sharded"
    }
}

/// One direct-indexed keyspace slab: `slots[id]` holds the value of
/// `Key::new(space, id)`, with entry/word counters maintained alongside so
/// total accounting never scans the slab.
#[derive(Clone)]
struct DenseSlab<V> {
    /// Empty until the space is first written, then exactly `cap` slots.
    slots: Vec<Option<V>>,
    /// Occupied slots.
    len: usize,
    /// Word footprint of the occupied slots.
    words: usize,
}

impl<V> DenseSlab<V> {
    fn empty() -> Self {
        DenseSlab { slots: Vec::new(), len: 0, words: 0 }
    }
}

/// Applies one buffered op to a slab slot, accumulating the `(entries,
/// words)` delta into `d` and returning the displaced value (for `Put` and
/// `Delete`). The **single** definition of dense op semantics: the direct
/// `insert`/`remove`/`merge` methods, the sequential merge path, and the
/// range-parallel merge workers (which cannot touch the shared counters)
/// all route through it.
#[inline]
fn apply_slot_op<V: DhtValue>(
    slot: &mut Option<V>,
    op: WriteOp<V>,
    d: &mut (i64, i64),
) -> Option<V> {
    match op {
        WriteOp::Put(v) => {
            d.1 += v.words() as i64;
            let old = slot.replace(v);
            match &old {
                Some(o) => d.1 -= o.words() as i64,
                None => d.0 += 1,
            }
            return old;
        }
        WriteOp::Merge(v) => match slot {
            Some(existing) => {
                let before = existing.words();
                existing.merge(v);
                d.1 += existing.words() as i64 - before as i64;
            }
            None => {
                d.0 += 1;
                d.1 += v.words() as i64;
                *slot = Some(v);
            }
        },
        WriteOp::Delete => {
            let old = slot.take();
            if let Some(ref o) = old {
                d.0 -= 1;
                d.1 -= o.words() as i64;
            }
            return old;
        }
    }
    None
}

/// Direct-indexed storage: one [`DenseSlab`] per keyspace for ids below the
/// capacity hint, a [`FlatDht`] overflow for everything above it.
///
/// A dense `get` is a bounds check plus an array index — zero hashing on
/// the single most-executed instruction sequence in the simulator (the
/// adaptive read). The bounds check doubles as the slab/overflow
/// discriminator: an unallocated slab has zero length, so every id falls
/// through to the overflow probe, and arbitrary (sparse, huge) ids stay
/// correct.
///
/// The merge is partitioned by contiguous id **ranges** — `shard_of` is
/// `id >> range_shift` for in-slab ids plus one dedicated overflow
/// partition — so distinct partitions touch disjoint slot ranges of every
/// slab (and the overflow map is owned by exactly one partition). The
/// parallel apply hands each worker its partitions' slot ranges via
/// `chunks_mut` and collects per-partition `(entries, words)` deltas,
/// folding them into the per-slab counters after the join; the result is
/// byte-identical to the sequential machine-order merge by the same
/// argument as the hash-sharded backend.
#[derive(Clone)]
pub struct DenseDht<V> {
    /// Indexed by keyspace tag, grown on demand.
    slabs: Vec<DenseSlab<V>>,
    /// Entries whose id is `>= cap`.
    overflow: FlatDht<V>,
    /// Slab capacity per keyspace (ids `0..cap` are slab-resident).
    cap: usize,
    /// `1 << range_shift`; the id width of one merge partition.
    range_len: usize,
    range_shift: u32,
    /// Number of id-range partitions (the overflow partition is one more).
    num_ranges: usize,
}

impl<V: DhtValue> DenseDht<V> {
    /// Creates an empty store whose slabs hold `cap` ids per keyspace
    /// (clamped to `1..=2^28`; see [`DhtBackend::resolved_dense_cap`]).
    pub fn with_slab_capacity(cap: usize) -> Self {
        let cap = cap.clamp(1, Key::MAX_DENSE_CAP);
        let (range_len, range_shift, num_ranges) = dense_layout(cap);
        DenseDht {
            slabs: Vec::new(),
            overflow: FlatDht::new(),
            cap,
            range_len,
            range_shift,
            num_ranges,
        }
    }

    /// Slab capacity per keyspace.
    pub fn slab_capacity(&self) -> usize {
        self.cap
    }

    /// Entries currently held in the overflow map (ids `>= cap`).
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    /// Allocates the slab for `space` if it has never been written.
    fn ensure_slab(&mut self, space: Space) -> &mut DenseSlab<V> {
        let idx = space as usize;
        if idx >= self.slabs.len() {
            self.slabs.resize_with(idx + 1, DenseSlab::empty);
        }
        let slab = &mut self.slabs[idx];
        if slab.slots.is_empty() {
            slab.slots.resize_with(self.cap, || None);
        }
        slab
    }

    /// Applies one op to the in-slab slot of `key` through [`apply_slot_op`]
    /// and folds the accounting delta into the slab counters, returning the
    /// displaced value. Caller guarantees `key.id < cap`.
    fn slab_op(&mut self, key: Key, op: WriteOp<V>) -> Option<V> {
        debug_assert!(key.id < self.cap as u64);
        let slab = self.ensure_slab(key.space);
        let mut d = (0i64, 0i64);
        let old = apply_slot_op(&mut slab.slots[key.id as usize], op, &mut d);
        slab.len = (slab.len as i64 + d.0) as usize;
        slab.words = (slab.words as i64 + d.1) as usize;
        old
    }

    /// Applies one op through the slab/overflow routing, keeping the
    /// per-slab counters current (the sequential merge path).
    fn apply_one(&mut self, key: Key, op: WriteOp<V>) {
        // Compare ids in u64: `key.id as usize` would truncate 48-bit ids
        // on a 32-bit target and misroute them between slab and overflow.
        if key.id < self.cap as u64 {
            self.slab_op(key, op);
        } else {
            match op {
                WriteOp::Put(v) => {
                    self.overflow.insert(key, v);
                }
                WriteOp::Merge(v) => self.overflow.merge(key, v),
                WriteOp::Delete => {
                    self.overflow.remove(key);
                }
            }
        }
    }
}

impl<V: DhtValue> DhtStorage<V> for DenseDht<V> {
    fn for_backend(backend: DhtBackend) -> Self {
        debug_assert!(
            matches!(backend, DhtBackend::Dense { .. }),
            "DenseDht constructed for a {} backend config — dispatch on AmpcConfig::backend",
            backend.name()
        );
        Self::with_slab_capacity(backend.resolved_dense_cap())
    }

    #[inline]
    fn get(&self, key: Key) -> Option<&V> {
        // The hot path: one slab-header load, one bounds check, one indexed
        // load. An unallocated slab has `slots.len() == 0`, so the bounds
        // check also routes never-written spaces and out-of-slab ids to the
        // overflow probe.
        match self.slabs.get(key.space as usize) {
            Some(slab) if key.id < slab.slots.len() as u64 => slab.slots[key.id as usize].as_ref(),
            _ if key.id >= self.cap as u64 => self.overflow.get(key),
            _ => None,
        }
    }

    fn insert(&mut self, key: Key, value: V) -> Option<V> {
        if key.id < self.cap as u64 {
            self.slab_op(key, WriteOp::Put(value))
        } else {
            self.overflow.insert(key, value)
        }
    }

    fn merge(&mut self, key: Key, value: V) {
        self.apply_one(key, WriteOp::Merge(value));
    }

    fn remove(&mut self, key: Key) -> Option<V> {
        if key.id < self.cap as u64 {
            // Don't allocate a slab just to observe the slot was empty.
            match self.slabs.get(key.space as usize) {
                Some(slab) if !slab.slots.is_empty() => self.slab_op(key, WriteOp::Delete),
                _ => None,
            }
        } else {
            self.overflow.remove(key)
        }
    }

    fn len(&self) -> usize {
        self.slabs.iter().map(|s| s.len).sum::<usize>() + self.overflow.len()
    }

    fn words(&self) -> usize {
        self.slabs.iter().map(|s| s.words).sum::<usize>() + self.overflow.words()
    }

    fn words_by_space(&self) -> Vec<(Space, usize, usize)> {
        let mut acc: std::collections::BTreeMap<Space, (usize, usize)> = Default::default();
        for (space, slab) in self.slabs.iter().enumerate() {
            if slab.len > 0 {
                let e = acc.entry(space as Space).or_insert((0, 0));
                e.0 += slab.len;
                e.1 += slab.words;
            }
        }
        self.overflow.accumulate_words_by_space(&mut acc);
        acc.into_iter().map(|(s, (e, w))| (s, e, w)).collect()
    }

    fn for_each_entry(&self, f: &mut dyn FnMut(Key, &V)) {
        for (space, slab) in self.slabs.iter().enumerate() {
            for (id, slot) in slab.slots.iter().enumerate() {
                if let Some(v) = slot {
                    f(Key::new(space as Space, id as u64), v);
                }
            }
        }
        self.overflow.for_each_entry(f);
    }

    fn shard_count(&self) -> usize {
        self.num_ranges + 1
    }

    #[inline]
    fn shard_of(&self, key: Key) -> usize {
        // Pure function of the packed key given the (fixed) layout:
        // contiguous id ranges, then the overflow partition.
        if key.id < self.cap as u64 {
            (key.id >> self.range_shift) as usize
        } else {
            self.num_ranges
        }
    }

    fn apply_ops(
        &mut self,
        mut ops_by_shard: Vec<Vec<(Key, WriteOp<V>)>>,
        parallel: bool,
    ) -> Vec<Vec<(Key, WriteOp<V>)>> {
        debug_assert_eq!(ops_by_shard.len(), self.num_ranges + 1);
        let workers = std::thread::available_parallelism().map_or(1, usize::from);
        if !parallel || workers <= 1 {
            for ops in &mut ops_by_shard {
                for (key, op) in ops.drain(..) {
                    self.apply_one(key, op);
                }
            }
            return ops_by_shard;
        }

        // Allocate every slab the range partitions will touch up front, so
        // the parallel phase only ever indexes into existing slots.
        for ops in &ops_by_shard[..self.num_ranges] {
            for &(key, _) in ops {
                self.ensure_slab(key.space);
            }
        }

        // Split borrows: range workers own disjoint `chunks_mut` slices of
        // the slabs while the main thread owns the overflow map.
        let DenseDht { slabs, overflow, range_len, num_ranges, .. } = self;
        let (range_len, num_ranges) = (*range_len, *num_ranges);
        let nspaces = slabs.len();
        let mut overflow_ops = ops_by_shard.pop().expect("overflow partition list");

        // views[p][space] = the slot range partition p owns within
        // `space`'s slab (None while the slab is unallocated).
        let mut views: Vec<Vec<Option<&mut [Option<V>]>>> =
            (0..num_ranges).map(|_| (0..nspaces).map(|_| None).collect()).collect();
        // deltas[p][space] accumulates partition p's (entries, words)
        // changes per keyspace; folded into the slab counters after the
        // join, since workers cannot share the counters themselves.
        let mut deltas: Vec<Vec<(i64, i64)>> =
            (0..num_ranges).map(|_| vec![(0, 0); nspaces]).collect();
        for (space, slab) in slabs.iter_mut().enumerate() {
            for (p, chunk) in slab.slots.chunks_mut(range_len).enumerate() {
                views[p][space] = Some(chunk);
            }
        }

        let block = num_ranges.div_ceil(workers.min(num_ranges));
        std::thread::scope(|scope| {
            for ((view_block, ops_block), delta_block) in views
                .chunks_mut(block)
                .zip(ops_by_shard.chunks_mut(block))
                .zip(deltas.chunks_mut(block))
            {
                scope.spawn(move || {
                    for ((view, ops), delta) in
                        view_block.iter_mut().zip(ops_block.iter_mut()).zip(delta_block.iter_mut())
                    {
                        let mask = range_len as u64 - 1;
                        for (key, op) in ops.drain(..) {
                            let chunk =
                                view[key.space as usize].as_mut().expect("slab preallocated");
                            apply_slot_op(
                                &mut chunk[(key.id & mask) as usize],
                                op,
                                &mut delta[key.space as usize],
                            );
                        }
                    }
                });
            }
            // The overflow partition runs on this thread, concurrently with
            // the range workers — it owns the overflow map exclusively.
            overflow.apply_batch(&mut overflow_ops);
        });

        drop(views);
        for per_space in deltas {
            for (space, (dlen, dwords)) in per_space.into_iter().enumerate() {
                let slab = &mut slabs[space];
                slab.len = (slab.len as i64 + dlen) as usize;
                slab.words = (slab.words as i64 + dwords) as usize;
            }
        }
        ops_by_shard.push(overflow_ops);
        ops_by_shard
    }

    fn backend_name(&self) -> &'static str {
        "dense"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u16 = 0;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut d: Dht<u64> = Dht::new();
        assert!(d.is_empty());
        assert_eq!(d.insert(Key::new(S, 1), 10), None);
        assert_eq!(d.insert(Key::new(S, 1), 20), Some(10));
        assert_eq!(d.get(Key::new(S, 1)), Some(&20));
        assert_eq!(d.remove(Key::new(S, 1)), Some(20));
        assert!(d.get(Key::new(S, 1)).is_none());
        assert_eq!(d.words(), 0);
    }

    #[test]
    fn words_track_vector_values() {
        let mut d: Dht<Vec<u64>> = Dht::new();
        d.insert(Key::new(S, 1), vec![1, 2, 3]); // 4 words
        d.insert(Key::new(S, 2), vec![7]); // 2 words
        assert_eq!(d.words(), 6);
        d.insert(Key::new(S, 1), vec![9]); // replaces 4 with 2
        assert_eq!(d.words(), 4);
        d.remove(Key::new(S, 2));
        assert_eq!(d.words(), 2);
    }

    #[test]
    fn merge_takes_maximum_for_u64() {
        let mut d: Dht<u64> = Dht::new();
        d.merge(Key::new(S, 5), 3);
        d.merge(Key::new(S, 5), 9);
        d.merge(Key::new(S, 5), 4);
        assert_eq!(d.get(Key::new(S, 5)), Some(&9));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn spaces_are_disjoint() {
        let mut d: Dht<u64> = Dht::new();
        d.insert(Key::new(1, 7), 100);
        d.insert(Key::new(2, 7), 200);
        assert_eq!(d.get(Key::new(1, 7)), Some(&100));
        assert_eq!(d.get(Key::new(2, 7)), Some(&200));
    }

    #[test]
    fn dense_keys_do_not_collide() {
        let mut d: Dht<u64> = Dht::new();
        for i in 0..10_000u64 {
            d.insert(Key::new(3, i), i * 2);
        }
        assert_eq!(d.len(), 10_000);
        for i in (0..10_000u64).step_by(997) {
            assert_eq!(d.get(Key::new(3, i)), Some(&(i * 2)));
        }
    }
}

#[cfg(test)]
mod hasher_tests {
    use super::*;

    fn hash_bytes(bytes: &[u8]) -> u64 {
        let mut h = PackedKeyHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn byte_slices_hash_in_word_chunks() {
        // A 16-byte slice must equal exactly two write_u64 rounds — the
        // whole point of the chunked write path.
        let bytes: [u8; 16] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16];
        let mut direct = PackedKeyHasher::default();
        direct.write_u64(u64::from_le_bytes(bytes[..8].try_into().unwrap()));
        direct.write_u64(u64::from_le_bytes(bytes[8..].try_into().unwrap()));
        assert_eq!(hash_bytes(&bytes), direct.finish());
    }

    #[test]
    fn trailing_zero_bytes_change_the_hash() {
        // The length tag keeps "ab" and "ab\0" apart even though the padded
        // tail words are identical.
        assert_ne!(hash_bytes(b"ab"), hash_bytes(b"ab\0"));
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
    }

    #[test]
    fn distinct_slices_hash_distinctly() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for i in 0..1000u64 {
            assert!(seen.insert(hash_bytes(&i.to_le_bytes())), "collision at {i}");
        }
    }
}

#[cfg(test)]
mod space_breakdown_tests {
    use super::*;

    #[test]
    fn words_by_space_partitions_total() {
        let mut d: Dht<Vec<u64>> = Dht::new();
        d.insert(Key::new(1, 0), vec![1, 2]); // 3 words
        d.insert(Key::new(1, 1), vec![3]); // 2 words
        d.insert(Key::new(2, 0), vec![4, 5, 6]); // 4 words
        let by = d.words_by_space();
        assert_eq!(by, vec![(1, 2, 5), (2, 1, 4)]);
        assert_eq!(by.iter().map(|&(_, _, w)| w).sum::<usize>(), d.words());
    }

    #[test]
    fn sharded_words_by_space_matches_flat() {
        let mut flat: FlatDht<Vec<u64>> = FlatDht::new();
        let mut sharded: ShardedDht<Vec<u64>> = ShardedDht::with_shard_count(8);
        for i in 0..500u64 {
            let v = vec![i; (i % 4) as usize + 1];
            flat.insert(Key::new((i % 3) as Space, i), v.clone());
            DhtStorage::insert(&mut sharded, Key::new((i % 3) as Space, i), v);
        }
        assert_eq!(flat.words_by_space(), DhtStorage::words_by_space(&sharded));
        assert_eq!(flat.words(), DhtStorage::words(&sharded));
    }
}

#[cfg(test)]
mod sharded_tests {
    use super::*;

    fn ops(items: &[(u16, u64, WriteOp<u64>)]) -> Vec<(Key, WriteOp<u64>)> {
        items.iter().map(|(s, id, op)| (Key::new(*s, *id), op.clone())).collect()
    }

    #[test]
    fn sharded_basic_ops_match_flat() {
        let mut flat: FlatDht<u64> = FlatDht::new();
        let mut sharded: ShardedDht<u64> = ShardedDht::with_shard_count(4);
        for i in 0..2000u64 {
            flat.insert(Key::new((i % 5) as Space, i), i * 3);
            DhtStorage::insert(&mut sharded, Key::new((i % 5) as Space, i), i * 3);
        }
        for i in (0..2000u64).step_by(7) {
            flat.remove(Key::new((i % 5) as Space, i));
            DhtStorage::remove(&mut sharded, Key::new((i % 5) as Space, i));
        }
        for i in 0..2000u64 {
            flat.merge(Key::new(6, i % 17), i);
            DhtStorage::merge(&mut sharded, Key::new(6, i % 17), i);
        }
        assert_eq!(flat.sorted_entries(), sharded.sorted_entries());
        assert_eq!(FlatDht::len(&flat), DhtStorage::len(&sharded));
        assert_eq!(FlatDht::words(&flat), DhtStorage::words(&sharded));
    }

    #[test]
    fn shard_words_sum_to_total() {
        let mut sharded: ShardedDht<u64> = ShardedDht::with_shard_count(8);
        for i in 0..1000u64 {
            DhtStorage::insert(&mut sharded, Key::new(0, i), i);
        }
        let per_shard = sharded.shard_words();
        assert_eq!(per_shard.len(), 8);
        assert_eq!(per_shard.iter().sum::<usize>(), DhtStorage::words(&sharded));
        // The spreader must actually spread: no shard holds everything.
        assert!(per_shard.iter().all(|&w| w < 1000), "degenerate shard distribution");
    }

    #[test]
    fn shard_count_rounds_up_to_power_of_two() {
        let d: ShardedDht<u64> = ShardedDht::with_shard_count(5);
        assert_eq!(d.shard_count(), 8);
        let d: ShardedDht<u64> = ShardedDht::with_shard_count(0);
        assert_eq!(d.shard_count(), 1);
    }

    #[test]
    fn apply_ops_preserves_machine_order_within_shard() {
        // Two "machines" write the same key: the later list must win in both
        // backends, and parallel application must not change that.
        for parallel in [false, true] {
            let mut flat: FlatDht<u64> = FlatDht::new();
            let mut sharded: ShardedDht<u64> = ShardedDht::with_shard_count(4);
            let machine0 = ops(&[(0, 1, WriteOp::Put(10)), (0, 2, WriteOp::Put(20))]);
            let machine1 = ops(&[(0, 1, WriteOp::Put(11)), (0, 3, WriteOp::Delete)]);
            // Flat: single shard, machines concatenated in index order.
            let mut all = machine0.clone();
            all.extend(machine1.clone());
            DhtStorage::apply_ops(&mut flat, vec![all], parallel);
            // Sharded: partition the same sequence by shard, preserving order.
            let mut by_shard: Vec<Vec<(Key, WriteOp<u64>)>> =
                (0..sharded.shard_count()).map(|_| Vec::new()).collect();
            for (key, op) in machine0.into_iter().chain(machine1) {
                by_shard[sharded.shard_of(key)].push((key, op));
            }
            DhtStorage::apply_ops(&mut sharded, by_shard, parallel);
            assert_eq!(flat.sorted_entries(), sharded.sorted_entries());
            assert_eq!(DhtStorage::get(&sharded, Key::new(0, 1)), Some(&11));
        }
    }

    #[test]
    fn backend_resolution() {
        assert_eq!(DhtBackend::Flat.resolved_shards(), 1);
        assert_eq!(DhtBackend::Sharded { shards: 6 }.resolved_shards(), 8);
        assert!(DhtBackend::sharded().resolved_shards() >= 4);
        assert_eq!(DhtBackend::Flat.name(), "flat");
        assert_eq!(DhtBackend::sharded().name(), "sharded");
        let d: ShardedDht<u64> = DhtStorage::<u64>::for_backend(DhtBackend::Sharded { shards: 16 });
        assert_eq!(d.shard_count(), 16);
        let f: FlatDht<u64> = DhtStorage::<u64>::for_backend(DhtBackend::Flat);
        assert_eq!(DhtStorage::<u64>::shard_count(&f), 1);
    }

    #[test]
    fn backend_parse_grammar() {
        assert_eq!(DhtBackend::parse("flat").unwrap(), DhtBackend::Flat);
        assert_eq!(DhtBackend::parse("sharded").unwrap(), DhtBackend::sharded());
        assert_eq!(DhtBackend::parse("sharded:4").unwrap(), DhtBackend::Sharded { shards: 4 });
        assert_eq!(DhtBackend::parse("dense").unwrap(), DhtBackend::dense());
        assert_eq!(DhtBackend::parse("dense:64").unwrap(), DhtBackend::Dense { cap: 64 });
        for bad in ["dense:0", "dense:x", "sharded:x", "bogus", ""] {
            assert!(DhtBackend::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn absurd_shard_counts_clamp_instead_of_overflowing() {
        // next_power_of_two on huge values would panic (debug) or wrap to
        // zero (release); the clamp must run first, and both entry points
        // must agree on the cap.
        assert_eq!(DhtBackend::Sharded { shards: usize::MAX }.resolved_shards(), 1 << 16);
        assert_eq!(DhtBackend::Sharded { shards: 512 }.resolved_shards(), 512);
        let d: ShardedDht<u64> = ShardedDht::with_shard_count(usize::MAX);
        assert_eq!(d.shard_count(), 1 << 16);
    }

    #[test]
    fn single_shard_store_applies_one_list_per_machine() {
        // The executor's single-shard fast path hands over one list per
        // machine; a 1-shard ShardedDht must apply them all, in order.
        let mut d: ShardedDht<u64> = ShardedDht::with_shard_count(1);
        let machine0 = ops(&[(0, 1, WriteOp::Put(10))]);
        let machine1 = ops(&[(0, 1, WriteOp::Put(11)), (0, 2, WriteOp::Put(20))]);
        DhtStorage::apply_ops(&mut d, vec![machine0, machine1], true);
        assert_eq!(DhtStorage::get(&d, Key::new(0, 1)), Some(&11));
        assert_eq!(DhtStorage::len(&d), 2);
    }

    #[test]
    fn dense_basic_ops_match_flat() {
        // cap 256 with ids up to 2000: most keys overflow, many straddle.
        let mut flat: FlatDht<u64> = FlatDht::new();
        let mut dense: DenseDht<u64> = DenseDht::with_slab_capacity(256);
        for i in 0..2000u64 {
            flat.insert(Key::new((i % 5) as Space, i), i * 3);
            DhtStorage::insert(&mut dense, Key::new((i % 5) as Space, i), i * 3);
        }
        for i in (0..2000u64).step_by(7) {
            flat.remove(Key::new((i % 5) as Space, i));
            DhtStorage::remove(&mut dense, Key::new((i % 5) as Space, i));
        }
        for i in 0..2000u64 {
            flat.merge(Key::new(6, i % 300), i);
            DhtStorage::merge(&mut dense, Key::new(6, i % 300), i);
        }
        assert_eq!(flat.sorted_entries(), dense.sorted_entries());
        assert_eq!(FlatDht::len(&flat), DhtStorage::len(&dense));
        assert_eq!(FlatDht::words(&flat), DhtStorage::words(&dense));
        assert_eq!(flat.words_by_space(), DhtStorage::words_by_space(&dense));
        assert!(dense.overflow_len() > 0, "test should exercise the overflow path");
    }

    #[test]
    fn dense_overflow_boundary_accounting_matches_flat() {
        // Property-style sweep over keys straddling the slab boundary: ids
        // at cap−1, cap, cap+large, across several spaces, with deletes and
        // merges whose accounting lands on either side of the boundary.
        // After every step, words()/words_by_space/len must equal FlatDht's
        // exactly.
        let cap = 128usize;
        let boundary_ids =
            [0u64, 1, cap as u64 - 1, cap as u64, cap as u64 + 1, cap as u64 * 31, 1 << 40];
        // Phase 1: variable-width values (Vec) — replacing puts shrink and
        // grow footprints on both sides of the boundary; deletes retire
        // slab slots and overflow entries alike.
        let mut flat: FlatDht<Vec<u64>> = FlatDht::new();
        let mut dense: DenseDht<Vec<u64>> = DenseDht::with_slab_capacity(cap);
        let mut step = 0u64;
        for round in 0..4u64 {
            for space in 0..3u16 {
                for &id in &boundary_ids {
                    step += 1;
                    let key = Key::new(space, id);
                    match (step + round) % 3 {
                        0 => {
                            let v = vec![step; (step % 5) as usize + 1];
                            flat.insert(key, v.clone());
                            DhtStorage::insert(&mut dense, key, v);
                        }
                        1 => {
                            assert_eq!(
                                flat.remove(key),
                                DhtStorage::remove(&mut dense, key),
                                "remove diverged at space={space} id={id}"
                            );
                        }
                        _ => {
                            assert_eq!(
                                flat.get(key),
                                DhtStorage::get(&dense, key),
                                "get diverged at space={space} id={id}"
                            );
                        }
                    }
                    assert_eq!(FlatDht::words(&flat), DhtStorage::words(&dense), "words drifted");
                    assert_eq!(FlatDht::len(&flat), DhtStorage::len(&dense), "len drifted");
                }
            }
            assert_eq!(flat.words_by_space(), DhtStorage::words_by_space(&dense));
        }
        assert_eq!(flat.sorted_entries(), dense.sorted_entries());
        assert!(dense.overflow_len() > 0, "boundary sweep must populate the overflow");

        // Phase 2: merge-writes (u64 max-combiner) landing on both sides of
        // the boundary, interleaved with deletes so merges re-create
        // entries whose accounting was just retired.
        let mut flat: FlatDht<u64> = FlatDht::new();
        let mut dense: DenseDht<u64> = DenseDht::with_slab_capacity(cap);
        for round in 0..6u64 {
            for &id in &boundary_ids {
                let key = Key::new(1, id);
                if round % 3 == 2 {
                    assert_eq!(flat.remove(key), DhtStorage::remove(&mut dense, key));
                } else {
                    flat.merge(key, round * 1000 + id % 97);
                    DhtStorage::merge(&mut dense, key, round * 1000 + id % 97);
                }
                assert_eq!(FlatDht::words(&flat), DhtStorage::words(&dense));
                assert_eq!(flat.words_by_space(), DhtStorage::words_by_space(&dense));
            }
        }
        assert_eq!(flat.sorted_entries(), dense.sorted_entries());
    }

    #[test]
    fn dense_apply_ops_preserves_machine_order_within_partition() {
        // Two "machines" write the same keys, one inside the slab and one in
        // the overflow: the later list must win under both serial and
        // parallel application, exactly as in the flat reference.
        let cap = 16usize;
        let far = cap as u64 * 1000;
        for parallel in [false, true] {
            let mut flat: FlatDht<u64> = FlatDht::new();
            let mut dense: DenseDht<u64> = DenseDht::with_slab_capacity(cap);
            let machine0 = ops(&[
                (0, 1, WriteOp::Put(10)),
                (0, far, WriteOp::Put(100)),
                (1, 2, WriteOp::Put(20)),
            ]);
            let machine1 = ops(&[
                (0, 1, WriteOp::Put(11)),
                (0, far, WriteOp::Put(101)),
                (1, 3, WriteOp::Delete),
            ]);
            let mut all = machine0.clone();
            all.extend(machine1.clone());
            DhtStorage::apply_ops(&mut flat, vec![all], parallel);
            let mut by_shard: Vec<Vec<(Key, WriteOp<u64>)>> =
                (0..DhtStorage::<u64>::shard_count(&dense)).map(|_| Vec::new()).collect();
            for (key, op) in machine0.into_iter().chain(machine1) {
                by_shard[dense.shard_of(key)].push((key, op));
            }
            DhtStorage::apply_ops(&mut dense, by_shard, parallel);
            assert_eq!(flat.sorted_entries(), dense.sorted_entries());
            assert_eq!(DhtStorage::get(&dense, Key::new(0, 1)), Some(&11));
            assert_eq!(DhtStorage::get(&dense, Key::new(0, far)), Some(&101));
            assert_eq!(FlatDht::words(&flat), DhtStorage::words(&dense));
        }
    }

    #[test]
    fn dense_range_partition_is_contiguous_and_pure() {
        let d: DenseDht<u64> = DenseDht::with_slab_capacity(1 << 12);
        let nranges = DhtStorage::<u64>::shard_count(&d) - 1;
        let mut last = 0usize;
        for id in 0..(1u64 << 12) {
            let p = d.shard_of(Key::new(0, id));
            assert!(p < nranges, "in-slab id routed to the overflow partition");
            assert!(p >= last, "range partition not monotone in id");
            // Partition choice ignores the keyspace tag: ranges are slot
            // ranges of *every* slab.
            assert_eq!(p, d.shard_of(Key::new(9, id)));
            last = p;
        }
        assert_eq!(last, nranges - 1, "top id must land in the last range");
        assert_eq!(d.shard_of(Key::new(0, 1 << 12)), nranges);
        assert_eq!(d.shard_of(Key::new(3, u64::MAX >> 16)), nranges);
    }

    #[test]
    fn dense_backend_resolution_and_hints() {
        assert_eq!(DhtBackend::dense().name(), "dense");
        // A hint fills only the unhinted capacity.
        assert_eq!(DhtBackend::dense().with_capacity_hint(1234), DhtBackend::Dense { cap: 1234 });
        assert_eq!(
            DhtBackend::Dense { cap: 99 }.with_capacity_hint(1234),
            DhtBackend::Dense { cap: 99 }
        );
        assert_eq!(DhtBackend::Flat.with_capacity_hint(1234), DhtBackend::Flat);
        // Resolution clamps instead of allocating the address space.
        assert_eq!(DhtBackend::Dense { cap: usize::MAX }.resolved_dense_cap(), Key::MAX_DENSE_CAP);
        assert_eq!(DhtBackend::Dense { cap: 777 }.resolved_dense_cap(), 777);
        let d: DenseDht<u64> = DhtStorage::<u64>::for_backend(DhtBackend::Dense { cap: 777 });
        assert_eq!(d.slab_capacity(), 777);
        assert_eq!(
            DhtStorage::<u64>::shard_count(&d),
            DhtBackend::Dense { cap: 777 }.resolved_shards()
        );
        // The dense store always has at least the overflow partition plus
        // one range, so the executor always partitions (never the
        // one-list-per-machine fast path).
        assert!(DhtStorage::<u64>::shard_count(&d) >= 2);
    }

    #[test]
    fn shard_routing_does_not_reuse_bucket_bits() {
        // Keys landing in one shard must still spread over that shard's
        // hash buckets: their full spread-hash low bits (hashbrown's bucket
        // bits) must take many values, not just the shard residue.
        let d: ShardedDht<u64> = ShardedDht::with_shard_count(64);
        let mut low_bits: std::collections::HashSet<u64> = Default::default();
        let mut in_shard0 = 0usize;
        for i in 0..100_000u64 {
            let key = Key::new(0, i);
            if d.shard_of(key) == 0 {
                in_shard0 += 1;
                low_bits.insert(spread(key.packed()) & 0xFFF);
            }
        }
        assert!(in_shard0 > 1000, "shard 0 unexpectedly empty");
        // If shard selection consumed the low bits, at most 4096/64 = 64
        // distinct low-bit patterns could appear here.
        assert!(
            low_bits.len() > 512,
            "only {} distinct bucket-bit patterns in shard 0 — shard index aliases bucket index",
            low_bits.len()
        );
    }
}
