//! The distributed hash table.
//!
//! One [`Dht`] instance plays the role of a round's *read-only* snapshot.
//! Machine write buffers are merged into a copy of it at the end of each
//! round (see [`crate::AmpcSystem`]), which models the common AMPC idiom of
//! carrying unchanged data forward: conceptually machines rewrite data they
//! still need; physically nobody implements it that way and neither do we.
//! Space accounting is unaffected because peak space per round is computed
//! as `snapshot words + communication words`, which upper-bounds the
//! literal "fresh output DHT" model.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::key::Key;
use crate::value::DhtValue;

/// A fast multiply-xor hasher (FxHash-style) for the packed 64-bit keys.
/// SipHash resistance is unnecessary: keys are internal vertex identifiers.
#[derive(Default)]
pub(crate) struct PackedKeyHasher(u64);

impl Hasher for PackedKeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only fixed-width integer keys are ever hashed; route through write_u64.
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        // Single multiply-xorshift round; ample for low-collision integer ids.
        let mut x = self.0 ^ i;
        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 29;
        self.0 = x;
    }
}

type Build = BuildHasherDefault<PackedKeyHasher>;

/// An immutable-per-round key-value store measured in words.
///
/// `Dht` tracks the total word footprint of its contents incrementally so
/// the executor can account snapshot space in `O(1)` per round.
#[derive(Clone)]
pub struct Dht<V> {
    map: HashMap<u64, V, Build>,
    words: usize,
}

impl<V: DhtValue> Default for Dht<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: DhtValue> Dht<V> {
    /// Creates an empty table.
    pub fn new() -> Self {
        Dht { map: HashMap::default(), words: 0 }
    }

    /// Creates an empty table with capacity for `n` entries.
    pub fn with_capacity(n: usize) -> Self {
        Dht { map: HashMap::with_capacity_and_hasher(n, Build::default()), words: 0 }
    }

    /// Looks up `key`.
    #[inline]
    pub fn get(&self, key: Key) -> Option<&V> {
        self.map.get(&key.packed())
    }

    /// Returns true if `key` is present.
    #[inline]
    pub fn contains(&self, key: Key) -> bool {
        self.map.contains_key(&key.packed())
    }

    /// Inserts `value` at `key`, replacing any previous entry, and returns
    /// the previous entry if present.
    pub fn insert(&mut self, key: Key, value: V) -> Option<V> {
        self.words += value.words();
        let old = self.map.insert(key.packed(), value);
        if let Some(ref o) = old {
            self.words -= o.words();
        }
        old
    }

    /// Merges `value` into the entry at `key` using [`DhtValue::merge`],
    /// inserting it outright if absent.
    pub fn merge(&mut self, key: Key, value: V) {
        match self.map.get_mut(&key.packed()) {
            Some(existing) => {
                let before = existing.words();
                existing.merge(value);
                self.words = self.words - before + existing.words();
            }
            None => {
                self.words += value.words();
                self.map.insert(key.packed(), value);
            }
        }
    }

    /// Removes the entry at `key`, returning it if present.
    pub fn remove(&mut self, key: Key) -> Option<V> {
        let old = self.map.remove(&key.packed());
        if let Some(ref o) = old {
            self.words -= o.words();
        }
        old
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total word footprint of all stored values.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Word footprint broken down per keyspace, as sorted
    /// `(space, entries, words)` triples. O(n); intended for reports and
    /// tests, not hot paths.
    pub fn words_by_space(&self) -> Vec<(crate::Space, usize, usize)>
    where
        V: DhtValue,
    {
        let mut acc: std::collections::BTreeMap<crate::Space, (usize, usize)> =
            std::collections::BTreeMap::new();
        for (&packed, v) in &self.map {
            let space = (packed >> 48) as crate::Space;
            let e = acc.entry(space).or_insert((0, 0));
            e.0 += 1;
            e.1 += v.words();
        }
        acc.into_iter().map(|(s, (e, w))| (s, e, w)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u16 = 0;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut d: Dht<u64> = Dht::new();
        assert!(d.is_empty());
        assert_eq!(d.insert(Key::new(S, 1), 10), None);
        assert_eq!(d.insert(Key::new(S, 1), 20), Some(10));
        assert_eq!(d.get(Key::new(S, 1)), Some(&20));
        assert_eq!(d.remove(Key::new(S, 1)), Some(20));
        assert!(d.get(Key::new(S, 1)).is_none());
        assert_eq!(d.words(), 0);
    }

    #[test]
    fn words_track_vector_values() {
        let mut d: Dht<Vec<u64>> = Dht::new();
        d.insert(Key::new(S, 1), vec![1, 2, 3]); // 4 words
        d.insert(Key::new(S, 2), vec![7]); // 2 words
        assert_eq!(d.words(), 6);
        d.insert(Key::new(S, 1), vec![9]); // replaces 4 with 2
        assert_eq!(d.words(), 4);
        d.remove(Key::new(S, 2));
        assert_eq!(d.words(), 2);
    }

    #[test]
    fn merge_takes_maximum_for_u64() {
        let mut d: Dht<u64> = Dht::new();
        d.merge(Key::new(S, 5), 3);
        d.merge(Key::new(S, 5), 9);
        d.merge(Key::new(S, 5), 4);
        assert_eq!(d.get(Key::new(S, 5)), Some(&9));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn spaces_are_disjoint() {
        let mut d: Dht<u64> = Dht::new();
        d.insert(Key::new(1, 7), 100);
        d.insert(Key::new(2, 7), 200);
        assert_eq!(d.get(Key::new(1, 7)), Some(&100));
        assert_eq!(d.get(Key::new(2, 7)), Some(&200));
    }

    #[test]
    fn dense_keys_do_not_collide() {
        let mut d: Dht<u64> = Dht::new();
        for i in 0..10_000u64 {
            d.insert(Key::new(3, i), i * 2);
        }
        assert_eq!(d.len(), 10_000);
        for i in (0..10_000u64).step_by(997) {
            assert_eq!(d.get(Key::new(3, i)), Some(&(i * 2)));
        }
    }
}

#[cfg(test)]
mod space_breakdown_tests {
    use super::*;
    use crate::Key;

    #[test]
    fn words_by_space_partitions_total() {
        let mut d: Dht<Vec<u64>> = Dht::new();
        d.insert(Key::new(1, 0), vec![1, 2]); // 3 words
        d.insert(Key::new(1, 1), vec![3]); // 2 words
        d.insert(Key::new(2, 0), vec![4, 5, 6]); // 4 words
        let by = d.words_by_space();
        assert_eq!(by, vec![(1, 2, 5), (2, 1, 4)]);
        assert_eq!(by.iter().map(|&(_, _, w)| w).sum::<usize>(), d.words());
    }
}
