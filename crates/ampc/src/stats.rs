//! Round and run accounting.
//!
//! The paper's cost model is: number of **rounds**, number of **queries**
//! (adaptive DHT reads), and **total space** per round (live DHT words plus
//! the round's communication). [`RoundStats`] captures one round;
//! [`RunStats`] aggregates a full algorithm execution, including costs
//! *charged* for cited O(1)-round host-side primitives (`Contract`,
//! `Compose`) that run natively but must still pay their published price.

use std::borrow::Cow;

use crate::limits::LimitViolation;

/// Metered costs of a single executed AMPC round.
#[derive(Debug, Clone)]
pub struct RoundStats {
    /// Human-readable label supplied by the algorithm. Round names are
    /// static literals at every call site, so this is a borrow in practice
    /// — no per-round allocation.
    pub name: Cow<'static, str>,
    /// Zero-based round index within the run.
    pub index: usize,
    /// Number of DHT read operations ("queries" in the paper's terminology).
    pub reads: usize,
    /// Words transferred by reads.
    pub read_words: usize,
    /// Number of write/merge/delete operations.
    pub writes: usize,
    /// Words transferred by writes.
    pub write_words: usize,
    /// Largest read-word volume of any single machine this round.
    pub max_machine_read_words: usize,
    /// Largest write-word volume of any single machine this round.
    pub max_machine_write_words: usize,
    /// Entries in the read-only snapshot at the start of the round.
    pub snapshot_entries: usize,
    /// Words in the read-only snapshot at the start of the round.
    pub snapshot_words: usize,
    /// Total space consumed by this round: the stored snapshot plus the
    /// round's communication (read and written words). The paper: "the
    /// total space usage is determined by the maximum amount of
    /// communication that happens in any round".
    pub total_space_words: usize,
    /// Shuffle-cost model: bytes a real AMPC deployment would move over
    /// the network at this round's barrier — every write op ships its
    /// 8-byte packed key plus 8 bytes per value word to the machine
    /// owning the key, i.e. `8 · (writes + write_words)`. Deterministic
    /// (a pure function of the op stream, independent of backend and
    /// thread count).
    pub bytes_shuffled: usize,
    /// Budget violations observed (empty unless limits are configured).
    pub violations: Vec<LimitViolation>,
}

/// Aggregated costs of an algorithm run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    rounds: Vec<RoundStats>,
    charged_rounds: usize,
    charged_queries: usize,
    charged_space_peak: usize,
}

impl RunStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn push_round(&mut self, r: RoundStats) {
        self.rounds.push(r);
    }

    /// Records the published cost of a host-side primitive: `rounds` AMPC
    /// rounds, `queries` DHT reads, and a round space footprint of
    /// `space_words`. Used for cited O(1)-round building blocks that the
    /// simulator executes natively (see DESIGN.md, "Charging model").
    pub fn charge_external(&mut self, rounds: usize, queries: usize, space_words: usize) {
        self.charged_rounds += rounds;
        self.charged_queries += queries;
        self.charged_space_peak = self.charged_space_peak.max(space_words);
    }

    /// Total rounds: executed plus externally charged.
    pub fn rounds(&self) -> usize {
        self.rounds.len() + self.charged_rounds
    }

    /// Rounds actually executed through the DHT interface.
    pub fn executed_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Rounds charged on behalf of host-side primitives.
    pub fn charged_rounds(&self) -> usize {
        self.charged_rounds
    }

    /// Total queries: executed DHT reads plus externally charged reads.
    pub fn total_queries(&self) -> usize {
        self.rounds.iter().map(|r| r.reads).sum::<usize>() + self.charged_queries
    }

    /// Total words written across all executed rounds.
    pub fn total_write_words(&self) -> usize {
        self.rounds.iter().map(|r| r.write_words).sum()
    }

    /// Total modeled shuffle traffic across all executed rounds: what a
    /// real deployment would pay in network bytes to route every round's
    /// write ops to their owning machines.
    pub fn total_bytes_shuffled(&self) -> usize {
        self.rounds.iter().map(|r| r.bytes_shuffled).sum()
    }

    /// Maximum per-round total space over the run (executed and charged).
    pub fn peak_total_space(&self) -> usize {
        self.rounds
            .iter()
            .map(|r| r.total_space_words)
            .max()
            .unwrap_or(0)
            .max(self.charged_space_peak)
    }

    /// Largest single-machine read volume in any round.
    pub fn peak_machine_read_words(&self) -> usize {
        self.rounds.iter().map(|r| r.max_machine_read_words).max().unwrap_or(0)
    }

    /// Largest single-machine write volume in any round.
    pub fn peak_machine_write_words(&self) -> usize {
        self.rounds.iter().map(|r| r.max_machine_write_words).max().unwrap_or(0)
    }

    /// Per-round detail.
    pub fn per_round(&self) -> &[RoundStats] {
        &self.rounds
    }

    /// All recorded budget violations across rounds.
    pub fn violations(&self) -> impl Iterator<Item = &LimitViolation> {
        self.rounds.iter().flat_map(|r| r.violations.iter())
    }

    /// Renders a per-round cost table (markdown-ish, fixed-width) for
    /// reports and debugging.
    pub fn round_table(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:>4}  {:<22} {:>12} {:>12} {:>12} {:>14} {:>14}",
            "#", "round", "reads", "read words", "write words", "total space", "shuffle bytes"
        );
        for r in &self.rounds {
            let _ = writeln!(
                s,
                "{:>4}  {:<22} {:>12} {:>12} {:>12} {:>14} {:>14}",
                r.index,
                r.name,
                r.reads,
                r.read_words,
                r.write_words,
                r.total_space_words,
                r.bytes_shuffled
            );
        }
        if self.charged_rounds > 0 {
            let _ = writeln!(
                s,
                "   +  {:<22} {:>12} {:>12} {:>12} {:>14} {:>14}",
                format!("(charged x{})", self.charged_rounds),
                self.charged_queries,
                "-",
                "-",
                self.charged_space_peak,
                "-"
            );
        }
        s
    }

    /// Folds another run's statistics into this one (used when an algorithm
    /// invokes a sub-algorithm that ran its own [`crate::AmpcSystem`]).
    pub fn absorb(&mut self, other: &RunStats) {
        let base = self.rounds.len();
        for (i, r) in other.rounds.iter().enumerate() {
            let mut r = r.clone();
            r.index = base + i;
            self.rounds.push(r);
        }
        self.charged_rounds += other.charged_rounds;
        self.charged_queries += other.charged_queries;
        self.charged_space_peak = self.charged_space_peak.max(other.charged_space_peak);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(reads: usize, space: usize) -> RoundStats {
        RoundStats {
            name: "t".into(),
            index: 0,
            reads,
            read_words: reads,
            writes: 0,
            write_words: 0,
            max_machine_read_words: reads,
            max_machine_write_words: 0,
            snapshot_entries: 0,
            snapshot_words: space,
            total_space_words: space,
            bytes_shuffled: 0,
            violations: Vec::new(),
        }
    }

    #[test]
    fn bytes_shuffled_sums_across_rounds() {
        let mut s = RunStats::new();
        let mut a = round(1, 1);
        a.bytes_shuffled = 100;
        let mut b = round(2, 2);
        b.bytes_shuffled = 250;
        s.push_round(a);
        s.push_round(b);
        assert_eq!(s.total_bytes_shuffled(), 350);
    }

    #[test]
    fn totals_accumulate() {
        let mut s = RunStats::new();
        s.push_round(round(10, 100));
        s.push_round(round(5, 300));
        assert_eq!(s.rounds(), 2);
        assert_eq!(s.total_queries(), 15);
        assert_eq!(s.peak_total_space(), 300);
    }

    #[test]
    fn external_charges_count() {
        let mut s = RunStats::new();
        s.push_round(round(10, 100));
        s.charge_external(2, 50, 500);
        assert_eq!(s.rounds(), 3);
        assert_eq!(s.executed_rounds(), 1);
        assert_eq!(s.total_queries(), 60);
        assert_eq!(s.peak_total_space(), 500);
    }

    #[test]
    fn round_table_lists_rounds_and_charges() {
        let mut s = RunStats::new();
        s.push_round(round(10, 100));
        s.charge_external(2, 50, 500);
        let table = s.round_table();
        assert!(table.contains("t")); // round name
        assert!(table.contains("(charged x2)"));
        assert!(table.contains("500"));
    }

    #[test]
    fn absorb_reindexes_rounds() {
        let mut a = RunStats::new();
        a.push_round(round(1, 1));
        let mut b = RunStats::new();
        b.push_round(round(2, 2));
        b.charge_external(1, 3, 4);
        a.absorb(&b);
        assert_eq!(a.rounds(), 3);
        assert_eq!(a.per_round()[1].index, 1);
        assert_eq!(a.total_queries(), 6);
    }
}
