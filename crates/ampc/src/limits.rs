//! Local-space budgets and violation reporting.
//!
//! The defining restriction of AMPC is that each machine may read and write
//! at most `S` words per round, with `S = n^δ` sublinear. [`SpaceLimits`]
//! carries those budgets; when attached to an [`crate::AmpcConfig`] every
//! machine's reads and writes are checked each round. Violations are either
//! recorded (audit mode — useful for experiments that *measure* how close an
//! algorithm gets to its budget) or turned into hard errors (enforce mode —
//! used by the test suite to certify that the paper's algorithms really fit
//! in `n^δ` local space).

use std::borrow::Cow;
use std::fmt;

/// Per-machine, per-round word budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpaceLimits {
    /// Maximum words a machine may read from the snapshot DHT per round.
    pub read_words: usize,
    /// Maximum words a machine may write to the output DHT per round.
    pub write_words: usize,
    /// If true, exceeding a budget aborts the round with
    /// [`crate::AmpcError::LimitExceeded`]; otherwise the violation is only
    /// recorded in the round stats.
    pub enforce: bool,
}

impl SpaceLimits {
    /// Symmetric budget: `s` words of reads and `s` words of writes,
    /// recording violations without aborting.
    pub fn audit(s: usize) -> Self {
        SpaceLimits { read_words: s, write_words: s, enforce: false }
    }

    /// Symmetric budget that aborts the round on violation.
    pub fn enforce(s: usize) -> Self {
        SpaceLimits { read_words: s, write_words: s, enforce: true }
    }

    /// The classic AMPC setting `S = n^δ` (at least 64 words so toy inputs
    /// remain runnable).
    pub fn sublinear(n: usize, delta: f64) -> Self {
        let s = ((n as f64).powf(delta).ceil() as usize).max(64);
        Self::audit(s)
    }
}

/// Which budget a violation breached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LimitKind {
    /// Read-side (query) budget.
    Reads,
    /// Write-side budget.
    Writes,
}

impl fmt::Display for LimitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LimitKind::Reads => write!(f, "read words"),
            LimitKind::Writes => write!(f, "write words"),
        }
    }
}

/// A recorded budget breach.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LimitViolation {
    /// Zero-based round index.
    pub round: usize,
    /// Human-readable round label. Round names are static literals at every
    /// call site, so this is a borrow in practice — no per-violation
    /// allocation.
    pub round_name: Cow<'static, str>,
    /// Machine index that breached the budget.
    pub machine: usize,
    /// Words actually used.
    pub used: usize,
    /// The configured budget.
    pub budget: usize,
    /// Which side was breached.
    pub kind: LimitKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sublinear_budget_matches_power() {
        let l = SpaceLimits::sublinear(1 << 20, 0.5);
        assert_eq!(l.read_words, 1 << 10);
        assert!(!l.enforce);
    }

    #[test]
    fn sublinear_budget_has_floor() {
        let l = SpaceLimits::sublinear(10, 0.3);
        assert_eq!(l.read_words, 64);
    }

    #[test]
    fn enforce_flag_set_by_constructor() {
        assert!(SpaceLimits::enforce(128).enforce);
        assert!(!SpaceLimits::audit(128).enforce);
    }

    #[test]
    fn violation_display_is_informative() {
        let v = LimitViolation {
            round: 3,
            round_name: "probe".into(),
            machine: 7,
            used: 999,
            budget: 500,
            kind: LimitKind::Reads,
        };
        let msg = crate::AmpcError::LimitExceeded(v).to_string();
        assert!(msg.contains("round 3"));
        assert!(msg.contains("probe"));
        assert!(msg.contains("machine 7"));
        assert!(msg.contains("999"));
        assert!(msg.contains("500"));
        assert!(msg.contains("read words"));
    }
}
