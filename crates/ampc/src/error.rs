//! Error types for the AMPC runtime.

use std::fmt;

use crate::limits::LimitViolation;

/// Errors surfaced by the AMPC executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AmpcError {
    /// A machine exceeded its per-round local-space budget and enforcement
    /// is enabled. The violation records which budget was breached.
    LimitExceeded(LimitViolation),
}

impl fmt::Display for AmpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AmpcError::LimitExceeded(v) => write!(
                f,
                "AMPC local-space limit exceeded in round {} ({}): machine {} used {} {} of budget {}",
                v.round, v.round_name, v.machine, v.used, v.kind, v.budget
            ),
        }
    }
}

impl std::error::Error for AmpcError {}

/// Result alias for executor operations.
pub type AmpcResult<T> = Result<T, AmpcError>;
