//! Value trait for DHT entries.
//!
//! The AMPC model measures space in *words*. Every value stored in the DHT
//! reports its width via [`DhtValue::words`], and optionally defines how two
//! concurrent writes to the same key combine ([`DhtValue::merge`]).
//!
//! Merging exists because Step 1 of `ShrinkSmallCycles` (Figure 1 of the
//! paper) has many traversals *stamp* the same vertex with their rank; the
//! semantically required resolution is "keep the maximum". An associative
//! commutative combiner is physically realistic for a DHT (it is an
//! aggregating write) and keeps the simulation independent of machine
//! scheduling.

/// A value that can live in the shared DHT.
pub trait DhtValue: Clone + Send + Sync {
    /// Number of machine words this value occupies. Space and communication
    /// accounting are denominated in this unit.
    fn words(&self) -> usize;

    /// Combines a concurrently written value into `self`.
    ///
    /// Called when two machines issue merge-writes
    /// ([`crate::MachineCtx::write_merge`]) to the same key in one round.
    /// Must be associative and commutative so that results do not depend on
    /// machine order. The default keeps the larger operand according to the
    /// implementor's notion of priority; types that never use merge-writes
    /// can rely on the default, which panics to surface accidental use.
    fn merge(&mut self, other: Self) {
        let _ = other;
        panic!(
            "DhtValue::merge not implemented for this type; use write() instead of write_merge()"
        );
    }
}

impl DhtValue for u64 {
    fn words(&self) -> usize {
        1
    }

    /// `u64` merges by maximum — the combiner used for rank stamps.
    fn merge(&mut self, other: Self) {
        if other > *self {
            *self = other;
        }
    }
}

impl DhtValue for u32 {
    fn words(&self) -> usize {
        1
    }

    fn merge(&mut self, other: Self) {
        if other > *self {
            *self = other;
        }
    }
}

impl<T: DhtValue> DhtValue for Vec<T> {
    /// A vector charges one word of header plus the widths of its elements,
    /// mirroring how an adjacency list consumes DHT space.
    fn words(&self) -> usize {
        1 + self.iter().map(DhtValue::words).sum::<usize>()
    }
}

impl<A: DhtValue, B: DhtValue> DhtValue for (A, B) {
    fn words(&self) -> usize {
        self.0.words() + self.1.words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_merges_by_max() {
        let mut a = 3u64;
        a.merge(9);
        assert_eq!(a, 9);
        a.merge(1);
        assert_eq!(a, 9);
    }

    #[test]
    fn vec_words_counts_header_and_elements() {
        let v: Vec<u64> = vec![1, 2, 3];
        assert_eq!(v.words(), 4);
    }

    #[test]
    fn tuple_words_sums_components() {
        assert_eq!((1u64, 2u64).words(), 2);
    }

    #[test]
    #[should_panic(expected = "merge not implemented")]
    fn default_merge_panics() {
        #[derive(Clone)]
        struct NoMerge;
        impl DhtValue for NoMerge {
            fn words(&self) -> usize {
                1
            }
        }
        let mut x = NoMerge;
        x.merge(NoMerge);
    }
}
