//! DHT keys.
//!
//! Algorithms in the paper keep several logical tables in the shared DHT at
//! once (vertex ranks, successor pointers, stamps, parent pointers, …). We
//! model that with a composite key: a small *keyspace* tag plus a 64-bit
//! identifier, so one physical [`crate::Dht`] can host all logical tables of
//! an algorithm while space accounting stays unified.

use std::fmt;

/// Identifier of a logical table ("keyspace") within the DHT.
///
/// Algorithm crates define constants for their keyspaces, e.g. one for
/// vertex ranks and one for successor pointers.
pub type Space = u16;

/// A key in the shared DHT: `(keyspace, 64-bit id)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key {
    /// Logical table this key belongs to.
    pub space: Space,
    /// Identifier within the table (vertex id, edge id, …).
    pub id: u64,
}

impl Key {
    /// Bits of a packed key available to the identifier; the remaining high
    /// bits carry the keyspace tag. The packed layout is defined in this
    /// module and nowhere else — storage code must go through the helpers
    /// below rather than shifting by hand.
    pub(crate) const ID_BITS: u32 = 48;

    /// Largest identifier a key can carry (`2^48 − 1`).
    pub(crate) const MAX_ID: u64 = (1 << Key::ID_BITS) - 1;

    /// Upper clamp for direct-indexed ("dense") slab capacity hints: a slab
    /// can never usefully exceed the id domain, and a hint near `usize::MAX`
    /// must not be allowed to attempt a matching allocation. `2^28` slots is
    /// far above every workload in this repository while keeping the worst
    /// accidental allocation bounded (a few GiB, not an address-space-sized
    /// request).
    pub(crate) const MAX_DENSE_CAP: usize = 1 << 28;

    /// Creates a key in keyspace `space` with identifier `id`.
    #[inline]
    pub const fn new(space: Space, id: u64) -> Self {
        Key { space, id }
    }

    /// Packs the key into a single `u64`-sized probe-friendly value used by
    /// the internal hash. The id occupies the low 48 bits (sufficient for
    /// every workload in this repository; asserted in debug builds) and the
    /// space tag the high 16.
    #[inline]
    pub(crate) fn packed(self) -> u64 {
        debug_assert!(self.id <= Key::MAX_ID, "key id exceeds 48 bits: {}", self.id);
        ((self.space as u64) << Key::ID_BITS) | self.id
    }

    /// Extracts the keyspace tag from a packed key word.
    #[inline]
    pub(crate) const fn space_of_packed(packed: u64) -> Space {
        (packed >> Key::ID_BITS) as Space
    }

    /// Extracts the identifier from a packed key word (the dense backend's
    /// slab index and the range partitioner's sort key).
    #[inline]
    pub(crate) const fn id_of_packed(packed: u64) -> u64 {
        packed & Key::MAX_ID
    }

    /// Reconstructs a [`Key`] from its packed form (inverse of
    /// [`Key::packed`]).
    #[inline]
    pub(crate) const fn from_packed(packed: u64) -> Key {
        Key { space: Key::space_of_packed(packed), id: Key::id_of_packed(packed) }
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key({}:{})", self.space, self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_is_injective_across_spaces() {
        let a = Key::new(1, 7).packed();
        let b = Key::new(2, 7).packed();
        let c = Key::new(1, 8).packed();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn ordering_groups_by_space_first() {
        let mut keys = vec![Key::new(2, 0), Key::new(1, 9), Key::new(1, 3)];
        keys.sort();
        assert_eq!(keys, vec![Key::new(1, 3), Key::new(1, 9), Key::new(2, 0)]);
    }

    #[test]
    fn debug_format_is_compact() {
        assert_eq!(format!("{:?}", Key::new(3, 42)), "Key(3:42)");
    }

    #[test]
    fn packed_round_trips_for_random_keys() {
        // from_packed must invert packed exactly, and space_of_packed must
        // agree with the full unpacking.
        let mut r = crate::rng::SplitMix64::new(0xC0FFEE);
        for _ in 0..1000 {
            let key = Key::new(r.next_below(1 << 16) as Space, r.next_below(1 << 48));
            let p = key.packed();
            assert_eq!(Key::from_packed(p), key);
            assert_eq!(Key::space_of_packed(p), key.space);
        }
    }

    #[test]
    fn id_of_packed_matches_key_id() {
        let mut r = crate::rng::SplitMix64::new(0xDE);
        for _ in 0..1000 {
            let key = Key::new(r.next_below(1 << 16) as Space, r.next_below(1 << 48));
            assert_eq!(Key::id_of_packed(key.packed()), key.id);
        }
        assert_eq!(Key::id_of_packed(Key::new(u16::MAX, Key::MAX_ID).packed()), Key::MAX_ID);
    }

    #[test]
    fn packed_preserves_ordering_within_a_space() {
        let mut r = crate::rng::SplitMix64::new(11);
        for _ in 0..1000 {
            let a = Key::new(5, r.next_below(1 << 48));
            let b = Key::new(5, r.next_below(1 << 48));
            assert_eq!(a.packed().cmp(&b.packed()), a.cmp(&b));
        }
    }
}
