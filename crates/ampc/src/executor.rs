//! The round executor.
//!
//! [`AmpcSystem`] owns the current snapshot DHT and runs algorithm rounds:
//! work items are split into `M` contiguous chunks, one per machine; each
//! machine executes the user closure over its chunk with a private
//! [`MachineCtx`]; finally all write buffers are merged into the next
//! snapshot **in machine-index order**, which makes runs deterministic no
//! matter how the OS schedules the machine threads.
//!
//! The system is generic over its [`DhtStorage`] backend. With the
//! [`ShardedDht`](crate::ShardedDht) and [`DenseDht`](crate::DenseDht)
//! backends the merge phase partitions every machine's buffer by
//! [`DhtStorage::shard_of`] — a hash shard for the former, a contiguous id
//! range for the latter — preserving machine order within each partition,
//! and applies the partitions concurrently on scoped worker threads:
//! provably equivalent to the sequential global merge because cross-shard
//! keys never interact (see `crates/ampc/src/dht.rs` module docs).
//!
//! Machine write buffers and partition lists are pooled across rounds:
//! the drained (capacity-retaining) vectors come back from
//! [`DhtStorage::apply_ops`] and are handed to the next round's machines,
//! so steady-state rounds allocate nothing for buffering.

use std::borrow::Cow;
use std::marker::PhantomData;

use ampc_obs::{CounterId, HistId, Timer, TraceKind};

use crate::dht::{DhtBackend, DhtStorage, FlatDht, WriteOp};
use crate::error::{AmpcError, AmpcResult};
use crate::key::Key;
use crate::limits::SpaceLimits;
use crate::machine::MachineCtx;
use crate::stats::{RoundStats, RunStats};
use crate::value::DhtValue;

/// Configuration of a simulated AMPC deployment.
#[derive(Debug, Clone)]
pub struct AmpcConfig {
    /// Number of machines `M`.
    pub num_machines: usize,
    /// Run seed; all algorithm randomness derives from it.
    pub seed: u64,
    /// Optional per-machine, per-round space budgets.
    pub limits: Option<SpaceLimits>,
    /// Execute machines on scoped OS threads (capped at the hardware
    /// parallelism; each worker runs a block of machines). Disable for
    /// tiny inputs where fork-join overhead dominates, or to simplify
    /// debugging. Also gates the shard-parallel merge.
    pub parallel: bool,
    /// Which DHT storage backend the deployment uses. Pipelines dispatch on
    /// this value when choosing the concrete `S` for [`AmpcSystem<V, S>`];
    /// the backend never affects results, only merge parallelism.
    pub backend: DhtBackend,
}

impl Default for AmpcConfig {
    fn default() -> Self {
        AmpcConfig {
            num_machines: 8,
            seed: 0xA5A5_1234_5678_9ABC,
            limits: None,
            parallel: true,
            backend: DhtBackend::Flat,
        }
    }
}

impl AmpcConfig {
    /// Sets the machine count.
    pub fn with_machines(mut self, m: usize) -> Self {
        assert!(m > 0, "need at least one machine");
        self.num_machines = m;
        self
    }

    /// Sets the run seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attaches space budgets.
    pub fn with_limits(mut self, limits: SpaceLimits) -> Self {
        self.limits = Some(limits);
        self
    }

    /// Enables or disables threaded execution.
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Selects the DHT storage backend.
    pub fn with_backend(mut self, backend: DhtBackend) -> Self {
        self.backend = backend;
        self
    }
}

/// Summary of one executed round, returned alongside the per-item results.
#[derive(Debug, Clone)]
pub struct RoundOutcome<R> {
    /// Results produced by the per-item closure, in item order.
    pub results: Vec<R>,
    /// Queries issued during the round.
    pub reads: usize,
    /// Words written during the round.
    pub write_words: usize,
}

/// A simulated AMPC deployment: snapshot DHT + machines + meters.
///
/// Generic over the storage backend `S` (default: the flat reference
/// backend), monomorphized so adaptive reads cost a direct hash probe.
/// Pipelines pick `S` by matching on [`AmpcConfig::backend`].
pub struct AmpcSystem<V, S = FlatDht<V>> {
    snapshot: S,
    config: AmpcConfig,
    stats: RunStats,
    /// Drained machine write buffers recycled into subsequent rounds.
    spare_bufs: Vec<Vec<(Key, WriteOp<V>)>>,
    /// Drained per-shard partition lists recycled into subsequent rounds.
    spare_shard_lists: Vec<Vec<(Key, WriteOp<V>)>>,
    _value: PhantomData<fn() -> V>,
}

impl<V: DhtValue, S: DhtStorage<V>> AmpcSystem<V, S> {
    /// Creates a system whose first snapshot holds `initial` (the round-0
    /// input: typically the graph's adjacency or successor tables). Loading
    /// the input is not charged — the model assumes the input already
    /// resides in the DHT.
    pub fn new(config: AmpcConfig, initial: impl IntoIterator<Item = (Key, V)>) -> Self {
        let mut snapshot = S::for_backend(config.backend);
        for (k, v) in initial {
            snapshot.insert(k, v);
        }
        AmpcSystem {
            snapshot,
            config,
            stats: RunStats::new(),
            spare_bufs: Vec::new(),
            spare_shard_lists: Vec::new(),
            _value: PhantomData,
        }
    }

    /// The current read-only snapshot.
    pub fn snapshot(&self) -> &S {
        &self.snapshot
    }

    /// Accumulated run statistics.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Mutable access to statistics, for charging host-side primitives.
    pub fn stats_mut(&mut self) -> &mut RunStats {
        &mut self.stats
    }

    /// The deployment configuration.
    pub fn config(&self) -> &AmpcConfig {
        &self.config
    }

    /// Consumes the system, returning the final snapshot and statistics.
    pub fn finish(self) -> (S, RunStats) {
        (self.snapshot, self.stats)
    }

    /// Applies a host-side mutation of the snapshot **outside** the metered
    /// interface. Reserved for cited O(1)-round primitives executed
    /// natively; callers must pair this with [`RunStats::charge_external`]
    /// so the primitive pays its published cost (see DESIGN.md).
    pub fn host_update(&mut self, f: impl FnOnce(&mut S)) {
        f(&mut self.snapshot);
    }

    /// Executes one AMPC round over `items`.
    ///
    /// Items are split into `M` near-equal contiguous chunks; machine `j`
    /// runs `f(ctx, item)` for each item of chunk `j` against a context that
    /// reads the current snapshot and buffers writes. After all machines
    /// finish, buffers are merged in machine order into the next snapshot
    /// (shard-parallel when the backend shards — see the module docs).
    ///
    /// Returns the non-`None` closure results in item order.
    pub fn round<I, R, F>(
        &mut self,
        name: &'static str,
        items: &[I],
        f: F,
    ) -> AmpcResult<RoundOutcome<R>>
    where
        I: Sync,
        R: Send,
        F: Fn(&mut MachineCtx<'_, V, S>, &I) -> Option<R> + Sync,
    {
        let wall = Timer::start(ampc_obs::hist(HistId::RoundWallNs));
        let m = self.config.num_machines;
        let round_index = self.stats.executed_rounds();
        let chunk = items.len().div_ceil(m).max(1);
        let snapshot = &self.snapshot;
        let limits = self.config.limits;
        let seed = self.config.seed;

        // One recycled write buffer per machine slot: drained vectors from
        // earlier rounds keep their capacity, so the steady state buffers
        // writes without touching the allocator.
        let num_jobs = items.len().div_ceil(chunk);
        let mut bufs: Vec<Vec<(Key, WriteOp<V>)>> = Vec::with_capacity(num_jobs);
        bufs.resize_with(num_jobs, || self.spare_bufs.pop().unwrap_or_default());

        let run_machine = |(j, slice): (usize, &[I]), buf: Vec<(Key, WriteOp<V>)>| {
            let mut ctx = MachineCtx::new(snapshot, limits, j, round_index, seed, buf);
            let mut out = Vec::new();
            for item in slice {
                if let Some(r) = f(&mut ctx, item) {
                    out.push(r);
                }
            }
            (ctx, out)
        };

        // Run the machines, then immediately reduce each context to owned
        // data (buffers + meters) so the borrow of `self.snapshot` ends
        // before the merge phase mutates it.
        struct MachineOutput<V, R> {
            buf: Vec<(Key, WriteOp<V>)>,
            reads: usize,
            read_words: usize,
            writes: usize,
            write_words: usize,
            violation: Option<crate::limits::LimitViolation>,
            results: Vec<R>,
        }
        let finish = |(mut ctx, results): (MachineCtx<'_, V, S>, Vec<R>)| MachineOutput {
            buf: std::mem::take(&mut ctx.write_buf),
            reads: ctx.reads,
            read_words: ctx.read_words,
            writes: ctx.writes,
            write_words: ctx.write_words,
            violation: ctx.violation.take(),
            results,
        };
        // Deployments are often configured with far more simulated machines
        // than the host has cores (e.g. M = n/4 in the audit experiments),
        // so workers are capped at the hardware parallelism and each worker
        // runs a contiguous block of machine indices. Results land in a
        // slot per machine, which keeps the merge below in machine-index
        // order no matter which worker ran which machine.
        let workers = std::thread::available_parallelism().map_or(1, usize::from).min(m);
        let mut machines: Vec<MachineOutput<V, R>> =
            if self.config.parallel && workers > 1 && items.len() > chunk {
                let jobs: Vec<(usize, &[I])> = items.chunks(chunk).enumerate().collect();
                let mut slots: Vec<Option<MachineOutput<V, R>>> = Vec::new();
                slots.resize_with(jobs.len(), || None);
                let block = jobs.len().div_ceil(workers).max(1);
                std::thread::scope(|scope| {
                    let run_machine = &run_machine;
                    let finish = &finish;
                    let jobs = &jobs;
                    for (w, (block_of_slots, block_of_bufs)) in
                        slots.chunks_mut(block).zip(bufs.chunks_mut(block)).enumerate()
                    {
                        scope.spawn(move || {
                            for (off, (slot, buf)) in
                                block_of_slots.iter_mut().zip(block_of_bufs.iter_mut()).enumerate()
                            {
                                *slot = Some(finish(run_machine(
                                    jobs[w * block + off],
                                    std::mem::take(buf),
                                )));
                            }
                        });
                    }
                });
                slots.into_iter().map(|s| s.expect("machine worker panicked")).collect()
            } else {
                items
                    .chunks(chunk)
                    .enumerate()
                    .zip(bufs.drain(..))
                    .map(|(job, buf)| finish(run_machine(job, buf)))
                    .collect()
            };

        // Gather stats and move out the first violation before consuming
        // the buffers (violations leave the machine output by value — they
        // are not cloned again into the round stats).
        let mut stats = RoundStats {
            name: Cow::Borrowed(name),
            index: round_index,
            reads: 0,
            read_words: 0,
            writes: 0,
            write_words: 0,
            max_machine_read_words: 0,
            max_machine_write_words: 0,
            snapshot_entries: snapshot.len(),
            snapshot_words: snapshot.words(),
            total_space_words: 0,
            bytes_shuffled: 0,
            violations: Vec::new(),
        };
        for mo in &mut machines {
            stats.reads += mo.reads;
            stats.read_words += mo.read_words;
            stats.writes += mo.writes;
            stats.write_words += mo.write_words;
            stats.max_machine_read_words = stats.max_machine_read_words.max(mo.read_words);
            stats.max_machine_write_words = stats.max_machine_write_words.max(mo.write_words);
            if let Some(mut v) = mo.violation.take() {
                v.round_name = Cow::Borrowed(name);
                stats.violations.push(v);
            }
        }
        stats.total_space_words = stats.snapshot_words + stats.read_words + stats.write_words;
        stats.bytes_shuffled = 8 * (stats.writes + stats.write_words);

        let enforce = limits.map(|l| l.enforce).unwrap_or(false);
        if enforce {
            if let Some(v) = stats.violations.first().cloned() {
                self.stats.push_round(stats);
                return Err(AmpcError::LimitExceeded(v));
            }
        }

        // Deterministic merge. The round-finish phase partitions each
        // machine's buffer by `shard_of` — a hash shard (sharded backend)
        // or a contiguous id range (dense backend) — visiting machines in
        // index order so every partition's op list is the machine-order
        // subsequence of ops landing on it; `apply_ops` then applies the
        // partitions (concurrently for a multi-shard backend). `shard_of`
        // is a pure function of the packed key, so keys never span
        // partitions and the result is byte-identical to the sequential
        // global machine-order merge.
        let nshards = self.snapshot.shard_count();
        let mut results = Vec::new();
        let op_lists: Vec<Vec<(Key, WriteOp<V>)>> = if nshards == 1 {
            // Single-shard backend: hand each machine's buffer over as-is
            // (one list per machine, applied sequentially in index order) —
            // no concatenation copy on the default flat path.
            let mut lists = Vec::with_capacity(machines.len());
            for mut mo in machines {
                lists.push(std::mem::take(&mut mo.buf));
                results.append(&mut mo.results);
            }
            lists
        } else {
            let total_ops: usize = machines.iter().map(|mo| mo.buf.len()).sum();
            // Both partitioners spread ops near-uniformly (hashing by
            // construction, id ranges because ids are dense in practice);
            // recycled lists keep last round's capacity and fresh ones are
            // pre-sized, so the partition pass never reallocates mid-round.
            let mut by_shard: Vec<Vec<(Key, WriteOp<V>)>> = Vec::with_capacity(nshards);
            by_shard.resize_with(nshards, || {
                self.spare_shard_lists
                    .pop()
                    .unwrap_or_else(|| Vec::with_capacity(total_ops / nshards + 16))
            });
            for mut mo in machines {
                for (key, op) in mo.buf.drain(..) {
                    by_shard[self.snapshot.shard_of(key)].push((key, op));
                }
                // The machine's buffer is drained — recycle it.
                self.spare_bufs.push(std::mem::take(&mut mo.buf));
                results.append(&mut mo.results);
            }
            by_shard
        };
        let drained = self.snapshot.apply_ops(op_lists, self.config.parallel);
        // `apply_ops` hands the lists back drained with capacity intact;
        // route them to the pool the next round will draw them from.
        if nshards == 1 {
            self.spare_bufs.extend(drained);
        } else {
            self.spare_shard_lists.extend(drained);
        }

        ampc_obs::counter(CounterId::Rounds).inc();
        ampc_obs::counter(CounterId::OpsApplied).add(stats.writes as u64);
        ampc_obs::counter(CounterId::BytesShuffled).add(stats.bytes_shuffled as u64);
        ampc_obs::trace(TraceKind::RoundCompleted, round_index as u64, stats.bytes_shuffled as u64);
        wall.stop();

        let outcome = RoundOutcome { results, reads: stats.reads, write_words: stats.write_words };
        self.stats.push_round(stats);
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u16 = 0;
    const AUX: u16 = 1;

    fn system(m: usize, n: u64) -> AmpcSystem<u64> {
        AmpcSystem::new(
            AmpcConfig::default().with_machines(m).with_seed(7),
            (0..n).map(|i| (Key::new(S, i), i)),
        )
    }

    #[test]
    fn round_applies_writes_after_completion() {
        let mut sys = system(4, 100);
        let ids: Vec<u64> = (0..100).collect();
        sys.round("double", &ids, |ctx, &i| {
            let v = *ctx.read(Key::new(S, i)).unwrap();
            ctx.write(Key::new(S, i), v * 2);
            None::<()>
        })
        .unwrap();
        assert_eq!(sys.snapshot().get(Key::new(S, 10)), Some(&20));
        assert_eq!(sys.stats().rounds(), 1);
        assert_eq!(sys.stats().total_queries(), 100);
    }

    #[test]
    fn results_preserve_item_order() {
        let mut sys = system(7, 50);
        let ids: Vec<u64> = (0..50).collect();
        let out = sys
            .round("echo", &ids, |_, &i| if i % 2 == 0 { Some(i) } else { None })
            .unwrap()
            .results;
        assert_eq!(out, (0..50).filter(|i| i % 2 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn writes_invisible_within_round_visible_next_round() {
        let mut sys = system(3, 10);
        let ids: Vec<u64> = (0..10).collect();
        sys.round("stage", &ids, |ctx, &i| {
            ctx.write(Key::new(AUX, i), i + 100);
            // Not visible yet:
            assert!(ctx.read(Key::new(AUX, i)).is_none());
            None::<()>
        })
        .unwrap();
        sys.round("check", &ids, |ctx, &i| {
            assert_eq!(ctx.read(Key::new(AUX, i)), Some(&(i + 100)));
            None::<()>
        })
        .unwrap();
    }

    #[test]
    fn merge_writes_are_schedule_independent() {
        // All items merge-stamp key 0; the result must be the max regardless
        // of machine layout. Compare two very different machine counts.
        for m in [1, 13] {
            let mut sys = system(m, 64);
            let ids: Vec<u64> = (0..64).collect();
            sys.round("stamp", &ids, |ctx, &i| {
                ctx.write_merge(Key::new(AUX, 0), i * 31 % 57);
                None::<()>
            })
            .unwrap();
            assert_eq!(sys.snapshot().get(Key::new(AUX, 0)), Some(&56));
        }
    }

    #[test]
    fn deletes_remove_entries() {
        let mut sys = system(2, 10);
        let ids: Vec<u64> = (0..10).collect();
        sys.round("gc", &ids, |ctx, &i| {
            if i < 5 {
                ctx.delete(Key::new(S, i));
            }
            None::<()>
        })
        .unwrap();
        assert_eq!(sys.snapshot().len(), 5);
        assert!(sys.snapshot().get(Key::new(S, 2)).is_none());
        assert!(sys.snapshot().get(Key::new(S, 7)).is_some());
    }

    #[test]
    fn enforcement_errors_the_round() {
        let mut sys: AmpcSystem<u64> = AmpcSystem::new(
            AmpcConfig::default().with_machines(1).with_limits(SpaceLimits::enforce(3)),
            (0..10u64).map(|i| (Key::new(S, i), i)),
        );
        let ids: Vec<u64> = (0..10).collect();
        let err = sys
            .round("greedy", &ids, |ctx, &i| {
                ctx.read(Key::new(S, i));
                None::<()>
            })
            .unwrap_err();
        let AmpcError::LimitExceeded(v) = err;
        assert_eq!(v.budget, 3);
    }

    #[test]
    fn audit_mode_records_without_failing() {
        let mut sys: AmpcSystem<u64> = AmpcSystem::new(
            AmpcConfig::default().with_machines(1).with_limits(SpaceLimits::audit(3)),
            (0..10u64).map(|i| (Key::new(S, i), i)),
        );
        let ids: Vec<u64> = (0..10).collect();
        sys.round("greedy", &ids, |ctx, &i| {
            ctx.read(Key::new(S, i));
            None::<()>
        })
        .unwrap();
        assert_eq!(sys.stats().violations().count(), 1);
    }

    #[test]
    fn determinism_across_machine_counts() {
        // Same seed, different machine counts: identical final snapshots for
        // an algorithm using only puts to distinct keys + rng.
        let run = |m: usize| -> Vec<(u64, u64)> {
            let mut sys = system(m, 200);
            let ids: Vec<u64> = (0..200).collect();
            sys.round("randomize", &ids, |ctx, &i| {
                let r = ctx.rng(0, i).next_u64();
                ctx.write(Key::new(AUX, i), r);
                None::<()>
            })
            .unwrap();
            (0..200).map(|i| (i, *sys.snapshot().get(Key::new(AUX, i)).unwrap())).collect()
        };
        assert_eq!(run(1), run(16));
    }

    #[test]
    fn total_space_counts_snapshot_plus_communication() {
        let mut sys = system(2, 100); // snapshot: 100 words
        let ids: Vec<u64> = (0..50).collect();
        sys.round("grow", &ids, |ctx, &i| {
            ctx.read(Key::new(S, i)); // 50 read words
            ctx.write(Key::new(AUX, i), i); // 50 write words
            None::<()>
        })
        .unwrap();
        assert_eq!(sys.stats().peak_total_space(), 200);
    }

    #[test]
    fn empty_item_list_is_a_noop_round() {
        let mut sys = system(4, 10);
        let ids: Vec<u64> = Vec::new();
        let out = sys.round("idle", &ids, |_, _: &u64| Some(1u64)).unwrap();
        assert!(out.results.is_empty());
        assert_eq!(sys.stats().rounds(), 1);
    }
}

#[cfg(test)]
mod backend_equivalence_tests {
    use super::*;
    use crate::dht::{DenseDht, ShardedDht};

    const S: u16 = 0;
    const AUX: u16 = 1;

    /// A three-round workload exercising every op kind (put, merge, delete)
    /// plus rng, returning the run's canonical observable state.
    fn run_workload<St: DhtStorage<u64>>(
        machines: usize,
        backend: DhtBackend,
    ) -> (Vec<(Key, u64)>, String) {
        let n = 500u64;
        let cfg =
            AmpcConfig::default().with_machines(machines).with_seed(0xBEEF).with_backend(backend);
        let mut sys: AmpcSystem<u64, St> =
            AmpcSystem::new(cfg, (0..n).map(|i| (Key::new(S, i), i)));
        let ids: Vec<u64> = (0..n).collect();
        sys.round("mix", &ids, |ctx, &i| {
            let v = *ctx.read(Key::new(S, i)).unwrap();
            ctx.write(Key::new(S, i), v.wrapping_mul(3));
            ctx.write_merge(Key::new(AUX, i % 13), ctx.rng(1, i).next_u64() % 1000);
            if i % 7 == 0 {
                ctx.delete(Key::new(S, (i + 1) % n));
            }
            None::<()>
        })
        .unwrap();
        sys.round("again", &ids, |ctx, &i| {
            if let Some(&v) = ctx.read(Key::new(S, i)) {
                ctx.write_merge(Key::new(AUX, i % 13), v % 997);
            }
            None::<()>
        })
        .unwrap();
        let (snapshot, stats) = sys.finish();
        let mut fp = String::new();
        for r in stats.per_round() {
            use std::fmt::Write as _;
            let _ = writeln!(
                fp,
                "{} {} {} {} {} {} {}",
                r.name,
                r.reads,
                r.read_words,
                r.writes,
                r.write_words,
                r.snapshot_words,
                r.total_space_words
            );
        }
        (snapshot.sorted_entries(), fp)
    }

    #[test]
    fn sharded_snapshot_is_byte_identical_to_flat() {
        for machines in [1, 3, 16] {
            let flat = run_workload::<FlatDht<u64>>(machines, DhtBackend::Flat);
            for shards in [2usize, 8, 64] {
                let sharded =
                    run_workload::<ShardedDht<u64>>(machines, DhtBackend::Sharded { shards });
                assert_eq!(flat.0, sharded.0, "snapshot diverged (m={machines}, s={shards})");
                assert_eq!(flat.1, sharded.1, "stats diverged (m={machines}, s={shards})");
            }
        }
    }

    #[test]
    fn sharded_backend_words_match_flat() {
        // The stats fingerprint includes every round's snapshot_words, so a
        // drift in ShardedDht's per-shard word accounting fails here even
        // if the entries themselves agree.
        let flat = run_workload::<FlatDht<u64>>(4, DhtBackend::Flat);
        let sharded = run_workload::<ShardedDht<u64>>(4, DhtBackend::sharded());
        assert_eq!(flat.0, sharded.0);
        assert_eq!(flat.1, sharded.1);
    }

    #[test]
    fn dense_snapshot_is_byte_identical_to_flat() {
        // Slab capacities straddle the 0..500 id domain of the workload:
        // cap 64 routes most keys through the overflow map, cap 4096 keeps
        // everything slab-resident — both must match flat byte-for-byte,
        // entries and per-round accounting alike.
        for machines in [1, 3, 16] {
            let flat = run_workload::<FlatDht<u64>>(machines, DhtBackend::Flat);
            for cap in [64usize, 500, 4096] {
                let dense = run_workload::<DenseDht<u64>>(machines, DhtBackend::Dense { cap });
                assert_eq!(flat.0, dense.0, "snapshot diverged (m={machines}, cap={cap})");
                assert_eq!(flat.1, dense.1, "stats diverged (m={machines}, cap={cap})");
            }
        }
    }

    #[test]
    fn dense_backend_words_match_flat() {
        let flat = run_workload::<FlatDht<u64>>(4, DhtBackend::Flat);
        let dense = run_workload::<DenseDht<u64>>(4, DhtBackend::dense());
        assert_eq!(flat.0, dense.0);
        assert_eq!(flat.1, dense.1);
    }
}
