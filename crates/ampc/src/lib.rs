//! # `ampc` — a simulator runtime for the Adaptive Massively Parallel Computation model
//!
//! The AMPC model (Behnezhad et al., and the setting of Latypov–Łącki–Maus–Uitto,
//! SPAA 2023) extends MPC with a shared **distributed hash table** (DHT):
//!
//! * `M` machines, each with local space `S` (strictly sublinear in the input
//!   size `N`; typically `S = n^δ`).
//! * Computation proceeds in synchronous **rounds**. Within a round every
//!   machine may **adaptively** read up to `S` words from a *read-only* DHT
//!   (the output of the previous round) and write up to `S` words to a
//!   *write-only* DHT which becomes the next round's read-only input.
//! * Total space `T = S · M` should be linear in the input, `T = O(N)`.
//!
//! This crate executes algorithms against that cost model *in process*. The
//! quantities the paper reasons about — **rounds**, **queries** (DHT reads),
//! and **total space** (live DHT words + per-round communication) — are all
//! counting quantities, so a faithful simulator only has to (a) expose the
//! same adaptive read/write interface and (b) meter every access. That is
//! exactly what [`AmpcSystem`] does:
//!
//! ```
//! use ampc::{AmpcConfig, AmpcSystem, Key, DhtValue};
//!
//! #[derive(Clone, Debug, PartialEq)]
//! struct Val(u64);
//! impl DhtValue for Val {
//!     fn words(&self) -> usize { 1 }
//! }
//!
//! const SPACE: u16 = 0;
//! let mut sys: AmpcSystem<Val> = AmpcSystem::new(
//!     AmpcConfig::default().with_machines(4),
//!     (0..16u64).map(|i| (Key::new(SPACE, i), Val(i))),
//! );
//! // One AMPC round: every item reads its successor's value and writes a sum.
//! let ids: Vec<u64> = (0..16).collect();
//! sys.round("sum-with-next", &ids, |ctx, &i| {
//!     let next = ctx.read(Key::new(SPACE, (i + 1) % 16)).unwrap().0;
//!     ctx.write(Key::new(SPACE, i), Val(i + next));
//!     None::<()>
//! }).unwrap();
//! assert_eq!(sys.stats().rounds(), 1);
//! assert_eq!(sys.snapshot().get(Key::new(SPACE, 3)), Some(&Val(3 + 4)));
//! ```
//!
//! Machines within a round are independent by model definition (they read an
//! immutable snapshot and buffer private writes), so the executor spreads
//! them over scoped OS threads (capped at the hardware parallelism); write
//! buffers are merged in machine-index order, keeping every run bit-for-bit
//! deterministic regardless of thread scheduling.
//!
//! Snapshot storage is pluggable through the [`DhtStorage`] trait:
//! [`FlatDht`] is the single-map reference backend, [`ShardedDht`]
//! hash-partitions keys over power-of-two shards so the round-finish merge
//! runs shard-parallel, and [`DenseDht`] stores each keyspace in a
//! direct-indexed slab (hash-map overflow for out-of-slab ids) so an
//! adaptive read is a bounds check plus an array index — no hashing — with
//! a range-partitioned parallel merge. Select a backend with
//! [`AmpcConfig::with_backend`]; all three produce byte-identical
//! snapshots and [`RunStats`] for the same seed (cross-partition keys
//! never interact, and machine order is preserved within every partition).

#![warn(missing_docs)]

mod dht;
mod error;
mod executor;
mod key;
mod limits;
mod machine;
pub mod rng;
mod stats;
mod value;

pub use dht::{DenseDht, Dht, DhtBackend, DhtStorage, FlatDht, ShardedDht, WriteOp};
pub use error::{AmpcError, AmpcResult};
pub use executor::{AmpcConfig, AmpcSystem, RoundOutcome};
pub use key::{Key, Space};
pub use limits::{LimitViolation, SpaceLimits};
pub use machine::MachineCtx;
pub use stats::{RoundStats, RunStats};
pub use value::DhtValue;
