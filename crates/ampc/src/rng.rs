//! Deterministic randomness for simulated machines.
//!
//! Every random draw in the runtime and in the algorithm crates derives from
//! `(run seed, round, tag, id)` via a SplitMix64-style finalizer. This makes
//! runs reproducible and — crucially for a parallel simulator — independent
//! of how items are distributed across machines or threads.

/// SplitMix64 state-advance + finalizer. A tiny, well-studied 64-bit PRNG
/// (Steele, Lea, Flood 2014); adequate statistical quality for algorithmic
//  sampling and far faster than cryptographic generators.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix(self.state)
    }

    /// Uniform draw in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift with rejection for exact uniformity.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// The SplitMix64 output finalizer: a bijective avalanching mix of 64 bits.
#[inline]
pub fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a stream seed from independent components. Components are mixed
/// sequentially so that any change to any component decorrelates the stream.
#[inline]
pub fn derive_seed(parts: &[u64]) -> u64 {
    let mut acc = 0x243F_6A88_85A3_08D3; // pi digits; arbitrary non-zero start
    for &p in parts {
        acc = mix(acc ^ p.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
    acc
}

/// Convenience: a generator for a `(seed, round, tag, id)` context.
#[inline]
pub fn stream(seed: u64, round: u64, tag: u64, id: u64) -> SplitMix64 {
    SplitMix64::new(derive_seed(&[seed, round, tag, id]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_context() {
        let a: Vec<u64> =
            (0..8).map(|_| 0).scan(stream(1, 2, 3, 4), |r, _| Some(r.next_u64())).collect();
        let b: Vec<u64> =
            (0..8).map(|_| 0).scan(stream(1, 2, 3, 4), |r, _| Some(r.next_u64())).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_contexts_decorrelate() {
        assert_ne!(stream(1, 2, 3, 4).next_u64(), stream(1, 2, 3, 5).next_u64());
        assert_ne!(stream(1, 2, 3, 4).next_u64(), stream(1, 2, 4, 4).next_u64());
        assert_ne!(stream(1, 2, 3, 4).next_u64(), stream(2, 2, 3, 4).next_u64());
    }

    #[test]
    fn next_below_stays_in_range_and_covers() {
        let mut r = SplitMix64::new(42);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let x = r.next_below(7) as usize;
            assert!(x < 7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear in 1000 draws");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bernoulli_rate_roughly_matches_p() {
        let mut r = SplitMix64::new(11);
        let hits = (0..20_000).filter(|_| r.bernoulli(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate} too far from 0.25");
    }

    #[test]
    fn mix_is_bijective_on_samples() {
        // Spot-check injectivity on a sample; mix is a known bijection.
        use std::collections::HashSet;
        let outs: HashSet<u64> = (0..10_000u64).map(mix).collect();
        assert_eq!(outs.len(), 10_000);
    }
}
