//! Property tests for the `ampc` primitives: key ordering, rng stream
//! independence, and space-limit metering. Cases run over deterministic
//! seeded loops (see `rng` module docs), so failures reproduce exactly.

use ampc::rng::{self, SplitMix64};
use ampc::{AmpcConfig, AmpcError, AmpcSystem, Key, LimitViolation, SpaceLimits};

const CASES: u64 = 64;

// ---------------------------------------------------------------------------
// Key: ordering and packing.
// ---------------------------------------------------------------------------

/// `Key`'s derived `Ord` must match lexicographic `(space, id)` order —
/// algorithms rely on sorted key ranges grouping a keyspace contiguously.
#[test]
fn key_ordering_is_lexicographic_on_space_then_id() {
    let mut r = SplitMix64::new(0x5E7_0DD);
    for case in 0..CASES {
        let a = Key::new(r.next_below(8) as u16, r.next_below(1 << 20));
        let b = Key::new(r.next_below(8) as u16, r.next_below(1 << 20));
        let expected = (a.space, a.id).cmp(&(b.space, b.id));
        assert_eq!(a.cmp(&b), expected, "case {case}: {a:?} vs {b:?}");
    }
}

/// Sorting mixed-keyspace keys groups each keyspace contiguously.
#[test]
fn sorted_keys_group_by_space() {
    let mut r = SplitMix64::new(7);
    let mut keys: Vec<Key> =
        (0..200).map(|_| Key::new(r.next_below(5) as u16, r.next_below(1000))).collect();
    keys.sort();
    for w in keys.windows(2) {
        assert!(w[0].space <= w[1].space);
        if w[0].space == w[1].space {
            assert!(w[0].id <= w[1].id);
        }
    }
}

/// Equal keys must agree on hash-relevant identity: inserting the same
/// `(space, id)` twice into a system's DHT overwrites rather than duplicates.
#[test]
fn equal_keys_are_one_dht_entry() {
    let sys: AmpcSystem<u64> =
        AmpcSystem::new(AmpcConfig::default(), [(Key::new(3, 42), 1u64), (Key::new(3, 42), 2u64)]);
    assert_eq!(sys.snapshot().len(), 1);
    assert_eq!(sys.snapshot().get(Key::new(3, 42)), Some(&2));
}

// ---------------------------------------------------------------------------
// rng: stream independence.
// ---------------------------------------------------------------------------

/// Streams for distinct `(seed, round, tag, id)` contexts must decorrelate:
/// first draws collide no more often than chance (here: not at all across
/// a few thousand contexts).
#[test]
fn rng_streams_are_pairwise_distinct_across_contexts() {
    use std::collections::HashSet;
    let mut seen = HashSet::new();
    for round in 0..4u64 {
        for tag in 0..4u64 {
            for id in 0..256u64 {
                let x = rng::stream(99, round, tag, id).next_u64();
                assert!(seen.insert(x), "collision at round={round} tag={tag} id={id}");
            }
        }
    }
}

/// The per-item stream depends only on `(seed, round, tag, id)` — never on
/// which machine ran the item. Run the identical round under different
/// machine counts and require identical drawn values.
#[test]
fn rng_streams_independent_of_machine_assignment() {
    let draws = |machines: usize| -> Vec<u64> {
        let ids: Vec<u64> = (0..128).collect();
        let mut sys: AmpcSystem<u64> = AmpcSystem::new(
            AmpcConfig::default().with_machines(machines).with_seed(1234),
            ids.iter().map(|&i| (Key::new(0, i), i)),
        );
        sys.round("draw", &ids, |ctx, &i| Some(ctx.rng(7, i).next_u64())).unwrap().results
    };
    let one = draws(1);
    assert_eq!(one, draws(2));
    assert_eq!(one, draws(31));
    assert_eq!(one, draws(128));
}

/// Changing the run seed must change (essentially all of) the streams.
#[test]
fn rng_streams_depend_on_run_seed() {
    let differing = (0..CASES)
        .filter(|&i| rng::stream(1, 0, 0, i).next_u64() != rng::stream(2, 0, 0, i).next_u64())
        .count() as u64;
    assert_eq!(differing, CASES);
}

// ---------------------------------------------------------------------------
// SpaceLimits: metered violation detection.
// ---------------------------------------------------------------------------

fn overdraw_reads(limits: SpaceLimits, reads_per_item: usize) -> Result<usize, AmpcError> {
    let ids: Vec<u64> = (0..16).collect();
    let mut sys: AmpcSystem<u64> = AmpcSystem::new(
        AmpcConfig::default().with_machines(1).with_limits(limits),
        ids.iter().map(|&i| (Key::new(0, i), i)),
    );
    sys.round("overdraw", &ids, |ctx, &i| {
        for _ in 0..reads_per_item {
            ctx.read(Key::new(0, i));
        }
        None::<()>
    })?;
    Ok(sys.stats().violations().count())
}

/// Exceeding an enforced read budget must surface the metered error — with
/// the true usage and budget — not silently pass.
#[test]
fn enforced_read_budget_violation_is_metered() {
    let err = overdraw_reads(SpaceLimits::enforce(10), 2).unwrap_err();
    let AmpcError::LimitExceeded(LimitViolation { used, budget, machine, round, .. }) = err;
    assert!(used > 10, "reported usage {used} not over budget");
    assert_eq!(budget, 10);
    assert_eq!(machine, 0);
    assert_eq!(round, 0);
}

/// The same overdraw in audit mode must succeed but record the violation.
#[test]
fn audited_read_budget_violation_is_recorded() {
    let violations = overdraw_reads(SpaceLimits::audit(10), 2).unwrap();
    assert_eq!(violations, 1);
}

/// A run that stays within budget must neither error nor record anything.
#[test]
fn within_budget_run_is_clean() {
    let violations = overdraw_reads(SpaceLimits::enforce(1000), 2).unwrap();
    assert_eq!(violations, 0);
}

/// Write-side budgets are enforced symmetrically.
#[test]
fn enforced_write_budget_violation_is_metered() {
    let ids: Vec<u64> = (0..16).collect();
    let mut sys: AmpcSystem<u64> = AmpcSystem::new(
        AmpcConfig::default().with_machines(1).with_limits(SpaceLimits::enforce(8)),
        std::iter::empty(),
    );
    let err = sys
        .round("flood", &ids, |ctx, &i| {
            ctx.write(Key::new(1, i), i);
            None::<()>
        })
        .unwrap_err();
    let msg = err.to_string();
    let AmpcError::LimitExceeded(v) = err;
    assert_eq!(v.budget, 8);
    assert!(v.used > 8);
    assert!(msg.contains("write words"), "wrong side reported: {msg}");
}

/// Violations carry the failing round's name so audits are attributable.
#[test]
fn violation_names_the_round() {
    let ids: Vec<u64> = (0..32).collect();
    let mut sys: AmpcSystem<u64> = AmpcSystem::new(
        AmpcConfig::default().with_machines(2).with_limits(SpaceLimits::audit(4)),
        ids.iter().map(|&i| (Key::new(0, i), i)),
    );
    sys.round("hungry-round", &ids, |ctx, &i| {
        ctx.read(Key::new(0, i));
        None::<()>
    })
    .unwrap();
    let v = sys.stats().violations().next().expect("violation recorded");
    assert_eq!(v.round_name, "hungry-round");
}

/// Per-machine accounting: splitting the same total work across more
/// machines reduces each machine's usage below the budget.
#[test]
fn budgets_are_per_machine_not_global() {
    let run = |machines: usize| -> usize {
        let ids: Vec<u64> = (0..64).collect();
        let mut sys: AmpcSystem<u64> = AmpcSystem::new(
            AmpcConfig::default().with_machines(machines).with_limits(SpaceLimits::audit(16)),
            ids.iter().map(|&i| (Key::new(0, i), i)),
        );
        sys.round("spread", &ids, |ctx, &i| {
            ctx.read(Key::new(0, i));
            None::<()>
        })
        .unwrap();
        sys.stats().violations().count()
    };
    assert!(run(1) > 0, "one machine must blow a 16-word budget on 64 reads");
    assert_eq!(run(8), 0, "eight machines stay within per-machine budget");
}
