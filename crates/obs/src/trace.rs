//! Bounded structured trace journal.
//!
//! [`TraceRing`] is a fixed-capacity MPSC ring of typed events. Writers
//! claim a global sequence number with one relaxed `fetch_add`, then
//! publish into the ring slot `seq % capacity` under a per-slot seqlock
//! version. The ring never blocks and never allocates; old events are
//! overwritten (a flight recorder, not a log).
//!
//! ## Loss semantics
//!
//! - An event older than the last `TRACE_CAP` records is gone — by design.
//! - Slot versions advance by `fetch_max`, so a writer that stalls long
//!   enough to be lapped *loses* its slot to the newer event rather than
//!   resurrecting a stale one; its event is dropped.
//! - The one unguarded window: a writer that stalls mid-payload for a full
//!   lap can scribble over the lapping event's payload after it committed.
//!   Readers double-check the version around payload reads, so this
//!   requires the stale stores to land entirely inside the reader's
//!   window too; each field is a single aligned atomic, so even then every
//!   read field is a value some writer actually stored — never shearing
//!   within a field. Acceptable for a diagnostic ring; sequence numbers
//!   (derived from the version word itself) are always exact.

use std::sync::atomic::{AtomicU64, Ordering};

/// Ring capacity (power of two). 40 KiB of slots as a process-wide static.
pub const TRACE_CAP: usize = 1024;

/// Typed trace events emitted at the stack's structural seams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum TraceKind {
    /// A new epoch became visible to readers. `a` = epoch, `b` = kind
    /// (0 = full rebuild/boot, 1 = journal epoch).
    EpochPublished = 0,
    /// A merge journal was built for streaming inserts. `a` = journal
    /// entries, `b` = build nanoseconds.
    JournalBuilt = 1,
    /// Background compaction began. `a` = epoch it consumes through.
    CompactionStarted = 2,
    /// Compaction yielded to a queued full rebuild. `a` = epoch.
    CompactionYielded = 3,
    /// Compaction published. `a` = epoch, `b` = duration nanoseconds.
    CompactionFinished = 4,
    /// A fault was recorded in the incident log. `a` = incident seq,
    /// `b` = operation discriminant.
    IncidentRecorded = 5,
    /// A snapshot was persisted. `a` = bytes written, `b` = nanoseconds.
    SnapshotPersisted = 6,
    /// A snapshot was booted from disk. `a` = bytes read, `b` = nanoseconds.
    SnapshotBooted = 7,
    /// An executor round completed. `a` = round index, `b` = bytes shuffled.
    RoundCompleted = 8,
}

impl TraceKind {
    pub const ALL: [TraceKind; 9] = [
        TraceKind::EpochPublished,
        TraceKind::JournalBuilt,
        TraceKind::CompactionStarted,
        TraceKind::CompactionYielded,
        TraceKind::CompactionFinished,
        TraceKind::IncidentRecorded,
        TraceKind::SnapshotPersisted,
        TraceKind::SnapshotBooted,
        TraceKind::RoundCompleted,
    ];

    fn from_u64(v: u64) -> Option<TraceKind> {
        Self::ALL.get(v as usize).copied()
    }

    /// Stable lowercase name for text/JSON exposition.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::EpochPublished => "epoch_published",
            TraceKind::JournalBuilt => "journal_built",
            TraceKind::CompactionStarted => "compaction_started",
            TraceKind::CompactionYielded => "compaction_yielded",
            TraceKind::CompactionFinished => "compaction_finished",
            TraceKind::IncidentRecorded => "incident_recorded",
            TraceKind::SnapshotPersisted => "snapshot_persisted",
            TraceKind::SnapshotBooted => "snapshot_booted",
            TraceKind::RoundCompleted => "round_completed",
        }
    }
}

/// One recovered trace record. `a`/`b` are kind-specific payloads — see
/// the [`TraceKind`] variant docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    pub seq: u64,
    pub at_ns: u64,
    pub kind: TraceKind,
    pub a: u64,
    pub b: u64,
}

struct Slot {
    /// Seqlock word: `2·seq + 1` while the event `seq` is being written,
    /// `2·seq + 2` once committed. Advances only by `fetch_max`.
    version: AtomicU64,
    kind: AtomicU64,
    at_ns: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    const fn new() -> Self {
        Self {
            version: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            at_ns: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

/// Fixed-capacity multi-producer ring of [`TraceEvent`]s.
pub struct TraceRing {
    head: AtomicU64,
    slots: [Slot; TRACE_CAP],
}

impl Default for TraceRing {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceRing {
    pub const fn new() -> Self {
        Self { head: AtomicU64::new(0), slots: [const { Slot::new() }; TRACE_CAP] }
    }

    /// Records an event and returns its sequence number. Lock-free:
    /// one `fetch_add` claim, one `fetch_max` open, four relaxed payload
    /// stores, one `fetch_max` commit.
    pub fn record(&self, at_ns: u64, kind: TraceKind, a: u64, b: u64) -> u64 {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[seq as usize & (TRACE_CAP - 1)];
        let writing = 2 * seq + 1;
        let prev = slot.version.fetch_max(writing, Ordering::AcqRel);
        if prev < writing {
            slot.kind.store(kind as u64, Ordering::Relaxed);
            slot.at_ns.store(at_ns, Ordering::Relaxed);
            slot.a.store(a, Ordering::Relaxed);
            slot.b.store(b, Ordering::Relaxed);
            slot.version.fetch_max(writing + 1, Ordering::Release);
        }
        seq
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Returns up to the last `n` events, oldest first. Events still being
    /// written or already lapped are silently skipped; returned seqs are
    /// strictly increasing.
    pub fn last(&self, n: usize) -> Vec<TraceEvent> {
        let head = self.head.load(Ordering::Acquire);
        let span = (n.min(TRACE_CAP) as u64).min(head);
        let mut out = Vec::with_capacity(span as usize);
        for seq in head - span..head {
            let slot = &self.slots[seq as usize & (TRACE_CAP - 1)];
            let committed = 2 * seq + 2;
            if slot.version.load(Ordering::Acquire) != committed {
                continue;
            }
            let kind = slot.kind.load(Ordering::Relaxed);
            let at_ns = slot.at_ns.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            if slot.version.load(Ordering::Acquire) != committed {
                continue;
            }
            let Some(kind) = TraceKind::from_u64(kind) else { continue };
            out.push(TraceEvent { seq, at_ns, kind, a, b });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reads_back_in_order() {
        let ring = TraceRing::new();
        for i in 0..10u64 {
            let seq = ring.record(i * 100, TraceKind::RoundCompleted, i, i * 8);
            assert_eq!(seq, i);
        }
        let events = ring.last(4);
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].seq, 6);
        assert_eq!(events[3].seq, 9);
        assert_eq!(events[3].a, 9);
        assert_eq!(events[3].b, 72);
        assert_eq!(events[3].at_ns, 900);
        assert_eq!(events[3].kind, TraceKind::RoundCompleted);
    }

    #[test]
    fn wraparound_keeps_only_the_newest_cap_events() {
        let ring = TraceRing::new();
        let total = (TRACE_CAP as u64) * 3 + 17;
        for i in 0..total {
            ring.record(i, TraceKind::EpochPublished, i, 0);
        }
        assert_eq!(ring.recorded(), total);
        let events = ring.last(usize::MAX);
        assert_eq!(events.len(), TRACE_CAP);
        assert_eq!(events[0].seq, total - TRACE_CAP as u64);
        for w in events.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
        for e in &events {
            assert_eq!(e.a, e.seq, "payload must match the surviving lap");
        }
    }
}
