//! Injectable nanosecond clock.
//!
//! Same seam discipline as `ampc_serve::Clock` (millisecond granularity,
//! PR 8) but at nanosecond resolution for latency spans: production code
//! reads a process-wide monotonic origin, tests drive a [`ManualClock`] so
//! timing assertions never sleep.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Nanoseconds since an arbitrary process-local origin.
pub trait Clock: Send + Sync {
    fn now_ns(&self) -> u64;
}

static ORIGIN: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds elapsed since the first call in this process. Monotonic,
/// origin-arbitrary — only differences are meaningful.
pub fn monotonic_ns() -> u64 {
    ORIGIN.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// The production clock: a zero-sized handle over the process-wide
/// monotonic origin.
#[derive(Debug, Default, Clone, Copy)]
pub struct MonotonicClock;

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        monotonic_ns()
    }
}

/// Hand-advanced clock for deterministic tests.
#[derive(Debug, Default)]
pub struct ManualClock(AtomicU64);

impl ManualClock {
    pub const fn new(start_ns: u64) -> Self {
        Self(AtomicU64::new(start_ns))
    }

    /// Moves time forward by `delta_ns`.
    pub fn advance(&self, delta_ns: u64) {
        self.0.fetch_add(delta_ns, Ordering::SeqCst);
    }

    pub fn set(&self, now_ns: u64) {
        self.0.store(now_ns, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances_without_sleeping() {
        let c = ManualClock::new(5);
        assert_eq!(c.now_ns(), 5);
        c.advance(37);
        assert_eq!(c.now_ns(), 42);
        c.set(7);
        assert_eq!(c.now_ns(), 7);
    }

    #[test]
    fn monotonic_never_goes_backwards() {
        let c = MonotonicClock;
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }
}
