//! Process-wide metric catalog.
//!
//! Every metric the stack records is declared here once, as an enum
//! variant indexing a `static` array — "static-site registration". A
//! recording site compiles to `&COUNTERS[id as usize]` plus relaxed
//! atomics: no registration handshake, no lock, no name hashing on the
//! hot path (the disarmed-failpoint discipline from `serve::fault`
//! applied to metrics). Names and help strings live here too, so
//! [`render_text`] can emit the Prometheus exposition format without any
//! per-metric state elsewhere.

use std::fmt::Write as _;

use crate::clock::monotonic_ns;
use crate::metrics::{bucket_upper, Counter, Gauge, HistSnapshot, Histogram, BUCKETS};
use crate::trace::{TraceEvent, TraceKind, TraceRing};

/// Catalog of process-wide counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum CounterId {
    /// Executor rounds completed.
    Rounds = 0,
    /// DHT write/merge/delete operations applied at round barriers.
    OpsApplied,
    /// Modeled shuffle traffic: bytes moved at round barriers.
    BytesShuffled,
    /// Epochs made visible to readers (rebuilds, journal epochs, boots).
    EpochsPublished,
    /// Merge journals built for streaming inserts.
    JournalBuilds,
    /// Background compactions started.
    CompactionsStarted,
    /// Background compactions that published.
    CompactionsFinished,
    /// Faults recorded in the incident log.
    Incidents,
    /// Health transitions into Degraded.
    DegradedTransitions,
    /// Health transitions into ReadOnly.
    ReadOnlyTransitions,
    /// Recoveries back to Healthy from a degraded state.
    Recoveries,
    /// Snapshots persisted to disk.
    SnapshotPersists,
    /// Bytes written by snapshot persists.
    SnapshotPersistBytes,
    /// Snapshots booted from disk.
    SnapshotBoots,
    /// Bytes read by snapshot boots.
    SnapshotBootBytes,
    /// Queries answered by the serving driver.
    QueriesServed,
    /// Network connections admitted by the TCP front-end.
    NetConnsAccepted,
    /// Network connections shed with a typed `Overloaded` reply at the
    /// admission high-water mark.
    NetConnsShed,
    /// Request frames the network front-end answered.
    NetRequests,
    /// Malformed frames rejected with a typed protocol error.
    NetProtocolErrors,
}

const COUNTER_COUNT: usize = 20;

impl CounterId {
    pub const ALL: [CounterId; COUNTER_COUNT] = [
        CounterId::Rounds,
        CounterId::OpsApplied,
        CounterId::BytesShuffled,
        CounterId::EpochsPublished,
        CounterId::JournalBuilds,
        CounterId::CompactionsStarted,
        CounterId::CompactionsFinished,
        CounterId::Incidents,
        CounterId::DegradedTransitions,
        CounterId::ReadOnlyTransitions,
        CounterId::Recoveries,
        CounterId::SnapshotPersists,
        CounterId::SnapshotPersistBytes,
        CounterId::SnapshotBoots,
        CounterId::SnapshotBootBytes,
        CounterId::QueriesServed,
        CounterId::NetConnsAccepted,
        CounterId::NetConnsShed,
        CounterId::NetRequests,
        CounterId::NetProtocolErrors,
    ];

    /// Prometheus metric name.
    pub fn name(self) -> &'static str {
        match self {
            CounterId::Rounds => "ampc_rounds_total",
            CounterId::OpsApplied => "ampc_ops_applied_total",
            CounterId::BytesShuffled => "ampc_bytes_shuffled_total",
            CounterId::EpochsPublished => "serve_epochs_published_total",
            CounterId::JournalBuilds => "serve_journal_builds_total",
            CounterId::CompactionsStarted => "serve_compactions_started_total",
            CounterId::CompactionsFinished => "serve_compactions_finished_total",
            CounterId::Incidents => "serve_incidents_total",
            CounterId::DegradedTransitions => "serve_degraded_transitions_total",
            CounterId::ReadOnlyTransitions => "serve_readonly_transitions_total",
            CounterId::Recoveries => "serve_recoveries_total",
            CounterId::SnapshotPersists => "snapshot_persist_total",
            CounterId::SnapshotPersistBytes => "snapshot_persist_bytes_total",
            CounterId::SnapshotBoots => "snapshot_boot_total",
            CounterId::SnapshotBootBytes => "snapshot_boot_bytes_total",
            CounterId::QueriesServed => "query_served_total",
            CounterId::NetConnsAccepted => "net_connections_accepted_total",
            CounterId::NetConnsShed => "net_connections_shed_total",
            CounterId::NetRequests => "net_requests_total",
            CounterId::NetProtocolErrors => "net_protocol_errors_total",
        }
    }

    fn help(self) -> &'static str {
        match self {
            CounterId::Rounds => "Executor rounds completed",
            CounterId::OpsApplied => "DHT write/merge/delete operations applied at round barriers",
            CounterId::BytesShuffled => "Modeled shuffle bytes moved at round barriers",
            CounterId::EpochsPublished => "Index epochs made visible to readers",
            CounterId::JournalBuilds => "Merge journals built for streaming edge inserts",
            CounterId::CompactionsStarted => "Background compactions started",
            CounterId::CompactionsFinished => "Background compactions published",
            CounterId::Incidents => "Faults recorded in the service incident log",
            CounterId::DegradedTransitions => "Health-state transitions into Degraded",
            CounterId::ReadOnlyTransitions => "Health-state transitions into ReadOnly",
            CounterId::Recoveries => "Health-state recoveries back to Healthy",
            CounterId::SnapshotPersists => "Snapshots persisted to disk",
            CounterId::SnapshotPersistBytes => "Bytes written by snapshot persists",
            CounterId::SnapshotBoots => "Snapshots booted from disk",
            CounterId::SnapshotBootBytes => "Bytes read by snapshot boots",
            CounterId::QueriesServed => "Connectivity queries answered by the serving driver",
            CounterId::NetConnsAccepted => "Network connections admitted by the TCP front-end",
            CounterId::NetConnsShed => "Connections shed with a typed Overloaded reply",
            CounterId::NetRequests => "Request frames the network front-end answered",
            CounterId::NetProtocolErrors => "Malformed frames rejected with a typed protocol error",
        }
    }
}

/// Catalog of process-wide gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum GaugeId {
    /// Rebuild tickets issued but not yet published.
    RebuildQueueDepth = 0,
    /// Journal entries pending compaction in the live epoch.
    JournalPendingEntries,
    /// Connections waiting in the network admission queue.
    NetAdmissionQueueDepth,
}

const GAUGE_COUNT: usize = 3;

impl GaugeId {
    pub const ALL: [GaugeId; GAUGE_COUNT] = [
        GaugeId::RebuildQueueDepth,
        GaugeId::JournalPendingEntries,
        GaugeId::NetAdmissionQueueDepth,
    ];

    pub fn name(self) -> &'static str {
        match self {
            GaugeId::RebuildQueueDepth => "serve_rebuild_queue_depth",
            GaugeId::JournalPendingEntries => "serve_journal_pending_entries",
            GaugeId::NetAdmissionQueueDepth => "net_admission_queue_depth",
        }
    }

    fn help(self) -> &'static str {
        match self {
            GaugeId::RebuildQueueDepth => "Rebuild tickets issued but not yet published",
            GaugeId::JournalPendingEntries => "Journal entries pending compaction",
            GaugeId::NetAdmissionQueueDepth => "Connections waiting in the network admission queue",
        }
    }
}

/// Catalog of process-wide latency/size histograms (nanoseconds unless
/// noted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum HistId {
    /// Wall time of one executor round.
    RoundWallNs = 0,
    /// Merge-journal build time for a streaming insert batch.
    JournalBuildNs,
    /// Epoch publish (pointer swap + retire) time.
    PublishNs,
    /// Background compaction duration, start to publish.
    CompactionNs,
    /// Snapshot persist (encode + write + rename + fsync) time.
    SnapshotPersistNs,
    /// Snapshot boot (read + validate + reinterpret) time.
    SnapshotBootNs,
    /// Per-query serving latency.
    QueryLatencyNs,
    /// Server-side per-query service time on the network path (frame
    /// decoded → answer computed, excluding socket I/O).
    NetServiceNs,
    /// Client-observed round-trip wire latency per request frame.
    NetWireNs,
}

const HIST_COUNT: usize = 9;

impl HistId {
    pub const ALL: [HistId; HIST_COUNT] = [
        HistId::RoundWallNs,
        HistId::JournalBuildNs,
        HistId::PublishNs,
        HistId::CompactionNs,
        HistId::SnapshotPersistNs,
        HistId::SnapshotBootNs,
        HistId::QueryLatencyNs,
        HistId::NetServiceNs,
        HistId::NetWireNs,
    ];

    pub fn name(self) -> &'static str {
        match self {
            HistId::RoundWallNs => "ampc_round_wall_ns",
            HistId::JournalBuildNs => "serve_journal_build_ns",
            HistId::PublishNs => "serve_publish_ns",
            HistId::CompactionNs => "serve_compaction_ns",
            HistId::SnapshotPersistNs => "snapshot_persist_ns",
            HistId::SnapshotBootNs => "snapshot_boot_ns",
            HistId::QueryLatencyNs => "query_latency_ns",
            HistId::NetServiceNs => "net_request_service_ns",
            HistId::NetWireNs => "net_wire_latency_ns",
        }
    }

    fn help(self) -> &'static str {
        match self {
            HistId::RoundWallNs => "Wall time of one executor round (ns)",
            HistId::JournalBuildNs => "Merge-journal build time (ns)",
            HistId::PublishNs => "Epoch publish time (ns)",
            HistId::CompactionNs => "Background compaction duration (ns)",
            HistId::SnapshotPersistNs => "Snapshot persist time (ns)",
            HistId::SnapshotBootNs => "Snapshot boot time (ns)",
            HistId::QueryLatencyNs => "Per-query serving latency (ns)",
            HistId::NetServiceNs => "Server-side per-query service time on the network path (ns)",
            HistId::NetWireNs => "Client-observed round-trip wire latency per request frame (ns)",
        }
    }
}

static COUNTERS: [Counter; COUNTER_COUNT] = [const { Counter::new() }; COUNTER_COUNT];
static GAUGES: [Gauge; GAUGE_COUNT] = [const { Gauge::new() }; GAUGE_COUNT];
static HISTS: [Histogram; HIST_COUNT] = [const { Histogram::new() }; HIST_COUNT];
static TRACE: TraceRing = TraceRing::new();

/// The process-wide counter for `id`.
#[inline]
pub fn counter(id: CounterId) -> &'static Counter {
    &COUNTERS[id as usize]
}

/// The process-wide gauge for `id`.
#[inline]
pub fn gauge(id: GaugeId) -> &'static Gauge {
    &GAUGES[id as usize]
}

/// The process-wide histogram for `id`.
#[inline]
pub fn hist(id: HistId) -> &'static Histogram {
    &HISTS[id as usize]
}

/// Records an event in the process-wide trace ring, timestamped on the
/// monotonic clock. Returns the event's sequence number.
#[inline]
pub fn trace(kind: TraceKind, a: u64, b: u64) -> u64 {
    TRACE.record(monotonic_ns(), kind, a, b)
}

/// The last `n` events from the process-wide trace ring, oldest first.
pub fn trace_last(n: usize) -> Vec<TraceEvent> {
    TRACE.last(n)
}

/// Total events ever recorded in the process-wide trace ring.
pub fn trace_recorded() -> u64 {
    TRACE.recorded()
}

/// Renders every registered metric in the Prometheus text exposition
/// format (version 0.0.4): `# HELP` / `# TYPE` comments, counter and
/// gauge samples, and cumulative `_bucket{le="…"}` / `_sum` / `_count`
/// series per histogram. A future network front-end serves this from
/// `/metrics` verbatim.
pub fn render_text() -> String {
    let mut s = String::new();
    for id in CounterId::ALL {
        let _ = writeln!(s, "# HELP {} {}", id.name(), id.help());
        let _ = writeln!(s, "# TYPE {} counter", id.name());
        let _ = writeln!(s, "{} {}", id.name(), counter(id).get());
    }
    for id in GaugeId::ALL {
        let _ = writeln!(s, "# HELP {} {}", id.name(), id.help());
        let _ = writeln!(s, "# TYPE {} gauge", id.name());
        let _ = writeln!(s, "{} {}", id.name(), gauge(id).get());
    }
    for id in HistId::ALL {
        let snap = hist(id).snapshot();
        let _ = writeln!(s, "# HELP {} {}", id.name(), id.help());
        let _ = writeln!(s, "# TYPE {} histogram", id.name());
        let mut cumulative = 0u64;
        let top = (0..BUCKETS).rev().find(|&b| snap.buckets[b] != 0).unwrap_or(0);
        for (b, &n) in snap.buckets.iter().enumerate().take(top + 1) {
            cumulative += n;
            let _ =
                writeln!(s, "{}_bucket{{le=\"{}\"}} {}", id.name(), bucket_upper(b), cumulative);
        }
        let _ = writeln!(s, "{}_bucket{{le=\"+Inf\"}} {}", id.name(), snap.count);
        let _ = writeln!(s, "{}_sum {}", id.name(), snap.sum);
        let _ = writeln!(s, "{}_count {}", id.name(), snap.count);
    }
    s
}

/// Renders a compact human-readable table of every metric that has
/// recorded anything (quiescent metrics are skipped).
pub fn render_table() -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{:<36} {:>16}", "metric", "value");
    for id in CounterId::ALL {
        let v = counter(id).get();
        if v != 0 {
            let _ = writeln!(s, "{:<36} {:>16}", id.name(), v);
        }
    }
    for id in GaugeId::ALL {
        let v = gauge(id).get();
        if v != 0 {
            let _ = writeln!(s, "{:<36} {:>16}", id.name(), v);
        }
    }
    for id in HistId::ALL {
        let snap = hist(id).snapshot();
        if snap.count == 0 {
            continue;
        }
        let _ = writeln!(
            s,
            "{:<36} {:>16}  p50={} p90={} p99={} p999={} max={}",
            id.name(),
            snap.count,
            snap.quantile(0.5),
            snap.quantile(0.9),
            snap.quantile(0.99),
            snap.quantile(0.999),
            snap.max,
        );
    }
    s
}

/// Quantile summary used by JSON exposition: (label, value) pairs for
/// p50/p90/p99/p999/max plus count.
pub fn summary(snap: &HistSnapshot) -> [(&'static str, u64); 6] {
    [
        ("count", snap.count),
        ("p50_ns", snap.quantile(0.5)),
        ("p90_ns", snap.quantile(0.9)),
        ("p99_ns", snap.quantile(0.99)),
        ("p999_ns", snap.quantile(0.999)),
        ("max_ns", snap.max),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_indices_match_enum_discriminants() {
        for (i, id) in CounterId::ALL.iter().enumerate() {
            assert_eq!(*id as usize, i);
        }
        for (i, id) in GaugeId::ALL.iter().enumerate() {
            assert_eq!(*id as usize, i);
        }
        for (i, id) in HistId::ALL.iter().enumerate() {
            assert_eq!(*id as usize, i);
        }
    }

    #[test]
    fn catalog_names_are_unique() {
        let mut names: Vec<&str> = CounterId::ALL
            .iter()
            .map(|c| c.name())
            .chain(GaugeId::ALL.iter().map(|g| g.name()))
            .chain(HistId::ALL.iter().map(|h| h.name()))
            .collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn global_sites_accumulate_monotonically() {
        // Other tests in this process share the statics — assert deltas,
        // never absolute values.
        let c0 = counter(CounterId::Rounds).get();
        counter(CounterId::Rounds).add(3);
        assert!(counter(CounterId::Rounds).get() >= c0 + 3);

        let h = hist(HistId::RoundWallNs);
        let n0 = h.snapshot().count;
        h.record(1_000);
        assert!(h.snapshot().count > n0);

        let t0 = trace_recorded();
        let seq = trace(TraceKind::RoundCompleted, 1, 8);
        assert!(seq >= t0);
        assert!(trace_recorded() > t0);
    }
}
