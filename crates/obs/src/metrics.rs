//! Lock-free metric primitives: [`Counter`], [`Gauge`], a sharded
//! log2-bucketed [`Histogram`], and [`Timer`] spans.
//!
//! Everything here is const-constructible so the process-wide catalog in
//! [`crate::registry`] lives in `static` arrays — recording a metric is an
//! index into a static plus relaxed atomic ops, never a lock or a hash
//! lookup (the same disarmed-fast-path discipline as `serve::fault`).

use std::cell::Cell;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

use crate::clock::{monotonic_ns, Clock};

/// Monotonically increasing event count. One relaxed `fetch_add` per event.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous level (queue depths, pending work). Signed so transient
/// add/sub races on shutdown paths can't wrap to 2^64.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub const fn new() -> Self {
        Self(AtomicI64::new(0))
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `b ≥ 1`
/// holds values in `[2^(b-1), 2^b - 1]` — 65 buckets cover all of `u64`.
pub const BUCKETS: usize = 65;

/// Write shards. Each recording thread picks one shard (round-robin by
/// thread id) and touches only that shard's cache lines, so concurrent
/// writers don't ping-pong a shared line; readers merge all shards.
const SHARDS: usize = 8;

/// Maps a value to its log2 bucket index.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket — what [`HistSnapshot::quantile`]
/// reports (clamped to the recorded max), giving a within-one-bucket
/// error bound against an exact sorted oracle.
#[inline]
pub fn bucket_upper(b: usize) -> u64 {
    match b {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << b) - 1,
    }
}

#[repr(align(128))]
struct Shard {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Shard {
    const fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Lock-free log2-bucketed histogram. [`Histogram::record`] is three
/// relaxed atomic RMWs on a per-thread shard (bucket count, running sum,
/// running max) — no locks, no allocation, no shared-line contention.
/// Reads ([`Histogram::snapshot`]) merge the shards.
pub struct Histogram {
    shards: [Shard; SHARDS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

#[inline]
fn shard_id() -> usize {
    MY_SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
            s.set(v);
            v
        }
    })
}

impl Histogram {
    pub const fn new() -> Self {
        Self { shards: [const { Shard::new() }; SHARDS] }
    }

    /// Records one observation. Hot-path cost: three relaxed RMWs on this
    /// thread's private shard.
    #[inline]
    pub fn record(&self, v: u64) {
        let shard = &self.shards[shard_id()];
        shard.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(v, Ordering::Relaxed);
        shard.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Merges all shards into one consistent-enough view. Concurrent
    /// writers may land between bucket reads; every completed `record` is
    /// eventually visible, and a quiescent histogram merges exactly.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut out = HistSnapshot { count: 0, sum: 0, max: 0, buckets: [0; BUCKETS] };
        for shard in &self.shards {
            for (b, slot) in shard.buckets.iter().enumerate() {
                let n = slot.load(Ordering::Relaxed);
                out.buckets[b] += n;
                out.count += n;
            }
            out.sum = out.sum.wrapping_add(shard.sum.load(Ordering::Relaxed));
            out.max = out.max.max(shard.max.load(Ordering::Relaxed));
        }
        out
    }
}

/// Point-in-time merged view of a [`Histogram`].
#[derive(Debug, Clone)]
pub struct HistSnapshot {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    pub buckets: [u64; BUCKETS],
}

impl HistSnapshot {
    /// Estimated `q`-quantile (`0.0 < q ≤ 1.0`): the upper bound of the
    /// bucket holding the rank-`⌈q·count⌉` observation, clamped to the
    /// recorded max. Guaranteed ≥ the exact order statistic and in the
    /// same log2 bucket. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(b).min(self.max);
            }
        }
        self.max
    }

    /// Exact mean of recorded values (sum and count are exact).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// An in-flight latency span: captures a start timestamp, records the
/// elapsed nanoseconds into a histogram on [`Timer::stop`]. Dropping a
/// timer without `stop` records nothing (abandoned spans are not latency).
pub struct Timer<'a> {
    clock: &'a dyn Clock,
    hist: &'a Histogram,
    start_ns: u64,
}

static PROD_CLOCK: crate::clock::MonotonicClock = crate::clock::MonotonicClock;

impl<'a> Timer<'a> {
    /// Starts a span on the process monotonic clock.
    pub fn start(hist: &'a Histogram) -> Timer<'a> {
        Timer { clock: &PROD_CLOCK, hist, start_ns: monotonic_ns() }
    }

    /// Starts a span on an injected clock (tests never sleep).
    pub fn start_with(clock: &'a dyn Clock, hist: &'a Histogram) -> Timer<'a> {
        Timer { clock, hist, start_ns: clock.now_ns() }
    }

    /// Ends the span, records it, and returns the elapsed nanoseconds.
    pub fn stop(self) -> u64 {
        let elapsed = self.clock.now_ns().saturating_sub(self.start_ns);
        self.hist.record(elapsed);
        elapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.add(7);
        g.sub(10);
        assert_eq!(g.get(), -3);
        g.set(5);
        assert_eq!(g.get(), 5);
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX / 2, u64::MAX] {
            let b = bucket_of(v);
            assert!(v <= bucket_upper(b), "v={v} above upper of bucket {b}");
            if b > 0 {
                assert!(v > bucket_upper(b - 1), "v={v} not above bucket {}", b - 1);
            }
        }
    }

    #[test]
    fn timer_records_manual_clock_elapsed() {
        let clock = ManualClock::new(1_000);
        let h = Histogram::new();
        let t = Timer::start_with(&clock, &h);
        clock.advance(250);
        assert_eq!(t.stop(), 250);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 250);
        assert_eq!(s.max, 250);
        assert_eq!(s.buckets[bucket_of(250)], 1);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.quantile(0.999), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn single_bucket_quantile_is_exact_at_max() {
        // All mass in one bucket, all values equal: every quantile clamps
        // to the recorded max, i.e. is exact.
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(777);
        }
        let s = h.snapshot();
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(s.quantile(q), 777);
        }
    }

    #[test]
    fn overflow_bucket_holds_huge_values() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        let s = h.snapshot();
        assert_eq!(s.buckets[64], 2);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.quantile(1.0), u64::MAX);
    }
}
