//! # ampc-obs — zero-dependency observability for the connectivity stack
//!
//! Lock-free metrics and tracing, hand-rolled in the same spirit as
//! `EpochCell` and `serve::fault`: no external crates, no locks on any
//! recording path, `const`-constructible primitives living in process-wide
//! statics.
//!
//! - [`Counter`] / [`Gauge`] — one relaxed atomic RMW per event.
//! - [`Histogram`] — log2-bucketed, sharded per thread; three relaxed RMWs
//!   on a private shard per record; merged on read; reports
//!   p50/p90/p99/p999/max with a within-one-bucket error bound.
//! - [`Timer`] — latency spans over an injectable [`Clock`]
//!   ([`MonotonicClock`] in production, [`ManualClock`] in tests).
//! - [`TraceRing`] — bounded MPSC flight recorder of typed [`TraceEvent`]s
//!   with exact sequence numbers.
//! - [`registry`] — the static catalog ([`CounterId`] / [`GaugeId`] /
//!   [`HistId`]) plus Prometheus-text ([`render_text`]) and human
//!   ([`render_table`]) exposition.
//!
//! Recording sites call e.g.
//! `obs::counter(CounterId::Rounds).inc()` — an index into a static array
//! plus one relaxed `fetch_add`, the metric analogue of a disarmed
//! failpoint.

pub mod clock;
pub mod metrics;
pub mod registry;
pub mod trace;

pub use clock::{monotonic_ns, Clock, ManualClock, MonotonicClock};
pub use metrics::{
    bucket_of, bucket_upper, Counter, Gauge, HistSnapshot, Histogram, Timer, BUCKETS,
};
pub use registry::{
    counter, gauge, hist, render_table, render_text, summary, trace, trace_last, trace_recorded,
    CounterId, GaugeId, HistId,
};
pub use trace::{TraceEvent, TraceKind, TraceRing, TRACE_CAP};
