//! Integration tests for the observability layer: histogram percentiles
//! against an exact sorted oracle, shard-merge determinism under threads,
//! trace-ring behavior under concurrent writers, and a Prometheus
//! exposition-format validator over `render_text`.

use std::collections::HashMap;
use std::thread;

use ampc_obs::{
    bucket_of, render_text, trace, trace_last, CounterId, GaugeId, HistId, Histogram, TraceKind,
    TraceRing,
};

/// SplitMix64 — the repo's standard deterministic generator.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// Exact order statistic matching `HistSnapshot::quantile`'s rank rule.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn assert_within_one_bucket(est: u64, exact: u64, what: &str) {
    assert!(est >= exact, "{what}: estimate {est} below exact {exact}");
    assert_eq!(
        bucket_of(est),
        bucket_of(exact),
        "{what}: estimate {est} left the exact value's bucket ({exact})"
    );
}

#[test]
fn histogram_matches_sorted_oracle_within_one_bucket() {
    // Three deterministic distributions: latency-like (narrow range),
    // wide uniform, and heavy-tailed via squaring.
    for (seed, lo, hi, square) in
        [(1u64, 40u64, 4_000u64, false), (2, 0, u64::MAX / 2, false), (3, 1, 1 << 20, true)]
    {
        let mut rng = SplitMix64(seed);
        let h = Histogram::new();
        let mut vals: Vec<u64> = (0..10_000)
            .map(|_| {
                let span = hi - lo + 1;
                let v = lo + rng.next() % span;
                if square {
                    (v & 0xffff).pow(2)
                } else {
                    v
                }
            })
            .collect();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();
        let snap = h.snapshot();
        assert_eq!(snap.count, vals.len() as u64);
        assert_eq!(snap.sum, vals.iter().copied().reduce(|a, b| a.wrapping_add(b)).unwrap());
        assert_eq!(snap.max, *vals.last().unwrap());
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = oracle_quantile(&vals, q);
            let est = snap.quantile(q);
            assert_within_one_bucket(est, exact, &format!("seed {seed} q={q}"));
        }
    }
}

#[test]
fn shard_merge_is_deterministic_across_thread_splits() {
    // The same 80k observations recorded by 1, 2, 4, and 8 threads must
    // merge to identical bucket vectors: shard assignment can never
    // change what a snapshot reports.
    let mut rng = SplitMix64(42);
    let vals: Vec<u64> = (0..80_000).map(|_| rng.next() >> (rng.next() % 50)).collect();

    let mut baseline: Option<Vec<u64>> = None;
    for threads in [1usize, 2, 4, 8] {
        let h = Histogram::new();
        thread::scope(|s| {
            for chunk in vals.chunks(vals.len() / threads) {
                let h = &h;
                s.spawn(move || {
                    for &v in chunk {
                        h.record(v);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, vals.len() as u64);
        let buckets = snap.buckets.to_vec();
        match &baseline {
            None => baseline = Some(buckets),
            Some(b) => assert_eq!(*b, buckets, "{threads}-thread merge diverged"),
        }
    }
}

#[test]
fn trace_ring_seqs_are_unique_and_monotone_under_concurrent_writers() {
    let ring = TraceRing::new();
    const WRITERS: usize = 8;
    const PER_WRITER: usize = 400; // 3200 > TRACE_CAP → exercises wraparound
    let seqs: Vec<Vec<u64>> = thread::scope(|s| {
        let handles: Vec<_> = (0..WRITERS)
            .map(|w| {
                let ring = &ring;
                s.spawn(move || {
                    (0..PER_WRITER)
                        .map(|i| ring.record(i as u64, TraceKind::JournalBuilt, w as u64, i as u64))
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Claimed seqs: unique across all writers, monotone within each.
    let mut all: Vec<u64> = seqs.iter().flatten().copied().collect();
    assert_eq!(all.len(), WRITERS * PER_WRITER);
    for per in &seqs {
        for w in per.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), WRITERS * PER_WRITER, "duplicate sequence numbers");
    assert_eq!(ring.recorded(), (WRITERS * PER_WRITER) as u64);

    // Post-quiescence read-back: strictly increasing seqs, payloads
    // self-consistent with their claimed writer/iteration.
    let events = ring.last(usize::MAX);
    assert!(!events.is_empty());
    for w in events.windows(2) {
        assert!(w[0].seq < w[1].seq);
    }
    for e in &events {
        assert!(seqs[e.a as usize].contains(&e.seq), "slot payload from a different event");
        assert_eq!(e.at_ns, e.b, "timestamp and payload written by different events");
    }
}

/// Minimal Prometheus text exposition (0.0.4) validator: every sample is
/// preceded by a `# TYPE` for its family, histogram buckets are
/// cumulative and capped by `+Inf == _count`, and values parse.
fn validate_prometheus(text: &str) {
    let mut types: HashMap<&str, &str> = HashMap::new();
    let mut bucket_prev: HashMap<&str, u64> = HashMap::new();
    let mut inf: HashMap<&str, u64> = HashMap::new();
    let mut counts: HashMap<&str, u64> = HashMap::new();

    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap();
            let name = parts.next().unwrap_or_else(|| panic!("bare comment: {line}"));
            assert!(parts.next().is_some(), "missing {keyword} text: {line}");
            if keyword == "TYPE" {
                let ty = rest.splitn(3, ' ').nth(2).unwrap();
                assert!(
                    ["counter", "gauge", "histogram"].contains(&ty),
                    "unknown TYPE {ty}: {line}"
                );
                types.insert(name, ty);
            } else {
                assert_eq!(keyword, "HELP", "unknown comment keyword: {line}");
            }
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("no value: {line}"));
        let value: u64 = value.parse().unwrap_or_else(|_| panic!("bad value: {line}"));
        let (name, label) = match series.split_once('{') {
            Some((n, l)) => (n, Some(l.strip_suffix('}').expect("unterminated label set"))),
            None => (series, None),
        };
        // Family: histogram samples use name_bucket/_sum/_count.
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| types.get(f) == Some(&"histogram"))
            .unwrap_or(name);
        let ty = types.get(family).unwrap_or_else(|| panic!("sample before TYPE: {line}"));
        match *ty {
            "counter" | "gauge" => assert!(label.is_none(), "unexpected labels: {line}"),
            "histogram" => {
                if let Some(label) = label {
                    assert!(name.ends_with("_bucket"), "labeled non-bucket: {line}");
                    let le = label
                        .strip_prefix("le=\"")
                        .and_then(|l| l.strip_suffix('"'))
                        .unwrap_or_else(|| panic!("bucket without le: {line}"));
                    assert!(le == "+Inf" || le.parse::<u64>().is_ok(), "bad le: {line}");
                    let prev = bucket_prev.entry(family).or_insert(0);
                    assert!(value >= *prev, "non-cumulative buckets: {line}");
                    *prev = value;
                    if le == "+Inf" {
                        inf.insert(family, value);
                    }
                } else if let Some(f) = name.strip_suffix("_count") {
                    counts.insert(f, value);
                } else {
                    assert!(name.ends_with("_sum"), "stray histogram sample: {line}");
                }
            }
            _ => unreachable!(),
        }
    }
    assert!(!types.is_empty(), "no metric families rendered");
    for (family, ty) in &types {
        if *ty == "histogram" {
            let i = inf.get(family).unwrap_or_else(|| panic!("{family}: no +Inf bucket"));
            let c = counts.get(family).unwrap_or_else(|| panic!("{family}: no _count"));
            assert_eq!(i, c, "{family}: +Inf bucket != _count");
        }
    }
}

#[test]
fn render_text_is_valid_prometheus_exposition() {
    // Touch one of each metric class so the render has nonzero content,
    // including a histogram with values spread over several buckets.
    ampc_obs::counter(CounterId::QueriesServed).add(3);
    ampc_obs::gauge(GaugeId::RebuildQueueDepth).set(2);
    let h = ampc_obs::hist(HistId::QueryLatencyNs);
    for v in [90u64, 400, 3_000, 65_000, 1 << 33] {
        h.record(v);
    }
    trace(TraceKind::EpochPublished, 1, 0);

    let text = render_text();
    validate_prometheus(&text);
    assert!(text.contains("# TYPE query_served_total counter"));
    assert!(text.contains("# TYPE serve_rebuild_queue_depth gauge"));
    assert!(text.contains("# TYPE query_latency_ns histogram"));
    assert!(text.contains("query_latency_ns_bucket{le=\"+Inf\"}"));

    // The global trace ring saw our event (other tests may add more).
    let events = trace_last(ampc_obs::TRACE_CAP);
    assert!(events.iter().any(|e| e.kind == TraceKind::EpochPublished));
}
