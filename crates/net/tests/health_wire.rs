//! Health over the wire, end-to-end: deterministic failpoint schedules
//! drive the PR-8 degradation state machine through Degraded and
//! ReadOnly, and every transition must be visible — and exact — through
//! the Health opcode. Write opcodes are refused with the typed ReadOnly
//! wire code; reads keep serving the last good epoch throughout; an
//! explicit rebuild restores Healthy on the wire.

use std::net::TcpListener;
use std::sync::{Arc, Mutex, MutexGuard};

use ampc_cc::pipeline::PipelineSpec;
use ampc_graph::generators::random_forest;
use ampc_graph::reference_components;
use ampc_graph::{Graph, VertexId};
use ampc_net::{Connection, ErrorCode, ServerConfig};
use ampc_query::{ComponentIndex, Query, QueryEngine};
use ampc_serve::fault::{self, FaultAction, Site};
use ampc_serve::{
    HealthState, JournalBudget, ManualClock, RetryPolicy, ServiceBuilder, ServiceHandle,
};

const N: usize = 150;

struct FaultSession {
    _guard: MutexGuard<'static, ()>,
}

impl FaultSession {
    fn begin() -> Self {
        static LOCK: Mutex<()> = Mutex::new(());
        let guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        fault::disarm_all();
        fault::reset_counters();
        FaultSession { _guard: guard }
    }
}

impl Drop for FaultSession {
    fn drop(&mut self) {
        fault::disarm_all();
    }
}

fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !cond() {
        assert!(std::time::Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
}

/// The wire health must agree with the in-process `ServiceHandle::health`
/// on every field the protocol carries.
fn assert_wire_matches(conn: &mut Connection, service: &ServiceHandle, what: &str) {
    let wire = conn.health().expect("health rpc");
    let local = service.health();
    let state = match local.state {
        HealthState::Healthy => 0u8,
        HealthState::Degraded => 1,
        HealthState::ReadOnly => 2,
    };
    assert_eq!(wire.state, state, "{what}: wire state diverged");
    assert_eq!(
        wire.consecutive_failures, local.consecutive_failures,
        "{what}: consecutive failures diverged"
    );
    assert_eq!(wire.total_incidents, local.total_incidents, "{what}: incident count diverged");
    assert_eq!(wire.epoch, service.current_epoch(), "{what}: epoch diverged");
}

#[test]
fn degradation_walk_is_visible_and_exact_on_the_wire() {
    let _s = FaultSession::begin();
    let graph = random_forest(N, 6, 0x8EA1);
    let index = ComponentIndex::build(&reference_components(&graph));
    let clock = ManualClock::new();
    let service = ServiceBuilder::new(graph)
        .spec(PipelineSpec::default().with_seed(0x8EA1).with_machines(4))
        // Zero edge budget: the first insert immediately starts a
        // compaction, which the armed failpoint fails deterministically.
        .journal_budget(JournalBudget::new(0, usize::MAX))
        .retry_policy(RetryPolicy {
            max_consecutive_failures: 2,
            base_backoff_ms: 100,
            max_backoff_ms: 400,
            max_incidents: 8,
        })
        .clock(Arc::new(clock.clone()))
        .build()
        .expect("service");

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let server =
        ampc_net::serve(service.clone(), listener, ServerConfig::default()).expect("serve");
    let mut conn = Connection::connect(server.local_addr()).expect("connect");

    assert_wire_matches(&mut conn, &service, "healthy baseline");
    assert_eq!(conn.health().expect("health").state_name(), "healthy");

    // A read answered now fingerprints the last good epoch; it must keep
    // being served unchanged through every degraded state below.
    let engine = QueryEngine::new(&index);
    let probes: Vec<Query> = (0..32).map(|v| Query::ComponentSize(v as u32)).collect();
    let good_epoch_answers: Vec<u64> = probes.iter().map(|&q| engine.answer(q)).collect();

    // Strike 1 (over the wire): insert → compaction starts → injected
    // failure → Degraded. The insert itself succeeds (journal path).
    fault::arm(Site::CompactPublish, FaultAction::Error, 0, u64::MAX);
    let report = conn.insert_edges(&[(0, (N - 1) as VertexId)]).expect("degraded insert lands");
    assert_eq!(report.applied, 1);
    wait_until("degraded", || service.health().state == HealthState::Degraded);
    assert_wire_matches(&mut conn, &service, "after first strike");
    assert_eq!(conn.health().expect("health").state_name(), "degraded");

    // Strike 2: backoff elapses, the retry fails → ReadOnly.
    clock.advance_ms(100);
    assert!(service.tick(), "elapsed backoff must start a retry");
    wait_until("read-only", || service.health().state == HealthState::ReadOnly);
    assert_wire_matches(&mut conn, &service, "after second strike");
    assert_eq!(conn.health().expect("health").state_name(), "read-only");

    // Write opcodes are refused with the typed wire code; the connection
    // stays open and keeps serving reads.
    let err = conn.insert_edges(&[(1, 2)]).expect_err("read-only refuses writes");
    match err {
        ampc_net::ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::ReadOnly),
        other => panic!("expected typed ReadOnly, got: {other}"),
    }

    // Reads on that same connection still serve the last good epoch —
    // which includes the journal-epoch the successful insert published.
    let wire_health = conn.health().expect("health while read-only");
    assert_eq!(wire_health.epoch, service.current_epoch());
    let answers = conn.query_batch(&probes).expect("reads keep serving");
    // The inserted edge merged two components; probe answers must match
    // the *current* snapshot, not regress past it, and not tear.
    let snap = service.snapshot();
    let expect: Vec<u64> = {
        let engine = snap.engine();
        probes.iter().map(|&q| engine.answer(q)).collect()
    };
    assert_eq!(answers, expect, "reads must serve exactly the last published epoch");
    // At minimum every component-size answer is >= its pre-insert value
    // (a merge can only grow components).
    for (now, before) in answers.iter().zip(&good_epoch_answers) {
        assert!(now >= before, "served epoch regressed past the last good one");
    }

    // The operator lever: disarm the faults, rebuild with fresh ground
    // truth, and the wire must report healthy again.
    fault::disarm_all();
    let n_edges: Vec<(VertexId, VertexId)> = {
        let mut e: Vec<_> = random_forest(N, 6, 0x8EA1).edges().collect();
        e.push((0, (N - 1) as VertexId));
        e
    };
    let recovered = Graph::from_edges(N, &n_edges);
    service.rebuild_blocking(recovered).expect("explicit rebuild restores service");
    wait_until("healthy again", || service.health().state == HealthState::Healthy);
    assert_wire_matches(&mut conn, &service, "after recovery");
    assert_eq!(conn.health().expect("health").state_name(), "healthy");
    let report = conn.insert_edges(&[(1, 2)]).expect("writes accepted again");
    assert!(report.applied == 1);
}
