//! End-to-end loopback tests: every workload mix answered over the wire
//! byte-identical to the in-process oracle, epoch consistency under a
//! mid-flight rebuild, deterministic overload shedding, and the health /
//! metrics / insert opcodes round-tripping against live service state.

use std::net::TcpListener;

use ampc_graph::generators::random_forest;
use ampc_graph::reference_components;
use ampc_graph::Graph;
use ampc_net::{prom_histogram_quantiles, ClientError, Connection, HarnessConfig, ServerConfig};
use ampc_query::workload::{self, Mix};
use ampc_query::{ComponentIndex, Query, QueryEngine};
use ampc_serve::ServiceBuilder;

const N: usize = 600;
const SEED: u64 = 0x4E7E2E;

fn test_graph() -> Graph {
    random_forest(N, 7, SEED)
}

fn start_server(
    service: ampc_serve::ServiceHandle,
    config: ServerConfig,
) -> ampc_net::ServerHandle {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    ampc_net::serve(service, listener, config).expect("start server")
}

fn oracle_checksum(index: &ComponentIndex, queries: &[Query]) -> u64 {
    let engine = QueryEngine::new(index);
    queries.iter().fold(0u64, |acc, &q| acc.wrapping_add(engine.answer(q)))
}

/// Every mix, multiple connections: the wire checksum equals the oracle's.
#[test]
fn all_mixes_match_oracle_over_loopback() {
    let graph = test_graph();
    let oracle_index = ComponentIndex::build(&reference_components(&graph));
    let service = ServiceBuilder::new(graph).build().expect("service");
    let server = start_server(service, ServerConfig::default());
    let addr = server.local_addr();

    for (i, mix) in Mix::STANDARD.into_iter().enumerate() {
        let queries = workload::generate(&oracle_index, mix, 4_000, SEED ^ i as u64);
        let expected = oracle_checksum(&oracle_index, &queries);
        let report = ampc_net::run_harness(
            addr,
            &queries,
            HarnessConfig { connections: 3, batch: 128, retries: 0 },
        )
        .expect("harness");
        assert_eq!(report.checksum, expected, "mix {} diverged from oracle", mix.name());
        assert_eq!(report.total_queries, queries.len());
        assert!(report.wire.count >= (queries.len() / 128) as u64);
        assert!(report.wire.quantile(0.5) > 0, "wire latency must be nonzero");
    }
    assert!(server.service_latency().count > 0, "service latency histogram must fill");
}

/// A rebuild publishing mid-flight never tears a batch: every batch's
/// answers wholly match epoch A's oracle or epoch B's, never a mix.
#[test]
fn mid_flight_rebuild_keeps_batches_epoch_consistent() {
    let graph_a = random_forest(N, 5, 0xA11CE);
    let graph_b = random_forest(N, 11, 0xB0B);
    let index_a = ComponentIndex::build(&reference_components(&graph_a));
    let index_b = ComponentIndex::build(&reference_components(&graph_b));

    let service = ServiceBuilder::new(graph_a).build().expect("service");
    let server = start_server(service.clone(), ServerConfig::default());
    let addr = server.local_addr();

    let queries = workload::generate(&index_a, Mix::Uniform, 6_000, SEED);
    let engine_a = QueryEngine::new(&index_a);
    let engine_b = QueryEngine::new(&index_b);

    // Distinct per-batch fingerprints make the exactly-one-epoch check
    // non-vacuous for at least most batches.
    const BATCH: usize = 200;
    let mut conn = Connection::connect(addr).expect("connect");
    let mut rebuild = Some(service.rebuild(graph_b));
    let mut saw_b = false;
    for (i, batch) in queries.chunks(BATCH).enumerate() {
        // Let the rebuild land somewhere in the middle of the stream.
        if i == 10 {
            rebuild.take().expect("rebuild handle").wait().expect("rebuild");
        }
        let answers = conn.query_batch(batch).expect("query batch");
        let expect_a: Vec<u64> = batch.iter().map(|&q| engine_a.answer(q)).collect();
        let expect_b: Vec<u64> = batch.iter().map(|&q| engine_b.answer(q)).collect();
        let matches_a = answers == expect_a;
        let matches_b = answers == expect_b;
        assert!(
            matches_a || matches_b,
            "batch {i} matches neither epoch wholly: torn across the swap"
        );
        if matches_b && expect_a != expect_b {
            saw_b = true;
        }
    }
    assert!(saw_b, "the rebuilt epoch was never observed; the swap did not land");
}

/// Overload shedding is deterministic: with one worker held busy and a
/// full admission queue, the next connection gets a typed Overloaded
/// reply, and the queue never grows past its high-water mark.
#[test]
fn overload_shed_is_typed_and_bounded() {
    let graph = test_graph();
    let service = ServiceBuilder::new(graph).build().expect("service");
    let server =
        start_server(service, ServerConfig { workers: 1, queue_depth: 1, max_payload: 1 << 20 });
    let addr = server.local_addr();

    // conn1 occupies the only worker: a successful round-trip proves the
    // worker owns it (not merely queued), and holding it open keeps the
    // worker busy.
    let mut conn1 = Connection::connect(addr).expect("conn1");
    conn1.query_batch(&[Query::TopKSize(1)]).expect("conn1 owned by the worker");
    // conn2 fills the queue to its high-water mark.
    let _conn2 = Connection::connect(addr).expect("conn2");
    wait_until(|| server.queued() == 1);

    // conn3 must be shed with a typed Overloaded error.
    let mut conn3 = Connection::connect(addr).expect("conn3 tcp-level connect");
    match conn3.recv_raw() {
        Ok(Some((header, payload))) => {
            assert_eq!(header.opcode, ampc_net::Opcode::RespError);
            let (code, msg) = ampc_net::protocol::decode_error(&payload).expect("typed error");
            assert_eq!(code, ampc_net::ErrorCode::Overloaded, "unexpected message: {msg}");
        }
        other => panic!("expected typed Overloaded frame, got {other:?}"),
    }
    assert!(server.queued() <= 1, "queue exceeded its high-water mark");
}

/// The harness surfaces an Overloaded shed as a typed, detectable error
/// when retries are disabled.
#[test]
fn harness_reports_overload_typed() {
    let graph = test_graph();
    let index = ComponentIndex::build(&reference_components(&graph));
    let service = ServiceBuilder::new(graph).build().expect("service");
    let server =
        start_server(service, ServerConfig { workers: 1, queue_depth: 1, max_payload: 1 << 20 });
    let addr = server.local_addr();

    let mut hold1 = Connection::connect(addr).expect("hold worker");
    hold1.query_batch(&[Query::TopKSize(1)]).expect("hold1 owned by the worker");
    let _hold2 = Connection::connect(addr).expect("fill queue");
    wait_until(|| server.queued() == 1);

    let queries = workload::generate(&index, Mix::Uniform, 64, SEED);
    let err = ampc_net::run_harness(
        addr,
        &queries,
        HarnessConfig { connections: 1, batch: 64, retries: 0 },
    )
    .expect_err("must be shed");
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, ampc_net::ErrorCode::Overloaded),
        // The shed server closes right after the error frame; if the
        // client's request write raced ahead, it sees the close instead.
        ClientError::Closed | ClientError::Io(_) => {}
        other => panic!("expected overload signal, got {other}"),
    }
}

/// Health, metrics and insert opcodes round-trip live service state.
#[test]
fn health_metrics_and_insert_over_the_wire() {
    let graph = test_graph();
    let index = ComponentIndex::build(&reference_components(&graph));
    let service = ServiceBuilder::new(graph).build().expect("service");
    let server = start_server(service.clone(), ServerConfig::default());
    let mut conn = Connection::connect(server.local_addr()).expect("connect");

    let health = conn.health().expect("health");
    assert_eq!(health.state_name(), "healthy");
    assert_eq!(health.epoch, service.current_epoch());
    assert_eq!(health.components, index.num_components() as u64);

    // An insert that merges two components must be visible in the next
    // health probe and in subsequent queries.
    let engine = QueryEngine::new(&index);
    let (u, v) = cross_component_pair(&index);
    assert_eq!(engine.answer(Query::Connected(u, v)), 0);
    let report = conn.insert_edges(&[(u, v)]).expect("insert");
    assert_eq!(report.applied, 1);
    assert_eq!(report.components, (index.num_components() - 1) as u64);

    let answers = conn.query_batch(&[Query::Connected(u, v)]).expect("query");
    assert_eq!(answers, vec![1], "insert must be visible to reads on the same connection");

    let health = conn.health().expect("health after insert");
    assert_eq!(health.components, (index.num_components() - 1) as u64);
    assert!(health.epoch > 0, "journal-epoch must have advanced");

    // Metrics: the text exposition must carry the service histogram with
    // a nonzero count, parseable by the client-side quantile recovery.
    let text = conn.metrics().expect("metrics");
    let (count, quantiles) =
        prom_histogram_quantiles(&text, "net_request_service_ns").expect("histogram present");
    assert!(count > 0, "service latency must have samples");
    assert!(quantiles.iter().all(|&(_, v)| v > 0), "service quantiles must be nonzero");
    assert!(text.contains("net_requests_total"), "request counter missing from exposition");
}

/// Orderly remote shutdown: the Shutdown opcode is acknowledged and every
/// server thread exits (no worker leak).
#[test]
fn remote_shutdown_joins_all_threads() {
    let graph = test_graph();
    let service = ServiceBuilder::new(graph).build().expect("service");
    let mut server = start_server(service, ServerConfig::default());
    let mut conn = Connection::connect(server.local_addr()).expect("connect");
    conn.shutdown_server().expect("shutdown ack");
    // wait() would hang forever if any thread leaked; returning IS the
    // leak check (the harness kills the test on timeout otherwise).
    server.wait();
}

/// Finds two vertices in different components of `index`.
fn cross_component_pair(index: &ComponentIndex) -> (u32, u32) {
    let engine = QueryEngine::new(index);
    let c0 = engine.answer(Query::ComponentOf(0));
    for v in 1..N as u32 {
        if engine.answer(Query::ComponentOf(v)) != c0 {
            return (0, v);
        }
    }
    panic!("test graph must have at least two components");
}

fn wait_until(cond: impl Fn() -> bool) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !cond() {
        assert!(std::time::Instant::now() < deadline, "wait_until timed out");
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
}
