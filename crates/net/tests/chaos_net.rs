//! Network chaos: deterministic `net.*` failpoint schedules cut the wire
//! mid-workload and the client harness must see **typed** errors, retry,
//! and converge to the oracle checksum — never a torn frame, a wrong
//! answer, or a hung worker.
//!
//! The fault registry is process-global, so every test serializes through
//! [`FaultSession`] and leaves the registry disarmed on exit.

use std::net::TcpListener;
use std::sync::{Mutex, MutexGuard};

use ampc_graph::generators::random_forest;
use ampc_graph::reference_components;
use ampc_net::{ClientError, Connection, HarnessConfig, ServerConfig};
use ampc_query::workload::{self, Mix};
use ampc_query::{ComponentIndex, Query, QueryEngine};
use ampc_serve::fault::{self, FaultAction, Site};
use ampc_serve::ServiceBuilder;

const N: usize = 300;
const SEED: u64 = 0xC4A05;

/// Serializes fault-armed tests (the registry is process-global) and
/// guarantees a disarmed registry on entry and exit, panic included.
struct FaultSession {
    _guard: MutexGuard<'static, ()>,
}

impl FaultSession {
    fn begin() -> Self {
        static LOCK: Mutex<()> = Mutex::new(());
        let guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        fault::disarm_all();
        fault::reset_counters();
        FaultSession { _guard: guard }
    }
}

impl Drop for FaultSession {
    fn drop(&mut self) {
        fault::disarm_all();
    }
}

fn start_server() -> (ampc_net::ServerHandle, ComponentIndex) {
    let graph = random_forest(N, 6, SEED);
    let index = ComponentIndex::build(&reference_components(&graph));
    let service = ServiceBuilder::new(graph).build().expect("service");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let server = ampc_net::serve(service, listener, ServerConfig::default()).expect("serve");
    (server, index)
}

fn oracle_checksum(index: &ComponentIndex, queries: &[Query]) -> u64 {
    let engine = QueryEngine::new(index);
    queries.iter().fold(0u64, |acc, &q| acc.wrapping_add(engine.answer(q)))
}

/// `net.read` firing on the server cuts connections mid-workload; the
/// harness retries, reconnects, and still converges to the oracle
/// checksum. The injected faults demonstrably fired.
#[test]
fn read_faults_retry_and_converge() {
    let _session = FaultSession::begin();
    let (server, index) = start_server();
    let queries = workload::generate(&index, Mix::Uniform, 2_000, SEED);
    let expected = oracle_checksum(&index, &queries);

    // Fire every 5th traversal, 6 times total: both the server's frame
    // reads and the clients' response reads traverse the site, so cuts
    // land on both sides of the wire.
    fault::arm(Site::NetRead, FaultAction::Error, 4, 6);

    let report = ampc_net::run_harness(
        server.local_addr(),
        &queries,
        HarnessConfig { connections: 2, batch: 100, retries: 8 },
    )
    .expect("harness must converge despite read faults");
    assert!(fault::fired(Site::NetRead) >= 1, "schedule must actually fire");
    assert!(report.retries_used >= 1, "cut connections must have been retried");
    assert_eq!(report.checksum, expected, "converged answers must match the oracle exactly");
}

/// Same for `net.write`: a cut on the write side (server's reply or the
/// client's request) is a typed transport error, retried to convergence.
#[test]
fn write_faults_retry_and_converge() {
    let _session = FaultSession::begin();
    let (server, index) = start_server();
    let queries = workload::generate(&index, Mix::CrossComponent, 2_000, SEED ^ 1);
    let expected = oracle_checksum(&index, &queries);

    fault::arm(Site::NetWrite, FaultAction::Error, 6, 5);

    let report = ampc_net::run_harness(
        server.local_addr(),
        &queries,
        HarnessConfig { connections: 2, batch: 100, retries: 8 },
    )
    .expect("harness must converge despite write faults");
    assert!(fault::fired(Site::NetWrite) >= 1, "schedule must actually fire");
    assert_eq!(report.checksum, expected);
}

/// `net.accept` firing drops connections before admission; the harness's
/// connect retries ride it out and the workload still completes.
#[test]
fn accept_faults_drop_connections_but_workload_completes() {
    let _session = FaultSession::begin();
    let (server, index) = start_server();
    let queries = workload::generate(&index, Mix::Uniform, 1_000, SEED ^ 2);
    let expected = oracle_checksum(&index, &queries);

    // Drop the first 2 accepted connections outright.
    fault::arm(Site::NetAccept, FaultAction::Error, 0, 2);

    let report = ampc_net::run_harness(
        server.local_addr(),
        &queries,
        HarnessConfig { connections: 2, batch: 100, retries: 8 },
    )
    .expect("harness must converge despite dropped accepts");
    assert_eq!(fault::fired(Site::NetAccept), 2, "both scheduled drops must fire");
    assert_eq!(report.checksum, expected);
}

/// With retries disabled, an injected wire fault surfaces as a typed
/// error — the client is never handed a torn or wrong answer.
#[test]
fn fail_fast_surfaces_typed_errors_never_wrong_answers() {
    let _session = FaultSession::begin();
    let (server, index) = start_server();
    let queries = workload::generate(&index, Mix::Uniform, 500, SEED ^ 3);

    fault::arm(Site::NetWrite, FaultAction::Error, 2, 1);

    let result = ampc_net::run_harness(
        server.local_addr(),
        &queries,
        HarnessConfig { connections: 1, batch: 50, retries: 0 },
    );
    match result {
        Err(ClientError::Io(_)) | Err(ClientError::Closed) => {}
        Err(other) => panic!("expected a typed transport error, got: {other}"),
        Ok(report) => {
            // The schedule may land entirely on the server's reply write
            // for a frame the client already gave up on — but if the run
            // completed, every answer must still be exact.
            assert_eq!(report.checksum, oracle_checksum(&index, &queries));
        }
    }
    assert_eq!(fault::fired(Site::NetWrite), 1, "the scheduled fault must fire");

    // The server survives and serves cleanly once the schedule is spent.
    let mut conn = Connection::connect(server.local_addr()).expect("fresh connect");
    let answers = conn.query_batch(&queries[..50]).expect("clean exchange after fault");
    let engine = QueryEngine::new(&index);
    let expect: Vec<u64> = queries[..50].iter().map(|&q| engine.answer(q)).collect();
    assert_eq!(answers, expect);
}
