//! Protocol hardening: hostile or broken peers get typed error frames and
//! a closed connection — never a panic, a hang, or a leaked worker.
//!
//! Each case sends crafted bytes at a live server, asserts the typed
//! reply, and then proves the server is still healthy by completing a
//! normal exchange on a fresh connection. The final `wait()`-after-
//! shutdown in `server_survives_every_attack` is the leak check: a worker
//! stuck on a hostile connection would hang the join.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

use ampc_graph::generators::random_forest;
use ampc_net::protocol::{decode_error, encode_header, encode_queries, HEADER_LEN, MAGIC, VERSION};
use ampc_net::{Connection, ErrorCode, Opcode, ServerConfig};
use ampc_query::Query;
use ampc_serve::ServiceBuilder;

const N: usize = 200;

fn start_server() -> ampc_net::ServerHandle {
    let service = ServiceBuilder::new(random_forest(N, 4, 0xBAD)).build().expect("service");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    ampc_net::serve(
        service,
        listener,
        ServerConfig { workers: 2, queue_depth: 8, max_payload: 4096 },
    )
    .expect("serve")
}

/// Sends raw bytes, expects one typed error frame with `code`, then EOF
/// (the server must close after a protocol violation).
fn expect_typed_close(addr: std::net::SocketAddr, bytes: &[u8], code: ErrorCode) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(bytes).expect("send attack bytes");
    stream.flush().expect("flush");
    let frame = read_one_frame(&mut stream).expect("typed error frame due");
    assert_eq!(frame.0, Opcode::RespError as u8, "expected an error frame");
    let (got, msg) = decode_error(&frame.1).expect("typed error payload");
    assert_eq!(got, code, "wrong error code (message: {msg})");
    // After the error the server must close: next read sees EOF.
    let mut buf = [0u8; 1];
    let n = stream.read(&mut buf).expect("read after error");
    assert_eq!(n, 0, "server must close the connection after a protocol violation");
}

/// Minimal raw frame reader for the attack side (no validation — the
/// attacker wants the server's bytes verbatim).
fn read_one_frame(stream: &mut TcpStream) -> std::io::Result<(u8, Vec<u8>)> {
    let mut header = [0u8; HEADER_LEN];
    stream.read_exact(&mut header)?;
    assert_eq!(u32::from_le_bytes(header[0..4].try_into().unwrap()), MAGIC);
    assert_eq!(header[4], VERSION);
    let len = u32::from_le_bytes(header[8..12].try_into().unwrap()) as usize;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok((header[5], payload))
}

/// A normal exchange succeeds — the server survived whatever preceded it.
fn assert_server_alive(addr: std::net::SocketAddr) {
    let mut conn = Connection::connect(addr).expect("fresh connect");
    let answers = conn.query_batch(&[Query::TopKSize(1)]).expect("normal exchange");
    assert_eq!(answers.len(), 1);
    assert!(answers[0] > 0, "largest component must be nonempty");
}

#[test]
fn server_survives_every_attack() {
    let mut server = start_server();
    let addr = server.local_addr();

    // Bad magic.
    let mut frame = encode_header(Opcode::Health, 0, 1).to_vec();
    frame[0] ^= 0xFF;
    expect_typed_close(addr, &frame, ErrorCode::BadMagic);
    assert_server_alive(addr);

    // Foreign version.
    let mut frame = encode_header(Opcode::Health, 0, 1).to_vec();
    frame[4] = 42;
    expect_typed_close(addr, &frame, ErrorCode::BadVersion);
    assert_server_alive(addr);

    // Oversized payload length: rejected from the header alone, before
    // any allocation — no payload bytes are ever sent.
    let frame = encode_header(Opcode::QueryBatch, 1 << 30, 1);
    expect_typed_close(addr, &frame, ErrorCode::Oversized);
    assert_server_alive(addr);

    // Unknown opcode.
    let mut frame = encode_header(Opcode::Health, 0, 1).to_vec();
    frame[5] = 0x7C;
    expect_typed_close(addr, &frame, ErrorCode::UnknownOpcode);
    assert_server_alive(addr);

    // Nonzero reserved flags.
    let mut frame = encode_header(Opcode::Health, 0, 1).to_vec();
    frame[6] = 1;
    expect_typed_close(addr, &frame, ErrorCode::Malformed);
    assert_server_alive(addr);

    // Response opcode sent as a request.
    let frame = encode_header(Opcode::RespAnswers, 0, 1);
    expect_typed_close(addr, &frame, ErrorCode::Malformed);
    assert_server_alive(addr);

    // Ragged query batch (payload not a multiple of the record size).
    let mut frame = encode_header(Opcode::QueryBatch, 5, 1).to_vec();
    frame.extend_from_slice(&[0u8; 5]);
    expect_typed_close(addr, &frame, ErrorCode::Malformed);
    assert_server_alive(addr);

    // Unknown query tag inside a well-framed batch.
    let mut payload = encode_queries(&[Query::TopKSize(1)]);
    payload[0] = 0x99;
    let mut frame = encode_header(Opcode::QueryBatch, payload.len() as u32, 1).to_vec();
    frame.extend_from_slice(&payload);
    expect_typed_close(addr, &frame, ErrorCode::Malformed);
    assert_server_alive(addr);

    // Leak check: shutdown must join every worker even after the attacks.
    server.shutdown();
}

/// A peer that dribbles one byte at a time is slow, not malformed: the
/// server waits out the dribble and answers correctly.
#[test]
fn one_byte_dribble_is_served() {
    let server = start_server();
    let addr = server.local_addr();

    let queries = [Query::TopKSize(1), Query::ComponentSize(0)];
    let payload = encode_queries(&queries);
    let mut frame = encode_header(Opcode::QueryBatch, payload.len() as u32, 7).to_vec();
    frame.extend_from_slice(&payload);

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    for &b in &frame {
        stream.write_all(&[b]).expect("dribble byte");
        stream.flush().expect("flush");
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let (opcode, body) = read_one_frame(&mut stream).expect("answer despite dribble");
    assert_eq!(opcode, Opcode::RespAnswers as u8);
    assert_eq!(body.len(), queries.len() * 8, "one u64 answer per query");
    let top = u64::from_le_bytes(body[0..8].try_into().unwrap());
    assert!(top > 0);
}

/// A peer that sends half a frame and disappears wastes a read timeout,
/// not a worker: the connection is dropped and the server keeps serving.
#[test]
fn truncated_frame_then_close_frees_the_worker() {
    let server = start_server();
    let addr = server.local_addr();

    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(&encode_header(Opcode::QueryBatch, 24, 1)[..HEADER_LEN]).expect("header");
        stream.write_all(&[0u8; 10]).expect("partial payload");
        // Drop: close mid-frame.
    }
    // Half a header, then close.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(&[0x43u8; 7]).expect("partial header");
    }
    assert_server_alive(addr);
}

/// A connection that opens and closes without sending anything is a clean
/// close, not an error.
#[test]
fn silent_connection_is_a_clean_close() {
    let server = start_server();
    let addr = server.local_addr();
    for _ in 0..8 {
        drop(TcpStream::connect(addr).expect("connect"));
    }
    // The burst can transiently fill the depth-8 admission queue (the
    // accept thread pumps the kernel backlog faster than workers wake),
    // and a connect racing that window would be shed — correct behavior,
    // tested elsewhere. Liveness is what this test pins, so wait until
    // every burst connection is accounted for (served or shed) first.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while server.connections_served() + server.connections_shed() < 8 {
        assert!(std::time::Instant::now() < deadline, "silent closes must drain");
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert_server_alive(addr);
}
