//! The client side: a single-connection RPC wrapper and a closed-loop
//! multi-connection harness that replays a query workload over the wire,
//! validates checksums against an in-process oracle, and splits wire
//! latency (client-measured round-trip) from the server's service latency.

use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use ampc_obs::{hist, HistId, HistSnapshot, Histogram};
use ampc_query::Query;
use ampc_serve::driver::stripe;

use crate::protocol::{
    decode_answers, decode_error, encode_edges, encode_queries, read_frame, write_frame, ErrorCode,
    NetError, Opcode, ProtocolError, WireHealth, WireInsertReport, DEFAULT_MAX_PAYLOAD,
};

/// Everything an RPC can fail with, from the client's point of view.
#[derive(Debug)]
pub enum ClientError {
    /// The transport broke (connect refused, reset, injected `net.*`
    /// fault on either side).
    Io(std::io::Error),
    /// The server's bytes were structurally invalid, or it answered with
    /// the wrong opcode / request id.
    Protocol(ProtocolError),
    /// The server answered with a typed error frame.
    Server {
        /// The typed wire error code.
        code: ErrorCode,
        /// The server's human-readable detail.
        message: String,
    },
    /// The server closed the connection where a response frame was due.
    Closed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error [{}]: {message}", code.name())
            }
            ClientError::Closed => write!(f, "server closed the connection mid-exchange"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<NetError> for ClientError {
    fn from(e: NetError) -> Self {
        match e {
            NetError::Io(e) => ClientError::Io(e),
            NetError::Protocol(e) => ClientError::Protocol(e),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// True iff the server shed this client at admission
    /// ([`ErrorCode::Overloaded`]).
    pub fn is_overloaded(&self) -> bool {
        matches!(self, ClientError::Server { code: ErrorCode::Overloaded, .. })
    }

    /// True iff the server refused a write because it is read-only.
    pub fn is_read_only(&self) -> bool {
        matches!(self, ClientError::Server { code: ErrorCode::ReadOnly, .. })
    }
}

/// One protocol connection to a server.
pub struct Connection {
    stream: TcpStream,
    addr: SocketAddr,
    next_id: u32,
}

impl Connection {
    /// Connects and prepares the socket (nodelay; no read timeout — the
    /// client blocks until the server answers or closes).
    pub fn connect(addr: SocketAddr) -> Result<Connection, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Connection { stream, addr, next_id: 1 })
    }

    /// The server address this connection targets.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// One request/response exchange. Validates that the response echoes
    /// our request id and carries `expect` (or a typed error frame, which
    /// becomes [`ClientError::Server`]).
    fn rpc(
        &mut self,
        opcode: Opcode,
        payload: &[u8],
        expect: Opcode,
    ) -> Result<Vec<u8>, ClientError> {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        write_frame(&mut self.stream, opcode, id, payload)?;
        let (header, body) = read_frame(&mut self.stream, DEFAULT_MAX_PAYLOAD, || true)?
            .ok_or(ClientError::Closed)?;
        if header.opcode == Opcode::RespError {
            let (code, message) = decode_error(&body).map_err(ClientError::Protocol)?;
            return Err(ClientError::Server { code, message });
        }
        if header.opcode != expect {
            return Err(ClientError::Protocol(ProtocolError::Malformed(
                "unexpected response opcode",
            )));
        }
        if header.request_id != id {
            return Err(ClientError::Protocol(ProtocolError::Malformed(
                "response request id does not echo the request",
            )));
        }
        Ok(body)
    }

    /// Answers a query batch; answers come back in request order.
    pub fn query_batch(&mut self, queries: &[Query]) -> Result<Vec<u64>, ClientError> {
        let body = self.rpc(Opcode::QueryBatch, &encode_queries(queries), Opcode::RespAnswers)?;
        let answers = decode_answers(&body).map_err(ClientError::Protocol)?;
        if answers.len() != queries.len() {
            return Err(ClientError::Protocol(ProtocolError::Malformed(
                "answer count does not match query count",
            )));
        }
        Ok(answers)
    }

    /// Fetches the server's health (PR-8 state machine over the wire).
    pub fn health(&mut self) -> Result<WireHealth, ClientError> {
        let body = self.rpc(Opcode::Health, &[], Opcode::RespHealth)?;
        WireHealth::decode(&body).map_err(ClientError::Protocol)
    }

    /// Fetches the server's Prometheus text exposition.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let body = self.rpc(Opcode::Metrics, &[], Opcode::RespMetrics)?;
        String::from_utf8(body)
            .map_err(|_| ClientError::Protocol(ProtocolError::Malformed("metrics not UTF-8")))
    }

    /// Streams an edge batch into the server's journal.
    pub fn insert_edges(&mut self, edges: &[(u32, u32)]) -> Result<WireInsertReport, ClientError> {
        let body = self.rpc(Opcode::InsertEdges, &encode_edges(edges), Opcode::RespInsert)?;
        WireInsertReport::decode(&body).map_err(ClientError::Protocol)
    }

    /// Asks the server to shut down; returns once it acknowledges.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.rpc(Opcode::Shutdown, &[], Opcode::RespShutdown)?;
        Ok(())
    }

    /// Sends raw bytes on the underlying socket — test hook for the
    /// protocol-hardening suite (malformed frames, one-byte dribbles).
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Reads one raw frame off the socket — test hook paired with
    /// [`Connection::send_raw`].
    pub fn recv_raw(&mut self) -> Result<Option<(crate::protocol::Header, Vec<u8>)>, NetError> {
        read_frame(&mut self.stream, DEFAULT_MAX_PAYLOAD, || true)
    }
}

/// Tunables for [`run_harness`].
#[derive(Clone, Copy, Debug)]
pub struct HarnessConfig {
    /// Concurrent connections; the workload is striped across them with
    /// the same deterministic [`stripe`] the in-process driver uses, so
    /// the aggregate checksum is connection-count-invariant.
    pub connections: usize,
    /// Queries per request frame.
    pub batch: usize,
    /// Reconnect-and-retry attempts per batch after a transport error
    /// (typed server errors other than `Overloaded` are not retried —
    /// they are answers, not failures). 0 = fail fast.
    pub retries: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig { connections: 2, batch: 512, retries: 0 }
    }
}

/// What one [`run_harness`] run measured.
#[derive(Clone, Debug)]
pub struct HarnessReport {
    /// Queries answered.
    pub total_queries: usize,
    /// Aggregate wrapping-add checksum over every answer — compare to the
    /// in-process oracle's expected checksum.
    pub checksum: u64,
    /// End-to-end queries per second across all connections.
    pub qps: f64,
    /// Client-measured wire latency per round-trip (includes framing,
    /// kernel, loopback, and service time).
    pub wire: HistSnapshot,
    /// Transport errors that were retried successfully.
    pub retries_used: u64,
}

/// Replays `queries` against `addr` over `cfg.connections` closed-loop
/// connections and aggregates answers into a checksum.
///
/// Striping is deterministic and connection-count-invariant (wrapping-add
/// commutes), so the checksum can be compared byte-for-byte against
/// an in-process [`ampc_query::throughput`] pass over the same workload.
/// Wire latency is recorded per round-trip into both the returned
/// histogram and the global `net_wire_latency_ns`.
pub fn run_harness(
    addr: SocketAddr,
    queries: &[Query],
    cfg: HarnessConfig,
) -> Result<HarnessReport, ClientError> {
    assert!(cfg.connections > 0, "harness needs at least one connection");
    assert!(cfg.batch > 0, "harness needs a nonzero batch size");
    let wire_hist = Histogram::new();
    let started = std::time::Instant::now();

    let results: Vec<Result<(u64, u64), ClientError>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(cfg.connections);
        for t in 0..cfg.connections {
            let wire_hist = &wire_hist;
            let slice = &queries[stripe(queries.len(), cfg.connections, t)];
            handles.push(scope.spawn(move || run_connection(addr, slice, cfg, wire_hist)));
        }
        handles.into_iter().map(|h| h.join().expect("harness thread panicked")).collect()
    });

    let elapsed = started.elapsed().as_secs_f64();
    let mut checksum = 0u64;
    let mut retries_used = 0u64;
    for r in results {
        let (c, retries) = r?;
        checksum = checksum.wrapping_add(c);
        retries_used += retries;
    }
    Ok(HarnessReport {
        total_queries: queries.len(),
        checksum,
        qps: if elapsed > 0.0 { queries.len() as f64 / elapsed } else { 0.0 },
        wire: wire_hist.snapshot(),
        retries_used,
    })
}

fn run_connection(
    addr: SocketAddr,
    queries: &[Query],
    cfg: HarnessConfig,
    wire_hist: &Histogram,
) -> Result<(u64, u64), ClientError> {
    let global = hist(HistId::NetWireNs);
    let mut conn = connect_with_retries(addr, cfg.retries)?;
    let mut checksum = 0u64;
    let mut retries_used = 0u64;
    for batch in queries.chunks(cfg.batch) {
        let mut attempt = 0usize;
        let answers = loop {
            let t0 = std::time::Instant::now();
            match conn.query_batch(batch) {
                Ok(answers) => {
                    let ns = t0.elapsed().as_nanos() as u64;
                    wire_hist.record(ns);
                    global.record(ns);
                    break answers;
                }
                // Typed server errors other than Overloaded are answers,
                // not transport failures — do not mask them with retries.
                Err(e @ ClientError::Server { .. }) if !e.is_overloaded() => return Err(e),
                Err(e) => {
                    if attempt >= cfg.retries {
                        return Err(e);
                    }
                    attempt += 1;
                    retries_used += 1;
                    // Overload shed closes the connection; transport
                    // errors leave it torn. Reconnect either way.
                    std::thread::sleep(Duration::from_millis(10 * attempt as u64));
                    conn = connect_with_retries(addr, cfg.retries)?;
                }
            }
        };
        for a in answers {
            checksum = checksum.wrapping_add(a);
        }
    }
    Ok((checksum, retries_used))
}

fn connect_with_retries(addr: SocketAddr, retries: usize) -> Result<Connection, ClientError> {
    let mut attempt = 0usize;
    loop {
        match Connection::connect(addr) {
            Ok(conn) => return Ok(conn),
            Err(e) => {
                if attempt >= retries {
                    return Err(e);
                }
                attempt += 1;
                std::thread::sleep(Duration::from_millis(10 * attempt as u64));
            }
        }
    }
}

/// Recovers quantiles from a Prometheus text exposition's histogram
/// bucket lines for `name` (as rendered by `ampc_obs::render_text`):
/// `name_bucket{le="N"} cum` … `name_bucket{le="+Inf"} cum`.
///
/// Returns `(count, [(label, value); 3])` for p50/p99/p999, computed the
/// same way `HistSnapshot::quantile` computes them (upper bound of the
/// bucket the rank falls in), so the client can report **server-side**
/// service latency without a side channel.
pub fn prom_histogram_quantiles(text: &str, name: &str) -> Option<(u64, [(&'static str, u64); 3])> {
    let prefix = format!("{name}_bucket{{le=\"");
    let mut buckets: Vec<(u64, u64)> = Vec::new(); // (upper, cumulative)
    let mut total = 0u64;
    for line in text.lines() {
        let Some(rest) = line.strip_prefix(&prefix) else { continue };
        let (le, cum) = rest.split_once("\"} ")?;
        let cum: u64 = cum.trim().parse().ok()?;
        if le == "+Inf" {
            total = cum;
        } else {
            buckets.push((le.parse().ok()?, cum));
        }
    }
    if total == 0 {
        return None;
    }
    let quantile = |q: f64| -> u64 {
        let rank = ((total as f64) * q).ceil().max(1.0) as u64;
        for &(upper, cum) in &buckets {
            if cum >= rank {
                return upper;
            }
        }
        buckets.last().map(|&(u, _)| u).unwrap_or(u64::MAX)
    };
    Some((total, [("p50", quantile(0.50)), ("p99", quantile(0.99)), ("p999", quantile(0.999))]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prom_parser_recovers_quantiles() {
        let text = "\
# TYPE x_ns histogram\n\
x_ns_bucket{le=\"100\"} 50\n\
x_ns_bucket{le=\"200\"} 99\n\
x_ns_bucket{le=\"400\"} 100\n\
x_ns_bucket{le=\"+Inf\"} 100\n\
x_ns_sum 12345\n\
x_ns_count 100\n";
        let (count, qs) = prom_histogram_quantiles(text, "x_ns").expect("parse");
        assert_eq!(count, 100);
        assert_eq!(qs[0], ("p50", 100));
        assert_eq!(qs[1], ("p99", 200));
        assert_eq!(qs[2], ("p999", 400));
        assert!(prom_histogram_quantiles(text, "y_ns").is_none());
    }
}
