//! # ampc-net — the network serving front-end
//!
//! A hand-rolled TCP layer (zero dependencies, `std::net` only) that puts
//! the serving stack of PRs 5–9 on the wire:
//!
//! * [`protocol`] — the versioned length-prefixed binary framing: a fixed
//!   16-byte header validated before any allocation, typed opcodes for
//!   batch queries / health / metrics / edge inserts / shutdown, and
//!   typed error frames mirroring the in-process `ServeError`s.
//! * [`server`] — a fixed worker pool over a **bounded admission queue**:
//!   past the high-water mark the accept thread sheds deterministically
//!   with a typed `Overloaded` reply; each query-batch frame pins one
//!   lock-free `IndexSnapshot`, so rebuilds publishing mid-flight never
//!   tear a batch.
//! * [`client`] — a single-connection RPC wrapper plus a closed-loop
//!   multi-connection harness that replays seeded workloads, validates
//!   checksums against the in-process oracle, and splits client-measured
//!   **wire latency** from the server's **service latency**.
//!
//! Chaos scheduling reuses the `serve::fault` registry: `net.accept`,
//! `net.read` and `net.write` failpoints sit on the accept path and on
//! every frame read/write, so tests can cut the wire deterministically on
//! either side.
//!
//! See `DESIGN.md` § "Wire protocol" for the frame layout, the
//! version-bump policy, and the backpressure/safety arguments.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{
    prom_histogram_quantiles, run_harness, ClientError, Connection, HarnessConfig, HarnessReport,
};
pub use protocol::{ErrorCode, NetError, Opcode, ProtocolError, WireHealth, WireInsertReport};
pub use server::{serve, ServerConfig, ServerHandle};
