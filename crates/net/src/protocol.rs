//! The wire protocol: a versioned length-prefixed binary framing plus the
//! payload codecs for every opcode.
//!
//! # Frame layout
//!
//! Every message — request or response — is one frame: a fixed **16-byte
//! header** followed by `payload_len` payload bytes. All integers are
//! little-endian.
//!
//! ```text
//! offset  size  field
//!      0     4  magic        0x414D5043 ("AMPC")
//!      4     1  version      1
//!      5     1  opcode       Opcode discriminant
//!      6     2  flags        reserved, must be zero
//!      8     4  payload_len  bytes following the header
//!     12     4  request_id   echoed verbatim in the response
//! ```
//!
//! The header is fixed-size on purpose: a reader can validate magic,
//! version and payload bound **before** allocating anything, so a hostile
//! or corrupt peer can never make the server buffer an unbounded frame.
//! Responses reuse the same header with response opcodes (high bit set);
//! every error travels as a [`Opcode::RespError`] frame carrying a typed
//! [`ErrorCode`] — the wire analogue of the typed `ServeError`s inside the
//! process.
//!
//! # Version-bump policy
//!
//! `VERSION` changes whenever the header layout, an existing opcode's
//! payload encoding, or an error code's meaning changes. Adding a *new*
//! opcode is not a version bump: an old server answers it with a typed
//! `UnknownOpcode` error and keeps the connection, which is exactly the
//! negotiation a client needs. A reader that sees a foreign version
//! refuses the frame before touching the payload (typed
//! [`ProtocolError::BadVersion`]) — there is no cross-version parsing,
//! matching the snapshot format's refuse-don't-guess policy.
//!
//! # Failpoints
//!
//! [`read_frame`] and [`write_frame`] traverse the `net.read` / `net.write`
//! failpoints (one relaxed load when disarmed), so chaos schedules can cut
//! either direction of the wire deterministically on both the server and
//! the client side.

use std::io::{Read, Write};

use ampc_query::Query;
use ampc_serve::fault::{self, Site};

/// Frame magic: `"AMPC"` read as a big-endian u32, stored little-endian.
pub const MAGIC: u32 = 0x414D_5043;
/// Protocol version this build speaks (see the version-bump policy above).
pub const VERSION: u8 = 1;
/// Fixed frame-header size in bytes.
pub const HEADER_LEN: usize = 16;
/// Default cap a reader enforces on `payload_len` before allocating.
pub const DEFAULT_MAX_PAYLOAD: u32 = 1 << 20;
/// Bytes one encoded query occupies ([`encode_queries`]).
pub const QUERY_WIRE_LEN: usize = 12;

/// Frame opcodes. Requests have the high bit clear, responses set; the
/// pairing is `request | 0x80` except for [`Opcode::RespError`], which can
/// answer any request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Batch of encoded queries → [`Opcode::RespAnswers`].
    QueryBatch = 0x01,
    /// Health probe (empty payload) → [`Opcode::RespHealth`].
    Health = 0x02,
    /// Prometheus metrics dump (empty payload) → [`Opcode::RespMetrics`].
    Metrics = 0x03,
    /// Edge-insert batch (write op; refused in ReadOnly) →
    /// [`Opcode::RespInsert`].
    InsertEdges = 0x04,
    /// Orderly server shutdown (empty payload) → [`Opcode::RespShutdown`].
    Shutdown = 0x05,
    /// Answer array: one u64 per query, in request order.
    RespAnswers = 0x81,
    /// Encoded [`WireHealth`].
    RespHealth = 0x82,
    /// UTF-8 Prometheus text exposition.
    RespMetrics = 0x83,
    /// Encoded [`WireInsertReport`].
    RespInsert = 0x84,
    /// Empty acknowledgement; the server exits after sending it.
    RespShutdown = 0x85,
    /// Typed error: u16 [`ErrorCode`], u16 reserved, UTF-8 message.
    RespError = 0xEE,
}

impl Opcode {
    fn from_u8(b: u8) -> Option<Opcode> {
        Some(match b {
            0x01 => Opcode::QueryBatch,
            0x02 => Opcode::Health,
            0x03 => Opcode::Metrics,
            0x04 => Opcode::InsertEdges,
            0x05 => Opcode::Shutdown,
            0x81 => Opcode::RespAnswers,
            0x82 => Opcode::RespHealth,
            0x83 => Opcode::RespMetrics,
            0x84 => Opcode::RespInsert,
            0x85 => Opcode::RespShutdown,
            0xEE => Opcode::RespError,
            _ => return None,
        })
    }
}

/// Typed error codes carried by [`Opcode::RespError`] frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// Structurally invalid frame or payload (bad flags, ragged array,
    /// unknown query tag, non-UTF-8 text…).
    Malformed = 1,
    /// Wrong frame magic.
    BadMagic = 2,
    /// Protocol version this peer does not speak.
    BadVersion = 3,
    /// `payload_len` above the reader's cap.
    Oversized = 4,
    /// Opcode this peer does not recognize.
    UnknownOpcode = 5,
    /// Admission queue at its high-water mark — deterministic load shed.
    Overloaded = 6,
    /// Write opcode refused because the service is ReadOnly.
    ReadOnly = 7,
    /// The request was valid but the service failed to execute it.
    Internal = 8,
}

impl ErrorCode {
    /// Decodes a wire error code.
    pub fn from_u16(v: u16) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::BadMagic,
            3 => ErrorCode::BadVersion,
            4 => ErrorCode::Oversized,
            5 => ErrorCode::UnknownOpcode,
            6 => ErrorCode::Overloaded,
            7 => ErrorCode::ReadOnly,
            8 => ErrorCode::Internal,
            _ => return None,
        })
    }

    /// Stable lower-case name (used in error text and JSON).
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::BadMagic => "bad-magic",
            ErrorCode::BadVersion => "bad-version",
            ErrorCode::Oversized => "oversized",
            ErrorCode::UnknownOpcode => "unknown-opcode",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ReadOnly => "read-only",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A structurally invalid frame, detected before any payload is trusted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// Frame magic was not [`MAGIC`].
    BadMagic(u32),
    /// Frame version was not [`VERSION`].
    BadVersion(u8),
    /// `payload_len` exceeded the reader's cap.
    Oversized {
        /// Length the header claimed.
        len: u32,
        /// Cap the reader enforces.
        max: u32,
    },
    /// The peer closed the connection mid-frame.
    Truncated,
    /// Opcode byte this peer does not recognize.
    UnknownOpcode(u8),
    /// Any other structural violation; the string says which.
    Malformed(&'static str),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::BadMagic(m) => write!(f, "bad frame magic 0x{m:08x}"),
            ProtocolError::BadVersion(v) => {
                write!(f, "unsupported protocol version {v} (this build speaks {VERSION})")
            }
            ProtocolError::Oversized { len, max } => {
                write!(f, "payload length {len} exceeds the {max}-byte cap")
            }
            ProtocolError::Truncated => write!(f, "connection closed mid-frame"),
            ProtocolError::UnknownOpcode(b) => write!(f, "unknown opcode 0x{b:02x}"),
            ProtocolError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl ProtocolError {
    /// The typed wire code + message a server replies with before closing.
    pub fn wire_error(&self) -> (ErrorCode, String) {
        let code = match self {
            ProtocolError::BadMagic(_) => ErrorCode::BadMagic,
            ProtocolError::BadVersion(_) => ErrorCode::BadVersion,
            ProtocolError::Oversized { .. } => ErrorCode::Oversized,
            ProtocolError::UnknownOpcode(_) => ErrorCode::UnknownOpcode,
            ProtocolError::Truncated | ProtocolError::Malformed(_) => ErrorCode::Malformed,
        };
        (code, self.to_string())
    }
}

/// Everything a frame exchange can fail with: the transport broke, or the
/// bytes were structurally invalid.
#[derive(Debug)]
pub enum NetError {
    /// Transport-level failure (includes injected `net.read`/`net.write`
    /// faults, which surface as ordinary I/O errors).
    Io(std::io::Error),
    /// Structurally invalid frame.
    Protocol(ProtocolError),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "{e}"),
            NetError::Protocol(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<ProtocolError> for NetError {
    fn from(e: ProtocolError) -> Self {
        NetError::Protocol(e)
    }
}

/// A decoded frame header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Header {
    /// The frame's opcode.
    pub opcode: Opcode,
    /// Payload bytes following the header.
    pub payload_len: u32,
    /// Correlation id, echoed verbatim by responses.
    pub request_id: u32,
}

/// Encodes a header into its 16 wire bytes.
pub fn encode_header(opcode: Opcode, payload_len: u32, request_id: u32) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    h[4] = VERSION;
    h[5] = opcode as u8;
    // h[6..8] flags: reserved, zero.
    h[8..12].copy_from_slice(&payload_len.to_le_bytes());
    h[12..16].copy_from_slice(&request_id.to_le_bytes());
    h
}

/// Decodes and validates 16 header bytes. `max_payload` bounds
/// `payload_len` **before** the caller allocates a buffer for it.
pub fn decode_header(bytes: &[u8; HEADER_LEN], max_payload: u32) -> Result<Header, ProtocolError> {
    let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(ProtocolError::BadMagic(magic));
    }
    if bytes[4] != VERSION {
        return Err(ProtocolError::BadVersion(bytes[4]));
    }
    let opcode = Opcode::from_u8(bytes[5]).ok_or(ProtocolError::UnknownOpcode(bytes[5]))?;
    if bytes[6] != 0 || bytes[7] != 0 {
        return Err(ProtocolError::Malformed("reserved flags must be zero"));
    }
    let payload_len = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if payload_len > max_payload {
        return Err(ProtocolError::Oversized { len: payload_len, max: max_payload });
    }
    let request_id = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    Ok(Header { opcode, payload_len, request_id })
}

/// Writes one frame (header + payload). Traverses the `net.write`
/// failpoint; an injected fault surfaces as an ordinary I/O error.
pub fn write_frame(
    w: &mut impl Write,
    opcode: Opcode,
    request_id: u32,
    payload: &[u8],
) -> std::io::Result<()> {
    fault::check(Site::NetWrite).map_err(std::io::Error::other)?;
    debug_assert!(payload.len() <= u32::MAX as usize);
    w.write_all(&encode_header(opcode, payload.len() as u32, request_id))?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. Returns `Ok(None)` on a clean close — EOF at a frame
/// boundary, or `keep_waiting` turning false while blocked (the server's
/// shutdown path; sockets there carry a read timeout, and `WouldBlock` /
/// `TimedOut` re-polls `keep_waiting` instead of failing). EOF *inside* a
/// frame is a typed [`ProtocolError::Truncated`]. Traverses the `net.read`
/// failpoint once per frame.
pub fn read_frame(
    r: &mut impl Read,
    max_payload: u32,
    keep_waiting: impl Fn() -> bool,
) -> Result<Option<(Header, Vec<u8>)>, NetError> {
    fault::check(Site::NetRead).map_err(std::io::Error::other)?;
    let mut header = [0u8; HEADER_LEN];
    match read_full(r, &mut header, true, &keep_waiting)? {
        ReadFull::Done => {}
        ReadFull::CleanClose => return Ok(None),
    }
    let header = decode_header(&header, max_payload)?;
    let mut payload = vec![0u8; header.payload_len as usize];
    match read_full(r, &mut payload, false, &keep_waiting)? {
        ReadFull::Done => Ok(Some((header, payload))),
        ReadFull::CleanClose => unreachable!("mid-frame close maps to Truncated"),
    }
}

enum ReadFull {
    Done,
    CleanClose,
}

/// Fills `buf` completely. A dribbling peer (one byte per write) is fine —
/// the loop keeps reading; a peer that closes after 0 bytes is a clean
/// close iff `at_boundary`, otherwise the frame is truncated.
fn read_full(
    r: &mut impl Read,
    buf: &mut [u8],
    at_boundary: bool,
    keep_waiting: &impl Fn() -> bool,
) -> Result<ReadFull, NetError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if at_boundary && filled == 0 {
                    Ok(ReadFull::CleanClose)
                } else {
                    Err(ProtocolError::Truncated.into())
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if !keep_waiting() {
                    return Ok(ReadFull::CleanClose);
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(ReadFull::Done)
}

// ---- payload codecs ------------------------------------------------------

/// Query tags on the wire (u32, little-endian).
const TAG_CONNECTED: u32 = 0;
const TAG_COMPONENT_OF: u32 = 1;
const TAG_COMPONENT_SIZE: u32 = 2;
const TAG_TOP_K_SIZE: u32 = 3;

/// Encodes a query batch: [`QUERY_WIRE_LEN`] bytes per query — tag u32,
/// operand `a` u32, operand `b` u32 (zero where unused).
pub fn encode_queries(queries: &[Query]) -> Vec<u8> {
    let mut out = Vec::with_capacity(queries.len() * QUERY_WIRE_LEN);
    for &q in queries {
        let (tag, a, b) = match q {
            Query::Connected(u, v) => (TAG_CONNECTED, u, v),
            Query::ComponentOf(v) => (TAG_COMPONENT_OF, v, 0),
            Query::ComponentSize(v) => (TAG_COMPONENT_SIZE, v, 0),
            Query::TopKSize(k) => (TAG_TOP_K_SIZE, k, 0),
        };
        out.extend_from_slice(&tag.to_le_bytes());
        out.extend_from_slice(&a.to_le_bytes());
        out.extend_from_slice(&b.to_le_bytes());
    }
    out
}

/// Decodes a query batch payload; refuses ragged lengths and unknown tags.
pub fn decode_queries(payload: &[u8]) -> Result<Vec<Query>, ProtocolError> {
    if !payload.len().is_multiple_of(QUERY_WIRE_LEN) {
        return Err(ProtocolError::Malformed("query batch length not a multiple of 12"));
    }
    let mut out = Vec::with_capacity(payload.len() / QUERY_WIRE_LEN);
    for rec in payload.chunks_exact(QUERY_WIRE_LEN) {
        let tag = u32::from_le_bytes(rec[0..4].try_into().unwrap());
        let a = u32::from_le_bytes(rec[4..8].try_into().unwrap());
        let b = u32::from_le_bytes(rec[8..12].try_into().unwrap());
        out.push(match tag {
            TAG_CONNECTED => Query::Connected(a, b),
            TAG_COMPONENT_OF => Query::ComponentOf(a),
            TAG_COMPONENT_SIZE => Query::ComponentSize(a),
            TAG_TOP_K_SIZE => Query::TopKSize(a),
            _ => return Err(ProtocolError::Malformed("unknown query tag")),
        });
    }
    Ok(out)
}

/// Encodes an answer array: one u64 per query, request order.
pub fn encode_answers(answers: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(answers.len() * 8);
    for &a in answers {
        out.extend_from_slice(&a.to_le_bytes());
    }
    out
}

/// Decodes an answer array payload.
pub fn decode_answers(payload: &[u8]) -> Result<Vec<u64>, ProtocolError> {
    if !payload.len().is_multiple_of(8) {
        return Err(ProtocolError::Malformed("answer array length not a multiple of 8"));
    }
    Ok(payload.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect())
}

/// Encodes an edge-insert batch: pairs of u32 endpoints.
pub fn encode_edges(edges: &[(u32, u32)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(edges.len() * 8);
    for &(u, v) in edges {
        out.extend_from_slice(&u.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes an edge-insert payload.
pub fn decode_edges(payload: &[u8]) -> Result<Vec<(u32, u32)>, ProtocolError> {
    if !payload.len().is_multiple_of(8) {
        return Err(ProtocolError::Malformed("edge batch length not a multiple of 8"));
    }
    Ok(payload
        .chunks_exact(8)
        .map(|c| {
            (
                u32::from_le_bytes(c[0..4].try_into().unwrap()),
                u32::from_le_bytes(c[4..8].try_into().unwrap()),
            )
        })
        .collect())
}

/// Wire-visible service health: the [`Opcode::RespHealth`] payload
/// (32 bytes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireHealth {
    /// 0 = healthy, 1 = degraded, 2 = read-only.
    pub state: u8,
    /// Consecutive write-path failures.
    pub consecutive_failures: u32,
    /// Total incidents ever recorded.
    pub total_incidents: u64,
    /// Epoch the server's current snapshot serves.
    pub epoch: u64,
    /// Connected components in that epoch.
    pub components: u64,
}

impl WireHealth {
    /// Stable state name, matching `HealthState::name()` on the server.
    pub fn state_name(&self) -> &'static str {
        match self.state {
            0 => "healthy",
            1 => "degraded",
            2 => "read-only",
            _ => "unknown",
        }
    }

    /// Encodes the 32-byte payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        out.push(self.state);
        out.extend_from_slice(&[0u8; 3]);
        out.extend_from_slice(&self.consecutive_failures.to_le_bytes());
        out.extend_from_slice(&self.total_incidents.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.components.to_le_bytes());
        out
    }

    /// Decodes the 32-byte payload.
    pub fn decode(payload: &[u8]) -> Result<WireHealth, ProtocolError> {
        if payload.len() != 32 {
            return Err(ProtocolError::Malformed("health payload must be 32 bytes"));
        }
        Ok(WireHealth {
            state: payload[0],
            consecutive_failures: u32::from_le_bytes(payload[4..8].try_into().unwrap()),
            total_incidents: u64::from_le_bytes(payload[8..16].try_into().unwrap()),
            epoch: u64::from_le_bytes(payload[16..24].try_into().unwrap()),
            components: u64::from_le_bytes(payload[24..32].try_into().unwrap()),
        })
    }
}

/// Wire-visible insert result: the [`Opcode::RespInsert`] payload
/// (24 bytes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireInsertReport {
    /// Journal-epoch the batch published as.
    pub epoch: u64,
    /// Edges accepted.
    pub applied: u64,
    /// Connected components after the batch.
    pub components: u64,
}

impl WireInsertReport {
    /// Encodes the 24-byte payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24);
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.applied.to_le_bytes());
        out.extend_from_slice(&self.components.to_le_bytes());
        out
    }

    /// Decodes the 24-byte payload.
    pub fn decode(payload: &[u8]) -> Result<WireInsertReport, ProtocolError> {
        if payload.len() != 24 {
            return Err(ProtocolError::Malformed("insert payload must be 24 bytes"));
        }
        Ok(WireInsertReport {
            epoch: u64::from_le_bytes(payload[0..8].try_into().unwrap()),
            applied: u64::from_le_bytes(payload[8..16].try_into().unwrap()),
            components: u64::from_le_bytes(payload[16..24].try_into().unwrap()),
        })
    }
}

/// Encodes a [`Opcode::RespError`] payload: code u16, reserved u16, UTF-8
/// message.
pub fn encode_error(code: ErrorCode, message: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + message.len());
    out.extend_from_slice(&(code as u16).to_le_bytes());
    out.extend_from_slice(&[0u8; 2]);
    out.extend_from_slice(message.as_bytes());
    out
}

/// Decodes a [`Opcode::RespError`] payload.
pub fn decode_error(payload: &[u8]) -> Result<(ErrorCode, String), ProtocolError> {
    if payload.len() < 4 {
        return Err(ProtocolError::Malformed("error payload shorter than 4 bytes"));
    }
    let raw = u16::from_le_bytes(payload[0..2].try_into().unwrap());
    let code =
        ErrorCode::from_u16(raw).ok_or(ProtocolError::Malformed("unknown wire error code"))?;
    let message = std::str::from_utf8(&payload[4..])
        .map_err(|_| ProtocolError::Malformed("error message is not UTF-8"))?
        .to_string();
    Ok((code, message))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip_and_size() {
        let bytes = encode_header(Opcode::QueryBatch, 1234, 77);
        assert_eq!(bytes.len(), HEADER_LEN);
        let h = decode_header(&bytes, DEFAULT_MAX_PAYLOAD).expect("valid header");
        assert_eq!(h, Header { opcode: Opcode::QueryBatch, payload_len: 1234, request_id: 77 });
    }

    #[test]
    fn header_rejections_are_typed() {
        let good = encode_header(Opcode::Health, 0, 1);

        let mut bad = good;
        bad[0] ^= 0xFF;
        assert!(matches!(
            decode_header(&bad, DEFAULT_MAX_PAYLOAD),
            Err(ProtocolError::BadMagic(_))
        ));

        let mut bad = good;
        bad[4] = 99;
        assert_eq!(decode_header(&bad, DEFAULT_MAX_PAYLOAD), Err(ProtocolError::BadVersion(99)));

        let mut bad = good;
        bad[5] = 0x7C;
        assert_eq!(
            decode_header(&bad, DEFAULT_MAX_PAYLOAD),
            Err(ProtocolError::UnknownOpcode(0x7C))
        );

        let mut bad = good;
        bad[6] = 1;
        assert!(matches!(
            decode_header(&bad, DEFAULT_MAX_PAYLOAD),
            Err(ProtocolError::Malformed(_))
        ));

        let oversized = encode_header(Opcode::Health, 4096, 1);
        assert_eq!(
            decode_header(&oversized, 1024),
            Err(ProtocolError::Oversized { len: 4096, max: 1024 })
        );
    }

    #[test]
    fn query_batch_roundtrip() {
        let queries = vec![
            Query::Connected(3, 9),
            Query::ComponentOf(7),
            Query::ComponentSize(0),
            Query::TopKSize(4),
        ];
        let bytes = encode_queries(&queries);
        assert_eq!(bytes.len(), queries.len() * QUERY_WIRE_LEN);
        assert_eq!(decode_queries(&bytes).expect("roundtrip"), queries);

        assert!(decode_queries(&bytes[..5]).is_err(), "ragged length must be refused");
        let mut bad_tag = bytes.clone();
        bad_tag[0] = 0x44;
        assert!(decode_queries(&bad_tag).is_err(), "unknown tag must be refused");
    }

    #[test]
    fn answer_edge_health_insert_error_roundtrips() {
        let answers = vec![0u64, 1, u64::MAX, 42];
        assert_eq!(decode_answers(&encode_answers(&answers)).expect("answers"), answers);
        assert!(decode_answers(&[0u8; 7]).is_err());

        let edges = vec![(0u32, 1u32), (7, 7), (u32::MAX, 0)];
        assert_eq!(decode_edges(&encode_edges(&edges)).expect("edges"), edges);
        assert!(decode_edges(&[0u8; 9]).is_err());

        let health = WireHealth {
            state: 1,
            consecutive_failures: 2,
            total_incidents: 3,
            epoch: 4,
            components: 5,
        };
        assert_eq!(WireHealth::decode(&health.encode()).expect("health"), health);
        assert_eq!(health.state_name(), "degraded");
        assert!(WireHealth::decode(&[0u8; 31]).is_err());

        let report = WireInsertReport { epoch: 9, applied: 64, components: 1000 };
        assert_eq!(WireInsertReport::decode(&report.encode()).expect("insert"), report);

        let (code, msg) =
            decode_error(&encode_error(ErrorCode::Overloaded, "queue full")).expect("error");
        assert_eq!((code, msg.as_str()), (ErrorCode::Overloaded, "queue full"));
        assert!(decode_error(&[1]).is_err());
        assert!(decode_error(&[0xFF, 0xFF, 0, 0]).is_err(), "unknown code must be refused");
    }

    #[test]
    fn frame_io_roundtrip_over_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, Opcode::QueryBatch, 5, b"payload").expect("write");
        let mut cursor = &wire[..];
        let (h, payload) =
            read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD, || true).expect("read").expect("frame");
        assert_eq!(h.opcode, Opcode::QueryBatch);
        assert_eq!(h.request_id, 5);
        assert_eq!(payload, b"payload");
        // The stream is exhausted at a frame boundary: clean close.
        assert!(read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD, || true).expect("eof").is_none());
    }

    #[test]
    fn truncated_frame_is_typed() {
        let mut wire = Vec::new();
        write_frame(&mut wire, Opcode::Health, 1, b"12345678").expect("write");
        // Chop the payload short.
        let mut cursor = &wire[..HEADER_LEN + 3];
        match read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD, || true) {
            Err(NetError::Protocol(ProtocolError::Truncated)) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
        // Chop the header short.
        let mut cursor = &wire[..7];
        match read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD, || true) {
            Err(NetError::Protocol(ProtocolError::Truncated)) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn error_codes_roundtrip_with_unique_names() {
        let all = [
            ErrorCode::Malformed,
            ErrorCode::BadMagic,
            ErrorCode::BadVersion,
            ErrorCode::Oversized,
            ErrorCode::UnknownOpcode,
            ErrorCode::Overloaded,
            ErrorCode::ReadOnly,
            ErrorCode::Internal,
        ];
        let mut names: Vec<&str> = all.iter().map(|c| c.name()).collect();
        for c in all {
            assert_eq!(ErrorCode::from_u16(c as u16), Some(c));
        }
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
        assert_eq!(ErrorCode::from_u16(0), None);
    }
}
