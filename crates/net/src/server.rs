//! The TCP server: a fixed worker pool over a bounded admission queue,
//! serving the binary protocol against a [`ServiceHandle`]'s lock-free
//! epoch snapshots.
//!
//! # Admission control and backpressure
//!
//! One accept thread pulls connections off the listener and pushes them
//! onto a bounded queue; `workers` threads pop and serve them until the
//! peer closes. When the queue is at its high-water mark
//! ([`ServerConfig::queue_depth`]), the accept thread **sheds**: it writes
//! one typed `Overloaded` error frame and drops the connection. The queue
//! therefore never grows beyond `queue_depth`, the shed decision is
//! deterministic (a pure depth comparison, no timing heuristics), and a
//! shed client gets a machine-readable signal to back off rather than a
//! hang or a reset.
//!
//! # Worker-pinned snapshots
//!
//! A worker takes `service.snapshot()` **once per query-batch frame** and
//! answers the whole batch against it. Epoch publication is an atomic
//! pointer swap on the service side, so a rebuild or compaction landing
//! mid-batch never tears a batch: every frame's answers are wholly from
//! one epoch, and the next frame simply observes the newer one. The
//! snapshot is dropped when the frame is answered, so workers never pin
//! an old epoch for longer than one batch.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ampc_obs::{counter, gauge, hist, CounterId, GaugeId, HistId, Histogram};
use ampc_query::throughput::timed_pass;
use ampc_serve::fault::{self, Site};
use ampc_serve::{HealthState, ServeError, ServiceHandle};

use crate::protocol::{
    decode_edges, decode_queries, encode_answers, encode_error, write_frame, ErrorCode, Header,
    NetError, Opcode, ProtocolError, WireHealth, WireInsertReport, DEFAULT_MAX_PAYLOAD,
};

/// Tunables for [`serve`].
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads serving admitted connections.
    pub workers: usize,
    /// Admission-queue high-water mark; connections arriving with the
    /// queue at this depth are shed with a typed `Overloaded` reply.
    pub queue_depth: usize,
    /// Per-frame payload cap enforced before any allocation.
    pub max_payload: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { workers: 4, queue_depth: 64, max_payload: DEFAULT_MAX_PAYLOAD }
    }
}

/// How often a blocked worker re-checks the shutdown flag. Long enough to
/// be invisible in latency histograms, short enough that `shutdown()`
/// completes promptly.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

struct Shared {
    service: ServiceHandle,
    config: ServerConfig,
    shutdown: AtomicBool,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_signal: Condvar,
    /// Server-side service latency (satellite: split from wire latency).
    service_hist: Histogram,
    connections_served: AtomicU64,
    connections_shed: AtomicU64,
}

impl Shared {
    fn running(&self) -> bool {
        !self.shutdown.load(Ordering::Acquire)
    }
}

/// A running server; dropping it shuts the server down and joins every
/// thread.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Starts serving `service` on `listener` with a fixed worker pool.
///
/// Returns as soon as the accept thread and workers are spawned; use the
/// returned [`ServerHandle`] to query the bound address (ephemeral ports),
/// wait for an orderly shutdown, or force one.
pub fn serve(
    service: ServiceHandle,
    listener: TcpListener,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    assert!(config.workers > 0, "server needs at least one worker");
    assert!(config.queue_depth > 0, "admission queue needs capacity");
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        service,
        config,
        shutdown: AtomicBool::new(false),
        queue: Mutex::new(VecDeque::new()),
        queue_signal: Condvar::new(),
        service_hist: Histogram::new(),
        connections_served: AtomicU64::new(0),
        connections_shed: AtomicU64::new(0),
    });

    let mut workers = Vec::with_capacity(config.workers);
    for _ in 0..config.workers {
        let shared = Arc::clone(&shared);
        workers.push(std::thread::spawn(move || worker_loop(&shared)));
    }
    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::spawn(move || accept_loop(&accept_shared, &listener));

    Ok(ServerHandle { shared, addr, accept_thread: Some(accept_thread), workers })
}

impl ServerHandle {
    /// The address the server is listening on (resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently waiting in the admission queue.
    pub fn queued(&self) -> usize {
        self.shared.queue.lock().expect("queue lock").len()
    }

    /// Connections a worker has finished serving.
    pub fn connections_served(&self) -> u64 {
        self.shared.connections_served.load(Ordering::Relaxed)
    }

    /// Connections shed at admission with a typed `Overloaded` reply.
    pub fn connections_shed(&self) -> u64 {
        self.shared.connections_shed.load(Ordering::Relaxed)
    }

    /// Snapshot of the per-server service-latency histogram (server-side
    /// time per query, excluding the wire).
    pub fn service_latency(&self) -> ampc_obs::HistSnapshot {
        self.shared.service_hist.snapshot()
    }

    /// Asks the server to stop: no new connections are admitted, workers
    /// drain and exit. Does not block; pair with [`ServerHandle::wait`].
    pub fn request_shutdown(&self) {
        request_shutdown(&self.shared, self.addr);
    }

    /// Blocks until every server thread has exited. Call after
    /// [`ServerHandle::request_shutdown`], or let a client's `Shutdown`
    /// frame trigger it remotely.
    pub fn wait(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }

    /// [`ServerHandle::request_shutdown`] + [`ServerHandle::wait`].
    pub fn shutdown(&mut self) {
        self.request_shutdown();
        self.wait();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn request_shutdown(shared: &Shared, addr: SocketAddr) {
    if shared.shutdown.swap(true, Ordering::AcqRel) {
        return; // already shutting down
    }
    shared.queue_signal.notify_all();
    // The accept thread is parked in `accept()`; poke it awake with a
    // throwaway connection so it observes the flag. An unspecified bind
    // address (0.0.0.0) is not connectable, so aim at loopback instead.
    let mut wake = addr;
    if wake.ip().is_unspecified() {
        wake.set_ip(std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST));
    }
    let _ = TcpStream::connect_timeout(&wake, Duration::from_millis(500));
}

fn accept_loop(shared: &Shared, listener: &TcpListener) {
    while shared.running() {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => continue,
        };
        if !shared.running() {
            break; // the shutdown wake-up connection lands here
        }
        // Failpoint `net.accept`: firing drops the connection on the
        // floor, as if the accept had failed at the OS level.
        if fault::check(Site::NetAccept).is_err() {
            drop(stream);
            continue;
        }
        counter(CounterId::NetConnsAccepted).add(1);

        let mut queue = shared.queue.lock().expect("queue lock");
        if queue.len() >= shared.config.queue_depth {
            drop(queue);
            // Deterministic shed: typed Overloaded reply, then close.
            counter(CounterId::NetConnsShed).add(1);
            shared.connections_shed.fetch_add(1, Ordering::Relaxed);
            let mut stream = stream;
            let payload = encode_error(ErrorCode::Overloaded, "admission queue full");
            let _ = write_frame(&mut stream, Opcode::RespError, 0, &payload);
            let _ = stream.shutdown(std::net::Shutdown::Both);
            continue;
        }
        queue.push_back(stream);
        gauge(GaugeId::NetAdmissionQueueDepth).set(queue.len() as i64);
        drop(queue);
        shared.queue_signal.notify_one();
    }
    // Unblock every worker waiting on the queue.
    shared.queue_signal.notify_all();
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(stream) = queue.pop_front() {
                    gauge(GaugeId::NetAdmissionQueueDepth).set(queue.len() as i64);
                    break Some(stream);
                }
                if !shared.running() {
                    break None;
                }
                let (q, _) =
                    shared.queue_signal.wait_timeout(queue, POLL_INTERVAL).expect("queue lock");
                queue = q;
            }
        };
        let Some(stream) = stream else { return };
        serve_connection(shared, stream);
        shared.connections_served.fetch_add(1, Ordering::Relaxed);
    }
}

/// Serves one connection until the peer closes, a protocol error forces a
/// close, or shutdown is requested. Application-level failures (ReadOnly,
/// Internal) answer with a typed error and keep the connection open;
/// structural protocol violations answer and close — a peer that framed
/// bytes wrong once cannot be trusted to frame the next ones right.
fn serve_connection(shared: &Shared, mut stream: TcpStream) {
    // A read timeout turns a blocked worker into one that polls the
    // shutdown flag via `keep_waiting` below.
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_nodelay(true);

    loop {
        let frame = crate::protocol::read_frame(&mut stream, shared.config.max_payload, || {
            shared.running()
        });
        let (header, payload) = match frame {
            Ok(Some(f)) => f,
            Ok(None) => return, // clean close or shutdown
            Err(NetError::Protocol(e)) => {
                counter(CounterId::NetProtocolErrors).add(1);
                let (code, message) = e.wire_error();
                let _ =
                    write_frame(&mut stream, Opcode::RespError, 0, &encode_error(code, &message));
                let _ = stream.shutdown(std::net::Shutdown::Both);
                return;
            }
            Err(NetError::Io(_)) => return,
        };
        counter(CounterId::NetRequests).add(1);
        match dispatch(shared, &mut stream, header, &payload) {
            Ok(ConnState::Keep) => {}
            Ok(ConnState::Close) => return,
            Err(_) => return, // write side failed; nothing left to say
        }
    }
}

enum ConnState {
    Keep,
    Close,
}

fn dispatch(
    shared: &Shared,
    stream: &mut TcpStream,
    header: Header,
    payload: &[u8],
) -> std::io::Result<ConnState> {
    let id = header.request_id;
    match header.opcode {
        Opcode::QueryBatch => {
            let queries = match decode_queries(payload) {
                Ok(q) => q,
                Err(e) => return protocol_reject(stream, id, &e),
            };
            // Pin one snapshot for the whole frame: every answer in this
            // batch comes from one epoch, whatever publishes meanwhile.
            let snapshot = shared.service.snapshot();
            let engine = snapshot.engine();
            let mut answers = Vec::with_capacity(queries.len());
            timed_pass(&engine, &queries, &shared.service_hist, hist(HistId::NetServiceNs), |a| {
                answers.push(a)
            });
            write_frame(stream, Opcode::RespAnswers, id, &encode_answers(&answers))?;
            Ok(ConnState::Keep)
        }
        Opcode::Health => {
            let report = shared.service.health();
            let snapshot = shared.service.snapshot();
            let wire = WireHealth {
                state: match report.state {
                    HealthState::Healthy => 0,
                    HealthState::Degraded => 1,
                    HealthState::ReadOnly => 2,
                },
                consecutive_failures: report.consecutive_failures,
                total_incidents: report.total_incidents,
                epoch: snapshot.epoch(),
                components: snapshot.num_components() as u64,
            };
            write_frame(stream, Opcode::RespHealth, id, &wire.encode())?;
            Ok(ConnState::Keep)
        }
        Opcode::Metrics => {
            write_frame(stream, Opcode::RespMetrics, id, ampc_obs::render_text().as_bytes())?;
            Ok(ConnState::Keep)
        }
        Opcode::InsertEdges => {
            let edges = match decode_edges(payload) {
                Ok(e) => e,
                Err(e) => return protocol_reject(stream, id, &e),
            };
            match shared.service.insert_edges(&edges) {
                Ok(report) => {
                    let wire = WireInsertReport {
                        epoch: report.epoch,
                        applied: report.applied as u64,
                        components: report.components as u64,
                    };
                    write_frame(stream, Opcode::RespInsert, id, &wire.encode())?;
                }
                Err(ServeError::ReadOnly) => {
                    // Typed refusal; the connection stays usable for reads.
                    let payload =
                        encode_error(ErrorCode::ReadOnly, "service is read-only; writes refused");
                    write_frame(stream, Opcode::RespError, id, &payload)?;
                }
                Err(e) => {
                    let payload = encode_error(ErrorCode::Internal, &e.to_string());
                    write_frame(stream, Opcode::RespError, id, &payload)?;
                }
            }
            Ok(ConnState::Keep)
        }
        Opcode::Shutdown => {
            write_frame(stream, Opcode::RespShutdown, id, &[])?;
            let addr = stream
                .local_addr()
                .unwrap_or_else(|_| SocketAddr::from((std::net::Ipv4Addr::LOCALHOST, 0)));
            request_shutdown(shared, addr);
            Ok(ConnState::Close)
        }
        // Response opcodes arriving at the server are a peer bug.
        Opcode::RespAnswers
        | Opcode::RespHealth
        | Opcode::RespMetrics
        | Opcode::RespInsert
        | Opcode::RespShutdown
        | Opcode::RespError => protocol_reject(
            stream,
            id,
            &ProtocolError::Malformed("response opcode sent as request"),
        ),
    }
}

fn protocol_reject(
    stream: &mut TcpStream,
    id: u32,
    e: &ProtocolError,
) -> std::io::Result<ConnState> {
    counter(CounterId::NetProtocolErrors).add(1);
    let (code, message) = e.wire_error();
    let _ = write_frame(stream, Opcode::RespError, id, &encode_error(code, &message));
    let _ = stream.shutdown(std::net::Shutdown::Both);
    Ok(ConnState::Close)
}
