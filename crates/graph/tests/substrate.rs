//! Unit tests of the graph substrate: union-find against brute-force
//! reachability, the Euler-tour reduction's circuit structure, and edge-list
//! I/O edge cases.

use std::collections::{HashMap, HashSet, VecDeque};

use ampc_graph::euler::forest_to_cycles;
use ampc_graph::generators::{caterpillar, erdos_renyi_gnm, random_forest, star};
use ampc_graph::io::{read_edge_list, write_edge_list};
use ampc_graph::{reference_components, Graph, UnionFind};

/// Brute-force BFS component labels, the "ground truth of the ground truth".
fn bfs_labels(g: &Graph) -> Vec<u64> {
    let mut labels = vec![u64::MAX; g.n()];
    for s in 0..g.n() as u32 {
        if labels[s as usize] != u64::MAX {
            continue;
        }
        let mut q = VecDeque::from([s]);
        labels[s as usize] = s as u64;
        while let Some(v) = q.pop_front() {
            for &w in g.neighbors(v) {
                if labels[w as usize] == u64::MAX {
                    labels[w as usize] = s as u64;
                    q.push_back(w);
                }
            }
        }
    }
    labels
}

fn same_partition(a: &[u64], b: &[u64]) -> bool {
    let mut fwd = HashMap::new();
    let mut bwd = HashMap::new();
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(&x, &y)| *fwd.entry(x).or_insert(y) == y && *bwd.entry(y).or_insert(x) == x)
}

// ---------------------------------------------------------------------------
// UnionFind
// ---------------------------------------------------------------------------

#[test]
fn union_find_matches_bfs_on_random_graphs() {
    for seed in 0..8u64 {
        let g = erdos_renyi_gnm(300, 350, seed);
        let mut uf = UnionFind::new(g.n());
        for (u, v) in g.edges() {
            uf.union(u, v);
        }
        assert!(same_partition(&uf.labels(), &bfs_labels(&g)), "seed {seed}");
        assert_eq!(uf.num_components(), reference_components(&g).num_components());
    }
}

#[test]
fn union_returns_whether_it_merged() {
    let mut uf = UnionFind::new(4);
    assert!(uf.union(0, 1));
    assert!(uf.union(2, 3));
    assert!(uf.union(1, 2));
    // All connected now: further unions are no-ops.
    assert!(!uf.union(0, 3));
    assert!(!uf.union(1, 3));
    assert_eq!(uf.num_components(), 1);
}

#[test]
fn connectivity_queries_are_transitive() {
    let mut uf = UnionFind::new(6);
    uf.union(0, 1);
    uf.union(1, 2);
    assert!(uf.connected(0, 2));
    assert!(!uf.connected(0, 3));
    assert_eq!(uf.find(0), uf.find(2));
    assert_ne!(uf.find(0), uf.find(5));
}

#[test]
fn singleton_components_count() {
    let mut uf = UnionFind::new(5);
    assert_eq!(uf.num_components(), 5);
    uf.union(0, 4);
    assert_eq!(uf.num_components(), 4);
    let labels = uf.labels();
    assert_eq!(labels[0], labels[4]);
}

// ---------------------------------------------------------------------------
// Euler tour reduction
// ---------------------------------------------------------------------------

/// The successor map must be a permutation that is a *valid circuit* per
/// tree: following `succ` from any dart returns to it after visiting each
/// dart of its tree's cycle exactly once.
#[test]
fn euler_tour_is_a_valid_circuit() {
    for (name, g) in [
        ("caterpillar", caterpillar(20, 3)),
        ("star", star(50)),
        ("forest", random_forest(400, 13, 5)),
    ] {
        let d = forest_to_cycles(&g);
        assert!(d.is_permutation(), "{name}");
        // Orbit walk: every dart returns to itself in exactly cycle-length
        // steps, touching no dart twice.
        let mut visited = vec![false; d.len()];
        for s in 0..d.len() {
            if visited[s] {
                continue;
            }
            let mut cur = s;
            let mut steps = 0;
            loop {
                assert!(!visited[cur], "{name}: dart {cur} visited twice");
                visited[cur] = true;
                cur = d.succ[cur] as usize;
                steps += 1;
                if cur == s {
                    break;
                }
                assert!(steps <= d.len(), "{name}: walk from {s} does not close");
            }
        }
        assert!(visited.iter().all(|&v| v), "{name}: darts unreached by any circuit");
        // Each dart corresponds to a directed edge: 2 per undirected edge.
        assert_eq!(d.len(), 2 * g.m(), "{name}");
    }
}

/// Observation 3.1: the reduction preserves components — darts of one cycle
/// all originate in one tree, and every non-isolated vertex appears.
#[test]
fn euler_reduction_preserves_components() {
    for seed in 0..6u64 {
        let g = random_forest(500, 17, seed);
        let truth = reference_components(&g);
        let d = forest_to_cycles(&g);
        // Walk each cycle; all origins must share a component label.
        let mut seen_dart = vec![false; d.len()];
        for s in 0..d.len() {
            if seen_dart[s] {
                continue;
            }
            let label = truth.get(d.origin[s]);
            let mut cur = s;
            while !seen_dart[cur] {
                seen_dart[cur] = true;
                assert_eq!(truth.get(d.origin[cur]), label, "seed {seed}: cycle mixes components");
                cur = d.succ[cur] as usize;
            }
        }
        // Coverage: origins ∪ isolated = all vertices.
        let mut covered: HashSet<u32> = d.origin.iter().copied().collect();
        covered.extend(d.isolated.iter().copied());
        assert_eq!(covered.len(), g.n(), "seed {seed}: vertices lost in reduction");
    }
}

#[test]
fn euler_predecessors_invert_successors() {
    let g = random_forest(200, 9, 3);
    let d = forest_to_cycles(&g);
    let pred = d.predecessors();
    for a in 0..d.len() {
        assert_eq!(pred[d.succ[a] as usize] as usize, a);
    }
}

#[test]
fn euler_isolated_vertices_have_no_darts() {
    // 3 isolated vertices + one edge.
    let g = Graph::from_edges(5, &[(0, 1)]);
    let d = forest_to_cycles(&g);
    assert_eq!(d.len(), 2);
    let mut isolated = d.isolated.clone();
    isolated.sort_unstable();
    assert_eq!(isolated, vec![2, 3, 4]);
}

// ---------------------------------------------------------------------------
// io
// ---------------------------------------------------------------------------

#[test]
fn header_parsing_fixes_vertex_count() {
    let g = read_edge_list("# nodes: 7\n0 1\n".as_bytes()).unwrap();
    assert_eq!(g.n(), 7);
    assert_eq!(g.m(), 1);
    // Header may follow edges too.
    let g = read_edge_list("0 1\n# nodes: 7\n".as_bytes()).unwrap();
    assert_eq!(g.n(), 7);
}

#[test]
fn duplicate_edges_and_self_loops_are_normalized() {
    // from_edges drops self-loops and dedups; parsing must feed it intact.
    let g = read_edge_list("0 1\n1 0\n0 1\n2 2\n".as_bytes()).unwrap();
    assert_eq!(g.n(), 3);
    assert_eq!(g.m(), 1, "duplicates and self-loops must collapse");
    assert_eq!(g.degree(2), 0);
}

#[test]
fn malformed_lines_error_with_line_numbers() {
    let err = read_edge_list("0 1\nnot numbers\n".as_bytes()).unwrap_err();
    assert!(err.to_string().contains("line 2"), "got: {err}");

    let err = read_edge_list("0 1\n3\n".as_bytes()).unwrap_err();
    assert!(err.to_string().contains("line 2"), "got: {err}");

    let err = read_edge_list("# nodes: many\n".as_bytes()).unwrap_err();
    assert!(err.to_string().contains("line 1"), "got: {err}");
}

#[test]
fn id_outside_declared_count_is_rejected() {
    let err = read_edge_list("# nodes: 3\n0 9\n".as_bytes()).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains('9') && msg.contains('3'), "got: {msg}");
}

#[test]
fn roundtrip_is_identity_across_generators() {
    for seed in 0..4u64 {
        for g in [erdos_renyi_gnm(120, 260, seed), random_forest(150, 8, seed)] {
            let mut buf = Vec::new();
            write_edge_list(&g, &mut buf).unwrap();
            assert_eq!(read_edge_list(&buf[..]).unwrap(), g);
        }
    }
}
