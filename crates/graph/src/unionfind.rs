//! Sequential union-find: the ground truth every AMPC run is validated
//! against, and a building block for the KKT sampling experiments.

use crate::csr::VertexId;

/// Disjoint-set forest with union by rank and path halving.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<VertexId>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind { parent: (0..n as VertexId).collect(), rank: vec![0; n], components: n }
    }

    /// Representative of `v`'s set (with path halving).
    pub fn find(&mut self, mut v: VertexId) -> VertexId {
        while self.parent[v as usize] != v {
            let grand = self.parent[self.parent[v as usize] as usize];
            self.parent[v as usize] = grand;
            v = grand;
        }
        v
    }

    /// Merges the sets of `u` and `v`. Returns `false` if already merged.
    pub fn union(&mut self, u: VertexId, v: VertexId) -> bool {
        let (ru, rv) = (self.find(u), self.find(v));
        if ru == rv {
            return false;
        }
        let (hi, lo) =
            if self.rank[ru as usize] >= self.rank[rv as usize] { (ru, rv) } else { (rv, ru) };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.components -= 1;
        true
    }

    /// True iff `u` and `v` are in the same set.
    pub fn connected(&mut self, u: VertexId, v: VertexId) -> bool {
        self.find(u) == self.find(v)
    }

    /// Current number of disjoint sets.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Flattens to a label per vertex (the set representative).
    pub fn labels(&mut self) -> Vec<u64> {
        (0..self.parent.len() as VertexId).map(|v| self.find(v) as u64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unions_merge_and_count() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_components(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(3, 4));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.num_components(), 3);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn labels_are_consistent_within_sets() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 2);
        uf.union(2, 4);
        uf.union(1, 5);
        let l = uf.labels();
        assert_eq!(l[0], l[2]);
        assert_eq!(l[0], l[4]);
        assert_eq!(l[1], l[5]);
        assert_ne!(l[0], l[1]);
        assert_ne!(l[3], l[0]);
    }

    #[test]
    fn long_chain_flattens() {
        let n = 10_000;
        let mut uf = UnionFind::new(n);
        for i in 0..n - 1 {
            uf.union(i as VertexId, i as VertexId + 1);
        }
        assert_eq!(uf.num_components(), 1);
        let l = uf.labels();
        assert!(l.iter().all(|&x| x == l[0]));
    }
}
