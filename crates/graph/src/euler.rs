//! Forests to cycles: the Euler-tour reduction of Observation 3.1.
//!
//! Following Tarjan–Vishkin (TV85) as used by the paper: replace each edge
//! by two oppositely directed arcs; a vertex `v` of degree `d` splits into
//! `d` copies `v_0 … v_{d-1}`, where copy `v_j` represents the arc entering
//! `v` from its `j`-th neighbor. The successor of the arc entering `v` from
//! neighbor `j` is the arc leaving `v` to neighbor `(j+1) mod d` — i.e. the
//! arc entering that neighbor from `v`. On a forest this decomposes the arc
//! set into one cycle per tree: a tree on `k > 1` vertices becomes a cycle
//! of length `2k − 2`.
//!
//! This is a **CC-shrinking** step in the paper's sense: a CC-labeling of
//! the cycles plus the copy→original mapping yields a CC-labeling of the
//! forest (labels transfer through `origin`).

use crate::csr::{Graph, VertexId};

/// A vertex-disjoint collection of cycles, represented by a successor
/// permutation over *cycle vertices* plus the mapping back to original
/// vertices.
#[derive(Clone, Debug)]
pub struct CycleDecomposition {
    /// Successor permutation: `succ[a]` is the next cycle vertex after `a`.
    pub succ: Vec<u32>,
    /// `origin[a]` = original vertex that cycle vertex `a` is a copy of.
    pub origin: Vec<VertexId>,
    /// Original vertices of degree zero (each trivially its own component).
    pub isolated: Vec<VertexId>,
}

impl CycleDecomposition {
    /// Number of cycle vertices.
    pub fn len(&self) -> usize {
        self.succ.len()
    }

    /// True when there are no cycle vertices (edgeless input).
    pub fn is_empty(&self) -> bool {
        self.succ.is_empty()
    }

    /// Predecessor permutation (inverse of `succ`), for bidirectional
    /// traversal in Step 1 of `ShrinkSmallCycles`.
    pub fn predecessors(&self) -> Vec<u32> {
        let mut pred = vec![0u32; self.succ.len()];
        for (a, &s) in self.succ.iter().enumerate() {
            pred[s as usize] = a as u32;
        }
        pred
    }

    /// Debug invariant: `succ` is a permutation (every vertex has exactly
    /// one predecessor).
    pub fn is_permutation(&self) -> bool {
        let mut seen = vec![false; self.succ.len()];
        for &s in &self.succ {
            let i = s as usize;
            if i >= seen.len() || seen[i] {
                return false;
            }
            seen[i] = true;
        }
        true
    }

    /// Lengths of all cycles, found by walking the permutation.
    pub fn cycle_lengths(&self) -> Vec<usize> {
        let mut visited = vec![false; self.succ.len()];
        let mut lengths = Vec::new();
        for start in 0..self.succ.len() {
            if visited[start] {
                continue;
            }
            let mut len = 0;
            let mut cur = start;
            while !visited[cur] {
                visited[cur] = true;
                len += 1;
                cur = self.succ[cur] as usize;
            }
            lengths.push(len);
        }
        lengths
    }
}

/// Performs the forest→cycles reduction.
///
/// # Panics
/// Panics if `g` is not a forest (the construction is only meaningful — and
/// only used by the paper — on forests).
pub fn forest_to_cycles(g: &Graph) -> CycleDecomposition {
    assert!(g.is_forest(), "forest_to_cycles requires a forest input");
    let n = g.n();

    // base[v] = first arc id of v's copies; copies are laid out densely.
    let mut base = vec![0u32; n + 1];
    for v in 0..n {
        base[v + 1] = base[v] + g.degree(v as VertexId) as u32;
    }
    let total_arcs = base[n] as usize;

    let mut succ = vec![0u32; total_arcs];
    let mut origin = vec![0 as VertexId; total_arcs];
    let mut isolated = Vec::new();

    for v in 0..n as VertexId {
        let nbrs = g.neighbors(v);
        if nbrs.is_empty() {
            isolated.push(v);
            continue;
        }
        let d = nbrs.len();
        for j in 0..d {
            // Cycle vertex base[v]+j = arc entering v from nbrs[j].
            let a = base[v as usize] + j as u32;
            origin[a as usize] = v;
            // Successor: the arc leaving v toward neighbor (j+1) mod d,
            // i.e. the arc entering w := nbrs[(j+1)%d] from v.
            let w = nbrs[(j + 1) % d];
            let pos = g.neighbor_position(w, v).expect("undirected CSR stores both endpoints");
            succ[a as usize] = base[w as usize] + pos as u32;
        }
    }

    CycleDecomposition { succ, origin, isolated }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference_components;

    #[test]
    fn single_edge_becomes_2_cycle() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let c = forest_to_cycles(&g);
        assert_eq!(c.len(), 2);
        assert!(c.is_permutation());
        assert_eq!(c.cycle_lengths(), vec![2]);
    }

    #[test]
    fn tree_of_k_vertices_gives_cycle_2k_minus_2() {
        // Star on 5 vertices (k=5 → cycle length 8).
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let c = forest_to_cycles(&g);
        assert_eq!(c.cycle_lengths(), vec![8]);
        // Path on 6 vertices (k=6 → 10).
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let c = forest_to_cycles(&g);
        assert_eq!(c.cycle_lengths(), vec![10]);
    }

    #[test]
    fn forest_gives_one_cycle_per_nontrivial_tree() {
        // Two trees (sizes 3 and 4) + one isolated vertex.
        let g = Graph::from_edges(8, &[(0, 1), (1, 2), (3, 4), (4, 5), (5, 6)]);
        let c = forest_to_cycles(&g);
        let mut lens = c.cycle_lengths();
        lens.sort_unstable();
        assert_eq!(lens, vec![4, 6]);
        assert_eq!(c.isolated, vec![7]);
    }

    #[test]
    fn cycle_components_match_tree_components() {
        // Every cycle stays within one original tree: walking a cycle must
        // visit origins of a single reference component.
        let g = Graph::from_edges(10, &[(0, 1), (1, 2), (2, 3), (5, 6), (6, 7), (7, 8), (8, 9)]);
        let c = forest_to_cycles(&g);
        let refl = reference_components(&g);
        let mut visited = vec![false; c.len()];
        for start in 0..c.len() {
            if visited[start] {
                continue;
            }
            let comp = refl.get(c.origin[start]);
            let mut cur = start;
            let mut origins = std::collections::HashSet::new();
            while !visited[cur] {
                visited[cur] = true;
                assert_eq!(refl.get(c.origin[cur]), comp);
                origins.insert(c.origin[cur]);
                cur = c.succ[cur] as usize;
            }
            // The Euler tour visits every vertex of its tree.
            let tree_size = (0..g.n() as VertexId).filter(|&v| refl.get(v) == comp).count();
            assert_eq!(origins.len(), tree_size);
        }
    }

    #[test]
    fn predecessors_invert_successors() {
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (1, 3), (3, 4), (4, 5), (4, 6)]);
        let c = forest_to_cycles(&g);
        let pred = c.predecessors();
        for a in 0..c.len() {
            assert_eq!(pred[c.succ[a] as usize], a as u32);
            assert_eq!(c.succ[pred[a] as usize], a as u32);
        }
    }

    #[test]
    #[should_panic(expected = "requires a forest")]
    fn rejects_cyclic_input() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        forest_to_cycles(&g);
    }

    #[test]
    fn edgeless_graph_all_isolated() {
        let g = Graph::empty(3);
        let c = forest_to_cycles(&g);
        assert!(c.is_empty());
        assert_eq!(c.isolated.len(), 3);
    }
}
