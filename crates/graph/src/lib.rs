//! # `ampc-graph` — graph substrate for the AMPC connectivity reproduction
//!
//! Everything the paper's algorithms need *around* the AMPC model:
//!
//! * [`Graph`] — compact CSR storage for undirected graphs;
//! * [`generators`] — seeded workload families (forests, cycles, random
//!   graphs, grids, power-law graphs, adversarial shapes);
//! * [`euler`] — the Tarjan–Vishkin forest→cycles reduction backing
//!   Observation 3.1 of the paper;
//! * [`degree3`] — the max-degree-3 gadget transform used by
//!   `ShrinkGeneral` (§4.3);
//! * [`contract`] — the `Contract(G, C)` CC-shrinking primitive
//!   (Observation 2.2);
//! * [`UnionFind`] / [`Labeling`] — sequential ground truth and CC-labeling
//!   comparison, used to validate every AMPC run.

#![warn(missing_docs)]

pub mod contract;
mod csr;
pub mod degree3;
pub mod euler;
pub mod generators;
pub mod io;
mod labeling;
pub mod metrics;
mod unionfind;

pub use csr::{Graph, VertexId};
pub use labeling::{reference_components, Labeling};
pub use unionfind::UnionFind;
