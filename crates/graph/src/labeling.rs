//! Connected-components labelings (the paper's `CC-labeling`, §2).
//!
//! A CC-labeling maps each vertex to a label such that two vertices share a
//! label iff they are in the same connected component. Labels are arbitrary
//! (`A` is "an arbitrary set" in Definition 2.1), so comparisons go through
//! canonicalization: relabel every component by its minimum vertex id.

use crate::csr::{Graph, VertexId};
use crate::unionfind::UnionFind;

/// A labeling of vertices `0..n` by 64-bit component identifiers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Labeling(pub Vec<u64>);

impl Labeling {
    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the labeling covers no vertices.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Label of vertex `v`.
    #[inline]
    pub fn get(&self, v: VertexId) -> u64 {
        self.0[v as usize]
    }

    /// Number of distinct labels.
    pub fn num_components(&self) -> usize {
        let mut labels: Vec<u64> = self.0.clone();
        labels.sort_unstable();
        labels.dedup();
        labels.len()
    }

    /// Iterates `(vertex, label)` pairs in vertex order.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, u64)> + '_ {
        self.0.iter().enumerate().map(|(v, &l)| (v as VertexId, l))
    }

    /// Size of every label class, keyed by label. Shared by the structural
    /// metrics and the component-index builder, which both need the
    /// per-component vertex counts of an arbitrary labeling.
    pub fn component_sizes(&self) -> std::collections::HashMap<u64, usize> {
        let mut sizes = std::collections::HashMap::new();
        for &l in &self.0 {
            *sizes.entry(l).or_insert(0usize) += 1;
        }
        sizes
    }

    /// Canonical form: every vertex labeled by the minimum vertex id in its
    /// label class. Two labelings induce the same partition iff their
    /// canonical forms are equal.
    pub fn canonical(&self) -> Vec<u64> {
        use std::collections::HashMap;
        let mut min_of: HashMap<u64, u64> = HashMap::new();
        for (v, &l) in self.0.iter().enumerate() {
            min_of.entry(l).and_modify(|m| *m = (*m).min(v as u64)).or_insert(v as u64);
        }
        self.0.iter().map(|l| min_of[l]).collect()
    }

    /// True iff `self` and `other` induce the same partition of vertices.
    pub fn same_partition(&self, other: &Labeling) -> bool {
        self.len() == other.len() && self.canonical() == other.canonical()
    }

    /// Serializes the labels as fixed-width little-endian 64-bit words,
    /// appended to `out` — the labeling section of the snapshot format.
    pub fn write_le(&self, out: &mut Vec<u8>) {
        out.reserve(self.0.len() * 8);
        for &label in &self.0 {
            out.extend_from_slice(&label.to_le_bytes());
        }
    }

    /// Rebuilds a labeling from fixed-width little-endian 64-bit words.
    ///
    /// # Errors
    /// Rejects a byte length that is not a multiple of 8.
    pub fn from_le_bytes(bytes: &[u8]) -> Result<Labeling, String> {
        if !bytes.len().is_multiple_of(8) {
            return Err(format!("labeling byte length {} not a multiple of 8", bytes.len()));
        }
        Ok(Labeling(
            bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect(),
        ))
    }

    /// True iff this labeling is a valid CC-labeling of `g`: endpoints of
    /// every edge share a label, and the number of distinct labels equals
    /// the true component count.
    pub fn validates(&self, g: &Graph) -> bool {
        if self.len() != g.n() {
            return false;
        }
        for (u, v) in g.edges() {
            if self.get(u) != self.get(v) {
                return false;
            }
        }
        self.num_components() == reference_components(g).num_components()
    }
}

/// Ground-truth components of `g` via sequential union-find.
pub fn reference_components(g: &Graph) -> Labeling {
    let mut uf = UnionFind::new(g.n());
    for (u, v) in g.edges() {
        uf.union(u, v);
    }
    Labeling(uf.labels())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_paths() -> Graph {
        Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)])
    }

    #[test]
    fn reference_matches_structure() {
        let l = reference_components(&two_paths());
        assert_eq!(l.num_components(), 2);
        assert_eq!(l.get(0), l.get(2));
        assert_ne!(l.get(0), l.get(3));
    }

    #[test]
    fn same_partition_is_label_invariant() {
        let a = Labeling(vec![7, 7, 7, 9, 9, 9]);
        let b = Labeling(vec![100, 100, 100, 3, 3, 3]);
        assert!(a.same_partition(&b));
        let c = Labeling(vec![1, 1, 2, 2, 2, 2]);
        assert!(!a.same_partition(&c));
    }

    #[test]
    fn validates_accepts_correct_and_rejects_wrong() {
        let g = two_paths();
        assert!(Labeling(vec![5, 5, 5, 8, 8, 8]).validates(&g));
        // merges two true components:
        assert!(!Labeling(vec![5, 5, 5, 5, 5, 5]).validates(&g));
        // splits a true component:
        assert!(!Labeling(vec![5, 5, 6, 8, 8, 8]).validates(&g));
        // wrong length:
        assert!(!Labeling(vec![1, 1, 1]).validates(&g));
    }

    #[test]
    fn isolated_vertices_get_unique_labels() {
        let g = Graph::empty(4);
        let l = reference_components(&g);
        assert_eq!(l.num_components(), 4);
    }

    #[test]
    fn iter_yields_vertex_label_pairs_in_order() {
        let l = Labeling(vec![9, 9, 3]);
        let pairs: Vec<_> = l.iter().collect();
        assert_eq!(pairs, vec![(0, 9), (1, 9), (2, 3)]);
        assert_eq!(Labeling(vec![]).iter().count(), 0);
    }

    #[test]
    fn component_sizes_counts_every_class() {
        let l = Labeling(vec![7, 7, 7, 9, 9, 42]);
        let sizes = l.component_sizes();
        assert_eq!(sizes.len(), 3);
        assert_eq!(sizes[&7], 3);
        assert_eq!(sizes[&9], 2);
        assert_eq!(sizes[&42], 1);
        assert!(Labeling(vec![]).component_sizes().is_empty());
    }

    #[test]
    fn le_bytes_roundtrip() {
        let l = Labeling(vec![0, 1, u64::MAX, 0x0123_4567_89AB_CDEF]);
        let mut bytes = Vec::new();
        l.write_le(&mut bytes);
        assert_eq!(bytes.len(), 32);
        assert_eq!(bytes[16..24], [0xFF; 8]);
        assert_eq!(Labeling::from_le_bytes(&bytes).unwrap(), l);
        assert_eq!(Labeling::from_le_bytes(&[]).unwrap(), Labeling(vec![]));
        assert!(Labeling::from_le_bytes(&bytes[..5]).is_err());
    }

    #[test]
    fn component_sizes_agrees_with_reference() {
        let g = two_paths();
        let sizes = reference_components(&g).component_sizes();
        assert_eq!(sizes.values().sum::<usize>(), g.n());
        assert!(sizes.values().all(|&s| s == 3));
    }
}
