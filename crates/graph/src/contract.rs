//! `Contract(G, C)` — the standard vertex-contraction CC-shrinking
//! primitive (Observation 2.2 of the paper).
//!
//! Groups of vertices sharing a value of the mapping `C` are merged;
//! parallel edges are deduplicated and self-loops removed. The paper notes
//! this is implementable in `O(1)` (A)MPC rounds using optimal space
//! [BDE+19]; the algorithm crates execute it natively and charge that
//! published cost to their AMPC meters (see DESIGN.md, "Charging model").

use crate::csr::{Graph, VertexId};

/// Result of a contraction.
#[derive(Clone, Debug)]
pub struct Contraction {
    /// The contracted graph over dense new vertex ids.
    pub graph: Graph,
    /// `class_of[v]` = new vertex id that old vertex `v` contracted into.
    pub class_of: Vec<VertexId>,
    /// Number of vertices of the contracted graph.
    pub new_n: usize,
}

/// Contracts `g` along `mapping` (one value per vertex; equal values merge).
///
/// New vertex ids are assigned by first appearance order of each class's
/// minimum original vertex, making the output deterministic.
pub fn contract(g: &Graph, mapping: &[u64]) -> Contraction {
    assert_eq!(mapping.len(), g.n(), "mapping must cover every vertex");

    // Compact the label classes to dense ids, ordered by first appearance.
    use std::collections::HashMap;
    let mut class_ids: HashMap<u64, VertexId> = HashMap::with_capacity(g.n());
    let mut class_of = vec![0 as VertexId; g.n()];
    let mut next: VertexId = 0;
    for v in 0..g.n() {
        let id = *class_ids.entry(mapping[v]).or_insert_with(|| {
            let id = next;
            next += 1;
            id
        });
        class_of[v] = id;
    }
    let new_n = next as usize;

    let edges: Vec<(VertexId, VertexId)> = g
        .edges()
        .map(|(u, v)| (class_of[u as usize], class_of[v as usize]))
        .filter(|&(a, b)| a != b)
        .collect();

    Contraction { graph: Graph::from_edges(new_n, &edges), class_of, new_n }
}

/// Projects a CC-labeling of the contracted graph back to the original
/// vertex set: the `Compose` direction of Definition 2.1.
pub fn compose_labels(contraction: &Contraction, contracted_labels: &[u64]) -> Vec<u64> {
    contraction.class_of.iter().map(|&c| contracted_labels[c as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{reference_components, Labeling};

    #[test]
    fn contraction_merges_classes() {
        // Path 0-1-2-3; contract {0,1} and {2,3}.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let c = contract(&g, &[10, 10, 20, 20]);
        assert_eq!(c.new_n, 2);
        assert_eq!(c.graph.m(), 1); // the 1-2 edge survives; loops dropped
        assert_eq!(c.class_of, vec![0, 0, 1, 1]);
    }

    #[test]
    fn parallel_edges_dedup() {
        // Square 0-1-2-3-0; contract {0,2} vs {1,3} → two classes joined by
        // four parallel edges → one edge.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let c = contract(&g, &[1, 2, 1, 2]);
        assert_eq!(c.new_n, 2);
        assert_eq!(c.graph.m(), 1);
    }

    #[test]
    fn contraction_is_cc_shrinking() {
        // Definition 2.1: CC-labeling of H + mapping → CC-labeling of G.
        let g = Graph::from_edges(8, &[(0, 1), (1, 2), (3, 4), (5, 6), (6, 7)]);
        // Contract arbitrary within-component groups.
        let c = contract(&g, &[0, 0, 1, 2, 2, 3, 3, 4]);
        let h_labels = reference_components(&c.graph);
        let g_labels = Labeling(compose_labels(&c, &h_labels.0));
        assert!(g_labels.same_partition(&reference_components(&g)));
    }

    #[test]
    fn identity_mapping_is_isomorphic() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3), (3, 4)]);
        let ids: Vec<u64> = (0..5).collect();
        let c = contract(&g, &ids);
        assert_eq!(c.new_n, 5);
        assert_eq!(c.graph.m(), g.m());
    }

    #[test]
    fn full_contraction_leaves_one_vertex_per_class() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let labels = reference_components(&g);
        let c = contract(&g, &labels.0);
        assert_eq!(c.new_n, 2);
        assert_eq!(c.graph.m(), 0);
    }

    #[test]
    #[should_panic(expected = "mapping must cover")]
    fn wrong_mapping_length_panics() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        contract(&g, &[1, 2]);
    }
}
