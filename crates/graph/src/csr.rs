//! Compressed sparse row (CSR) storage for undirected graphs.
//!
//! Vertices are dense `u32` identifiers `0..n`. Each undirected edge is
//! stored in both endpoint adjacency lists; adjacency lists are sorted,
//! which the Euler-tour construction exploits for reverse-position lookups.

/// Dense vertex identifier.
pub type VertexId = u32;

/// An undirected graph in CSR form.
///
/// Construction deduplicates parallel edges and drops self-loops, matching
/// the paper's convention that `Contract` merges parallel edges and removes
/// loops.
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<usize>,
    adj: Vec<VertexId>,
}

impl Graph {
    /// Builds a graph on `n` vertices from an edge list. Self-loops are
    /// dropped and parallel edges deduplicated.
    ///
    /// # Panics
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut pairs = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            assert!((u as usize) < n && (v as usize) < n, "edge ({u},{v}) out of range for n={n}");
            if u == v {
                continue;
            }
            pairs.push((u, v));
            pairs.push((v, u));
        }
        pairs.sort_unstable();
        pairs.dedup();

        let mut offsets = vec![0usize; n + 1];
        for &(u, _) in &pairs {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let adj = pairs.into_iter().map(|(_, v)| v).collect();
        Graph { offsets, adj }
    }

    /// The empty graph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        Graph { offsets: vec![0; n + 1], adj: Vec::new() }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.adj.len() / 2
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Sorted neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.adj[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Position of `u` within `v`'s sorted adjacency list, if adjacent.
    #[inline]
    pub fn neighbor_position(&self, v: VertexId, u: VertexId) -> Option<usize> {
        self.neighbors(v).binary_search(&u).ok()
    }

    /// Iterates each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.n() as VertexId)
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
            .filter(|&(u, v)| u < v)
    }

    /// Maximum degree over all vertices.
    pub fn max_degree(&self) -> usize {
        (0..self.n() as VertexId).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// True iff the graph is acyclic (a forest), checked by counting:
    /// a forest has `n - #components` edges.
    pub fn is_forest(&self) -> bool {
        let mut uf = crate::UnionFind::new(self.n());
        for (u, v) in self.edges() {
            if !uf.union(u, v) {
                return false; // edge inside an existing component closes a cycle
            }
        }
        true
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Graph(n={}, m={})", self.n(), self.m())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_basics() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(!g.is_forest());
    }

    #[test]
    fn dedup_and_self_loop_removal() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn edges_iterate_once_each() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es, vec![(0, 1), (0, 3), (1, 2), (2, 3)]);
    }

    #[test]
    fn path_is_forest() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert!(g.is_forest());
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn neighbor_position_finds_sorted_slots() {
        let g = Graph::from_edges(5, &[(2, 0), (2, 4), (2, 1)]);
        assert_eq!(g.neighbors(2), &[0, 1, 4]);
        assert_eq!(g.neighbor_position(2, 4), Some(2));
        assert_eq!(g.neighbor_position(2, 3), None);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(7);
        assert_eq!(g.n(), 7);
        assert_eq!(g.m(), 0);
        assert!(g.is_forest());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        Graph::from_edges(2, &[(0, 5)]);
    }
}
