//! Structural graph metrics used by experiment reports and workload
//! characterization: degree and component-size distributions, and diameter
//! estimation (the quantity MPC connectivity pays for and AMPC does not).

use std::collections::VecDeque;

use crate::csr::{Graph, VertexId};
use crate::labeling::reference_components;

/// Summary statistics of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphMetrics {
    /// Vertex count.
    pub n: usize,
    /// Edge count.
    pub m: usize,
    /// Number of connected components.
    pub components: usize,
    /// Size of the largest component.
    pub largest_component: usize,
    /// Number of isolated vertices.
    pub isolated: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Mean degree (`2m/n`).
    pub mean_degree: f64,
    /// Lower bound on the diameter of the largest component, from a
    /// double-sweep BFS (exact on trees).
    pub diameter_lower_bound: usize,
}

/// Computes [`GraphMetrics`] for `g`.
pub fn metrics(g: &Graph) -> GraphMetrics {
    let labels = reference_components(g);
    let sizes = labels.component_sizes();
    let largest = sizes.values().copied().max().unwrap_or(0);
    let isolated = (0..g.n() as VertexId).filter(|&v| g.degree(v) == 0).count();

    // Double sweep from a vertex of the largest component.
    let diameter_lower_bound = sizes
        .iter()
        .find(|&(_, &s)| s == largest)
        .and_then(|(&label, _)| (0..g.n() as VertexId).find(|&v| labels.get(v) == label))
        .map(|start| {
            let (far, _) = bfs_farthest(g, start);
            let (_, dist) = bfs_farthest(g, far);
            dist
        })
        .unwrap_or(0);

    GraphMetrics {
        n: g.n(),
        m: g.m(),
        components: sizes.len(),
        largest_component: largest,
        isolated,
        max_degree: g.max_degree(),
        mean_degree: if g.n() == 0 { 0.0 } else { 2.0 * g.m() as f64 / g.n() as f64 },
        diameter_lower_bound,
    }
}

/// BFS from `start`: returns the farthest vertex and its distance.
pub fn bfs_farthest(g: &Graph, start: VertexId) -> (VertexId, usize) {
    let mut dist = vec![usize::MAX; g.n()];
    let mut queue = VecDeque::from([start]);
    dist[start as usize] = 0;
    let mut far = (start, 0);
    while let Some(u) = queue.pop_front() {
        for &w in g.neighbors(u) {
            if dist[w as usize] == usize::MAX {
                dist[w as usize] = dist[u as usize] + 1;
                if dist[w as usize] > far.1 {
                    far = (w, dist[w as usize]);
                }
                queue.push_back(w);
            }
        }
    }
    far
}

/// Degree histogram: `hist[d]` = number of vertices of degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in 0..g.n() as VertexId {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Component-size histogram as sorted `(size, count)` pairs.
pub fn component_size_histogram(g: &Graph) -> Vec<(usize, usize)> {
    let sizes = reference_components(g).component_sizes();
    let mut hist = std::collections::HashMap::new();
    for s in sizes.values() {
        *hist.entry(*s).or_insert(0usize) += 1;
    }
    let mut out: Vec<(usize, usize)> = hist.into_iter().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{disjoint_cliques, grid2d, path, star};

    #[test]
    fn path_metrics() {
        let g = path(100);
        let m = metrics(&g);
        assert_eq!(m.n, 100);
        assert_eq!(m.m, 99);
        assert_eq!(m.components, 1);
        assert_eq!(m.diameter_lower_bound, 99); // exact on trees
        assert_eq!(m.max_degree, 2);
        assert_eq!(m.isolated, 0);
    }

    #[test]
    fn star_metrics() {
        let g = star(50);
        let m = metrics(&g);
        assert_eq!(m.max_degree, 49);
        assert_eq!(m.diameter_lower_bound, 2);
    }

    #[test]
    fn grid_diameter_bound() {
        let g = grid2d(10, 10);
        let m = metrics(&g);
        // True diameter 18; the double sweep must find it exactly on grids'
        // corner-to-corner geodesics.
        assert_eq!(m.diameter_lower_bound, 18);
    }

    #[test]
    fn clique_field_histograms() {
        let g = disjoint_cliques(4, 6);
        let m = metrics(&g);
        assert_eq!(m.components, 4);
        assert_eq!(m.largest_component, 6);
        let dh = degree_histogram(&g);
        assert_eq!(dh[5], 24); // every vertex has degree 5
        assert_eq!(component_size_histogram(&g), vec![(6, 4)]);
    }

    #[test]
    fn isolated_vertices_counted() {
        let g = Graph::from_edges(10, &[(0, 1)]);
        let m = metrics(&g);
        assert_eq!(m.isolated, 8);
        assert_eq!(m.components, 9);
    }

    use crate::Graph;

    #[test]
    fn empty_graph_metrics() {
        let m = metrics(&Graph::empty(0));
        assert_eq!(m.n, 0);
        assert_eq!(m.diameter_lower_bound, 0);
        assert_eq!(m.mean_degree, 0.0);
    }
}
