//! Plain-text edge-list I/O.
//!
//! The de-facto interchange format of the large-graph literature (SNAP,
//! DIMACS-like): one `u v` pair per line, `#`-prefixed comments, vertices
//! numbered `0..n`. A header comment `# nodes: N` pins the vertex count so
//! trailing isolated vertices survive a round-trip.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::csr::{Graph, VertexId};

/// Writes `g` as an edge list with a `# nodes:` header.
pub fn write_edge_list<W: Write>(g: &Graph, mut w: W) -> io::Result<()> {
    writeln!(w, "# nodes: {}", g.n())?;
    writeln!(w, "# edges: {}", g.m())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    Ok(())
}

/// Parses an edge list. Accepts `# nodes: N` headers, blank lines, and
/// whitespace-separated pairs; without a header the vertex count is
/// `max id + 1`.
pub fn read_edge_list<R: Read>(r: R) -> io::Result<Graph> {
    let reader = BufReader::new(r);
    let mut declared_n: Option<usize> = None;
    let mut max_id: u64 = 0;
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut saw_vertex = false;

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim();
            if let Some(nodes) = rest.strip_prefix("nodes:") {
                declared_n = Some(nodes.trim().parse().map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("line {}: bad nodes header: {e}", lineno + 1),
                    )
                })?);
            }
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>| -> io::Result<u64> {
            tok.ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: expected two vertex ids", lineno + 1),
                )
            })?
            .parse()
            .map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad vertex id: {e}", lineno + 1),
                )
            })
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        // Ids are stored as u32; a larger id would silently wrap in the
        // cast below, so reject it here with a line number.
        if u > VertexId::MAX as u64 || v > VertexId::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: vertex id exceeds the u32 id space", lineno + 1),
            ));
        }
        max_id = max_id.max(u).max(v);
        saw_vertex = true;
        edges.push((u as VertexId, v as VertexId));
    }

    let n = declared_n.unwrap_or(if saw_vertex { max_id as usize + 1 } else { 0 });
    if saw_vertex && (max_id as usize) >= n {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("vertex id {max_id} outside declared node count {n}"),
        ));
    }
    Ok(Graph::from_edges(n, &edges))
}

/// Convenience: writes `g` to `path`.
pub fn save(g: &Graph, path: impl AsRef<Path>) -> io::Result<()> {
    write_edge_list(g, std::fs::File::create(path)?)
}

/// Convenience: reads a graph from `path`.
pub fn load(path: impl AsRef<Path>) -> io::Result<Graph> {
    read_edge_list(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{erdos_renyi_gnm, random_forest};

    #[test]
    fn roundtrip_preserves_graph() {
        let g = erdos_renyi_gnm(200, 500, 1);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let h = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn roundtrip_preserves_trailing_isolated_vertices() {
        // Vertex 9 is isolated; without the header it would be dropped.
        let g = Graph::from_edges(10, &[(0, 1), (2, 3)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let h = read_edge_list(&buf[..]).unwrap();
        assert_eq!(h.n(), 10);
        assert_eq!(g, h);
    }

    #[test]
    fn parses_headerless_input() {
        let text = "0 1\n1 2\n\n# a comment\n2 0\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_edge_list("0 x\n".as_bytes()).is_err());
        assert!(read_edge_list("0\n".as_bytes()).is_err());
        assert!(read_edge_list("# nodes: two\n".as_bytes()).is_err());
        // id exceeding declared count:
        assert!(read_edge_list("# nodes: 2\n0 5\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = read_edge_list("".as_bytes()).unwrap();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn roundtrip_empty_graph_with_vertices() {
        // n > 0, m = 0: only the header carries information.
        let g = Graph::empty(12);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let h = read_edge_list(&buf[..]).unwrap();
        assert_eq!(h.n(), 12);
        assert_eq!(h.m(), 0);
        assert_eq!(g, h);
    }

    #[test]
    fn roundtrip_isolated_vertices_everywhere() {
        // Isolated vertices below, between, and above the edge-bearing
        // ids — all must survive via the nodes header.
        let g = Graph::from_edges(9, &[(2, 5)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let h = read_edge_list(&buf[..]).unwrap();
        assert_eq!(h.n(), 9);
        assert_eq!(h.m(), 1);
        assert_eq!(g, h);
    }

    #[test]
    fn duplicate_and_self_loop_edges_collapse_on_read() {
        // CSR construction dedups parallel edges (in either orientation)
        // and drops self-loops; a round-trip of the result is stable.
        let text = "0 1\n1 0\n0 1\n2 2\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
        assert_eq!(g.degree(2), 1); // the self-loop is gone
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        assert_eq!(read_edge_list(&buf[..]).unwrap(), g);
    }

    #[test]
    fn max_id_vertex_roundtrip() {
        // An edge touching the highest declared id, and a headerless input
        // whose max id defines n.
        let g = Graph::from_edges(7, &[(0, 6), (6, 3)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let h = read_edge_list(&buf[..]).unwrap();
        assert_eq!(h.n(), 7);
        assert_eq!(g, h);
        let headerless = read_edge_list("0 41\n".as_bytes()).unwrap();
        assert_eq!(headerless.n(), 42);
        assert_eq!(headerless.degree(41), 1);
    }

    #[test]
    fn ids_beyond_u32_are_rejected_not_wrapped() {
        // 2^32 would wrap to 0 in the VertexId cast; it must error instead,
        // even when a huge nodes header would make the wrapped id "valid".
        let over = (u32::MAX as u64 + 1).to_string();
        assert!(read_edge_list(format!("{over} 1\n").as_bytes()).is_err());
        assert!(read_edge_list(format!("# nodes: 5000000000\n1 {over}\n").as_bytes()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let g = random_forest(300, 7, 2);
        let dir = std::env::temp_dir().join("ampc_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("forest.txt");
        save(&g, &path).unwrap();
        let h = load(&path).unwrap();
        assert_eq!(g, h);
        std::fs::remove_file(&path).ok();
    }
}
