//! General-graph generators for Theorem 1.2 workloads.

use std::collections::HashSet;

use super::rng::SplitMix64;
use crate::csr::{Graph, VertexId};

/// Erdős–Rényi `G(n, m)`: `m` distinct uniformly random edges.
pub fn erdos_renyi_gnm(n: usize, m: usize, seed: u64) -> Graph {
    assert!(n >= 2 || m == 0);
    let max_m = n * n.saturating_sub(1) / 2;
    assert!(m <= max_m, "G(n,m) requested more edges than possible");
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut seen: HashSet<(VertexId, VertexId)> = HashSet::with_capacity(m);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let u = rng.gen_range(0..n as VertexId);
        let v = rng.gen_range(0..n as VertexId);
        if u == v {
            continue;
        }
        let e = (u.min(v), u.max(v));
        if seen.insert(e) {
            edges.push(e);
        }
    }
    Graph::from_edges(n, &edges)
}

/// A `rows × cols` grid graph: bounded degree, large diameter — the shape
/// where MPC algorithms pay `Θ(log D)` rounds and AMPC does not.
pub fn grid2d(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    let mut edges = Vec::with_capacity(2 * n);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c)));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// The complete graph on `n` vertices.
pub fn complete(n: usize) -> Graph {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges)
}

/// A barbell: two `k`-cliques joined by a path of `bridge` vertices. Dense
/// ends with a sparse cut — stresses the KKT sampling bound.
pub fn barbell(k: usize, bridge: usize) -> Graph {
    let n = 2 * k + bridge;
    let mut edges = Vec::new();
    for u in 0..k as VertexId {
        for v in (u + 1)..k as VertexId {
            edges.push((u, v));
            edges.push((u + (k + bridge) as VertexId, v + (k + bridge) as VertexId));
        }
    }
    // Path from clique 1 through the bridge into clique 2.
    let mut prev = (k - 1) as VertexId;
    for b in 0..bridge as VertexId {
        edges.push((prev, k as VertexId + b));
        prev = k as VertexId + b;
    }
    edges.push((prev, (k + bridge) as VertexId));
    Graph::from_edges(n, &edges)
}

/// Preferential attachment (Barabási–Albert style): each new vertex adds
/// `edges_per` edges to endpoints sampled proportionally to degree.
/// Produces the heavy-tailed degree distributions of web/social graphs.
pub fn preferential_attachment(n: usize, edges_per: usize, seed: u64) -> Graph {
    assert!(n >= 2 && edges_per >= 1);
    let mut rng = SplitMix64::seed_from_u64(seed);
    // `targets` holds one entry per edge endpoint; sampling uniformly from
    // it is degree-proportional sampling.
    let mut targets: Vec<VertexId> = vec![0, 1];
    let mut edges: Vec<(VertexId, VertexId)> = vec![(0, 1)];
    for v in 2..n as VertexId {
        let k = edges_per.min(v as usize);
        let mut chosen = HashSet::new();
        while chosen.len() < k {
            let t = targets[rng.gen_range(0..targets.len())];
            chosen.insert(t);
        }
        for &t in &chosen {
            edges.push((v, t));
            targets.push(v);
            targets.push(t);
        }
    }
    Graph::from_edges(n, &edges)
}

/// `count` disjoint cliques of `size` vertices each: many dense components.
pub fn disjoint_cliques(count: usize, size: usize) -> Graph {
    let n = count * size;
    let mut edges = Vec::new();
    for c in 0..count {
        let base = (c * size) as VertexId;
        for u in 0..size as VertexId {
            for v in (u + 1)..size as VertexId {
                edges.push((base + u, base + v));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// Disjoint union of graphs, relabeling each block's vertices consecutively.
pub fn disjoint_union(parts: &[Graph]) -> Graph {
    let n: usize = parts.iter().map(Graph::n).sum();
    let mut edges = Vec::with_capacity(parts.iter().map(Graph::m).sum());
    let mut base = 0 as VertexId;
    for g in parts {
        for (u, v) in g.edges() {
            edges.push((base + u, base + v));
        }
        base += g.n() as VertexId;
    }
    Graph::from_edges(n, &edges)
}

/// Erdős–Rényi `G(n, p)`: every pair kept independently with probability
/// `p`. Prefer [`erdos_renyi_gnm`] for exact edge counts; `gnp` matches
/// the classical sampling model used in Theorem 4.3-style analyses.
pub fn erdos_renyi_gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p));
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut edges = Vec::new();
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            if rng.gen_bool(p) {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// A lollipop: a `k`-clique with a path tail of `tail` vertices. Dense core
/// plus high-diameter appendage — both MPC pain points in one graph.
pub fn lollipop(k: usize, tail: usize) -> Graph {
    let n = k + tail;
    let mut edges = Vec::with_capacity(k * (k - 1) / 2 + tail);
    for u in 0..k as VertexId {
        for v in (u + 1)..k as VertexId {
            edges.push((u, v));
        }
    }
    let mut prev = (k - 1) as VertexId;
    for tvx in 0..tail as VertexId {
        edges.push((prev, k as VertexId + tvx));
        prev = k as VertexId + tvx;
    }
    Graph::from_edges(n, &edges)
}

/// A random bipartite graph with sides `a`, `b` and `m` distinct edges.
pub fn random_bipartite(a: usize, b: usize, m: usize, seed: u64) -> Graph {
    assert!(m <= a * b, "requested more edges than the biclique has");
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut seen: HashSet<(VertexId, VertexId)> = HashSet::with_capacity(m);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let u = rng.gen_range(0..a as VertexId);
        let v = (a + rng.gen_range(0..b)) as VertexId;
        if seen.insert((u, v)) {
            edges.push((u, v));
        }
    }
    Graph::from_edges(a + b, &edges)
}

/// Named general-graph families for the benchmark harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphFamily {
    /// Sparse ER graph with average degree 4.
    SparseER,
    /// Denser ER graph with average degree 16.
    DenseER,
    /// Square grid.
    Grid,
    /// Preferential-attachment graph (3 edges per vertex).
    PowerLaw,
    /// `√n` disjoint cliques of size `√n`.
    CliqueField,
    /// Lollipop: `√n`-clique with a long tail.
    Lollipop,
    /// Sparse random bipartite graph.
    Bipartite,
}

impl GraphFamily {
    /// All families, for sweeps.
    pub const ALL: [GraphFamily; 7] = [
        GraphFamily::SparseER,
        GraphFamily::DenseER,
        GraphFamily::Grid,
        GraphFamily::PowerLaw,
        GraphFamily::CliqueField,
        GraphFamily::Lollipop,
        GraphFamily::Bipartite,
    ];

    /// Generates roughly `n` vertices of this family.
    pub fn generate(self, n: usize, seed: u64) -> Graph {
        match self {
            GraphFamily::SparseER => erdos_renyi_gnm(n, 2 * n, seed),
            GraphFamily::DenseER => erdos_renyi_gnm(n, 8 * n, seed),
            GraphFamily::Grid => {
                let side = (n as f64).sqrt().ceil() as usize;
                grid2d(side, side)
            }
            GraphFamily::PowerLaw => preferential_attachment(n, 3, seed),
            GraphFamily::CliqueField => {
                let s = (n as f64).sqrt().ceil() as usize;
                disjoint_cliques(s, s)
            }
            GraphFamily::Lollipop => {
                let k = (n as f64).sqrt().ceil().max(3.0) as usize;
                lollipop(k, n.saturating_sub(k))
            }
            GraphFamily::Bipartite => random_bipartite(n / 2, n - n / 2, 2 * n, seed),
        }
    }

    /// Short name for report rows.
    pub fn name(self) -> &'static str {
        match self {
            GraphFamily::SparseER => "sparse-er",
            GraphFamily::DenseER => "dense-er",
            GraphFamily::Grid => "grid",
            GraphFamily::PowerLaw => "power-law",
            GraphFamily::CliqueField => "clique-field",
            GraphFamily::Lollipop => "lollipop",
            GraphFamily::Bipartite => "bipartite",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference_components;

    #[test]
    fn gnm_has_exact_edge_count() {
        let g = erdos_renyi_gnm(100, 250, 1);
        assert_eq!(g.n(), 100);
        assert_eq!(g.m(), 250);
    }

    #[test]
    fn gnm_deterministic_per_seed() {
        assert_eq!(erdos_renyi_gnm(50, 100, 5), erdos_renyi_gnm(50, 100, 5));
        assert_ne!(erdos_renyi_gnm(50, 100, 5), erdos_renyi_gnm(50, 100, 6));
    }

    #[test]
    fn grid_structure() {
        let g = grid2d(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert_eq!(reference_components(&g).num_components(), 1);
        assert!(g.max_degree() <= 4);
    }

    #[test]
    fn complete_graph_edges() {
        let g = complete(6);
        assert_eq!(g.m(), 15);
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn barbell_is_connected_with_sparse_cut() {
        let g = barbell(10, 5);
        assert_eq!(g.n(), 25);
        assert_eq!(reference_components(&g).num_components(), 1);
        assert_eq!(g.m(), 2 * 45 + 6);
    }

    #[test]
    fn preferential_attachment_connected_and_skewed() {
        let g = preferential_attachment(2000, 3, 9);
        assert_eq!(reference_components(&g).num_components(), 1);
        // Heavy tail: max degree far exceeds the average.
        let avg = 2.0 * g.m() as f64 / g.n() as f64;
        assert!(g.max_degree() as f64 > 4.0 * avg, "max {} avg {avg}", g.max_degree());
    }

    #[test]
    fn clique_field_components() {
        let g = disjoint_cliques(7, 5);
        assert_eq!(reference_components(&g).num_components(), 7);
        assert_eq!(g.m(), 7 * 10);
    }

    #[test]
    fn disjoint_union_offsets_blocks() {
        let a = complete(3);
        let b = grid2d(2, 2);
        let u = disjoint_union(&[a, b]);
        assert_eq!(u.n(), 7);
        assert_eq!(u.m(), 3 + 4);
        assert_eq!(reference_components(&u).num_components(), 2);
    }

    #[test]
    fn families_generate_reasonable_sizes() {
        for fam in GraphFamily::ALL {
            let g = fam.generate(400, 11);
            assert!(g.n() >= 300, "{} too small", fam.name());
            assert!(g.m() > 0);
        }
    }

    #[test]
    fn gnp_edge_count_concentrates() {
        let g = erdos_renyi_gnp(200, 0.1, 3);
        let expected = 0.1 * (200.0 * 199.0 / 2.0);
        assert!((g.m() as f64 - expected).abs() < 0.25 * expected);
    }

    #[test]
    fn lollipop_structure() {
        let g = lollipop(10, 20);
        assert_eq!(g.n(), 30);
        assert_eq!(g.m(), 45 + 20);
        assert_eq!(reference_components(&g).num_components(), 1);
    }

    #[test]
    fn bipartite_has_no_odd_cycles_within_sides() {
        let g = random_bipartite(50, 60, 200, 5);
        assert_eq!(g.n(), 110);
        assert_eq!(g.m(), 200);
        // No edge inside a side.
        for (u, v) in g.edges() {
            assert!((u < 50) != (v < 50), "edge ({u},{v}) within one side");
        }
    }
}
