//! Private seeded RNG for the generators.
//!
//! The build environment has no registry access, so instead of `rand` the
//! generators draw from the workspace's own [`ampc::rng::SplitMix64`]
//! stream. This adapter wraps it in the small slice of the `rand::Rng` API
//! the generators use (`gen_range`, `gen_bool`), so call sites read
//! identically to their original `rand` form.

use std::ops::Range;

pub(crate) struct SplitMix64 {
    inner: ampc::rng::SplitMix64,
}

impl SplitMix64 {
    /// Named after `rand::SeedableRng::seed_from_u64` to keep call sites
    /// unchanged.
    pub(crate) fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { inner: ampc::rng::SplitMix64::new(seed) }
    }

    /// Uniform draw from a half-open integer range, like `rand::Rng::gen_range`.
    #[inline]
    pub(crate) fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        let (lo, hi) = (range.start.to_u64(), range.end.to_u64());
        assert!(lo < hi, "gen_range called with an empty range");
        T::from_u64(lo + self.inner.next_below(hi - lo))
    }

    /// Bernoulli trial with success probability `p`, like `rand::Rng::gen_bool`.
    #[inline]
    pub(crate) fn gen_bool(&mut self, p: f64) -> bool {
        self.inner.bernoulli(p)
    }
}

/// Integer types `gen_range` can sample.
pub(crate) trait UniformInt: Copy {
    fn to_u64(self) -> u64;
    fn from_u64(x: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn to_u64(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_u64(x: u64) -> Self {
                x as $t
            }
        }
    )*};
}

impl_uniform_int!(u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = SplitMix64::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let x = rng.gen_range(0usize..5);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let x = rng.gen_range(10u32..12);
            assert!((10..12).contains(&x));
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::seed_from_u64(9);
        let mut b = SplitMix64::seed_from_u64(9);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0u64..u64::MAX), b.gen_range(0u64..u64::MAX));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SplitMix64::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
