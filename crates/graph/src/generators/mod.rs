//! Seeded workload generators.
//!
//! The paper's intro motivates connectivity on massive real-world graphs;
//! its analysis distinguishes forests (Theorem 1.1) from general graphs
//! (Theorem 1.2) and stresses particular shapes (long paths for the
//! sampling lower bound discussion in §1.3, short cycles for the additive
//! `2^B` term in Lemma 3.10). These modules provide deterministic seeded
//! generators for all of those shapes plus standard random-graph families.

mod forest;
mod general;
mod rng;

pub use forest::{
    balanced_binary_tree, broom, caterpillar, kary_tree, path, random_attachment_tree,
    random_forest, spider, star, ForestFamily,
};
pub use general::{
    barbell, complete, disjoint_cliques, disjoint_union, erdos_renyi_gnm, erdos_renyi_gnp, grid2d,
    lollipop, preferential_attachment, random_bipartite, GraphFamily,
};
