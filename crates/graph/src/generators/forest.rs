//! Forest generators for Theorem 1.1 workloads.

use super::rng::SplitMix64;
use crate::csr::{Graph, VertexId};

/// A path on `n` vertices: the adversarial shape for naive uniform sampling
/// (§1.3's motivating example).
pub fn path(n: usize) -> Graph {
    let edges: Vec<_> = (0..n.saturating_sub(1) as VertexId).map(|i| (i, i + 1)).collect();
    Graph::from_edges(n, &edges)
}

/// A star on `n` vertices (center 0): maximal degree skew.
pub fn star(n: usize) -> Graph {
    let edges: Vec<_> = (1..n as VertexId).map(|i| (0, i)).collect();
    Graph::from_edges(n, &edges)
}

/// A balanced binary tree on `n` vertices (heap layout).
pub fn balanced_binary_tree(n: usize) -> Graph {
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for i in 1..n as VertexId {
        edges.push(((i - 1) / 2, i));
    }
    Graph::from_edges(n, &edges)
}

/// A caterpillar: a spine path where every spine vertex carries `legs`
/// pendant leaves. Total vertex count is `spine * (1 + legs)`.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    let n = spine * (1 + legs);
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for s in 0..spine as VertexId {
        if s + 1 < spine as VertexId {
            edges.push((s, s + 1));
        }
        for l in 0..legs as VertexId {
            edges.push((s, spine as VertexId + s * legs as VertexId + l));
        }
    }
    Graph::from_edges(n, &edges)
}

/// A uniform random-attachment tree on `n` vertices: vertex `i` attaches to
/// a uniformly random earlier vertex. Produces depth `Θ(log n)` trees with
/// realistic degree variation.
pub fn random_attachment_tree(n: usize, seed: u64) -> Graph {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for i in 1..n as VertexId {
        let parent = rng.gen_range(0..i);
        edges.push((parent, i));
    }
    Graph::from_edges(n, &edges)
}

/// A forest of `trees` random-attachment trees over `n` vertices total,
/// sizes split near-evenly.
pub fn random_forest(n: usize, trees: usize, seed: u64) -> Graph {
    assert!(trees >= 1 && trees <= n.max(1));
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n.saturating_sub(trees));
    let per = n / trees;
    let mut start = 0usize;
    for t in 0..trees {
        let size = if t == trees - 1 { n - start } else { per };
        for i in 1..size {
            let parent = rng.gen_range(0..i);
            edges.push(((start + parent) as VertexId, (start + i) as VertexId));
        }
        start += size;
    }
    Graph::from_edges(n, &edges)
}

/// A spider: `legs` paths of `leg_len` vertices joined at a hub. Mixes one
/// high-degree vertex with long path stretches.
pub fn spider(legs: usize, leg_len: usize) -> Graph {
    let n = 1 + legs * leg_len;
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for l in 0..legs {
        let base = (1 + l * leg_len) as VertexId;
        edges.push((0, base));
        for i in 1..leg_len as VertexId {
            edges.push((base + i - 1, base + i));
        }
    }
    Graph::from_edges(n, &edges)
}

/// A complete `k`-ary tree on `n` vertices (heap layout).
pub fn kary_tree(n: usize, k: usize) -> Graph {
    assert!(k >= 1);
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for i in 1..n as VertexId {
        edges.push(((i - 1) / k as VertexId, i));
    }
    Graph::from_edges(n, &edges)
}

/// A broom: a path handle of `handle` vertices ending in `bristles`
/// pendant leaves — a path and a star glued together.
pub fn broom(handle: usize, bristles: usize) -> Graph {
    assert!(handle >= 1);
    let n = handle + bristles;
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for i in 1..handle as VertexId {
        edges.push((i - 1, i));
    }
    for b in 0..bristles as VertexId {
        edges.push(((handle - 1) as VertexId, handle as VertexId + b));
    }
    Graph::from_edges(n, &edges)
}

/// Named forest families for the benchmark harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ForestFamily {
    /// Single path: worst case for uniform sampling.
    Path,
    /// Single star: worst degree skew.
    Star,
    /// Balanced binary tree.
    BinaryTree,
    /// Caterpillar with 4 legs per spine vertex.
    Caterpillar,
    /// One random-attachment tree.
    RandomTree,
    /// `√n` random trees: many mid-sized components.
    ManyTrees,
    /// Forest of 3-vertex paths: stresses the additive term of Lemma 3.10
    /// (tiny cycles after the Euler reduction).
    TinyTrees,
    /// Spider with `√n` legs: hub degree skew plus long paths.
    Spider,
    /// Complete 8-ary tree: shallow, bushy.
    KaryTree,
    /// Broom: half path, half star.
    Broom,
}

impl ForestFamily {
    /// All families, for sweeps.
    pub const ALL: [ForestFamily; 10] = [
        ForestFamily::Path,
        ForestFamily::Star,
        ForestFamily::BinaryTree,
        ForestFamily::Caterpillar,
        ForestFamily::RandomTree,
        ForestFamily::ManyTrees,
        ForestFamily::TinyTrees,
        ForestFamily::Spider,
        ForestFamily::KaryTree,
        ForestFamily::Broom,
    ];

    /// Generates an `n`-vertex forest of this family.
    pub fn generate(self, n: usize, seed: u64) -> Graph {
        match self {
            ForestFamily::Path => path(n),
            ForestFamily::Star => star(n),
            ForestFamily::BinaryTree => balanced_binary_tree(n),
            ForestFamily::Caterpillar => caterpillar(n.div_ceil(5).max(1), 4),
            ForestFamily::RandomTree => random_attachment_tree(n, seed),
            ForestFamily::ManyTrees => {
                random_forest(n, (n as f64).sqrt().ceil().max(1.0) as usize, seed)
            }
            ForestFamily::TinyTrees => random_forest(n, (n / 3).max(1), seed),
            ForestFamily::Spider => {
                let legs = (n as f64).sqrt().ceil().max(1.0) as usize;
                spider(legs, (n.saturating_sub(1) / legs).max(1))
            }
            ForestFamily::KaryTree => kary_tree(n, 8),
            ForestFamily::Broom => broom(n.div_ceil(2), n / 2),
        }
    }

    /// Short name for report rows.
    pub fn name(self) -> &'static str {
        match self {
            ForestFamily::Path => "path",
            ForestFamily::Star => "star",
            ForestFamily::BinaryTree => "binary-tree",
            ForestFamily::Caterpillar => "caterpillar",
            ForestFamily::RandomTree => "random-tree",
            ForestFamily::ManyTrees => "many-trees",
            ForestFamily::TinyTrees => "tiny-trees",
            ForestFamily::Spider => "spider",
            ForestFamily::KaryTree => "kary-tree",
            ForestFamily::Broom => "broom",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference_components;

    #[test]
    fn path_shape() {
        let g = path(10);
        assert_eq!(g.m(), 9);
        assert!(g.is_forest());
        assert_eq!(g.max_degree(), 2);
        assert_eq!(reference_components(&g).num_components(), 1);
    }

    #[test]
    fn star_shape() {
        let g = star(10);
        assert_eq!(g.degree(0), 9);
        assert!(g.is_forest());
    }

    #[test]
    fn binary_tree_is_connected_forest() {
        let g = balanced_binary_tree(31);
        assert!(g.is_forest());
        assert_eq!(reference_components(&g).num_components(), 1);
        assert!(g.max_degree() <= 3);
    }

    #[test]
    fn caterpillar_counts() {
        let g = caterpillar(5, 3);
        assert_eq!(g.n(), 20);
        assert!(g.is_forest());
        assert_eq!(reference_components(&g).num_components(), 1);
    }

    #[test]
    fn random_forest_component_count() {
        let g = random_forest(1000, 10, 42);
        assert!(g.is_forest());
        assert_eq!(reference_components(&g).num_components(), 10);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(random_attachment_tree(500, 7), random_attachment_tree(500, 7));
        assert_ne!(random_attachment_tree(500, 7), random_attachment_tree(500, 8));
    }

    #[test]
    fn all_families_produce_forests() {
        for fam in ForestFamily::ALL {
            let g = fam.generate(200, 3);
            assert!(g.is_forest(), "{} not a forest", fam.name());
            assert!(g.n() >= 100, "{} too small: {}", fam.name(), g.n());
        }
    }

    #[test]
    fn spider_shape() {
        let g = spider(5, 10);
        assert_eq!(g.n(), 51);
        assert!(g.is_forest());
        assert_eq!(g.degree(0), 5);
        assert_eq!(reference_components(&g).num_components(), 1);
    }

    #[test]
    fn kary_tree_shape() {
        let g = kary_tree(73, 8);
        assert!(g.is_forest());
        assert_eq!(g.degree(0), 8);
        assert_eq!(reference_components(&g).num_components(), 1);
    }

    #[test]
    fn broom_shape() {
        let g = broom(10, 15);
        assert_eq!(g.n(), 25);
        assert!(g.is_forest());
        assert_eq!(g.degree(9), 16); // handle end: 1 path edge + 15 bristles
        assert_eq!(reference_components(&g).num_components(), 1);
    }
}
