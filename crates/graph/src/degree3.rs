//! The maximum-degree-3 transform of §4.3.
//!
//! `ShrinkGeneral` begins "by transforming the input graph G to a graph G3
//! with maximum degree 3 … by replacing each vertex v of degree d > 3 with a
//! cycle of length d. Each edge incident to v is then connected to a
//! different vertex of the cycle."
//!
//! Connectivity is preserved (a gadget cycle is connected and carries its
//! vertex's identity), so a CC-labeling of `G3` projects to one of `G`
//! through [`Degree3::origin`].

use crate::csr::{Graph, VertexId};

/// Result of the degree-3 transform.
#[derive(Clone, Debug)]
pub struct Degree3 {
    /// The transformed graph, `max_degree() <= 3`.
    pub graph: Graph,
    /// `origin[x]` = vertex of the input graph that `x` belongs to.
    pub origin: Vec<VertexId>,
}

/// Applies the transform. Vertices of degree ≤ 3 are kept as single nodes;
/// each vertex of degree `d > 3` becomes a `d`-cycle of gadget nodes, edge
/// `i` of the vertex attaching to gadget node `i`.
pub fn to_degree3(g: &Graph) -> Degree3 {
    let n = g.n();

    // Layout: vertex v occupies new ids base[v] .. base[v] + slots(v) - 1,
    // where slots(v) = 1 for degree ≤ 3 and degree(v) otherwise.
    let mut base = vec![0u32; n + 1];
    for v in 0..n {
        let d = g.degree(v as VertexId);
        let slots = if d > 3 { d } else { 1 };
        base[v + 1] = base[v] + slots as u32;
    }
    let n3 = base[n] as usize;

    let mut origin = vec![0 as VertexId; n3];
    for v in 0..n as VertexId {
        for slot in base[v as usize]..base[v as usize + 1] {
            origin[slot as usize] = v;
        }
    }

    // Attachment point of edge slot j at vertex v.
    let attach = |v: VertexId, j: usize| -> u32 {
        if g.degree(v) > 3 {
            base[v as usize] + j as u32
        } else {
            base[v as usize]
        }
    };

    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(g.m() + n3);
    // Gadget cycles.
    for v in 0..n as VertexId {
        let d = g.degree(v);
        if d > 3 {
            for j in 0..d {
                edges.push((base[v as usize] + j as u32, base[v as usize] + ((j + 1) % d) as u32));
            }
        }
    }
    // Cross edges: one per original edge, using each endpoint's slot for the
    // other endpoint (its position in the sorted adjacency list).
    for (u, v) in g.edges() {
        let ju = g.neighbor_position(u, v).expect("CSR symmetric");
        let jv = g.neighbor_position(v, u).expect("CSR symmetric");
        edges.push((attach(u, ju), attach(v, jv)));
    }

    Degree3 { graph: Graph::from_edges(n3, &edges), origin }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{reference_components, Labeling};

    #[test]
    fn low_degree_graph_unchanged_in_size() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let t = to_degree3(&g);
        assert_eq!(t.graph.n(), 4);
        assert_eq!(t.graph.m(), 3);
        assert!(t.graph.max_degree() <= 3);
    }

    #[test]
    fn star_center_becomes_cycle() {
        // Center of a 6-star has degree 5 → becomes a 5-cycle.
        let g = Graph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let t = to_degree3(&g);
        assert_eq!(t.graph.n(), 5 + 5); // 5 gadget nodes + 5 leaves
        assert!(t.graph.max_degree() <= 3);
        // All gadget nodes map back to vertex 0.
        let zero_copies = t.origin.iter().filter(|&&o| o == 0).count();
        assert_eq!(zero_copies, 5);
    }

    #[test]
    fn transform_preserves_components() {
        let g = Graph::from_edges(
            12,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5), // star (deg 5 center)
                (6, 7),
                (7, 8),
                (8, 6),  // triangle
                (9, 10), // edge; 11 isolated
            ],
        );
        let t = to_degree3(&g);
        assert!(t.graph.max_degree() <= 3);
        let l3 = reference_components(&t.graph);
        // Project to the original vertex set.
        let mut proj = vec![u64::MAX; g.n()];
        for (x, &o) in t.origin.iter().enumerate() {
            let lab = l3.get(x as VertexId);
            if proj[o as usize] == u64::MAX {
                proj[o as usize] = lab;
            } else {
                // All copies of one vertex must be in one G3 component.
                assert_eq!(proj[o as usize], lab);
            }
        }
        // Isolated original vertices stay as their own G3 vertex:
        assert!(proj.iter().all(|&p| p != u64::MAX));
        assert!(Labeling(proj).same_partition(&reference_components(&g)));
    }

    #[test]
    fn degree4_vertex_splits() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let t = to_degree3(&g);
        assert_eq!(t.graph.n(), 4 + 4);
        assert!(t.graph.max_degree() <= 3);
        assert!(reference_components(&t.graph).num_components() == 1);
    }

    #[test]
    fn clique_transform_keeps_connectivity() {
        let mut edges = Vec::new();
        for u in 0..8u32 {
            for v in (u + 1)..8 {
                edges.push((u, v));
            }
        }
        let g = Graph::from_edges(8, &edges);
        let t = to_degree3(&g);
        assert!(t.graph.max_degree() <= 3);
        assert_eq!(reference_components(&t.graph).num_components(), 1);
        assert_eq!(t.graph.n(), 8 * 7); // every vertex has degree 7 → 7-cycles
    }
}
