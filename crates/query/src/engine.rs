//! Batch query engine over a [`ComponentIndex`], optionally merge-aware
//! through a [`JournalView`].
//!
//! The engine's contract is the serving-layer hot path: queries and
//! answers are plain `Copy` values, batches are slice-in/slice-out, and
//! executing a batch performs **zero allocations** — the caller owns both
//! buffers and reuses them across batches. Answers are `u64` so one
//! uniform answer type covers the whole [`Query`] algebra (`Connected`
//! encodes as 0/1).
//!
//! **Checked-query contract.** A query naming a vertex the index does not
//! cover — a stream built against epoch `N` answered on a smaller-graph
//! epoch `N+1`, or a hostile query file — must never kill a serving
//! thread. [`QueryEngine::try_answer`] returns `None` for such queries;
//! [`QueryEngine::answer`] mirrors that in the `u64` encoding as
//! [`NO_ANSWER`] (`u64::MAX`, unreachable by any real answer: component
//! ids are `u32`, sizes are `≤ n`, and `Connected` is 0/1). No query path
//! panics on out-of-range ids.
//!
//! **Journal-aware reads.** An engine built with
//! [`QueryEngine::with_journal`] resolves every dense component id through
//! the journal's remap table — one extra bounded-depth array read — so a
//! journal-epoch answers the whole algebra without rebuilding the
//! `O(n)`-sized index (see [`crate::journal`] for the byte-identity
//! argument).

use std::fmt;

use ampc_graph::VertexId;

use crate::index::{ComponentId, ComponentIndex};
use crate::journal::JournalView;

/// The `u64` answer encoding of "this query has no answer on this epoch"
/// (an out-of-range vertex id). Distinguishable from every real answer:
/// ids are `u32`, sizes at most `n`, `Connected` is 0/1.
pub const NO_ANSWER: u64 = u64::MAX;

/// Typed error for a mismatched batch: the query and answer slices must
/// have equal lengths. Carries both lengths so the caller's error message
/// can say which side was short.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BatchLenError {
    /// Length of the query slice.
    pub queries: usize,
    /// Length of the answer slice.
    pub answers: usize,
}

impl fmt::Display for BatchLenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "batch slices must have equal length: {} queries vs {} answer slots",
            self.queries, self.answers
        )
    }
}

impl std::error::Error for BatchLenError {}

/// One connectivity query. All variants answer in O(1) array reads.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Query {
    /// Are `u` and `v` in the same component? Answer: 1 or 0.
    Connected(VertexId, VertexId),
    /// Dense component id of `v`.
    ComponentOf(VertexId),
    /// Size of the component containing `v`.
    ComponentSize(VertexId),
    /// Size of the `k`-th largest component (1-based); 0 when there are
    /// fewer than `k` components.
    TopKSize(u32),
}

/// Executes [`Query`] values against an immutable [`ComponentIndex`],
/// resolving merges through an optional [`JournalView`].
///
/// The engine borrows the index (and journal), so any number of engines
/// (one per serving thread) can read the same epoch concurrently —
/// immutability *is* the concurrency story of the read path.
#[derive(Copy, Clone, Debug)]
pub struct QueryEngine<'a> {
    index: &'a ComponentIndex,
    journal: Option<&'a JournalView>,
}

impl<'a> QueryEngine<'a> {
    /// Creates an engine over `index` with no journal (a full epoch).
    pub fn new(index: &'a ComponentIndex) -> Self {
        QueryEngine { index, journal: None }
    }

    /// Creates a merge-aware engine: every dense id read out of `index` is
    /// resolved through `journal` (one extra array read per id).
    pub fn with_journal(index: &'a ComponentIndex, journal: &'a JournalView) -> Self {
        QueryEngine { index, journal: Some(journal) }
    }

    /// The underlying index.
    pub fn index(&self) -> &'a ComponentIndex {
        self.index
    }

    /// The journal this engine resolves merges through, if any.
    pub fn journal(&self) -> Option<&'a JournalView> {
        self.journal
    }

    /// Merged dense component id of `v`, or `None` when `v` is out of
    /// range for this epoch's graph.
    #[inline]
    fn comp(&self, v: VertexId) -> Option<ComponentId> {
        let c = self.index.try_component_of(v)?;
        Some(match self.journal {
            Some(j) => j.resolve(c),
            None => c,
        })
    }

    /// Answers one query, or `None` when it names an out-of-range vertex.
    #[inline]
    pub fn try_answer(&self, q: Query) -> Option<u64> {
        Some(match q {
            Query::Connected(u, v) => (self.comp(u)? == self.comp(v)?) as u64,
            Query::ComponentOf(v) => self.comp(v)? as u64,
            Query::ComponentSize(v) => {
                let c = self.comp(v)?;
                match self.journal {
                    Some(j) => j.size_of(c) as u64,
                    None => self.index.size_of(c) as u64,
                }
            }
            Query::TopKSize(k) => match self.journal {
                Some(j) => j.kth_largest_size(k as usize) as u64,
                None => self.index.kth_largest_size(k as usize) as u64,
            },
        })
    }

    /// Answers one query; an out-of-range vertex answers [`NO_ANSWER`]
    /// instead of panicking (the `u64` mirror of
    /// [`QueryEngine::try_answer`]'s `None`).
    #[inline]
    pub fn answer(&self, q: Query) -> u64 {
        self.try_answer(q).unwrap_or(NO_ANSWER)
    }

    /// Answers `queries[i]` into `answers[i]` for every `i`: slice in,
    /// slice out, no allocation. The tight loop over `Copy` values is what
    /// the `query_throughput` bench measures against the one-call-per-query
    /// path. Out-of-range vertices answer [`NO_ANSWER`], same as
    /// [`QueryEngine::answer`].
    ///
    /// # Errors
    /// Returns [`BatchLenError`] — without touching either slice — when the
    /// slices differ in length. (This used to be an implicit `assert!`
    /// panic; a serving thread must be able to reject a malformed batch
    /// without dying.) An empty pair of slices is a valid no-op batch.
    pub fn answer_batch(
        &self,
        queries: &[Query],
        answers: &mut [u64],
    ) -> Result<(), BatchLenError> {
        if queries.len() != answers.len() {
            return Err(BatchLenError { queries: queries.len(), answers: answers.len() });
        }
        for (slot, &q) in answers.iter_mut().zip(queries) {
            *slot = self.answer(q);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::Labeling;

    /// Components: {0,1,2} id 0, {3,4} id 1, {5} id 2.
    fn engine_fixture() -> ComponentIndex {
        ComponentIndex::build(&Labeling(vec![8, 8, 8, 2, 2, 5]))
    }

    #[test]
    fn single_answers_cover_the_algebra() {
        let idx = engine_fixture();
        let eng = QueryEngine::new(&idx);
        assert_eq!(eng.answer(Query::Connected(0, 2)), 1);
        assert_eq!(eng.answer(Query::Connected(0, 3)), 0);
        assert_eq!(eng.answer(Query::ComponentOf(4)), 1);
        assert_eq!(eng.answer(Query::ComponentSize(1)), 3);
        assert_eq!(eng.answer(Query::TopKSize(1)), 3);
        assert_eq!(eng.answer(Query::TopKSize(3)), 1);
        assert_eq!(eng.answer(Query::TopKSize(4)), 0);
    }

    #[test]
    fn out_of_range_vertices_answer_the_sentinel_not_a_panic() {
        let idx = engine_fixture();
        let eng = QueryEngine::new(&idx);
        // Every vertex-carrying variant, both sides of Connected.
        assert_eq!(eng.answer(Query::Connected(0, 6)), NO_ANSWER);
        assert_eq!(eng.answer(Query::Connected(6, 0)), NO_ANSWER);
        assert_eq!(eng.answer(Query::Connected(u32::MAX, u32::MAX)), NO_ANSWER);
        assert_eq!(eng.answer(Query::ComponentOf(6)), NO_ANSWER);
        assert_eq!(eng.answer(Query::ComponentSize(99)), NO_ANSWER);
        assert_eq!(eng.try_answer(Query::ComponentOf(6)), None);
        assert_eq!(eng.try_answer(Query::ComponentOf(5)), Some(2));
        // TopKSize has no vertex, so it always answers.
        assert_eq!(eng.try_answer(Query::TopKSize(999)), Some(0));
        // Batches carry the sentinel through, in position.
        let mut answers = vec![0u64; 3];
        eng.answer_batch(
            &[Query::ComponentOf(0), Query::ComponentOf(6), Query::ComponentOf(5)],
            &mut answers,
        )
        .unwrap();
        assert_eq!(answers, vec![0, NO_ANSWER, 2]);
    }

    #[test]
    fn journal_aware_engine_resolves_merges() {
        use crate::journal::JournalView;
        let idx = engine_fixture();
        // Merge base components 1 and 2 ({3,4} ∪ {5}).
        let journal = JournalView::build(&[0, 2, 2], &idx).unwrap();
        let eng = QueryEngine::with_journal(&idx, &journal);
        assert!(eng.journal().is_some());
        assert_eq!(eng.answer(Query::Connected(3, 5)), 1);
        assert_eq!(eng.answer(Query::Connected(0, 5)), 0);
        assert_eq!(eng.answer(Query::ComponentOf(5)), 1);
        assert_eq!(eng.answer(Query::ComponentSize(5)), 3);
        assert_eq!(eng.answer(Query::TopKSize(1)), 3);
        assert_eq!(eng.answer(Query::TopKSize(2)), 3);
        assert_eq!(eng.answer(Query::TopKSize(3)), 0);
        // The merged answers are byte-identical to a fresh build of the
        // merged partition.
        let fresh = ComponentIndex::build(&Labeling(vec![8, 8, 8, 2, 2, 2]));
        let fresh_eng = QueryEngine::new(&fresh);
        for v in 0..6u32 {
            assert_eq!(
                eng.answer(Query::ComponentOf(v)),
                fresh_eng.answer(Query::ComponentOf(v)),
                "vertex {v}"
            );
            assert_eq!(
                eng.answer(Query::ComponentSize(v)),
                fresh_eng.answer(Query::ComponentSize(v)),
            );
        }
        // Sentinel passes through the journal path too.
        assert_eq!(eng.answer(Query::ComponentOf(6)), NO_ANSWER);
    }

    #[test]
    fn batch_matches_single_query_answers() {
        let idx = engine_fixture();
        let eng = QueryEngine::new(&idx);
        let queries = vec![
            Query::Connected(0, 1),
            Query::Connected(2, 5),
            Query::ComponentOf(5),
            Query::ComponentSize(3),
            Query::TopKSize(2),
        ];
        let mut answers = vec![0u64; queries.len()];
        eng.answer_batch(&queries, &mut answers).unwrap();
        let singles: Vec<u64> = queries.iter().map(|&q| eng.answer(q)).collect();
        assert_eq!(answers, singles);
        assert_eq!(answers, vec![1, 0, 2, 2, 2]);
    }

    #[test]
    fn batch_buffers_are_reusable() {
        let idx = engine_fixture();
        let eng = QueryEngine::new(&idx);
        let mut answers = vec![0u64; 2];
        eng.answer_batch(&[Query::Connected(0, 1), Query::Connected(0, 3)], &mut answers).unwrap();
        assert_eq!(answers, vec![1, 0]);
        eng.answer_batch(&[Query::ComponentOf(0), Query::ComponentOf(3)], &mut answers).unwrap();
        assert_eq!(answers, vec![0, 1]);
    }

    #[test]
    fn mismatched_batch_lengths_are_a_typed_error() {
        let idx = engine_fixture();
        let eng = QueryEngine::new(&idx);
        // Short answer slice: rejected, and the answer buffer is untouched.
        let mut answers = vec![99u64; 1];
        let err = eng
            .answer_batch(&[Query::TopKSize(1), Query::TopKSize(2)], &mut answers)
            .expect_err("mismatched lengths must be rejected");
        assert_eq!(err, BatchLenError { queries: 2, answers: 1 });
        assert_eq!(answers, vec![99], "a rejected batch must not write answers");
        // Short query slice: same contract, lengths swapped.
        let mut answers = vec![0u64; 3];
        let err = eng.answer_batch(&[Query::TopKSize(1)], &mut answers).unwrap_err();
        assert_eq!((err.queries, err.answers), (1, 3));
        assert!(err.to_string().contains("1 queries vs 3 answer slots"));
    }

    #[test]
    fn empty_batch_is_a_valid_no_op() {
        let idx = engine_fixture();
        let eng = QueryEngine::new(&idx);
        eng.answer_batch(&[], &mut []).expect("empty batch must succeed");
    }
}
