//! Batch query engine over a [`ComponentIndex`].
//!
//! The engine's contract is the serving-layer hot path: queries and
//! answers are plain `Copy` values, batches are slice-in/slice-out, and
//! executing a batch performs **zero allocations** — the caller owns both
//! buffers and reuses them across batches. Answers are `u64` so one
//! uniform answer type covers the whole [`Query`] algebra (`Connected`
//! encodes as 0/1).

use std::fmt;

use ampc_graph::VertexId;

use crate::index::ComponentIndex;

/// Typed error for a mismatched batch: the query and answer slices must
/// have equal lengths. Carries both lengths so the caller's error message
/// can say which side was short.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BatchLenError {
    /// Length of the query slice.
    pub queries: usize,
    /// Length of the answer slice.
    pub answers: usize,
}

impl fmt::Display for BatchLenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "batch slices must have equal length: {} queries vs {} answer slots",
            self.queries, self.answers
        )
    }
}

impl std::error::Error for BatchLenError {}

/// One connectivity query. All variants answer in O(1) array reads.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Query {
    /// Are `u` and `v` in the same component? Answer: 1 or 0.
    Connected(VertexId, VertexId),
    /// Dense component id of `v`.
    ComponentOf(VertexId),
    /// Size of the component containing `v`.
    ComponentSize(VertexId),
    /// Size of the `k`-th largest component (1-based); 0 when there are
    /// fewer than `k` components.
    TopKSize(u32),
}

/// Executes [`Query`] values against an immutable [`ComponentIndex`].
///
/// The engine borrows the index, so any number of engines (one per serving
/// thread) can read the same index concurrently — immutability *is* the
/// concurrency story of the read path.
#[derive(Copy, Clone, Debug)]
pub struct QueryEngine<'a> {
    index: &'a ComponentIndex,
}

impl<'a> QueryEngine<'a> {
    /// Creates an engine over `index`.
    pub fn new(index: &'a ComponentIndex) -> Self {
        QueryEngine { index }
    }

    /// The underlying index.
    pub fn index(&self) -> &'a ComponentIndex {
        self.index
    }

    /// Answers one query.
    #[inline]
    pub fn answer(&self, q: Query) -> u64 {
        match q {
            Query::Connected(u, v) => self.index.connected(u, v) as u64,
            Query::ComponentOf(v) => self.index.component_of(v) as u64,
            Query::ComponentSize(v) => self.index.component_size(v) as u64,
            Query::TopKSize(k) => self.index.kth_largest_size(k as usize) as u64,
        }
    }

    /// Answers `queries[i]` into `answers[i]` for every `i`: slice in,
    /// slice out, no allocation. The tight loop over `Copy` values is what
    /// the `query_throughput` bench measures against the one-call-per-query
    /// path.
    ///
    /// # Errors
    /// Returns [`BatchLenError`] — without touching either slice — when the
    /// slices differ in length. (This used to be an implicit `assert!`
    /// panic; a serving thread must be able to reject a malformed batch
    /// without dying.) An empty pair of slices is a valid no-op batch.
    pub fn answer_batch(
        &self,
        queries: &[Query],
        answers: &mut [u64],
    ) -> Result<(), BatchLenError> {
        if queries.len() != answers.len() {
            return Err(BatchLenError { queries: queries.len(), answers: answers.len() });
        }
        for (slot, &q) in answers.iter_mut().zip(queries) {
            *slot = self.answer(q);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::Labeling;

    /// Components: {0,1,2} id 0, {3,4} id 1, {5} id 2.
    fn engine_fixture() -> ComponentIndex {
        ComponentIndex::build(&Labeling(vec![8, 8, 8, 2, 2, 5]))
    }

    #[test]
    fn single_answers_cover_the_algebra() {
        let idx = engine_fixture();
        let eng = QueryEngine::new(&idx);
        assert_eq!(eng.answer(Query::Connected(0, 2)), 1);
        assert_eq!(eng.answer(Query::Connected(0, 3)), 0);
        assert_eq!(eng.answer(Query::ComponentOf(4)), 1);
        assert_eq!(eng.answer(Query::ComponentSize(1)), 3);
        assert_eq!(eng.answer(Query::TopKSize(1)), 3);
        assert_eq!(eng.answer(Query::TopKSize(3)), 1);
        assert_eq!(eng.answer(Query::TopKSize(4)), 0);
    }

    #[test]
    fn batch_matches_single_query_answers() {
        let idx = engine_fixture();
        let eng = QueryEngine::new(&idx);
        let queries = vec![
            Query::Connected(0, 1),
            Query::Connected(2, 5),
            Query::ComponentOf(5),
            Query::ComponentSize(3),
            Query::TopKSize(2),
        ];
        let mut answers = vec![0u64; queries.len()];
        eng.answer_batch(&queries, &mut answers).unwrap();
        let singles: Vec<u64> = queries.iter().map(|&q| eng.answer(q)).collect();
        assert_eq!(answers, singles);
        assert_eq!(answers, vec![1, 0, 2, 2, 2]);
    }

    #[test]
    fn batch_buffers_are_reusable() {
        let idx = engine_fixture();
        let eng = QueryEngine::new(&idx);
        let mut answers = vec![0u64; 2];
        eng.answer_batch(&[Query::Connected(0, 1), Query::Connected(0, 3)], &mut answers).unwrap();
        assert_eq!(answers, vec![1, 0]);
        eng.answer_batch(&[Query::ComponentOf(0), Query::ComponentOf(3)], &mut answers).unwrap();
        assert_eq!(answers, vec![0, 1]);
    }

    #[test]
    fn mismatched_batch_lengths_are_a_typed_error() {
        let idx = engine_fixture();
        let eng = QueryEngine::new(&idx);
        // Short answer slice: rejected, and the answer buffer is untouched.
        let mut answers = vec![99u64; 1];
        let err = eng
            .answer_batch(&[Query::TopKSize(1), Query::TopKSize(2)], &mut answers)
            .expect_err("mismatched lengths must be rejected");
        assert_eq!(err, BatchLenError { queries: 2, answers: 1 });
        assert_eq!(answers, vec![99], "a rejected batch must not write answers");
        // Short query slice: same contract, lengths swapped.
        let mut answers = vec![0u64; 3];
        let err = eng.answer_batch(&[Query::TopKSize(1)], &mut answers).unwrap_err();
        assert_eq!((err.queries, err.answers), (1, 3));
        assert!(err.to_string().contains("1 queries vs 3 answer slots"));
    }

    #[test]
    fn empty_batch_is_a_valid_no_op() {
        let idx = engine_fixture();
        let eng = QueryEngine::new(&idx);
        eng.answer_batch(&[], &mut []).expect("empty batch must succeed");
    }
}
