//! Deterministic query-workload generation, in the same seeded style as
//! the graph generators in `ampc-graph`.
//!
//! Three mixes model how real traffic hits a connectivity service:
//!
//! * [`Mix::Uniform`] — every vertex equally popular (the cache-hostile
//!   baseline: reads land anywhere in the `comp_of` array);
//! * [`Mix::Zipf`] — vertex popularity follows a Zipf law (the realistic
//!   regime: a few celebrity vertices absorb most lookups, so the hot set
//!   fits in cache);
//! * [`Mix::CrossComponent`] — every pair is drawn from two *different*
//!   components (the adversarial regime: all `Connected` answers are
//!   false, defeating any shortcut that assumes most pairs connect, and
//!   each query touches two unrelated index regions).
//!
//! All draws come from the workspace's SplitMix64 stream, so a
//! `(mix, count, seed)` triple regenerates the identical query sequence on
//! any machine — the property the cross-validation matrix and the
//! throughput bench both rely on.

use std::io::{self, BufRead, BufReader, Read};

use ampc::rng::SplitMix64;
use ampc_graph::VertexId;

use crate::engine::Query;
use crate::index::{ComponentId, ComponentIndex};

/// A workload shape: how query endpoints are drawn.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum Mix {
    /// Uniformly random vertices, mixed query types.
    Uniform,
    /// Zipf-skewed vertex popularity with the given exponent, mixed query
    /// types. Exponent 1.0–1.2 matches measured web/social skew.
    Zipf {
        /// The skew exponent `s` in `weight(rank) ∝ rank^-s`.
        exponent: f64,
    },
    /// `Connected` pairs guaranteed to span two distinct components
    /// (falls back to uniform pairs when the graph is one component).
    CrossComponent,
}

impl Mix {
    /// The standard mixes, in reporting order: what the bench and the CLI
    /// sweep when no explicit mix is requested.
    pub const STANDARD: [Mix; 3] = [Mix::Uniform, Mix::Zipf { exponent: 1.1 }, Mix::CrossComponent];

    /// Parses a CLI mix spec: `uniform`, `zipf`, `zipf:EXP`, or `cross`.
    pub fn parse(s: &str) -> Result<Mix, String> {
        match s {
            "uniform" => Ok(Mix::Uniform),
            "zipf" => Ok(Mix::Zipf { exponent: 1.1 }),
            "cross" => Ok(Mix::CrossComponent),
            other => {
                if let Some(e) = other.strip_prefix("zipf:") {
                    let exponent: f64 = e.parse().map_err(|e| format!("bad zipf exponent: {e}"))?;
                    if !exponent.is_finite() || exponent <= 0.0 {
                        return Err("zipf exponent must be positive and finite".into());
                    }
                    Ok(Mix::Zipf { exponent })
                } else {
                    Err(format!("unknown mix {other:?} (expected uniform|zipf[:EXP]|cross)"))
                }
            }
        }
    }

    /// Short reporting name.
    pub fn name(&self) -> &'static str {
        match self {
            Mix::Uniform => "uniform",
            Mix::Zipf { .. } => "zipf",
            Mix::CrossComponent => "cross",
        }
    }
}

/// Draws vertices according to a [`Mix`]'s popularity model.
struct VertexSampler {
    /// Cumulative popularity weights over vertices; empty means uniform.
    cumulative: Vec<f64>,
    n: u64,
}

impl VertexSampler {
    fn new(mix: Mix, n: usize) -> Self {
        let cumulative = match mix {
            Mix::Zipf { exponent } => {
                let mut acc = 0.0;
                (0..n)
                    .map(|rank| {
                        acc += 1.0 / ((rank + 1) as f64).powf(exponent);
                        acc
                    })
                    .collect()
            }
            _ => Vec::new(),
        };
        VertexSampler { cumulative, n: n as u64 }
    }

    #[inline]
    fn draw(&self, rng: &mut SplitMix64) -> VertexId {
        if self.cumulative.is_empty() {
            return rng.next_below(self.n) as VertexId;
        }
        let total = *self.cumulative.last().expect("nonempty cumulative table");
        let x = rng.next_f64() * total;
        let i = self.cumulative.partition_point(|&c| c <= x);
        i.min(self.cumulative.len() - 1) as VertexId
    }
}

/// Generates a deterministic workload of `count` queries against `index`.
///
/// Uniform and Zipf mixes interleave query types at fixed odds
/// (10/16 `Connected`, 3/16 `ComponentOf`, 2/16 `ComponentSize`,
/// 1/16 `TopKSize` with `k ≤ 8`); the cross-component mix is pure
/// `Connected`. An empty index yields an empty workload.
pub fn generate(index: &ComponentIndex, mix: Mix, count: usize, seed: u64) -> Vec<Query> {
    if index.num_vertices() == 0 {
        return Vec::new();
    }
    let mut rng = SplitMix64::new(ampc::rng::derive_seed(&[seed, 0x51_u64, count as u64]));
    let sampler = VertexSampler::new(mix, index.num_vertices());
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let q = match mix {
            Mix::CrossComponent => cross_pair(index, &sampler, &mut rng),
            _ => match rng.next_below(16) {
                0..=9 => Query::Connected(sampler.draw(&mut rng), sampler.draw(&mut rng)),
                10..=12 => Query::ComponentOf(sampler.draw(&mut rng)),
                13..=14 => Query::ComponentSize(sampler.draw(&mut rng)),
                _ => Query::TopKSize(1 + rng.next_below(8) as u32),
            },
        };
        out.push(q);
    }
    out
}

/// A `Connected` pair spanning two distinct components: two components
/// drawn uniformly without replacement, then one uniform member of each.
fn cross_pair(index: &ComponentIndex, sampler: &VertexSampler, rng: &mut SplitMix64) -> Query {
    let c = index.num_components() as u64;
    if c < 2 {
        return Query::Connected(sampler.draw(rng), sampler.draw(rng));
    }
    let a = rng.next_below(c) as ComponentId;
    let mut b = rng.next_below(c - 1) as ComponentId;
    if b >= a {
        b += 1;
    }
    let ma = index.members(a);
    let mb = index.members(b);
    Query::Connected(
        ma[rng.next_below(ma.len() as u64) as usize],
        mb[rng.next_below(mb.len() as u64) as usize],
    )
}

/// Parses a plain-text query file: one query per line, `#` comments and
/// blank lines ignored. Grammar (vertex ids must be `< n`):
///
/// ```text
/// connected U V
/// component V
/// size V
/// topk K
/// ```
pub fn parse_query_file<R: Read>(r: R, n: usize) -> io::Result<Vec<Query>> {
    let reader = BufReader::new(r);
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        let mut it = line.split_whitespace();
        let op = it.next().expect("nonempty line has a first token");
        let mut arg = |what: &str| -> io::Result<u64> {
            it.next()
                .ok_or_else(|| bad(format!("line {}: {op} needs {what}", lineno + 1)))?
                .parse()
                .map_err(|e| bad(format!("line {}: bad {what}: {e}", lineno + 1)))
        };
        let vertex = |x: u64| -> io::Result<VertexId> {
            if (x as usize) < n {
                Ok(x as VertexId)
            } else {
                Err(bad(format!("line {}: vertex {x} out of range for n={n}", lineno + 1)))
            }
        };
        let q = match op {
            "connected" => {
                Query::Connected(vertex(arg("two vertex ids")?)?, vertex(arg("two vertex ids")?)?)
            }
            "component" => Query::ComponentOf(vertex(arg("a vertex id")?)?),
            "size" => Query::ComponentSize(vertex(arg("a vertex id")?)?),
            "topk" => {
                let k = arg("a rank")?;
                if k > u32::MAX as u64 {
                    return Err(bad(format!("line {}: rank {k} exceeds u32", lineno + 1)));
                }
                Query::TopKSize(k as u32)
            }
            other => return Err(bad(format!("line {}: unknown query {other:?}", lineno + 1))),
        };
        if let Some(extra) = it.next() {
            return Err(bad(format!("line {}: trailing token {extra:?}", lineno + 1)));
        }
        out.push(q);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::Labeling;

    /// Four components of sizes 4, 3, 2, 1.
    fn fixture() -> ComponentIndex {
        ComponentIndex::build(&Labeling(vec![0, 0, 0, 0, 1, 1, 1, 2, 2, 3]))
    }

    #[test]
    fn same_seed_regenerates_the_same_workload() {
        let idx = fixture();
        for mix in Mix::STANDARD {
            let a = generate(&idx, mix, 500, 42);
            let b = generate(&idx, mix, 500, 42);
            assert_eq!(a, b, "mix {} not deterministic", mix.name());
            let c = generate(&idx, mix, 500, 43);
            assert_ne!(a, c, "mix {} ignored the seed", mix.name());
            assert_eq!(a.len(), 500);
        }
    }

    #[test]
    fn cross_component_pairs_never_connect() {
        let idx = fixture();
        for q in generate(&idx, Mix::CrossComponent, 1000, 7) {
            match q {
                Query::Connected(u, v) => {
                    assert!(!idx.connected(u, v), "cross pair ({u},{v}) connected")
                }
                other => panic!("cross mix produced non-Connected query {other:?}"),
            }
        }
    }

    #[test]
    fn cross_component_falls_back_on_single_component() {
        let idx = ComponentIndex::build(&Labeling(vec![5; 8]));
        let qs = generate(&idx, Mix::CrossComponent, 64, 9);
        assert_eq!(qs.len(), 64);
        assert!(qs.iter().all(|q| matches!(q, Query::Connected(_, _))));
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let idx = ComponentIndex::build(&Labeling((0..1000u64).collect()));
        let mut head = 0usize;
        let mut total = 0usize;
        for q in generate(&idx, Mix::Zipf { exponent: 1.1 }, 4000, 3) {
            let vs: &[VertexId] = match &q {
                Query::Connected(u, v) => &[*u, *v],
                Query::ComponentOf(v) | Query::ComponentSize(v) => &[*v],
                Query::TopKSize(_) => &[],
            };
            for &v in vs {
                total += 1;
                if v < 100 {
                    head += 1;
                }
            }
        }
        // Under uniform draws the first decile gets ~10%; Zipf(1.1) puts
        // well over a third of the mass there.
        assert!(head * 3 > total, "zipf head too light: {head}/{total} draws in the first decile");
    }

    #[test]
    fn uniform_mix_exercises_every_query_type() {
        let idx = fixture();
        let qs = generate(&idx, Mix::Uniform, 2000, 11);
        assert!(qs.iter().any(|q| matches!(q, Query::Connected(_, _))));
        assert!(qs.iter().any(|q| matches!(q, Query::ComponentOf(_))));
        assert!(qs.iter().any(|q| matches!(q, Query::ComponentSize(_))));
        assert!(qs.iter().any(|q| matches!(q, Query::TopKSize(_))));
    }

    #[test]
    fn empty_index_yields_empty_workload() {
        let idx = ComponentIndex::build(&Labeling(vec![]));
        assert!(generate(&idx, Mix::Uniform, 100, 1).is_empty());
    }

    #[test]
    fn mix_parse_grammar() {
        assert_eq!(Mix::parse("uniform").unwrap(), Mix::Uniform);
        assert_eq!(Mix::parse("zipf").unwrap(), Mix::Zipf { exponent: 1.1 });
        assert_eq!(Mix::parse("zipf:0.8").unwrap(), Mix::Zipf { exponent: 0.8 });
        assert_eq!(Mix::parse("cross").unwrap(), Mix::CrossComponent);
        assert!(Mix::parse("zipf:-1").is_err());
        assert!(Mix::parse("zipf:nan").is_err());
        assert!(Mix::parse("hot").is_err());
    }

    #[test]
    fn query_file_roundtrip_and_errors() {
        let text = "# header\nconnected 0 3\n\ncomponent 2\nsize 1\ntopk 5\n";
        let qs = parse_query_file(text.as_bytes(), 4).unwrap();
        assert_eq!(
            qs,
            vec![
                Query::Connected(0, 3),
                Query::ComponentOf(2),
                Query::ComponentSize(1),
                Query::TopKSize(5),
            ]
        );
        assert!(parse_query_file("connected 0\n".as_bytes(), 4).is_err());
        assert!(parse_query_file("connected 0 9\n".as_bytes(), 4).is_err());
        assert!(parse_query_file("component x\n".as_bytes(), 4).is_err());
        assert!(parse_query_file("frobnicate 1\n".as_bytes(), 4).is_err());
        assert!(parse_query_file("size 1 2\n".as_bytes(), 4).is_err());
        // A rank beyond u32 must be rejected, not clamped.
        assert!(parse_query_file("topk 4294967296\n".as_bytes(), 4).is_err());
        assert!(parse_query_file("".as_bytes(), 4).unwrap().is_empty());
    }
}
