//! Merge journals: incremental component merges over a frozen
//! [`ComponentIndex`], the read-side half of journal-epochs.
//!
//! A full index build is a pure function of a whole graph; a streaming
//! insertion only ever *merges* existing components (new edges cannot split
//! anything). [`JournalView`] freezes the effect of a batch of merges into
//! three small arrays over **dense component ids** — not vertices — so a
//! journal costs `O(components)`, not `O(n)`:
//!
//! ```text
//! remap   : Vec<ComponentId>  base dense id → merged dense id
//! sizes   : Vec<usize>        merged id     → vertex count
//! by_size : Vec<ComponentId>  merged ids, largest first (ties by id)
//! ```
//!
//! The merge-aware read path is the base lookup plus **one extra array
//! read**: `remap[comp_of[v]]`. There is no pointer chasing — the journal
//! is fully resolved at build time, so the "find" is depth one by
//! construction.
//!
//! **Byte-identity with a fresh build.** Merged ids are assigned in
//! ascending order of each merged class's minimum *base* id. Base ids are
//! themselves ordered by minimum member vertex
//! ([`ComponentIndex::build`]), so a merged class's minimum base id orders
//! classes exactly by their minimum member vertex — the same rule a
//! from-scratch [`ComponentIndex::build`] over the merged graph uses. The
//! journal therefore answers the *entire query algebra* (`Connected`,
//! `ComponentOf`, `ComponentSize`, `TopKSize`) byte-identically to a full
//! rebuild, which is what the streaming equivalence tests pin.

use crate::index::{ComponentId, ComponentIndex};

/// A frozen batch of component merges over one base [`ComponentIndex`].
///
/// Immutable once built: publish a new `JournalView` for every accepted
/// insertion batch (they are `O(components)` to build), exactly like index
/// epochs themselves.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalView {
    /// Base dense id → merged dense id.
    remap: Vec<ComponentId>,
    /// Merged dense id → vertex count.
    sizes: Vec<usize>,
    /// Merged ids ranked by descending size, ties by ascending id.
    by_size: Vec<ComponentId>,
    /// Component merges the journal carries (`base components − merged
    /// components`).
    merges: usize,
}

impl JournalView {
    /// Freezes a merge labeling into a journal over `base`.
    ///
    /// `class_of[c]` names the merged class of base component `c`: two base
    /// components are merged iff their entries are equal (the values are
    /// opaque labels — e.g. union-find roots — and need not be idempotent).
    ///
    /// # Errors
    /// Rejects a labeling whose length differs from `base`'s component
    /// count or that names a class `>= base.num_components()`.
    pub fn build(class_of: &[ComponentId], base: &ComponentIndex) -> Result<JournalView, String> {
        let c = base.num_components();
        if class_of.len() != c {
            return Err(format!(
                "merge labeling covers {} components but the base index has {c}",
                class_of.len()
            ));
        }
        // Minimum base id per class label (the class's canonical root).
        let mut canon = vec![ComponentId::MAX; c];
        for (id, &class) in class_of.iter().enumerate() {
            if (class as usize) >= c {
                return Err(format!("merge class {class} out of range for {c} base components"));
            }
            let slot = &mut canon[class as usize];
            *slot = (*slot).min(id as ComponentId);
        }
        // Merged ids in ascending canonical-root order: scanning base ids
        // upward discovers each class at its minimum member (canonical)
        // id, mirroring ComponentIndex::build's first-appearance rule.
        let mut dense_of_class = vec![ComponentId::MAX; c];
        let mut sizes = Vec::new();
        for (id, &class) in class_of.iter().enumerate() {
            if canon[class as usize] == id as ComponentId {
                dense_of_class[class as usize] = sizes.len() as ComponentId;
                sizes.push(0usize);
            }
        }
        let mut remap = vec![0 as ComponentId; c];
        for (id, &class) in class_of.iter().enumerate() {
            let d = dense_of_class[class as usize];
            remap[id] = d;
            sizes[d as usize] += base.size_of(id as ComponentId);
        }
        let mut by_size: Vec<ComponentId> = (0..sizes.len() as ComponentId).collect();
        by_size.sort_by_key(|&d| (usize::MAX - sizes[d as usize], d));
        let merges = c - sizes.len();
        Ok(JournalView { remap, sizes, by_size, merges })
    }

    /// Merged dense id of base component `c` — the one extra read of the
    /// journal-aware query path.
    ///
    /// # Panics
    /// Panics if `c` is not a base component id (the engine only feeds it
    /// ids read out of the base index, which are in range by construction).
    #[inline]
    pub fn resolve(&self, c: ComponentId) -> ComponentId {
        self.remap[c as usize]
    }

    /// Number of components after the journal's merges.
    #[inline]
    pub fn num_components(&self) -> usize {
        self.sizes.len()
    }

    /// Component merges the journal carries.
    #[inline]
    pub fn merges(&self) -> usize {
        self.merges
    }

    /// Vertex count of merged component `d`.
    ///
    /// # Panics
    /// Panics if `d >= num_components()`.
    #[inline]
    pub fn size_of(&self, d: ComponentId) -> usize {
        self.sizes[d as usize]
    }

    /// Size of the `rank`-th largest merged component (1-based), or 0 when
    /// there are fewer than `rank` components — same contract as
    /// [`ComponentIndex::kth_largest_size`].
    #[inline]
    pub fn kth_largest_size(&self, rank: usize) -> usize {
        if rank == 0 || rank > self.by_size.len() {
            return 0;
        }
        self.sizes[self.by_size[rank - 1] as usize]
    }

    /// The (at most) `k` largest merged components, largest first.
    #[inline]
    pub fn top_k(&self, k: usize) -> &[ComponentId] {
        &self.by_size[..k.min(self.by_size.len())]
    }

    /// Heap footprint in bytes (the per-journal-epoch publish cost).
    pub fn heap_bytes(&self) -> usize {
        self.remap.len() * std::mem::size_of::<ComponentId>()
            + self.sizes.len() * std::mem::size_of::<usize>()
            + self.by_size.len() * std::mem::size_of::<ComponentId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::Labeling;

    /// Base: components {0,1} id 0, {2} id 1, {3,4,5} id 2, {6} id 3.
    fn base() -> ComponentIndex {
        ComponentIndex::build(&Labeling(vec![9, 9, 4, 7, 7, 7, 1]))
    }

    #[test]
    fn identity_journal_is_a_no_op() {
        let base = base();
        let j = JournalView::build(&[0, 1, 2, 3], &base).unwrap();
        assert_eq!(j.num_components(), 4);
        assert_eq!(j.merges(), 0);
        for c in 0..4 {
            assert_eq!(j.resolve(c), c);
            assert_eq!(j.size_of(c), base.size_of(c));
        }
        assert_eq!(j.top_k(4), base.top_k(4));
    }

    #[test]
    fn merges_renumber_by_minimum_base_id() {
        let base = base();
        // Merge base components 1 and 3 (shared class label 1).
        let j = JournalView::build(&[0, 1, 2, 1], &base).unwrap();
        assert_eq!(j.num_components(), 3);
        assert_eq!(j.merges(), 1);
        // Classes by min base id: {0}→0, {1,3}→1, {2}→2.
        assert_eq!(j.resolve(0), 0);
        assert_eq!(j.resolve(1), 1);
        assert_eq!(j.resolve(2), 2);
        assert_eq!(j.resolve(3), 1);
        assert_eq!(j.size_of(0), 2);
        assert_eq!(j.size_of(1), 2); // {2} + {6}
        assert_eq!(j.size_of(2), 3);
        // by_size: sizes [2, 2, 3] ⇒ ranked 2, 0, 1.
        assert_eq!(j.top_k(3), &[2, 0, 1]);
        assert_eq!(j.kth_largest_size(1), 3);
        assert_eq!(j.kth_largest_size(3), 2);
        assert_eq!(j.kth_largest_size(4), 0);
        assert_eq!(j.kth_largest_size(0), 0);
    }

    #[test]
    fn journal_matches_a_fresh_build_of_the_merged_partition() {
        // Base partition over 8 vertices, then merge two classes; the
        // journal's remap/sizes/ranking must agree with ComponentIndex
        // built from the merged labeling directly.
        let labels = vec![3u64, 3, 5, 5, 8, 8, 8, 2];
        let base = ComponentIndex::build(&Labeling(labels.clone()));
        // Merge the label-5 and label-2 classes (base ids 1 and 3).
        let j = JournalView::build(&[0, 3, 2, 3], &base).unwrap();
        let merged: Vec<u64> = labels.iter().map(|&l| if l == 2 { 5 } else { l }).collect();
        let fresh = ComponentIndex::build(&Labeling(merged));
        assert_eq!(j.num_components(), fresh.num_components());
        for v in 0..8u32 {
            assert_eq!(j.resolve(base.component_of(v)), fresh.component_of(v), "vertex {v}");
            assert_eq!(j.size_of(j.resolve(base.component_of(v))), fresh.component_size(v));
        }
        for k in 0..=4 {
            assert_eq!(j.kth_largest_size(k), fresh.kth_largest_size(k), "rank {k}");
        }
    }

    #[test]
    fn bad_labelings_are_rejected() {
        let base = base();
        assert!(JournalView::build(&[0, 1, 2], &base).is_err(), "short labeling");
        assert!(JournalView::build(&[0, 1, 2, 4], &base).is_err(), "class out of range");
        let empty = ComponentIndex::build(&Labeling(vec![]));
        let j = JournalView::build(&[], &empty).unwrap();
        assert_eq!(j.num_components(), 0);
        assert_eq!(j.kth_largest_size(1), 0);
    }
}
